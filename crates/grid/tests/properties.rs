//! Property-based tests (proptest) for the grid substrate: wire paths,
//! the legality checker, and the folding estimates.

use mlv_core::prop;
use mlv_core::{mlv_proptest, prop_assert, prop_assert_eq};
use mlv_grid::checker::{check, CheckError};
use mlv_grid::fold::FoldedEstimate;
use mlv_grid::geom::{Point3, Rect};
use mlv_grid::io::{read_layout, write_layout};
use mlv_grid::layout::Layout;
use mlv_grid::metrics::{LayoutMetrics, PhysicalMetrics};
use mlv_grid::path::WirePath;
use mlv_grid::pdk::Pdk;

/// Build a rectilinear path from a list of axis-aligned steps.
fn path_from_steps(start: (i64, i64, i32), steps: &[(u8, i64)]) -> WirePath {
    let mut corners = vec![Point3::new(start.0, start.1, start.2)];
    let mut cur = *corners.last().unwrap();
    for &(axis, amount) in steps {
        let mut next = cur;
        match axis % 3 {
            0 => next.x += amount,
            1 => next.y += amount,
            _ => next.z = (next.z + (amount.clamp(-2, 2)) as i32).max(0),
        }
        corners.push(next);
        cur = next;
    }
    WirePath::new(corners)
}

mlv_proptest! {
    /// For any valid path: point count = length + 1, endpoints'
    /// Manhattan distance ≤ length, and planar + via lengths partition
    /// the total.
    #[test]
    fn path_length_point_consistency(
        sx in -20i64..20, sy in -20i64..20,
        steps in prop::vec((0u8..3, -6i64..7), 0..12)
    ) {
        let p = path_from_steps((sx, sy, 2), &steps);
        prop_assert_eq!(p.planar_length() + p.via_count(), p.length());
        if p.validate().is_ok() {
            prop_assert_eq!(p.points().count() as u64, p.length() + 1);
            prop_assert!(p.start().manhattan(&p.end()) <= p.length());
        }
    }

    /// A path that validates never visits a point twice (cross-checked
    /// with a set).
    #[test]
    fn valid_paths_are_self_disjoint(
        steps in prop::vec((0u8..3, -5i64..6), 1..10)
    ) {
        let p = path_from_steps((0, 0, 1), &steps);
        if p.validate().is_ok() {
            let pts: Vec<_> = p.points().collect();
            let set: std::collections::HashSet<_> = pts.iter().copied().collect();
            prop_assert_eq!(set.len(), pts.len());
        }
    }

    /// Parallel horizontal wires on distinct tracks always check clean;
    /// duplicating any wire makes the checker reject.
    #[test]
    fn checker_accepts_disjoint_rejects_duplicates(
        n_wires in 1usize..8, dup in 0usize..8
    ) {
        let mut l = Layout::new("lanes", 2);
        l.place_node(0, Rect::new(0, 0, 0, (n_wires as i64).max(1) - 1));
        l.place_node(1, Rect::new(10, 0, 10, (n_wires as i64).max(1) - 1));
        for t in 0..n_wires {
            l.add_wire(
                0,
                1,
                WirePath::new(vec![
                    Point3::new(0, t as i64, 0),
                    Point3::new(10, t as i64, 0),
                ]),
            );
        }
        prop_assert!(check(&l, None).is_legal());
        // duplicate one wire -> conflict
        let t = dup % n_wires;
        l.add_wire(
            0,
            1,
            WirePath::new(vec![
                Point3::new(0, t as i64, 0),
                Point3::new(10, t as i64, 0),
            ]),
        );
        let r = check(&l, None);
        let has_conflict = r
            .errors
            .iter()
            .any(|e| matches!(e, CheckError::WireConflict { .. }));
        prop_assert!(has_conflict);
    }

    /// Folding any 2-layer metrics: area falls by ≈ t, volume never
    /// falls, max wire never falls.
    #[test]
    fn folding_estimate_monotonicity(
        width in 10u64..5000, height in 10u64..5000, wire in 1u64..5000,
        t in 1usize..9
    ) {
        let layers = 2 * t;
        let m = LayoutMetrics {
            width,
            height,
            area: width * height,
            volume: 2 * width * height,
            layers: 2,
            max_used_layer: 1,
            max_wire_planar: wire,
            max_wire_full: wire,
            total_wire: 0,
            wire_count: 0,
            via_count: 0,
        };
        let f = FoldedEstimate::from_two_layer(&m, layers);
        // area shrinks by at most t, and at least t modulo crease rows
        prop_assert!(f.area >= m.area / t as u64);
        prop_assert!(f.area <= m.area / t as u64 + (t as u64 + 1) * width);
        prop_assert!(f.volume >= m.volume);
        prop_assert!(f.max_wire >= m.max_wire_full);
    }

    /// The text format round-trips arbitrary layouts byte-stably.
    #[test]
    fn io_round_trip(
        nodes in prop::vec((0i64..40, 0i64..40, 0u8..4), 1..6),
        steps in prop::vec((0u8..3, -5i64..6), 1..8),
    ) {
        let mut l = Layout::new("prop trip", 4);
        for (i, &(x, y, z)) in nodes.iter().enumerate() {
            l.place_node_at(i as u32, Rect::new(x, y, x + 1, y + 1), z as i32);
        }
        let path = path_from_steps((nodes[0].0, nodes[0].1, nodes[0].2 as i32), &steps);
        l.add_wire(0, 0, path);
        let text = write_layout(&l);
        let back = read_layout(&text).unwrap();
        prop_assert_eq!(write_layout(&back), text);
        prop_assert_eq!(back.nodes.len(), l.nodes.len());
        prop_assert_eq!(back.wires[0].path.corners(), l.wires[0].path.corners());
    }

    /// The parallel checker is byte-identical to the sequential path:
    /// same errors in the same order, same point counts, at every
    /// thread count — on legal layouts and on corrupted ones.
    #[test]
    fn checker_parallel_equals_sequential(
        n_wires in 1usize..120, corrupt in 0usize..4
    ) {
        let mut l = Layout::new("par-vs-seq", 2);
        l.place_node(0, Rect::new(0, 0, 0, (n_wires as i64).max(1) - 1));
        l.place_node(1, Rect::new(10, 0, 10, (n_wires as i64).max(1) - 1));
        for t in 0..n_wires {
            l.add_wire(
                0,
                1,
                WirePath::new(vec![
                    Point3::new(0, t as i64, 0),
                    Point3::new(10, t as i64, 0),
                ]),
            );
        }
        if corrupt > 0 {
            // duplicated wire, foreign footprint, and layer escape
            let t = (corrupt * 7) % n_wires;
            l.add_wire(
                0,
                1,
                WirePath::new(vec![
                    Point3::new(0, t as i64, 0),
                    Point3::new(10, t as i64, 0),
                ]),
            );
            if corrupt > 1 {
                l.place_node(2, Rect::new(5, 0, 5, 0));
            }
            if corrupt > 2 {
                l.wires[0].path = WirePath::new(vec![
                    Point3::new(0, 0, 0),
                    Point3::new(0, 0, 5),
                    Point3::new(10, 0, 5),
                    Point3::new(10, 0, 0),
                ]);
            }
        }
        let seq = mlv_core::exec::with_thread_count(1, || check(&l, None));
        for threads in [2usize, 4, 8] {
            let par = mlv_core::exec::with_thread_count(threads, || check(&l, None));
            prop_assert_eq!(&par.errors, &seq.errors, "threads = {}", threads);
            prop_assert_eq!(par.wire_points, seq.wire_points);
            prop_assert_eq!(par.node_points, seq.node_points);
        }
    }

    /// Bounding boxes contain every wire corner and every node.
    #[test]
    fn bounding_box_covers_everything(
        nodes in prop::vec((0i64..50, 0i64..50), 1..6),
    ) {
        let mut l = Layout::new("bb", 2);
        for (i, &(x, y)) in nodes.iter().enumerate() {
            // footprints may overlap here; we only test the bbox
            l.place_node(i as u32, Rect::new(x, y, x + 1, y + 1));
        }
        let bb = l.bounding_box().unwrap();
        for &(x, y) in &nodes {
            prop_assert!(bb.contains_xy(x, y));
            prop_assert!(bb.contains_xy(x + 1, y + 1));
        }
    }

    /// PDK metric laws over arbitrary rectilinear wires: the uniform
    /// stack is the exact identity onto the grid metrics, and scaling
    /// every pitch/via cost by a constant k scales wirelength and via
    /// cost by k and area by k².
    #[test]
    fn physical_metrics_identity_and_linearity(
        steps in prop::vec((0u8..3, -6i64..7), 1..12),
        k in 1u64..5
    ) {
        let p = path_from_steps((0, 0, 1), &steps);
        if p.validate().is_ok() {
            let mut l = Layout::new("prop", 4);
            l.add_wire(0, 1, p);
            let m = LayoutMetrics::of(&l);
            let ph = PhysicalMetrics::of(&l, &Pdk::uniform(4)).unwrap();
            prop_assert_eq!(ph.wirelength, m.total_wire);
            prop_assert_eq!(ph.max_wire, m.max_wire_full);
            prop_assert_eq!(ph.via_cost, m.via_count);
            prop_assert_eq!(ph.area, m.area);
            let hv6 = Pdk::hv6();
            let p1 = PhysicalMetrics::of(&l, &hv6).unwrap();
            let pk = PhysicalMetrics::of(&l, &hv6.scaled(k).unwrap()).unwrap();
            prop_assert_eq!(pk.wirelength, k * p1.wirelength);
            prop_assert_eq!(pk.via_cost, k * p1.via_cost);
            prop_assert_eq!(pk.max_wire, k * p1.max_wire);
            prop_assert_eq!(pk.area, k * k * p1.area);
        }
    }

    /// Adversarial scale factors and hostile huge-pitch stacks never
    /// panic: `Pdk::scaled` and `PhysicalMetrics::of` run checked
    /// arithmetic end to end and surface overflow as `Err`. (Pinned
    /// because the serve path feeds user-supplied `@file.pdk` stacks
    /// through both — before this, extreme `k` debug-panicked /
    /// release-wrapped.)
    #[test]
    fn extreme_scale_factors_error_instead_of_panicking(
        k_exp in 32u32..64,
        steps in prop::vec((0u8..3, -6i64..7), 1..8)
    ) {
        let k = if k_exp == 63 { u64::MAX } else { 1u64 << k_exp };
        // k = 0 is an error, not a panic
        prop_assert!(Pdk::hv6().scaled(0).is_err());
        // hv6's max pitch is 4, so k past 2^62 must overflow — and
        // smaller k must round-trip the linearity law's precondition
        match Pdk::hv6().scaled(k) {
            Ok(scaled) => {
                prop_assert!(k <= u64::MAX / 4);
                // a realizable stack still prices small layouts, or
                // errors cleanly when the weighted sums overflow
                let p = path_from_steps((0, 0, 1), &steps);
                if p.validate().is_ok() {
                    let mut l = Layout::new("prop", 4);
                    l.add_wire(0, 1, p);
                    let _ = PhysicalMetrics::of(&l, &scaled); // must not panic
                }
            }
            Err(e) => {
                prop_assert!(k > u64::MAX / 4, "k={k} errored early: {e}");
                prop_assert!(e.contains("overflow"), "unexpected error: {e}");
            }
        }
    }
}
