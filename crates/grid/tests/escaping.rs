//! Property tests for the `mlv_grid::io` name-escaping rules over the
//! full byte range: `unescape(escape(s)) == Ok(s)` for every byte
//! string, every truncated or malformed escape is an `Err` (never a
//! panic), and `mlv_core::trace::escape_key` agrees with `io::escape`
//! byte for byte (the two subsystems share one escaping vocabulary).

use mlv_core::prop;
use mlv_core::{mlv_proptest, prop_assert, prop_assert_eq, prop_assume};
use mlv_grid::io::{escape, json_escape, read_layout, unescape};

/// Map raw bytes onto the first 256 codepoints (Latin-1 style), so a
/// generated `Vec<u8>` exercises every byte class the escaper
/// distinguishes: controls, space, backslash, DEL, and high bytes.
fn bytes_to_string(bytes: &[u16]) -> String {
    bytes.iter().map(|&b| char::from(b as u8)).collect()
}

mlv_proptest! {
    /// Round trip over the full u8 range.
    #[test]
    fn unescape_inverts_escape(bytes in prop::vec(0u16..256, 0..64)) {
        let s = bytes_to_string(&bytes);
        let escaped = escape(&s);
        prop_assert!(
            escaped.chars().all(|c| !c.is_ascii_whitespace() && !c.is_ascii_control()),
            "escaped form still has structure-breaking chars: {:?}",
            escaped
        );
        prop_assert_eq!(unescape(&escaped), Ok(s));
    }

    /// `trace::escape_key` and `io::escape` implement the same rules.
    #[test]
    fn trace_key_escaping_matches_io(bytes in prop::vec(0u16..256, 0..64)) {
        let s = bytes_to_string(&bytes);
        prop_assert_eq!(mlv_core::trace::escape_key(&s), escape(&s));
    }

    /// Truncating an escaped form anywhere inside a trailing `\xNN`
    /// sequence yields an `Err` from `unescape` — never a panic — for
    /// every possible truncation point (1, 2, or 3 chars short).
    #[test]
    fn truncated_escape_errors(
        bytes in prop::vec(0u16..256, 0..32),
        tail in 0u8..0x20,
    ) {
        let mut s = bytes_to_string(&bytes);
        s.push(char::from(tail)); // force a trailing \xNN escape
        let escaped = escape(&s);
        for cut in 1..4 {
            let truncated = &escaped[..escaped.len() - cut];
            prop_assert!(
                unescape(truncated).is_err(),
                "cut {} of {:?} unescaped cleanly",
                cut,
                escaped
            );
        }
    }

    /// A lone backslash followed by anything other than `x` + two hex
    /// digits is malformed.
    #[test]
    fn malformed_escape_errors(bytes in prop::vec(0u16..256, 2..8)) {
        let s = bytes_to_string(&bytes);
        prop_assume!(!s.starts_with("x") || !s[1..].chars().take(2).all(|c| c.is_ascii_hexdigit()));
        let malformed = format!("\\{s}");
        prop_assert!(unescape(&malformed).is_err(), "{:?} unescaped cleanly", malformed);
    }
}

/// Decode a JSON string body (the part between the quotes) — a
/// test-local reference decoder for the escapes `json_escape` may emit.
fn json_unescape(s: &str) -> String {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next().expect("truncated escape") {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'b' => out.push('\u{8}'),
            'f' => out.push('\u{c}'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16).expect("bad \\u escape");
                out.push(char::from_u32(code).expect("surrogate in test input"));
            }
            other => panic!("unknown escape \\{other}"),
        }
    }
    out
}

/// The shared JSON escaper covers at least the byte range `io::escape`
/// protects — every C0 control **and** DEL — plus the JSON
/// structural characters. The engine report's original private escaper
/// left DEL raw (it only tested `< 0x20`); this test pins the audited
/// semantics (referenced from the `json_escape` doc comment).
#[test]
fn json_escape_covers_io_escape_range() {
    for b in 0u8..=0xff {
        let c = char::from(b);
        let escaped = json_escape(&c.to_string());
        let needs_escape = b < 0x20 || b == 0x7f || c == '"' || c == '\\';
        if needs_escape {
            assert!(
                escaped.starts_with('\\'),
                "byte {b:#04x} left unescaped: {escaped:?}"
            );
            assert!(
                escaped.chars().skip(1).all(|c| {
                    let u = c as u32;
                    u >= 0x20 && u != 0x7f
                }),
                "byte {b:#04x} escape still carries a raw control: {escaped:?}"
            );
        } else {
            assert_eq!(escaped, c.to_string(), "byte {b:#04x} mangled");
        }
    }
}

mlv_proptest! {
    /// Round trip through a reference JSON string decoder over the full
    /// byte range: embedding the escaped form in a JSON document and
    /// decoding it must recover the original text exactly.
    #[test]
    fn json_escape_round_trips(bytes in prop::vec(0u16..256, 0..64)) {
        let s = bytes_to_string(&bytes);
        let escaped = json_escape(&s);
        prop_assert!(
            escaped.chars().all(|c| {
                let u = c as u32;
                u >= 0x20 && u != 0x7f
            }),
            "escaped form carries a raw control char: {:?}",
            escaped
        );
        prop_assert_eq!(json_unescape(&escaped), s);
    }
}

/// A malformed name escape inside a layout file surfaces as a
/// [`mlv_grid::io::ParseError`] carrying the header's line number —
/// `read_layout` never panics on it.
#[test]
fn read_layout_reports_bad_name_escape() {
    for bad in ["\\", "\\x", "\\x4", "\\q", "\\xzz", "ok\\x2"] {
        let text = format!("mlvlayout 1\nlayout {bad} layers=2\n");
        let err = read_layout(&text).expect_err(bad);
        assert_eq!(err.line, 2, "{bad}: {err}");
    }
}
