//! Property tests for the `mlv_grid::io` name-escaping rules over the
//! full byte range: `unescape(escape(s)) == Ok(s)` for every byte
//! string, every truncated or malformed escape is an `Err` (never a
//! panic), and `mlv_core::trace::escape_key` agrees with `io::escape`
//! byte for byte (the two subsystems share one escaping vocabulary).

use mlv_core::prop;
use mlv_core::{mlv_proptest, prop_assert, prop_assert_eq, prop_assume};
use mlv_grid::io::{escape, read_layout, unescape};

/// Map raw bytes onto the first 256 codepoints (Latin-1 style), so a
/// generated `Vec<u8>` exercises every byte class the escaper
/// distinguishes: controls, space, backslash, DEL, and high bytes.
fn bytes_to_string(bytes: &[u16]) -> String {
    bytes.iter().map(|&b| char::from(b as u8)).collect()
}

mlv_proptest! {
    /// Round trip over the full u8 range.
    #[test]
    fn unescape_inverts_escape(bytes in prop::vec(0u16..256, 0..64)) {
        let s = bytes_to_string(&bytes);
        let escaped = escape(&s);
        prop_assert!(
            escaped.chars().all(|c| !c.is_ascii_whitespace() && !c.is_ascii_control()),
            "escaped form still has structure-breaking chars: {:?}",
            escaped
        );
        prop_assert_eq!(unescape(&escaped), Ok(s));
    }

    /// `trace::escape_key` and `io::escape` implement the same rules.
    #[test]
    fn trace_key_escaping_matches_io(bytes in prop::vec(0u16..256, 0..64)) {
        let s = bytes_to_string(&bytes);
        prop_assert_eq!(mlv_core::trace::escape_key(&s), escape(&s));
    }

    /// Truncating an escaped form anywhere inside a trailing `\xNN`
    /// sequence yields an `Err` from `unescape` — never a panic — for
    /// every possible truncation point (1, 2, or 3 chars short).
    #[test]
    fn truncated_escape_errors(
        bytes in prop::vec(0u16..256, 0..32),
        tail in 0u8..0x20,
    ) {
        let mut s = bytes_to_string(&bytes);
        s.push(char::from(tail)); // force a trailing \xNN escape
        let escaped = escape(&s);
        for cut in 1..4 {
            let truncated = &escaped[..escaped.len() - cut];
            prop_assert!(
                unescape(truncated).is_err(),
                "cut {} of {:?} unescaped cleanly",
                cut,
                escaped
            );
        }
    }

    /// A lone backslash followed by anything other than `x` + two hex
    /// digits is malformed.
    #[test]
    fn malformed_escape_errors(bytes in prop::vec(0u16..256, 2..8)) {
        let s = bytes_to_string(&bytes);
        prop_assume!(!s.starts_with("x") || !s[1..].chars().take(2).all(|c| c.is_ascii_hexdigit()));
        let malformed = format!("\\{s}");
        prop_assert!(unescape(&malformed).is_err(), "{:?} unescaped cleanly", malformed);
    }
}

/// A malformed name escape inside a layout file surfaces as a
/// [`mlv_grid::io::ParseError`] carrying the header's line number —
/// `read_layout` never panics on it.
#[test]
fn read_layout_reports_bad_name_escape() {
    for bad in ["\\", "\\x", "\\x4", "\\q", "\\xzz", "ok\\x2"] {
        let text = format!("mlvlayout 1\nlayout {bad} layers=2\n");
        let err = read_layout(&text).expect_err(bad);
        assert_eq!(err.line, 2, "{bad}: {err}");
    }
}
