//! # mlv-grid
//!
//! The **multilayer grid model** substrate of the ICPP 2000 reproduction
//! (Yeh, Varvarigos & Parhami, *Multilayer VLSI Layout for Interconnection
//! Networks*).
//!
//! A layout embeds a network in a 3-D grid with `L` wiring layers:
//!
//! * network **nodes** occupy axis-aligned rectangles of grid points on
//!   the first ("active") layer `z = 0` — the *multilayer 2-D grid model*
//!   of paper §2.2;
//! * network **edges** become rectilinear **wires**: paths along grid
//!   lines that must be pairwise **node-disjoint** (no two wires may share
//!   even a grid point — the paper: "cannot cross or overlap with each
//!   other");
//! * the **area** is the smallest upright bounding rectangle of all nodes
//!   and wires in the x–y plane; the **volume** is `L · area`.
//!
//! This crate provides the geometry ([`geom`]), wire paths ([`path`]),
//! the layout container ([`layout`]), a complete legality checker
//! ([`checker`]), layout metrics ([`metrics`]), the analytic
//! folded-Thompson baseline ([`fold`]), and ASCII renderers ([`render`])
//! used to regenerate the paper's figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod checker;
pub mod fold;
pub mod geom;
pub mod hasher;
pub mod io;
pub mod layout;
pub mod metrics;
pub mod path;
pub mod pdk;
pub mod render;
pub mod streaming;
pub mod svg;

pub use checker::{check, CheckError, CheckReport};
pub use geom::{Point3, Rect};
pub use layout::{Layout, NodePlacement, Wire};
pub use metrics::{LayoutMetrics, PhysicalMetrics};
pub use path::WirePath;
pub use pdk::{DbUnits, Dir, Pdk, PdkLayer};
pub use streaming::{check_stream, metrics_stream, StreamSource};
