//! SVG rendering of layouts — a visual artifact for any layout size the
//! ASCII renderer can't handle. Layers are colour-coded; vias are drawn
//! as dots; node footprints as grey boxes.

use crate::layout::Layout;
use std::fmt::Write as _;

/// Per-layer stroke colours (cycled when L exceeds the palette).
const LAYER_COLORS: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b", "#17becf", "#e377c2",
];

/// Options for SVG rendering.
#[derive(Clone, Debug)]
pub struct SvgOptions {
    /// Pixels per grid unit.
    pub scale: f64,
    /// Draw via markers.
    pub show_vias: bool,
    /// Cap on wires drawn (largest layouts stay viewable); `None` = all.
    pub max_wires: Option<usize>,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            scale: 8.0,
            show_vias: true,
            max_wires: None,
        }
    }
}

/// Render a layout to an SVG document string. The y axis is flipped so
/// larger grid y appears higher, matching the ASCII renders.
pub fn render_svg(layout: &Layout, opts: &SvgOptions) -> String {
    let Some(bb) = layout.bounding_box() else {
        return "<svg xmlns=\"http://www.w3.org/2000/svg\"/>".to_string();
    };
    let s = opts.scale;
    let pad = 2.0 * s;
    let w = bb.width() as f64 * s + 2.0 * pad;
    let h = bb.height() as f64 * s + 2.0 * pad;
    let tx = |x: i64| (x - bb.x0) as f64 * s + pad;
    let ty = |y: i64| h - ((y - bb.y0) as f64 * s + pad);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w:.0}\" height=\"{h:.0}\" \
         viewBox=\"0 0 {w:.0} {h:.0}\">"
    );
    let _ = writeln!(out, "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>");
    // node footprints
    for n in &layout.nodes {
        let _ = writeln!(
            out,
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
             fill=\"#d0d0d0\" stroke=\"#808080\" stroke-width=\"1\"/>",
            tx(n.rect.x0) - s * 0.4,
            ty(n.rect.y1) - s * 0.4,
            (n.rect.width() as f64 - 1.0) * s + s * 0.8,
            (n.rect.height() as f64 - 1.0) * s + s * 0.8,
        );
    }
    // wires, colour per starting layer of each segment
    let limit = opts.max_wires.unwrap_or(usize::MAX);
    for wire in layout.wires.iter().take(limit) {
        for seg in wire.path.corners().windows(2) {
            let (a, b) = (seg[0], seg[1]);
            if a.z == b.z {
                let color = LAYER_COLORS[(a.z as usize) % LAYER_COLORS.len()];
                let _ = writeln!(
                    out,
                    "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" \
                     stroke=\"{color}\" stroke-width=\"1.5\" stroke-linecap=\"round\"/>",
                    tx(a.x),
                    ty(a.y),
                    tx(b.x),
                    ty(b.y),
                );
            } else if opts.show_vias {
                let _ = writeln!(
                    out,
                    "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{:.1}\" fill=\"#404040\"/>",
                    tx(a.x),
                    ty(a.y),
                    s * 0.25,
                );
            }
        }
    }
    // legend
    let used = (layout.max_used_layer() + 1).max(1) as usize;
    for (z, color) in LAYER_COLORS.iter().enumerate().take(used) {
        let _ = writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"{:.0}\" fill=\"{color}\">z={z}</text>",
            4.0,
            12.0 + 14.0 * z as f64,
            12.0,
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point3, Rect};
    use crate::path::WirePath;

    fn sample() -> Layout {
        let mut l = Layout::new("svg", 4);
        l.place_node(0, Rect::new(0, 0, 1, 1));
        l.place_node(1, Rect::new(8, 0, 9, 1));
        l.add_wire(
            0,
            1,
            WirePath::new(vec![
                Point3::new(1, 1, 0),
                Point3::new(1, 1, 3),
                Point3::new(8, 1, 3),
                Point3::new(8, 1, 0),
            ]),
        );
        l
    }

    #[test]
    fn svg_has_structure() {
        let svg = render_svg(&sample(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<rect").count(), 3); // background + 2 nodes
        assert!(svg.contains("stroke=\"#ff7f0e\"")); // layer 3 colour
        assert!(svg.matches("<circle").count() >= 2); // two via stacks
        assert!(svg.contains("z=3"));
    }

    #[test]
    fn empty_layout_svg() {
        let svg = render_svg(&Layout::new("e", 2), &SvgOptions::default());
        assert!(svg.contains("<svg"));
    }

    #[test]
    fn wire_cap_respected() {
        let mut l = sample();
        l.add_wire(
            0,
            1,
            WirePath::new(vec![
                Point3::new(0, 0, 0),
                Point3::new(0, 0, 1),
                Point3::new(9, 0, 1),
                Point3::new(9, 0, 0),
            ]),
        );
        let full = render_svg(&l, &SvgOptions::default());
        let capped = render_svg(
            &l,
            &SvgOptions {
                max_wires: Some(1),
                ..SvgOptions::default()
            },
        );
        assert!(capped.matches("<line").count() < full.matches("<line").count());
    }
}
