//! Plain-text serialization of layouts — a stable, diff-able interchange
//! format so layouts can be saved, inspected, versioned, and re-checked
//! by external tools.
//!
//! ```text
//! mlvlayout 1
//! layout <name-with-escaped-spaces> layers=<L>
//! node <id> <x0> <y0> <x1> <y1> layer=<z>
//! wire <u> <v> <x>,<y>,<z> <x>,<y>,<z> ...
//! ```
//!
//! One record per line; wire corners in path order. Backslashes,
//! whitespace, and control characters in names are escaped as `\xNN`
//! (two hex digits), so any name — including ones embedding newlines —
//! round-trips exactly (see the tests and the proptest suite).

use crate::geom::{Point3, Rect};
use crate::layout::Layout;
use crate::path::WirePath;
use std::fmt::Write as _;

/// Serialize a layout to the text format.
pub fn write_layout(layout: &Layout) -> String {
    let mut out = String::new();
    write_layout_into(layout, &mut out);
    out
}

/// [`write_layout`] into a caller-owned buffer: `out` is cleared and
/// then filled with the exact same bytes `write_layout` returns, so
/// digest/serialization hot loops (the batch engine hashes every
/// realized layout) can reuse one allocation across layouts.
pub fn write_layout_into(layout: &Layout, out: &mut String) {
    out.clear();
    let _ = writeln!(out, "mlvlayout 1");
    let _ = writeln!(
        out,
        "layout {} layers={}",
        escape(&layout.name),
        layout.layers
    );
    for n in &layout.nodes {
        let _ = writeln!(
            out,
            "node {} {} {} {} {} layer={}",
            n.node, n.rect.x0, n.rect.y0, n.rect.x1, n.rect.y1, n.layer
        );
    }
    for w in &layout.wires {
        let _ = write!(out, "wire {} {}", w.u, w.v);
        for c in w.path.corners() {
            let _ = write!(out, " {},{},{}", c.x, c.y, c.z);
        }
        out.push('\n');
    }
}

/// A parse failure, with the offending 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Parse a layout from the text format. Structural errors (bad numbers,
/// missing headers) are reported with line numbers; *semantic* legality
/// is the checker's job — run it after loading.
pub fn read_layout(text: &str) -> Result<Layout, ParseError> {
    let err = |line: usize, message: &str| ParseError {
        line,
        message: message.to_string(),
    };
    let mut lines = text.lines().enumerate();
    let (i, magic) = lines.next().ok_or_else(|| err(1, "empty input"))?;
    if magic.trim() != "mlvlayout 1" {
        return Err(err(i + 1, "expected header 'mlvlayout 1'"));
    }
    let (i, header) = lines.next().ok_or_else(|| err(2, "missing layout line"))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("layout") {
        return Err(err(i + 1, "expected 'layout <name> layers=<L>'"));
    }
    let name = unescape(parts.next().ok_or_else(|| err(i + 1, "missing name"))?)
        .map_err(|m| err(i + 1, &m))?;
    let layers: usize = parts
        .next()
        .and_then(|t| t.strip_prefix("layers="))
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err(i + 1, "missing or bad layers=<L>"))?;
    if layers == 0 {
        return Err(err(i + 1, "layers must be >= 1"));
    }
    let mut layout = Layout::new(name, layers);
    for (i, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("node") => {
                let mut num = |what: &str| -> Result<i64, ParseError> {
                    parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(i + 1, &format!("bad node {what}")))
                };
                let id = u32::try_from(num("id")?)
                    .map_err(|_| err(i + 1, "node id out of range (must fit in u32)"))?;
                let (x0, y0, x1, y1) = (num("x0")?, num("y0")?, num("x1")?, num("y1")?);
                let layer: i32 = parts
                    .next()
                    .and_then(|t| t.strip_prefix("layer="))
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(i + 1, "missing or bad layer=<z>"))?;
                if x1 < x0 || y1 < y0 {
                    return Err(err(i + 1, "degenerate node rectangle"));
                }
                if layer < 0 || layer as usize >= layers {
                    return Err(err(i + 1, "node layer outside the layer budget"));
                }
                layout.place_node_at(id, Rect::new(x0, y0, x1, y1), layer);
            }
            Some("wire") => {
                let mut id = |what: &str| -> Result<u32, ParseError> {
                    parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(i + 1, &format!("bad wire {what}")))
                };
                let u = id("u")?;
                let v = id("v")?;
                let mut corners = Vec::new();
                for tok in parts {
                    let mut fields = tok.split(',');
                    let mut num = || fields.next().and_then(|t| t.parse::<i64>().ok());
                    match (num(), num(), num()) {
                        (Some(x), Some(y), Some(z)) => {
                            let z = i32::try_from(z).map_err(|_| {
                                err(i + 1, &format!("corner layer out of range in '{tok}'"))
                            })?;
                            corners.push(Point3::new(x, y, z));
                        }
                        _ => return Err(err(i + 1, &format!("bad corner '{tok}'"))),
                    }
                }
                if corners.is_empty() {
                    return Err(err(i + 1, "wire needs at least one corner"));
                }
                layout.add_wire(u, v, WirePath::new(corners));
            }
            Some(other) => {
                return Err(err(i + 1, &format!("unknown record '{other}'")));
            }
            None => {}
        }
    }
    Ok(layout)
}

/// Characters that would break the line/token structure (or render
/// invisibly) are written as `\xNN`: the backslash itself, ASCII
/// whitespace, every control character, and DEL.
fn needs_escape(c: char) -> bool {
    c == '\\' || c == ' ' || (c as u32) < 0x20 || c == '\x7f'
}

/// Escape a name for the text format: the backslash, ASCII whitespace,
/// every control character, and DEL become `\xNN` (two hex digits).
/// The same rules back `mlv_core::trace`'s key escaping, so trace
/// output and layout files stay mutually greppable. Inverse of
/// [`unescape`]: `unescape(&escape(s)) == Ok(s)` for every string.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if needs_escape(c) {
            out.push_str(&format!("\\x{:02x}", c as u32));
        } else {
            out.push(c);
        }
    }
    out
}

/// Escape a string for embedding inside a JSON string literal.
///
/// The workspace-wide JSON escaper: `mlv_layout::engine` report lines,
/// `mlv serve` responses, and every other hand-rolled JSON emitter
/// route names through here. Escapes the quote, the backslash, **every
/// C0 control character** (the JSON grammar forbids them raw), *and*
/// DEL (`0x7f`) — matching [`escape`]'s coverage, so a family or PDK
/// name that round-trips through the layout text format also
/// round-trips through a JSON report. `\n`, `\r`, and `\t` use their
/// short forms; other controls and DEL use `\u00XX`.
///
/// (The engine's previous private escaper left DEL through raw —
/// valid JSON, but the one name byte the text format escapes that the
/// report did not, so a report label was not greppable against its
/// layout file. Pinned by the `json_escape_covers_io_escape_range`
/// regression test.)
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c == '\x7f' => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Undo [`escape`]. Every malformed escape — a backslash not followed
/// by `x` plus two hex digits, including truncations at end of input —
/// is an `Err` (never a panic); [`read_layout`] surfaces it as a
/// [`ParseError`] with the offending line number.
pub fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        let (x, hi, lo) = (chars.next(), chars.next(), chars.next());
        let byte = match (x, hi, lo) {
            (Some('x'), Some(h), Some(l)) => {
                let h = h.to_digit(16);
                let l = l.to_digit(16);
                match (h, l) {
                    (Some(h), Some(l)) => h * 16 + l,
                    _ => return Err(format!("bad escape sequence in name '{s}'")),
                }
            }
            _ => return Err(format!("truncated escape sequence in name '{s}'")),
        };
        out.push(char::from_u32(byte).expect("two hex digits are always a valid char"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Layout {
        let mut l = Layout::new("round trip", 4);
        l.place_node(0, Rect::new(0, 0, 2, 2));
        l.place_node_at(1, Rect::new(0, 0, 2, 2), 2);
        l.add_wire(
            0,
            1,
            WirePath::new(vec![
                Point3::new(2, 0, 0),
                Point3::new(4, 0, 0),
                Point3::new(4, 0, 2),
                Point3::new(2, 0, 2),
            ]),
        );
        l
    }

    #[test]
    fn write_into_reuses_buffer_and_matches() {
        let l = sample();
        let mut buf = String::from("stale content from a previous layout");
        write_layout_into(&l, &mut buf);
        assert_eq!(buf, write_layout(&l));
    }

    #[test]
    fn round_trip() {
        let l = sample();
        let text = write_layout(&l);
        let back = read_layout(&text).unwrap();
        assert_eq!(back.name, l.name);
        assert_eq!(back.layers, l.layers);
        assert_eq!(back.nodes.len(), l.nodes.len());
        assert_eq!(back.nodes[1].layer, 2);
        assert_eq!(back.wires.len(), 1);
        assert_eq!(back.wires[0].path, l.wires[0].path);
        // and the re-serialization is byte-identical (stable format)
        assert_eq!(write_layout(&back), text);
    }

    #[test]
    fn name_escaping() {
        let mut l = Layout::new("a b\\c", 2);
        l.place_node(0, Rect::new(0, 0, 0, 0));
        let back = read_layout(&write_layout(&l)).unwrap();
        assert_eq!(back.name, "a b\\c");
    }

    #[test]
    fn adversarial_names_round_trip() {
        // control characters, whitespace, and escape-looking content
        // must all survive the documented round-trip guarantee
        for name in [
            "a\nb",
            "tab\there",
            "bell\x07",
            "esc\x1b[0m colours",
            "del\x7f",
            "looks escaped \\x20 already",
            "trailing backslash \\",
            "\r\n",
        ] {
            let mut l = Layout::new(name, 2);
            l.place_node(0, Rect::new(0, 0, 0, 0));
            let text = write_layout(&l);
            // escaping keeps the format line-structured
            assert_eq!(text.lines().count(), 3, "{name:?} broke line structure");
            let back = read_layout(&text).unwrap_or_else(|e| panic!("{name:?}: {e}"));
            assert_eq!(back.name, name);
            assert_eq!(write_layout(&back), text);
        }
    }

    #[test]
    fn bad_name_escapes_error() {
        for bad in ["a\\xzz", "a\\x2", "a\\x", "a\\", "a\\y20"] {
            let text = format!("mlvlayout 1\nlayout {bad} layers=2\n");
            let e = read_layout(&text).unwrap_err();
            assert_eq!(e.line, 2, "{bad}");
        }
    }

    #[test]
    fn negative_node_id_errors_instead_of_wrapping() {
        let text = "mlvlayout 1\nlayout x layers=2\nnode -1 0 0 1 1 layer=0\n";
        let e = read_layout(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("id"), "{}", e.message);
        // and just past u32::MAX too
        let text = "mlvlayout 1\nlayout x layers=2\nnode 4294967296 0 0 1 1 layer=0\n";
        assert!(read_layout(text).is_err());
    }

    #[test]
    fn corner_layer_out_of_i32_range_errors() {
        for z in ["4294967296", "-4294967296", "2147483648"] {
            let text = format!("mlvlayout 1\nlayout x layers=2\nwire 0 1 0,0,{z} 1,0,{z}\n");
            let e = read_layout(&text).unwrap_err();
            assert_eq!(e.line, 3, "z={z}");
        }
    }

    #[test]
    fn negative_wire_endpoint_errors() {
        let text = "mlvlayout 1\nlayout x layers=2\nwire -1 0 0,0,0 1,0,0\n";
        let e = read_layout(text).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_layout("nope").is_err());
        assert!(read_layout("mlvlayout 1\nlayout x layers=abc").is_err());
    }

    #[test]
    fn rejects_bad_records_with_line_numbers() {
        let text = "mlvlayout 1\nlayout x layers=2\nnode 0 0 0 0\n";
        let e = read_layout(text).unwrap_err();
        assert_eq!(e.line, 3);
        let text = "mlvlayout 1\nlayout x layers=2\nwire 0 1 1,2\n";
        let e = read_layout(text).unwrap_err();
        assert_eq!(e.line, 3);
        let text = "mlvlayout 1\nlayout x layers=2\nblob\n";
        assert!(read_layout(text).is_err());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "mlvlayout 1\nlayout x layers=2\n\n# comment\nnode 7 0 0 1 1 layer=0\n";
        let l = read_layout(text).unwrap();
        assert_eq!(l.nodes.len(), 1);
        assert_eq!(l.nodes[0].node, 7);
    }
}
