//! Legality checking for multilayer grid layouts.
//!
//! A layout is **legal** (paper §2.2) when:
//!
//! 1. every wire stays within the layer budget `0 ≤ z < L` and uses only
//!    axis-aligned segments;
//! 2. node footprints are pairwise disjoint rectangles on their active
//!    layers (nodes on *different* active layers may share planar
//!    coordinates — the multilayer 3-D grid model);
//! 3. wire paths are **node-disjoint**: no grid point is used by two
//!    wires (this subsumes edge-disjointness), and no wire revisits a
//!    point;
//! 4. each wire starts at a grid point of its `u` endpoint's footprint
//!    and ends at one of its `v` endpoint's footprint, on those nodes'
//!    active layers;
//! 5. a wire's points never pass through the footprint (at its active
//!    layer) of a node other than its two endpoints (wires may run
//!    *above or below* nodes on other layers);
//! 6. optionally, the multiset of wire endpoint pairs equals the edge
//!    multiset of a reference graph — the layout realizes exactly that
//!    network.
//!
//! Checking is data-parallel over wires (the `mlv-core` scoped-thread
//! executor): per-wire validation first, then a parallel sort of all
//! occupied grid points to detect cross-wire conflicts. The executor
//! recombines chunk results in wire order, so the report is
//! byte-identical to a sequential check.

use crate::geom::Point3;
use crate::hasher::FxBuildHasher;
use crate::layout::Layout;
use crate::pdk::Pdk;
use mlv_core::exec;
use mlv_topology::{Graph, NodeId};
use std::collections::HashMap;

/// A single legality violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// Wire `wire` leaves the layer budget at the given point.
    LayerOutOfRange {
        /// Index into `layout.wires`.
        wire: usize,
        /// The offending point.
        point: Point3,
    },
    /// Wire `wire` has a non-rectilinear or self-intersecting path.
    BadPath {
        /// Index into `layout.wires`.
        wire: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// Two node footprints overlap.
    NodeOverlap {
        /// First node.
        a: NodeId,
        /// Second node.
        b: NodeId,
    },
    /// Wire endpoint does not touch the declared node's footprint.
    BadTerminal {
        /// Index into `layout.wires`.
        wire: usize,
        /// The network node the terminal should touch.
        node: NodeId,
        /// Where the wire actually starts/ends.
        point: Point3,
    },
    /// Two wires share a grid point.
    WireConflict {
        /// First wire index.
        a: usize,
        /// Second wire index.
        b: usize,
        /// The shared point.
        point: Point3,
    },
    /// A wire's active-layer point lies inside a foreign node footprint.
    WireThroughNode {
        /// Index into `layout.wires`.
        wire: usize,
        /// The node whose footprint is violated.
        node: NodeId,
        /// The offending point.
        point: Point3,
    },
    /// A node referenced by a wire has no placement.
    MissingNode {
        /// The unplaced node.
        node: NodeId,
    },
    /// The wire multiset does not match the reference graph.
    TopologyMismatch {
        /// Description of the first difference found.
        detail: String,
    },
    /// A planar run travels across its layer's preferred direction
    /// (PDK check: only reported by [`check_with_pdk`] under a
    /// non-uniform stack).
    DirectionViolation {
        /// Index into `layout.wires`.
        wire: usize,
        /// The offending layer.
        layer: i32,
        /// Start of the offending run.
        point: Point3,
    },
    /// Two same-layer parallel runs sit closer than the layer's track
    /// pitch (PDK check: only reported by [`check_with_pdk`] under a
    /// non-uniform stack).
    PitchViolation {
        /// First wire index.
        a: usize,
        /// Second wire index.
        b: usize,
        /// The shared layer.
        layer: i32,
        /// Center-to-center spacing observed (positive, below pitch).
        gap: i64,
    },
}

impl CheckError {
    /// Every variant name [`CheckError::kind`] can return, in
    /// declaration order — the coverage universe for fault-injection
    /// completeness accounting (the conformance harness asserts every
    /// one of these is triggered by at least one injected defect).
    pub const KINDS: [&'static str; 10] = [
        "LayerOutOfRange",
        "BadPath",
        "NodeOverlap",
        "BadTerminal",
        "WireConflict",
        "WireThroughNode",
        "MissingNode",
        "TopologyMismatch",
        "DirectionViolation",
        "PitchViolation",
    ];

    /// The subset of [`CheckError::KINDS`] only reachable through
    /// [`check_with_pdk`] with a non-uniform stack — excluded from
    /// injection-coverage accounting when the PDK axis is off.
    pub const PDK_KINDS: [&'static str; 2] = ["DirectionViolation", "PitchViolation"];

    /// Stable, machine-readable variant name (one of
    /// [`CheckError::KINDS`]).
    pub fn kind(&self) -> &'static str {
        match self {
            CheckError::LayerOutOfRange { .. } => "LayerOutOfRange",
            CheckError::BadPath { .. } => "BadPath",
            CheckError::NodeOverlap { .. } => "NodeOverlap",
            CheckError::BadTerminal { .. } => "BadTerminal",
            CheckError::WireConflict { .. } => "WireConflict",
            CheckError::WireThroughNode { .. } => "WireThroughNode",
            CheckError::MissingNode { .. } => "MissingNode",
            CheckError::TopologyMismatch { .. } => "TopologyMismatch",
            CheckError::DirectionViolation { .. } => "DirectionViolation",
            CheckError::PitchViolation { .. } => "PitchViolation",
        }
    }
}

/// Result of a legality check.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// All violations found (capped at [`CheckReport::ERROR_CAP`]).
    pub errors: Vec<CheckError>,
    /// Total grid points occupied by wires.
    pub wire_points: u64,
    /// Total grid points occupied by node footprints.
    pub node_points: u64,
}

impl CheckReport {
    /// Maximum number of errors retained.
    pub const ERROR_CAP: usize = 64;

    /// `true` when the layout is legal.
    pub fn is_legal(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Check a layout; if `reference` is given, additionally verify the
/// layout realizes exactly that graph.
///
/// ```
/// use mlv_grid::{checker, Layout, Rect, WirePath, Point3};
/// let mut l = Layout::new("pair", 2);
/// l.place_node(0, Rect::new(0, 0, 0, 0));
/// l.place_node(1, Rect::new(4, 0, 4, 0));
/// l.add_wire(0, 1, WirePath::new(vec![Point3::new(0, 0, 0), Point3::new(4, 0, 0)]));
/// assert!(checker::check(&l, None).is_legal());
/// ```
pub fn check(layout: &Layout, reference: Option<&Graph>) -> CheckReport {
    let _span = mlv_core::span!("checker.check");
    let mut errors: Vec<CheckError> = Vec::new();
    let cap = CheckReport::ERROR_CAP;

    // --- node footprints: pairwise disjoint ---
    let mut rects: Vec<(usize, &crate::layout::NodePlacement)> =
        layout.nodes.iter().enumerate().collect();
    rects.sort_by_key(|(_, n)| (n.layer, n.rect.x0));
    for i in 0..rects.len() {
        for j in (i + 1)..rects.len() {
            if rects[j].1.layer != rects[i].1.layer || rects[j].1.rect.x0 > rects[i].1.rect.x1 {
                break;
            }
            if rects[i].1.rect.intersects(&rects[j].1.rect) {
                errors.push(CheckError::NodeOverlap {
                    a: rects[i].1.node,
                    b: rects[j].1.node,
                });
                if errors.len() >= cap {
                    return finish(layout, errors);
                }
            }
        }
    }

    // footprint point index for terminal / pass-through checks, keyed
    // with the active layer (3-D model: stacked nodes are distinct)
    let mut fp: HashMap<(i64, i64, i32), NodeId, FxBuildHasher> = HashMap::default();
    for n in &layout.nodes {
        for x in n.rect.x0..=n.rect.x1 {
            for y in n.rect.y0..=n.rect.y1 {
                fp.insert((x, y, n.layer), n.node);
            }
        }
    }
    let placed: HashMap<NodeId, i32, FxBuildHasher> =
        layout.nodes.iter().map(|n| (n.node, n.layer)).collect();

    // --- per-wire validation (parallel) ---
    let layers = layout.layers as i32;
    let per_wire: Vec<Vec<CheckError>> = exec::par_map(&layout.wires, |i, w| {
        let mut errs = Vec::new();
        if let Err(e) = w.path.validate() {
            errs.push(CheckError::BadPath {
                wire: i,
                reason: format!("{e:?}"),
            });
            return errs; // point iteration unsafe on broken paths
        }
        for c in w.path.corners() {
            if c.z < 0 || c.z >= layers {
                errs.push(CheckError::LayerOutOfRange { wire: i, point: *c });
            }
        }
        for (node, pt) in [(w.u, w.path.start()), (w.v, w.path.end())] {
            match placed.get(&node) {
                None => errs.push(CheckError::MissingNode { node }),
                Some(&layer) => {
                    if pt.z != layer || fp.get(&(pt.x, pt.y, layer)) != Some(&node) {
                        errs.push(CheckError::BadTerminal {
                            wire: i,
                            node,
                            point: pt,
                        });
                    }
                }
            }
        }
        // active-layer points may only touch own endpoints' footprints
        for p in w.path.points() {
            if let Some(&owner) = fp.get(&(p.x, p.y, p.z)) {
                if owner != w.u && owner != w.v {
                    errs.push(CheckError::WireThroughNode {
                        wire: i,
                        node: owner,
                        point: p,
                    });
                }
            }
        }
        errs
    });
    for mut e in per_wire {
        errors.append(&mut e);
        if errors.len() >= cap {
            errors.truncate(cap);
            return finish(layout, errors);
        }
    }

    // --- cross-wire point disjointness (parallel sort) ---
    let mut occupancy: Vec<(Point3, u32)> = exec::par_flat_map(&layout.wires, |i, w, out| {
        out.extend(w.path.points().map(|p| (p, i as u32)))
    });
    exec::par_sort_unstable(&mut occupancy);
    for pair in occupancy.windows(2) {
        if pair[0].0 == pair[1].0 {
            errors.push(CheckError::WireConflict {
                a: pair[0].1 as usize,
                b: pair[1].1 as usize,
                point: pair[0].0,
            });
            if errors.len() >= cap {
                return finish(layout, errors);
            }
        }
    }

    // --- topology verification ---
    if let Some(g) = reference {
        if layout.nodes.len() != g.node_count() {
            errors.push(CheckError::TopologyMismatch {
                detail: format!(
                    "{} nodes placed, graph has {}",
                    layout.nodes.len(),
                    g.node_count()
                ),
            });
        }
        let wires = layout.wire_multiset();
        let edges = g.edge_multiset();
        if wires != edges {
            let detail = wires
                .iter()
                .find(|(k, v)| edges.get(k) != Some(v))
                .map(|(k, v)| {
                    format!(
                        "pair {k:?}: {v} wire(s) vs {} edge(s)",
                        edges.get(k).copied().unwrap_or(0)
                    )
                })
                .or_else(|| {
                    edges
                        .iter()
                        .find(|(k, _)| !wires.contains_key(k))
                        .map(|(k, v)| format!("pair {k:?}: 0 wires vs {v} edge(s)"))
                })
                .unwrap_or_else(|| "multiset mismatch".to_string());
            errors.push(CheckError::TopologyMismatch { detail });
        }
    }

    finish(layout, errors)
}

fn finish(layout: &Layout, errors: Vec<CheckError>) -> CheckReport {
    let wire_points: u64 = exec::par_chunk_reduce(
        &layout.wires,
        0u64,
        |acc, w| acc + w.path.length() + 1,
        |a, b| a + b,
    );
    let node_points: u64 = layout.nodes.iter().map(|n| n.rect.point_count()).sum();
    mlv_core::counter!("checker.checks", 1);
    mlv_core::counter!("checker.errors", errors.len() as u64);
    CheckReport {
        errors,
        wire_points,
        node_points,
    }
}

/// One maximal planar run of a wire, for the PDK pitch sweep.
struct PlanarRun {
    /// 0 = x-run (y fixed), 1 = y-run (x fixed).
    axis: u8,
    layer: i32,
    /// The fixed perpendicular coordinate.
    fixed: i64,
    lo: i64,
    hi: i64,
    wire: usize,
    /// Runs whose planar projection covers the wire's own terminal
    /// position: the 1-unit-spaced stubs along node edges, which the
    /// pitch rule does not govern.
    exempt: bool,
}

/// [`check`] plus the PDK legality rules of a non-uniform stack:
///
/// * **direction** — a run with `Δx ≠ 0` may not ride a [`crate::pdk::Dir::V`]
///   layer, a run with `Δy ≠ 0` may not ride a [`crate::pdk::Dir::H`] layer;
/// * **pitch** — two parallel same-layer runs from different contexts
///   must sit at least `pitch(z)` apart. Terminal stubs (runs covering
///   a wire's own endpoint position) are exempt: terminals are packed
///   1 apart along node edges by the grid model itself.
///
/// Under a stack where [`Pdk::is_uniform`] holds this is exactly
/// [`check`] — the identity of the PDK axis.
pub fn check_with_pdk(layout: &Layout, reference: Option<&Graph>, pdk: &Pdk) -> CheckReport {
    let mut report = check(layout, reference);
    if pdk.is_uniform() {
        return report;
    }
    let _span = mlv_core::span!("checker.pdk");
    let cap = CheckReport::ERROR_CAP;
    if report.errors.len() < cap {
        direction_errors(layout, pdk, &mut report.errors);
    }
    if report.errors.len() < cap {
        pitch_errors(layout, pdk, &mut report.errors);
    }
    report.errors.truncate(cap);
    mlv_core::counter!("checker.pdk_errors", report.errors.len() as u64);
    report
}

/// Direction rule: every planar run must ride a layer whose preferred
/// direction allows its axis.
fn direction_errors(layout: &Layout, pdk: &Pdk, errors: &mut Vec<CheckError>) {
    let per_wire: Vec<Vec<CheckError>> = exec::par_map(&layout.wires, |i, w| {
        let mut errs = Vec::new();
        for pair in w.path.corners().windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if a.z != b.z || a.z < 0 {
                continue; // vias are direction-free; negative layers
                          // are already LayerOutOfRange
            }
            let dir = pdk.layer_at(a.z as usize).dir;
            if (a.x != b.x && !dir.allows_x()) || (a.y != b.y && !dir.allows_y()) {
                errs.push(CheckError::DirectionViolation {
                    wire: i,
                    layer: a.z,
                    point: a,
                });
            }
        }
        errs
    });
    for mut e in per_wire {
        errors.append(&mut e);
        if errors.len() >= CheckReport::ERROR_CAP {
            return;
        }
    }
}

/// Pitch rule: parallel same-layer runs (terminal stubs exempt) must be
/// at least the layer's pitch apart, measured center to center.
fn pitch_errors(layout: &Layout, pdk: &Pdk, errors: &mut Vec<CheckError>) {
    let mut runs: Vec<PlanarRun> = exec::par_flat_map(&layout.wires, |i, w, out| {
        let corners = w.path.corners();
        let (start, end) = (w.path.start(), w.path.end());
        for pair in corners.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if a.z != b.z || a.z < 0 || (a.x == b.x && a.y == b.y) {
                continue;
            }
            if pdk.layer_at(a.z as usize).pitch <= 1 {
                continue; // a unit-pitch layer cannot be violated
            }
            let (axis, fixed, lo, hi) = if a.y == b.y {
                (0u8, a.y, a.x.min(b.x), a.x.max(b.x))
            } else {
                (1u8, a.x, a.y.min(b.y), a.y.max(b.y))
            };
            let covers = |p: Point3| {
                let (pf, pl) = if axis == 0 { (p.y, p.x) } else { (p.x, p.y) };
                pf == fixed && (lo..=hi).contains(&pl)
            };
            out.push(PlanarRun {
                axis,
                layer: a.z,
                fixed,
                lo,
                hi,
                wire: i,
                exempt: covers(start) || covers(end),
            });
        }
    });
    runs.retain(|r| !r.exempt);
    runs.sort_unstable_by_key(|r| (r.layer, r.axis, r.fixed, r.lo));
    for i in 0..runs.len() {
        let a = &runs[i];
        let pitch = pdk.layer_at(a.layer as usize).pitch as i64;
        for b in runs[(i + 1)..].iter() {
            if b.layer != a.layer || b.axis != a.axis || b.fixed - a.fixed >= pitch {
                break;
            }
            let gap = b.fixed - a.fixed;
            // gap 0 with overlap is a WireConflict (or a legal via-split
            // run of one wire); the pitch rule governs 0 < gap < pitch
            if gap > 0 && b.lo <= a.hi && a.lo <= b.hi {
                errors.push(CheckError::PitchViolation {
                    a: a.wire,
                    b: b.wire,
                    layer: a.layer,
                    gap,
                });
                if errors.len() >= CheckReport::ERROR_CAP {
                    return;
                }
            }
        }
    }
}

/// Panic with a readable message if the layout is illegal — the standard
/// assertion used across the test suites.
pub fn assert_legal(layout: &Layout, reference: Option<&Graph>) {
    let report = check(layout, reference);
    assert!(
        report.is_legal(),
        "layout '{}' illegal; first errors: {:#?}",
        layout.name,
        &report.errors[..report.errors.len().min(5)]
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;
    use crate::path::WirePath;
    use mlv_topology::GraphBuilder;

    fn two_nodes() -> Layout {
        let mut l = Layout::new("pair", 2);
        l.place_node(0, Rect::new(0, 0, 1, 1));
        l.place_node(1, Rect::new(5, 0, 6, 1));
        l
    }

    fn p(x: i64, y: i64, z: i32) -> Point3 {
        Point3::new(x, y, z)
    }

    #[test]
    fn legal_simple_wire() {
        let mut l = two_nodes();
        l.add_wire(0, 1, WirePath::new(vec![p(1, 0, 0), p(5, 0, 0)]));
        let r = check(&l, None);
        assert!(r.is_legal(), "{:?}", r.errors);
        assert_eq!(r.wire_points, 5);
        assert_eq!(r.node_points, 8);
    }

    #[test]
    fn detects_layer_overflow() {
        let mut l = two_nodes();
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(1, 0, 0), p(1, 0, 2), p(5, 0, 2), p(5, 0, 0)]),
        );
        let r = check(&l, None);
        assert!(r
            .errors
            .iter()
            .any(|e| matches!(e, CheckError::LayerOutOfRange { .. })));
    }

    #[test]
    fn detects_node_overlap() {
        let mut l = two_nodes();
        l.place_node(2, Rect::new(1, 1, 2, 2));
        let r = check(&l, None);
        assert!(r
            .errors
            .iter()
            .any(|e| matches!(e, CheckError::NodeOverlap { .. })));
    }

    #[test]
    fn detects_bad_terminal() {
        let mut l = two_nodes();
        // starts outside node 0's footprint
        l.add_wire(0, 1, WirePath::new(vec![p(2, 0, 0), p(5, 0, 0)]));
        let r = check(&l, None);
        assert!(r
            .errors
            .iter()
            .any(|e| matches!(e, CheckError::BadTerminal { node: 0, .. })));
    }

    #[test]
    fn detects_terminal_off_active_layer() {
        let mut l = two_nodes();
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(1, 0, 1), p(5, 0, 1), p(5, 0, 0)]),
        );
        let r = check(&l, None);
        assert!(r
            .errors
            .iter()
            .any(|e| matches!(e, CheckError::BadTerminal { node: 0, .. })));
    }

    #[test]
    fn detects_wire_conflict() {
        let mut l = two_nodes();
        l.add_wire(0, 1, WirePath::new(vec![p(1, 0, 0), p(5, 0, 0)]));
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(1, 1, 0), p(3, 1, 0), p(3, 0, 0), p(5, 0, 0)]),
        );
        let r = check(&l, None);
        assert!(r
            .errors
            .iter()
            .any(|e| matches!(e, CheckError::WireConflict { .. })));
    }

    #[test]
    fn crossing_on_different_layers_is_legal() {
        let mut l = Layout::new("cross", 2);
        l.place_node(0, Rect::new(0, 5, 0, 5));
        l.place_node(1, Rect::new(10, 5, 10, 5));
        l.place_node(2, Rect::new(5, 0, 5, 0));
        l.place_node(3, Rect::new(5, 10, 5, 10));
        // horizontal wire on layer 0
        l.add_wire(0, 1, WirePath::new(vec![p(0, 5, 0), p(10, 5, 0)]));
        // vertical wire hops to layer 1 to cross
        l.add_wire(
            2,
            3,
            WirePath::new(vec![p(5, 0, 0), p(5, 0, 1), p(5, 10, 1), p(5, 10, 0)]),
        );
        let r = check(&l, None);
        assert!(r.is_legal(), "{:?}", r.errors);
    }

    #[test]
    fn detects_wire_through_foreign_node() {
        let mut l = two_nodes();
        l.place_node(2, Rect::new(3, 0, 3, 3));
        l.add_wire(0, 1, WirePath::new(vec![p(1, 0, 0), p(5, 0, 0)]));
        let r = check(&l, None);
        assert!(r
            .errors
            .iter()
            .any(|e| matches!(e, CheckError::WireThroughNode { node: 2, .. })));
    }

    #[test]
    fn wire_over_foreign_node_on_upper_layer_is_legal() {
        let mut l = two_nodes();
        l.place_node(2, Rect::new(3, 0, 3, 3));
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(1, 0, 0), p(1, 0, 1), p(5, 0, 1), p(5, 0, 0)]),
        );
        let r = check(&l, None);
        assert!(r.is_legal(), "{:?}", r.errors);
    }

    #[test]
    fn detects_missing_node() {
        let mut l = two_nodes();
        l.add_wire(0, 9, WirePath::new(vec![p(1, 0, 0), p(5, 0, 0)]));
        let r = check(&l, None);
        assert!(r
            .errors
            .iter()
            .any(|e| matches!(e, CheckError::MissingNode { node: 9 })));
    }

    #[test]
    fn topology_verification() {
        let mut b = GraphBuilder::new("edge", 2);
        b.add_edge(0, 1);
        let g = b.build();
        let mut l = two_nodes();
        l.add_wire(0, 1, WirePath::new(vec![p(1, 0, 0), p(5, 0, 0)]));
        assert!(check(&l, Some(&g)).is_legal());
        // extra wire -> mismatch
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(0, 1, 0), p(0, 3, 0), p(6, 3, 0), p(6, 1, 0)]),
        );
        let r = check(&l, Some(&g));
        assert!(r
            .errors
            .iter()
            .any(|e| matches!(e, CheckError::TopologyMismatch { .. })));
    }

    #[test]
    fn kinds_cover_every_variant() {
        let pt = p(0, 0, 0);
        let samples = [
            CheckError::LayerOutOfRange { wire: 0, point: pt },
            CheckError::BadPath {
                wire: 0,
                reason: String::new(),
            },
            CheckError::NodeOverlap { a: 0, b: 1 },
            CheckError::BadTerminal {
                wire: 0,
                node: 0,
                point: pt,
            },
            CheckError::WireConflict {
                a: 0,
                b: 1,
                point: pt,
            },
            CheckError::WireThroughNode {
                wire: 0,
                node: 0,
                point: pt,
            },
            CheckError::MissingNode { node: 0 },
            CheckError::TopologyMismatch {
                detail: String::new(),
            },
            CheckError::DirectionViolation {
                wire: 0,
                layer: 0,
                point: pt,
            },
            CheckError::PitchViolation {
                a: 0,
                b: 1,
                layer: 0,
                gap: 1,
            },
        ];
        // one sample per variant, each kind distinct, KINDS in sync
        assert_eq!(samples.len(), CheckError::KINDS.len());
        let kinds: Vec<&str> = samples.iter().map(CheckError::kind).collect();
        assert_eq!(kinds, CheckError::KINDS);
        let distinct: std::collections::HashSet<_> = kinds.iter().collect();
        assert_eq!(distinct.len(), CheckError::KINDS.len());
    }

    #[test]
    fn pdk_check_is_identity_under_uniform() {
        use crate::pdk::Pdk;
        let mut l = two_nodes();
        l.add_wire(0, 1, WirePath::new(vec![p(1, 0, 0), p(5, 0, 0)]));
        let plain = check(&l, None);
        let pdk = check_with_pdk(&l, None, &Pdk::uniform(2));
        assert_eq!(plain.errors, pdk.errors);
        assert_eq!(plain.wire_points, pdk.wire_points);
        assert!(pdk.is_legal());
    }

    #[test]
    fn detects_direction_violation() {
        use crate::pdk::Pdk;
        // hv6 layer 1 (M2) is vertical; an x-run on it is illegal
        let mut l = two_nodes();
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(1, 0, 0), p(1, 0, 1), p(5, 0, 1), p(5, 0, 0)]),
        );
        assert!(check(&l, None).is_legal());
        let r = check_with_pdk(&l, None, &Pdk::hv6());
        assert!(r.errors.iter().any(|e| matches!(
            e,
            CheckError::DirectionViolation {
                wire: 0,
                layer: 1,
                ..
            }
        )));
        // the same x-run on layer 0 (M1, horizontal) is fine
        let mut l = two_nodes();
        l.add_wire(0, 1, WirePath::new(vec![p(1, 0, 0), p(5, 0, 0)]));
        assert!(check_with_pdk(&l, None, &Pdk::hv6()).is_legal());
    }

    #[test]
    fn detects_pitch_violation_and_exempts_terminal_stubs() {
        use crate::pdk::Pdk;
        // two parallel interior x-runs 1 apart on a pitch-2 layer
        let mut l = Layout::new("squeeze", 2);
        l.place_node(0, Rect::new(0, 0, 0, 0));
        l.place_node(1, Rect::new(9, 0, 9, 0));
        l.place_node(2, Rect::new(0, 4, 0, 4));
        l.place_node(3, Rect::new(9, 4, 9, 4));
        // both wires jog into interior tracks y=2 and y=3: the long
        // x-runs cover neither wire's own terminals, so no exemption
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(0, 0, 0), p(0, 2, 0), p(9, 2, 0), p(9, 0, 0)]),
        );
        l.add_wire(
            2,
            3,
            WirePath::new(vec![p(0, 4, 0), p(0, 3, 0), p(9, 3, 0), p(9, 4, 0)]),
        );
        assert!(check(&l, None).is_legal());
        let r = check_with_pdk(&l, None, &Pdk::hv6());
        assert!(
            r.errors.iter().any(|e| matches!(
                e,
                CheckError::PitchViolation {
                    layer: 0,
                    gap: 1,
                    ..
                }
            )),
            "{:?}",
            r.errors
        );
        // the vertical stubs (x=0 and x=9 pairs) cover their wires'
        // terminals and are 9 apart anyway; shrink the grid so stubs
        // sit 1 apart: still legal, because stubs are exempt
        let mut l = Layout::new("stubs", 2);
        l.place_node(0, Rect::new(0, 0, 0, 0));
        l.place_node(1, Rect::new(1, 0, 1, 0));
        l.place_node(2, Rect::new(0, 5, 0, 5));
        l.place_node(3, Rect::new(1, 5, 1, 5));
        l.add_wire(
            0,
            2,
            WirePath::new(vec![p(0, 0, 0), p(0, 0, 1), p(0, 5, 1), p(0, 5, 0)]),
        );
        l.add_wire(
            1,
            3,
            WirePath::new(vec![p(1, 0, 0), p(1, 0, 1), p(1, 5, 1), p(1, 5, 0)]),
        );
        assert!(check(&l, None).is_legal());
        assert!(
            check_with_pdk(&l, None, &Pdk::hv6()).is_legal(),
            "terminal-covering runs must be pitch-exempt"
        );
    }

    #[test]
    fn topology_detects_missing_wire() {
        let mut b = GraphBuilder::new("edge", 2);
        b.add_edge(0, 1);
        let g = b.build();
        let l = two_nodes();
        let r = check(&l, Some(&g));
        assert!(r
            .errors
            .iter()
            .any(|e| matches!(e, CheckError::TopologyMismatch { .. })));
    }
}
