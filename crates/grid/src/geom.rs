//! Grid geometry: 3-D grid points and upright rectangles.

/// A point of the 3-D layout grid. `x` and `y` index the planar grid,
/// `z` the wiring layer (`z = 0` is the active layer carrying the
/// network nodes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point3 {
    /// Column (grows rightward).
    pub x: i64,
    /// Row (grows upward).
    pub y: i64,
    /// Layer (0-based; `z = 0` is the active layer).
    pub z: i32,
}

impl Point3 {
    /// Construct a point.
    pub const fn new(x: i64, y: i64, z: i32) -> Self {
        Point3 { x, y, z }
    }

    /// Manhattan distance to `other` (including the layer axis).
    pub fn manhattan(&self, other: &Point3) -> u64 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y) + (self.z.abs_diff(other.z) as u64)
    }

    /// `true` if the two points differ in exactly one coordinate
    /// (i.e. an axis-aligned segment joins them).
    pub fn is_axis_aligned_with(&self, other: &Point3) -> bool {
        let dx = (self.x != other.x) as u8;
        let dy = (self.y != other.y) as u8;
        let dz = (self.z != other.z) as u8;
        dx + dy + dz == 1
    }
}

/// An upright (axis-aligned) rectangle of grid points on a single layer:
/// all `(x, y)` with `x0 ≤ x ≤ x1`, `y0 ≤ y ≤ y1`. Inclusive on all
/// sides; a single grid point is the rectangle with `x0 == x1`,
/// `y0 == y1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x0: i64,
    /// Bottom edge (inclusive).
    pub y0: i64,
    /// Right edge (inclusive).
    pub x1: i64,
    /// Top edge (inclusive).
    pub y1: i64,
}

impl Rect {
    /// Construct a rectangle; panics if degenerate (x1 < x0 or y1 < y0).
    pub fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        assert!(x1 >= x0 && y1 >= y0, "degenerate rectangle");
        Rect { x0, y0, x1, y1 }
    }

    /// Number of grid columns spanned.
    pub fn width(&self) -> u64 {
        (self.x1 - self.x0 + 1) as u64
    }

    /// Number of grid rows spanned.
    pub fn height(&self) -> u64 {
        (self.y1 - self.y0 + 1) as u64
    }

    /// Number of grid points contained.
    pub fn point_count(&self) -> u64 {
        self.width() * self.height()
    }

    /// `true` if the planar coordinates of `p` fall inside.
    pub fn contains_xy(&self, x: i64, y: i64) -> bool {
        self.x0 <= x && x <= self.x1 && self.y0 <= y && y <= self.y1
    }

    /// `true` if the rectangles share at least one grid point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// The smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Grow to contain the planar coordinates of a point.
    pub fn expand_to(&mut self, x: i64, y: i64) {
        self.x0 = self.x0.min(x);
        self.y0 = self.y0.min(y);
        self.x1 = self.x1.max(x);
        self.y1 = self.y1.max(y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        let a = Point3::new(0, 0, 0);
        let b = Point3::new(3, -2, 1);
        assert_eq!(a.manhattan(&b), 6);
        assert_eq!(b.manhattan(&a), 6);
        assert_eq!(a.manhattan(&a), 0);
    }

    #[test]
    fn axis_alignment() {
        let a = Point3::new(0, 0, 0);
        assert!(a.is_axis_aligned_with(&Point3::new(5, 0, 0)));
        assert!(a.is_axis_aligned_with(&Point3::new(0, -1, 0)));
        assert!(a.is_axis_aligned_with(&Point3::new(0, 0, 2)));
        assert!(!a.is_axis_aligned_with(&Point3::new(1, 1, 0)));
        assert!(!a.is_axis_aligned_with(&a));
    }

    #[test]
    fn rect_measures() {
        let r = Rect::new(2, 3, 4, 3);
        assert_eq!(r.width(), 3);
        assert_eq!(r.height(), 1);
        assert_eq!(r.point_count(), 3);
    }

    #[test]
    fn rect_contains_and_intersects() {
        let r = Rect::new(0, 0, 2, 2);
        assert!(r.contains_xy(0, 0));
        assert!(r.contains_xy(2, 2));
        assert!(!r.contains_xy(3, 0));
        assert!(r.intersects(&Rect::new(2, 2, 5, 5)));
        assert!(!r.intersects(&Rect::new(3, 0, 5, 5)));
    }

    #[test]
    fn rect_union_and_expand() {
        let a = Rect::new(0, 0, 1, 1);
        let b = Rect::new(3, -1, 4, 0);
        let u = a.union(&b);
        assert_eq!(u, Rect::new(0, -1, 4, 1));
        let mut c = a;
        c.expand_to(10, 10);
        assert_eq!(c, Rect::new(0, 0, 10, 10));
    }

    #[test]
    #[should_panic]
    fn degenerate_rect_rejected() {
        let _ = Rect::new(1, 0, 0, 0);
    }
}
