//! Streaming legality checking and metrics over abstract layout
//! sources.
//!
//! The full checker ([`crate::checker::check`]) indexes every footprint
//! grid point in a hash map and sorts every occupied wire point at
//! once — O(cells) memory, hopeless at 2²⁰ nodes. This module walks a
//! [`StreamSource`] instead: any producer that can enumerate node
//! placements and wire corner sequences on demand (the flat
//! [`Layout`], or a tiled IR that expands each tile instance into a
//! ~10-corner buffer as it goes). Peak memory is
//! O(nodes + one occupancy stripe), never O(grid cells):
//!
//! * the per-point footprint hash map is replaced by a per-layer rect
//!   index (sorted by `x0`, prefix-max over `x1` for early exit) whose
//!   later-placement-wins rule reproduces the hash map's
//!   later-insert-wins semantics point for point;
//! * cross-wire occupancy is checked in **x-stripes**: the x-range is
//!   partitioned so each stripe holds a bounded number of points, each
//!   stripe is collected/sorted/scanned independently, and — because
//!   [`Point3`]'s lexicographic order sorts on `x` first — the stripe
//!   concatenation *is* the full checker's globally sorted occupancy
//!   sequence, so conflicts surface in the identical order.
//!
//! The produced [`CheckReport`] (error list, order, truncation at
//! [`CheckReport::ERROR_CAP`], point totals) is field-for-field equal
//! to the full checker's on the same geometry; the conformance
//! harness's tiled-vs-flat differential oracle pins this equivalence
//! across the seeded lattice.

use crate::checker::{CheckError, CheckReport};
use crate::geom::{Point3, Rect};
use crate::hasher::FxBuildHasher;
use crate::layout::{Layout, NodePlacement};
use crate::metrics::LayoutMetrics;
use crate::path::WirePath;
use mlv_core::exec;
use mlv_topology::{Graph, NodeId};
use std::collections::{BTreeMap, HashMap};

/// Points collected per occupancy stripe before the stripe count grows
/// (~4M points ≈ 100 MB of `(Point3, u32)` records).
const STRIPE_POINTS: u64 = 1 << 22;

/// Upper bound on occupancy stripes (each stripe is one pass over the
/// source's wires).
const MAX_STRIPES: i64 = 4096;

/// An abstract layout that can be walked without materializing it.
///
/// Implementors enumerate node placements and wire geometry through
/// callbacks, in the same order a materialized [`Layout`] would store
/// them — the streaming checker's reports are only byte-identical to
/// the full checker's when the iteration order matches. Wire corner
/// slices may be backed by a buffer reused between callback
/// invocations; callers must not retain them.
pub trait StreamSource {
    /// Layout name (diagnostics only).
    fn name(&self) -> &str;
    /// Layer budget `L`.
    fn layers(&self) -> usize;
    /// Number of node placements [`StreamSource::visit_nodes`] yields.
    fn node_count(&self) -> usize;
    /// Number of wires [`StreamSource::visit_wires`] yields.
    fn wire_count(&self) -> usize;
    /// Enumerate every node placement, in layout order.
    fn visit_nodes(&self, f: &mut dyn FnMut(NodePlacement));
    /// Enumerate every wire — endpoints plus the raw corner sequence —
    /// in layout order.
    fn visit_wires(&self, f: &mut dyn FnMut(NodeId, NodeId, &[Point3]));
}

impl StreamSource for Layout {
    fn name(&self) -> &str {
        &self.name
    }

    fn layers(&self) -> usize {
        self.layers
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn wire_count(&self) -> usize {
        self.wires.len()
    }

    fn visit_nodes(&self, f: &mut dyn FnMut(NodePlacement)) {
        for n in &self.nodes {
            f(n.clone());
        }
    }

    fn visit_wires(&self, f: &mut dyn FnMut(NodeId, NodeId, &[Point3])) {
        for w in &self.wires {
            f(w.u, w.v, w.path.corners());
        }
    }
}

/// Per-layer footprint index: rects sorted by `x0` with a running
/// prefix maximum of `x1`, so a point query scans only the rects whose
/// x-span can still reach it. Ties (overlapping rects — themselves a
/// reported violation) resolve to the **latest** placement, matching
/// the full checker's per-point hash-map inserts where later nodes
/// overwrite earlier ones.
struct FpIndex {
    by_layer: HashMap<i32, LayerRects, FxBuildHasher>,
}

struct LayerRects {
    /// `(rect, placement index, node)`, sorted by `(x0, index)`.
    entries: Vec<(Rect, u32, NodeId)>,
    /// `prefix_max_x1[j] = max(entries[..=j].x1)`.
    prefix_max_x1: Vec<i64>,
}

impl FpIndex {
    fn build(placements: &[NodePlacement]) -> FpIndex {
        let mut by_layer: HashMap<i32, LayerRects, FxBuildHasher> = HashMap::default();
        for (i, n) in placements.iter().enumerate() {
            by_layer
                .entry(n.layer)
                .or_insert_with(|| LayerRects {
                    entries: Vec::new(),
                    prefix_max_x1: Vec::new(),
                })
                .entries
                .push((n.rect, i as u32, n.node));
        }
        for lr in by_layer.values_mut() {
            lr.entries.sort_unstable_by_key(|&(r, i, _)| (r.x0, i));
            let mut max_x1 = i64::MIN;
            lr.prefix_max_x1 = lr
                .entries
                .iter()
                .map(|&(r, _, _)| {
                    max_x1 = max_x1.max(r.x1);
                    max_x1
                })
                .collect();
        }
        FpIndex { by_layer }
    }

    /// The node owning grid point `(x, y)` on `layer`, if any —
    /// the latest-placed among all containing footprints.
    fn query(&self, x: i64, y: i64, layer: i32) -> Option<NodeId> {
        let lr = self.by_layer.get(&layer)?;
        let mut j = lr.entries.partition_point(|&(r, _, _)| r.x0 <= x);
        let mut best: Option<(u32, NodeId)> = None;
        while j > 0 {
            j -= 1;
            if lr.prefix_max_x1[j] < x {
                break;
            }
            let (r, idx, node) = lr.entries[j];
            if r.contains_xy(x, y) && best.is_none_or(|(b, _)| idx > b) {
                best = Some((idx, node));
            }
        }
        best.map(|(_, n)| n)
    }
}

/// Per-wire structural validation — the exact error sequence the full
/// checker's parallel per-wire closure produces for wire `i`.
#[allow(clippy::too_many_arguments)]
fn scan_wire(
    i: usize,
    u: NodeId,
    v: NodeId,
    path: &WirePath,
    layers: i32,
    fp: &FpIndex,
    placed: &HashMap<NodeId, i32, FxBuildHasher>,
    errors: &mut Vec<CheckError>,
) {
    if let Err(e) = path.validate() {
        errors.push(CheckError::BadPath {
            wire: i,
            reason: format!("{e:?}"),
        });
        return; // point iteration unsafe on broken paths
    }
    for c in path.corners() {
        if c.z < 0 || c.z >= layers {
            errors.push(CheckError::LayerOutOfRange { wire: i, point: *c });
        }
    }
    for (node, pt) in [(u, path.start()), (v, path.end())] {
        match placed.get(&node) {
            None => errors.push(CheckError::MissingNode { node }),
            Some(&layer) => {
                if pt.z != layer || fp.query(pt.x, pt.y, layer) != Some(node) {
                    errors.push(CheckError::BadTerminal {
                        wire: i,
                        node,
                        point: pt,
                    });
                }
            }
        }
    }
    for p in path.points() {
        if let Some(owner) = fp.query(p.x, p.y, p.z) {
            if owner != u && owner != v {
                errors.push(CheckError::WireThroughNode {
                    wire: i,
                    node: owner,
                    point: p,
                });
            }
        }
    }
}

/// Emit the wire's occupied grid points whose `x` falls in `[lo, hi)`,
/// tagged with the wire index — the same point sequence
/// [`WirePath::points`] enumerates, sub-ranged per segment so the cost
/// is O(corners + emitted points) rather than O(all points).
fn emit_stripe_points(
    corners: &[Point3],
    wire: u32,
    lo: i64,
    hi: i64,
    out: &mut Vec<(Point3, u32)>,
) {
    let Some(&p0) = corners.first() else { return };
    if p0.x >= lo && p0.x < hi {
        out.push((p0, wire));
    }
    for w in corners.windows(2) {
        let (a, b) = (w[0], w[1]);
        let steps = a.manhattan(&b) as i64;
        if steps == 0 {
            continue;
        }
        let dx = (b.x - a.x).signum();
        let dy = (b.y - a.y).signum();
        let dz = (b.z - a.z).signum();
        let (t0, t1) = if dx == 0 {
            if a.x >= lo && a.x < hi {
                (1, steps)
            } else {
                continue;
            }
        } else if dx > 0 {
            ((lo - a.x).max(1), (hi - 1 - a.x).min(steps))
        } else {
            ((a.x - (hi - 1)).max(1), (a.x - lo).min(steps))
        };
        for t in t0..=t1 {
            out.push((
                Point3 {
                    x: a.x + dx * t,
                    y: a.y + dy * t,
                    z: a.z + dz * t as i32,
                },
                wire,
            ));
        }
    }
}

/// Streaming legality check: the full checker's verdict — same errors,
/// same order, same [`CheckReport::ERROR_CAP`] truncation, same point
/// totals — computed without materializing the source.
pub fn check_stream<S: StreamSource + ?Sized>(src: &S, reference: Option<&Graph>) -> CheckReport {
    let _span = mlv_core::span!("checker.stream.check");
    let mut errors: Vec<CheckError> = Vec::new();
    let cap = CheckReport::ERROR_CAP;

    let mut placements: Vec<NodePlacement> = Vec::with_capacity(src.node_count());
    src.visit_nodes(&mut |n| placements.push(n));

    // --- node footprints: pairwise disjoint ---
    let mut rects: Vec<(usize, &NodePlacement)> = placements.iter().enumerate().collect();
    rects.sort_by_key(|(_, n)| (n.layer, n.rect.x0));
    for i in 0..rects.len() {
        for j in (i + 1)..rects.len() {
            if rects[j].1.layer != rects[i].1.layer || rects[j].1.rect.x0 > rects[i].1.rect.x1 {
                break;
            }
            if rects[i].1.rect.intersects(&rects[j].1.rect) {
                errors.push(CheckError::NodeOverlap {
                    a: rects[i].1.node,
                    b: rects[j].1.node,
                });
                if errors.len() >= cap {
                    return finish_stream(src, &placements, errors);
                }
            }
        }
    }
    drop(rects);

    let fp = FpIndex::build(&placements);
    let placed: HashMap<NodeId, i32, FxBuildHasher> =
        placements.iter().map(|n| (n.node, n.layer)).collect();

    // --- per-wire validation (sequential; error order matches the
    // full checker's in-order chunk recombination) ---
    let layers = src.layers() as i32;
    let mut buf: Vec<Point3> = Vec::with_capacity(16);
    let mut widx = 0usize;
    let (mut min_x, mut max_x) = (i64::MAX, i64::MIN);
    let mut total_points: u64 = 0;
    let mut multiset: BTreeMap<(NodeId, NodeId), usize> = BTreeMap::new();
    let mut capped = false;
    src.visit_wires(&mut |u, v, corners| {
        let i = widx;
        widx += 1;
        if capped {
            return;
        }
        for c in corners {
            min_x = min_x.min(c.x);
            max_x = max_x.max(c.x);
        }
        if reference.is_some() {
            let key = if u <= v { (u, v) } else { (v, u) };
            *multiset.entry(key).or_insert(0) += 1;
        }
        let mut b = std::mem::take(&mut buf);
        b.clear();
        b.extend_from_slice(corners);
        let path = WirePath::new(b);
        total_points += path.length() + 1;
        scan_wire(i, u, v, &path, layers, &fp, &placed, &mut errors);
        buf = path.into_corners();
        if errors.len() >= cap {
            errors.truncate(cap);
            capped = true;
        }
    });
    if capped {
        return finish_stream(src, &placements, errors);
    }

    // --- cross-wire point disjointness (x-striped) ---
    if widx > 0 && total_points > 0 {
        let stripes = (total_points.div_ceil(STRIPE_POINTS) as i64).min(MAX_STRIPES);
        let span = max_x - min_x + 1;
        let width = ((span + stripes - 1) / stripes).max(1);
        let mut occ: Vec<(Point3, u32)> = Vec::new();
        let mut stripe_lo = min_x;
        while stripe_lo <= max_x {
            let stripe_hi = stripe_lo.saturating_add(width).min(max_x + 1);
            occ.clear();
            let mut wi = 0u32;
            src.visit_wires(&mut |_, _, corners| {
                emit_stripe_points(corners, wi, stripe_lo, stripe_hi, &mut occ);
                wi += 1;
            });
            exec::par_sort_unstable(&mut occ);
            for pair in occ.windows(2) {
                if pair[0].0 == pair[1].0 {
                    errors.push(CheckError::WireConflict {
                        a: pair[0].1 as usize,
                        b: pair[1].1 as usize,
                        point: pair[0].0,
                    });
                    if errors.len() >= cap {
                        return finish_stream(src, &placements, errors);
                    }
                }
            }
            stripe_lo = stripe_hi;
        }
    }

    // --- topology verification ---
    if let Some(g) = reference {
        if placements.len() != g.node_count() {
            errors.push(CheckError::TopologyMismatch {
                detail: format!(
                    "{} nodes placed, graph has {}",
                    placements.len(),
                    g.node_count()
                ),
            });
        }
        let edges = g.edge_multiset();
        if multiset != edges {
            let detail = multiset
                .iter()
                .find(|(k, v)| edges.get(k) != Some(v))
                .map(|(k, v)| {
                    format!(
                        "pair {k:?}: {v} wire(s) vs {} edge(s)",
                        edges.get(k).copied().unwrap_or(0)
                    )
                })
                .or_else(|| {
                    edges
                        .iter()
                        .find(|(k, _)| !multiset.contains_key(k))
                        .map(|(k, v)| format!("pair {k:?}: 0 wires vs {v} edge(s)"))
                })
                .unwrap_or_else(|| "multiset mismatch".to_string());
            errors.push(CheckError::TopologyMismatch { detail });
        }
    }

    finish_stream(src, &placements, errors)
}

fn finish_stream<S: StreamSource + ?Sized>(
    src: &S,
    placements: &[NodePlacement],
    errors: Vec<CheckError>,
) -> CheckReport {
    // raw corner windows: zero-length segments contribute 0, so the sum
    // equals the deduplicated WirePath length the full checker totals
    let mut wire_points: u64 = 0;
    src.visit_wires(&mut |_, _, corners| {
        if corners.is_empty() {
            return;
        }
        let len: u64 = corners.windows(2).map(|w| w[0].manhattan(&w[1])).sum();
        wire_points += len + 1;
    });
    let node_points: u64 = placements.iter().map(|n| n.rect.point_count()).sum();
    mlv_core::counter!("checker.stream.checks", 1);
    mlv_core::counter!("checker.stream.errors", errors.len() as u64);
    CheckReport {
        errors,
        wire_points,
        node_points,
    }
}

/// Streaming metrics: [`LayoutMetrics::of`] computed from one walk of
/// the source's nodes and wires, never holding more than one wire's
/// corners.
pub fn metrics_stream<S: StreamSource + ?Sized>(src: &S) -> LayoutMetrics {
    let mut bb: Option<Rect> = None;
    let mut max_used_layer = 0i32;
    src.visit_nodes(&mut |n| {
        bb = Some(match bb {
            Some(r) => r.union(&n.rect),
            None => n.rect,
        });
    });
    let (mut max_wire_planar, mut max_wire_full) = (0u64, 0u64);
    let (mut total_wire, mut via_count) = (0u64, 0u64);
    src.visit_wires(&mut |_, _, corners| {
        let (mut planar, mut vias) = (0u64, 0u64);
        for c in corners {
            match &mut bb {
                Some(r) => r.expand_to(c.x, c.y),
                None => bb = Some(Rect::new(c.x, c.y, c.x, c.y)),
            }
            max_used_layer = max_used_layer.max(c.z);
        }
        for w in corners.windows(2) {
            planar += w[0].x.abs_diff(w[1].x) + w[0].y.abs_diff(w[1].y);
            vias += w[0].z.abs_diff(w[1].z) as u64;
        }
        let full = planar + vias;
        max_wire_planar = max_wire_planar.max(planar);
        max_wire_full = max_wire_full.max(full);
        total_wire += full;
        via_count += vias;
    });
    let (width, height) = match bb {
        Some(bb) => (bb.width(), bb.height()),
        None => (0, 0),
    };
    let area = width * height;
    LayoutMetrics {
        width,
        height,
        area,
        volume: src.layers() as u64 * area,
        layers: src.layers(),
        max_used_layer,
        max_wire_planar,
        max_wire_full,
        total_wire,
        wire_count: src.wire_count(),
        via_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker;
    use crate::path::WirePath;
    use mlv_topology::GraphBuilder;

    fn p(x: i64, y: i64, z: i32) -> Point3 {
        Point3::new(x, y, z)
    }

    fn two_nodes() -> Layout {
        let mut l = Layout::new("pair", 2);
        l.place_node(0, Rect::new(0, 0, 1, 1));
        l.place_node(1, Rect::new(5, 0, 6, 1));
        l
    }

    fn assert_reports_equal(l: &Layout, reference: Option<&Graph>) {
        let full = checker::check(l, reference);
        let stream = check_stream(l, reference);
        assert_eq!(stream.errors, full.errors);
        assert_eq!(stream.wire_points, full.wire_points);
        assert_eq!(stream.node_points, full.node_points);
    }

    #[test]
    fn legal_layout_agrees_with_full_checker() {
        let mut l = two_nodes();
        l.add_wire(0, 1, WirePath::new(vec![p(1, 0, 0), p(5, 0, 0)]));
        assert_reports_equal(&l, None);
        assert!(check_stream(&l, None).is_legal());
    }

    #[test]
    fn every_defect_class_agrees_with_full_checker() {
        // one layout per defect class, streaming vs full report equality
        let mut overlap = two_nodes();
        overlap.place_node(2, Rect::new(1, 1, 2, 2));
        assert_reports_equal(&overlap, None);

        let mut escape = two_nodes();
        escape.add_wire(
            0,
            1,
            WirePath::new(vec![p(1, 0, 0), p(1, 0, 5), p(5, 0, 5), p(5, 0, 0)]),
        );
        assert_reports_equal(&escape, None);

        let mut bad_term = two_nodes();
        bad_term.add_wire(0, 1, WirePath::new(vec![p(2, 0, 0), p(5, 0, 0)]));
        assert_reports_equal(&bad_term, None);

        let mut conflict = two_nodes();
        conflict.add_wire(0, 1, WirePath::new(vec![p(1, 0, 0), p(5, 0, 0)]));
        conflict.add_wire(
            0,
            1,
            WirePath::new(vec![p(1, 1, 0), p(3, 1, 0), p(3, 0, 0), p(5, 0, 0)]),
        );
        assert_reports_equal(&conflict, None);

        let mut through = two_nodes();
        through.place_node(2, Rect::new(3, 0, 3, 3));
        through.add_wire(0, 1, WirePath::new(vec![p(1, 0, 0), p(5, 0, 0)]));
        assert_reports_equal(&through, None);

        let mut missing = two_nodes();
        missing.add_wire(0, 9, WirePath::new(vec![p(1, 0, 0), p(5, 0, 0)]));
        assert_reports_equal(&missing, None);

        let mut diagonal = two_nodes();
        diagonal.add_wire(0, 1, WirePath::new(vec![p(1, 0, 0), p(5, 1, 0)]));
        assert_reports_equal(&diagonal, None);
    }

    #[test]
    fn topology_mismatch_agrees_with_full_checker() {
        let mut b = GraphBuilder::new("edge", 2);
        b.add_edge(0, 1);
        let g = b.build();
        let mut l = two_nodes();
        l.add_wire(0, 1, WirePath::new(vec![p(1, 0, 0), p(5, 0, 0)]));
        assert_reports_equal(&l, Some(&g));
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(0, 1, 0), p(0, 3, 0), p(6, 3, 0), p(6, 1, 0)]),
        );
        assert_reports_equal(&l, Some(&g));
    }

    #[test]
    fn error_cap_truncation_matches() {
        // dozens of pairwise-overlapping nodes overflow the cap in the
        // overlap phase; streaming must truncate at the same boundary
        let mut l = Layout::new("cap", 2);
        for i in 0..20 {
            l.place_node(i, Rect::new(0, 0, 3, 3));
        }
        let full = checker::check(&l, None);
        let stream = check_stream(&l, None);
        assert_eq!(full.errors.len(), CheckReport::ERROR_CAP);
        assert_eq!(stream.errors, full.errors);
    }

    #[test]
    fn stripe_emission_covers_all_points() {
        // a path with x-runs in both directions plus y/z runs; stripes
        // of width 1 must reproduce the full point enumeration
        let path = WirePath::new(vec![
            p(0, 0, 0),
            p(4, 0, 0),
            p(4, 3, 0),
            p(4, 3, 1),
            p(1, 3, 1),
        ]);
        let all: Vec<(Point3, u32)> = path.points().map(|q| (q, 7)).collect();
        let mut striped = Vec::new();
        for lo in 0..=4 {
            emit_stripe_points(path.corners(), 7, lo, lo + 1, &mut striped);
        }
        let mut all_sorted = all.clone();
        all_sorted.sort_unstable();
        striped.sort_unstable();
        assert_eq!(striped, all_sorted);
        assert_eq!(striped.len(), path.length() as usize + 1);
    }

    #[test]
    fn fp_index_later_placement_wins() {
        let placements = vec![
            NodePlacement {
                node: 3,
                rect: Rect::new(0, 0, 4, 4),
                layer: 0,
            },
            NodePlacement {
                node: 9,
                rect: Rect::new(2, 2, 6, 6),
                layer: 0,
            },
        ];
        let fp = FpIndex::build(&placements);
        assert_eq!(fp.query(1, 1, 0), Some(3));
        assert_eq!(fp.query(3, 3, 0), Some(9)); // overlap: later wins
        assert_eq!(fp.query(5, 5, 0), Some(9));
        assert_eq!(fp.query(3, 3, 1), None);
        assert_eq!(fp.query(7, 3, 0), None);
    }

    #[test]
    fn metrics_stream_matches_full_metrics() {
        let mut l = Layout::new("m", 4);
        l.place_node(0, Rect::new(0, 0, 1, 1));
        l.place_node(1, Rect::new(8, 0, 9, 1));
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(1, 1, 0), p(1, 1, 1), p(8, 1, 1), p(8, 1, 0)]),
        );
        assert_eq!(metrics_stream(&l), LayoutMetrics::of(&l));
        let empty = Layout::new("e", 2);
        assert_eq!(metrics_stream(&empty), LayoutMetrics::of(&empty));
    }
}
