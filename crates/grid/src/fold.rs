//! The paper's two baseline ways of exploiting `L > 2` layers *without*
//! redesigning the layout (§2.2), modelled analytically:
//!
//! 1. **Folded Thompson layout** — take a 2-layer layout and accordion-
//!    fold it into `t = L/2` stacked slabs. Area drops by ≈ `t`, but the
//!    volume is unaffected and wires keep (essentially) their lengths.
//!    The paper compares against this baseline analytically, and so do
//!    we: a *concrete* grid embedding of a fold needs per-crease jog
//!    regions whose routing is a layout problem of its own (wires
//!    crossing a crease at the same planar position but different layers
//!    must wrap through nested z-arcs that cannot share a column), so we
//!    model the crease cost explicitly instead of fabricating an
//!    unchecked embedding. The model charges one service row per crease
//!    plus `≤ L` extra wire length per crease crossing — an upper bound
//!    that is generous to the baseline (it can only make the baseline
//!    look better than it is, which strengthens the paper's conclusion
//!    when the direct multilayer layout still wins).
//!
//! 2. **Multilayer collinear layout** — extend a collinear (single-row,
//!    T-track) layout to L layers by splitting the tracks into `⌊L/2⌋`
//!    groups. The row length is unchanged, so the area falls by at most
//!    `L/2` and the volume and maximum wire length stay put.

use crate::metrics::LayoutMetrics;

/// Analytic estimate of folding a 2-layer layout onto `L` layers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FoldedEstimate {
    /// Number of layers after folding (`L = 2t`).
    pub layers: usize,
    /// Folded bounding-box width.
    pub width: u64,
    /// Folded bounding-box height (shorter side stacked, plus one
    /// service row per crease).
    pub height: u64,
    /// Folded area.
    pub area: u64,
    /// `layers × area` — asymptotically unchanged from the 2-layer
    /// volume.
    pub volume: u64,
    /// Upper bound on the new maximum wire length: the original maximum
    /// plus `L` per crease it can cross — asymptotically unchanged.
    pub max_wire: u64,
}

impl FoldedEstimate {
    /// Fold the given 2-layer layout metrics onto `layers` layers
    /// (`layers` even, ≥ 2). Folds along the y (height) axis.
    pub fn from_two_layer(m: &LayoutMetrics, layers: usize) -> Self {
        assert!(
            layers >= 2 && layers.is_multiple_of(2),
            "fold needs even L >= 2"
        );
        assert_eq!(m.layers, 2, "folding starts from a 2-layer layout");
        let t = (layers / 2) as u64;
        let creases = t.saturating_sub(1);
        let height = m.height.div_ceil(t) + creases;
        let area = m.width * height;
        FoldedEstimate {
            layers,
            width: m.width,
            height,
            area,
            volume: layers as u64 * area,
            max_wire: m.max_wire_full + creases * layers as u64,
        }
    }
}

/// Analytic estimate of the multilayer *collinear* layout baseline: a
/// single row of `n` nodes of width `node_width` each, with `tracks`
/// horizontal tracks split over `⌊L/2⌋` layer groups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollinearMultilayerEstimate {
    /// Number of layers.
    pub layers: usize,
    /// Row length (unchanged by adding layers).
    pub width: u64,
    /// Tracks per layer group, `⌈tracks/⌊L/2⌋⌉`, plus the node row.
    pub height: u64,
    /// Area.
    pub area: u64,
    /// `layers × area` — unchanged from the 2-layer collinear volume.
    pub volume: u64,
    /// Maximum wire length ~ row length — unchanged.
    pub max_wire: u64,
}

impl CollinearMultilayerEstimate {
    /// Estimate for `n` nodes of width `node_width`, `tracks` total
    /// tracks, and `layers` layers.
    pub fn new(n: u64, node_width: u64, tracks: u64, layers: usize) -> Self {
        assert!(layers >= 2);
        let groups = (layers / 2) as u64;
        let width = n * node_width;
        let height = tracks.div_ceil(groups) + node_width;
        let area = width * height;
        CollinearMultilayerEstimate {
            layers,
            width,
            height,
            area,
            volume: layers as u64 * area,
            max_wire: width,
        }
    }
}

/// Analytic estimate for the **multilayer 3-D grid model** (paper
/// §2.2): nodes occupy `L_A` active layers instead of one, arranged as
/// `L_A` stacked copies of the 2-D scheme. With the per-slab wiring
/// budget `L/L_A` layers, each slab holds `N/L_A` nodes whose bundles
/// shrink by `⌊L/(2·L_A)⌋`; inter-slab links ride dedicated via columns
/// whose planar cost is `O(N/L_A)` (one grid column per crossing link
/// column). The paper defers the concrete constructions to future work
/// ("will be reported in the near future"), so — like the folding
/// baseline — this is an accounting model, marked as such everywhere
/// it is reported. Node cuboids follow the paper's `d/h × d/h × h`
/// shape with `h = L_A`.
#[derive(Clone, Debug, PartialEq)]
pub struct ThreeDEstimate {
    /// Total wiring layers `L`.
    pub layers: usize,
    /// Active layers `L_A` (divides the slabs).
    pub active_layers: usize,
    /// Estimated area (planar bounding box).
    pub area: f64,
    /// `L × area`.
    pub volume: f64,
    /// Estimated maximum wire length.
    pub max_wire: f64,
}

impl ThreeDEstimate {
    /// Estimate from a measured 2-D multilayer layout at the same `L`:
    /// splitting the rows over `l_a` active slabs divides both sides of
    /// the wiring by ≈ √L_A beyond what the 2-D scheme achieved, but
    /// each slab only gets `L/L_A` wiring layers back — the net area
    /// factor is `1/L_A × (L_A)` on bundles … worked through, the area
    /// gains ≈ `L_A` while the volume is unchanged and the max wire
    /// shrinks ≈ √L_A (both sides shrink by √L_A).
    pub fn from_two_d(m: &LayoutMetrics, l_a: usize) -> Self {
        assert!(
            l_a >= 1 && m.layers.is_multiple_of(l_a),
            "L_A must divide L"
        );
        let area = m.area as f64 / l_a as f64;
        ThreeDEstimate {
            layers: m.layers,
            active_layers: l_a,
            area,
            volume: m.layers as f64 * area,
            max_wire: m.max_wire_planar as f64 / (l_a as f64).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(width: u64, height: u64, max_wire: u64) -> LayoutMetrics {
        LayoutMetrics {
            width,
            height,
            area: width * height,
            volume: 2 * width * height,
            layers: 2,
            max_used_layer: 1,
            max_wire_planar: max_wire,
            max_wire_full: max_wire,
            total_wire: 0,
            wire_count: 0,
            via_count: 0,
        }
    }

    #[test]
    fn folding_reduces_area_by_t_only() {
        let m = metrics(1000, 1000, 1000);
        let f = FoldedEstimate::from_two_layer(&m, 8); // t = 4
                                                       // area falls by ~4 = L/2, NOT by (L/2)^2 = 16
        assert!(f.area >= m.area / 4);
        assert!(f.area <= m.area / 4 + 8 * m.width);
        // volume essentially unchanged
        assert!(f.volume >= m.volume);
        // max wire essentially unchanged (within crease slack)
        assert!(f.max_wire >= m.max_wire_full);
        assert!(f.max_wire <= m.max_wire_full + 3 * 8);
    }

    #[test]
    fn folding_identity_for_l2() {
        let m = metrics(100, 60, 150);
        let f = FoldedEstimate::from_two_layer(&m, 2);
        assert_eq!(f.area, m.area);
        assert_eq!(f.volume, m.volume);
        assert_eq!(f.max_wire, m.max_wire_full);
    }

    #[test]
    #[should_panic]
    fn folding_rejects_odd_l() {
        let m = metrics(10, 10, 10);
        let _ = FoldedEstimate::from_two_layer(&m, 3);
    }

    #[test]
    fn three_d_estimate_scales() {
        let m = LayoutMetrics {
            width: 100,
            height: 100,
            area: 10_000,
            volume: 80_000,
            layers: 8,
            max_used_layer: 7,
            max_wire_planar: 400,
            max_wire_full: 420,
            total_wire: 0,
            wire_count: 0,
            via_count: 0,
        };
        let e = ThreeDEstimate::from_two_d(&m, 4);
        assert!((e.area - 2500.0).abs() < 1e-9);
        assert!((e.volume - 20_000.0).abs() < 1e-9);
        assert!((e.max_wire - 200.0).abs() < 1e-9);
        // L_A = 1 is the identity
        let id = ThreeDEstimate::from_two_d(&m, 1);
        assert!((id.area - m.area as f64).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn three_d_requires_divisor() {
        let m = metrics(10, 10, 10);
        let mut m8 = m;
        m8.layers = 8;
        let _ = ThreeDEstimate::from_two_d(&m8, 3);
    }

    #[test]
    fn collinear_multilayer_volume_unchanged() {
        let two = CollinearMultilayerEstimate::new(64, 4, 42, 2);
        let eight = CollinearMultilayerEstimate::new(64, 4, 42, 8);
        // width identical, height ~ T/4
        assert_eq!(two.width, eight.width);
        assert!(eight.height < two.height);
        // volume within node-row slack of the 2-layer volume
        assert!(eight.volume + 8 * eight.width >= two.volume);
        // max wire unchanged
        assert_eq!(two.max_wire, eight.max_wire);
    }
}
