//! Technology / PDK model: per-layer preferred directions, track
//! pitches, and via costs — the vocabulary for realizing layouts onto
//! realistic metal stacks instead of the paper's identical unit grid.
//!
//! A [`Pdk`] is an ordered list of [`PdkLayer`]s; layer `z` of a layout
//! maps onto `layers[z % len]` ([`Pdk::layer_at`]), so one stack
//! description serves every layer budget. Two stacks are built in:
//!
//! * [`Pdk::uniform`] — every layer direction-unconstrained
//!   ([`Dir::Any`]) with pitch 1 and via cost 1. This is the paper's
//!   grid model, and the **identity** of the whole PDK axis: realizing,
//!   checking, and measuring under the uniform PDK is byte-identical
//!   to the PDK-free pipeline.
//! * [`Pdk::hv6`] — a realistic alternating-HV 6-layer stack with
//!   coarser pitches on the upper layers.
//!
//! Stacks round-trip through a plain-text format ([`write_pdk`] /
//! [`read_pdk`]) using the same name escaping as the layout format
//! (`mlv_grid::io`), so a `--pdk @file` flag can load custom stacks.
//!
//! All lengths are integer [`DbUnits`] — the Layout21 `DbUnits`
//! idiom — so every physical quantity stays exact.

use crate::io::{escape, unescape, ParseError};
use std::fmt::Write as _;

/// Integer database units: the exact physical length unit every pitch,
/// via cost, and physical metric is stated in.
pub type DbUnits = u64;

/// Preferred routing direction of one metal layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Horizontal: carries x-runs only.
    H,
    /// Vertical: carries y-runs only.
    V,
    /// Unconstrained: carries runs of either direction (the uniform
    /// grid model).
    Any,
}

impl Dir {
    /// May a run with `Δx ≠ 0` ride this layer?
    pub fn allows_x(self) -> bool {
        self != Dir::V
    }

    /// May a run with `Δy ≠ 0` ride this layer?
    pub fn allows_y(self) -> bool {
        self != Dir::H
    }

    /// Stable token used by the text format.
    pub fn token(self) -> &'static str {
        match self {
            Dir::H => "H",
            Dir::V => "V",
            Dir::Any => "any",
        }
    }

    /// Inverse of [`Dir::token`].
    pub fn from_token(t: &str) -> Option<Dir> {
        match t {
            "H" => Some(Dir::H),
            "V" => Some(Dir::V),
            "any" => Some(Dir::Any),
            _ => None,
        }
    }
}

/// One metal layer of a stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PdkLayer {
    /// Layer name (unique within a stack).
    pub name: String,
    /// Preferred routing direction.
    pub dir: Dir,
    /// Track pitch: minimum center-to-center spacing of parallel runs
    /// on this layer, in [`DbUnits`] (≥ 1).
    pub pitch: DbUnits,
    /// Cost of one via crossing from this layer to the next one up,
    /// in [`DbUnits`] (contributes to physical wirelength).
    pub via_cost: DbUnits,
}

/// An ordered metal stack. Layer `z` of a layout uses entry
/// `z % layers.len()`, so a stack serves any layer budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pdk {
    /// Stack name (reported in traces, sweeps, and metrics).
    pub name: String,
    /// The layers, bottom-up. Never empty for stacks built by the
    /// constructors or the parser.
    pub layers: Vec<PdkLayer>,
}

impl Pdk {
    /// The trivial uniform stack: `n` direction-unconstrained layers of
    /// pitch 1 and via cost 1 — the paper's grid model. The whole
    /// pipeline is byte-identical under this stack to the PDK-free
    /// path (the identity of the PDK axis).
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Pdk {
        assert!(n >= 1, "a PDK needs at least one layer");
        Pdk {
            name: "uniform".to_string(),
            layers: (0..n)
                .map(|i| PdkLayer {
                    name: format!("M{i}"),
                    dir: Dir::Any,
                    pitch: 1,
                    via_cost: 1,
                })
                .collect(),
        }
    }

    /// A realistic alternating-HV 6-layer stack: horizontal even
    /// layers, vertical odd layers, pitches coarsening upward.
    pub fn hv6() -> Pdk {
        let spec: [(&str, Dir, DbUnits, DbUnits); 6] = [
            ("M1", Dir::H, 2, 2),
            ("M2", Dir::V, 2, 2),
            ("M3", Dir::H, 3, 2),
            ("M4", Dir::V, 3, 2),
            ("M5", Dir::H, 4, 3),
            ("M6", Dir::V, 4, 3),
        ];
        Pdk {
            name: "hv6".to_string(),
            layers: spec
                .iter()
                .map(|&(name, dir, pitch, via_cost)| PdkLayer {
                    name: name.to_string(),
                    dir,
                    pitch,
                    via_cost,
                })
                .collect(),
        }
    }

    /// Look up a built-in stack by name.
    pub fn named(name: &str) -> Option<Pdk> {
        match name {
            "uniform" => Some(Pdk::uniform(1)),
            "hv6" => Some(Pdk::hv6()),
            _ => None,
        }
    }

    /// The stack entry backing layout layer `z` (cyclic).
    pub fn layer_at(&self, z: usize) -> &PdkLayer {
        &self.layers[z % self.layers.len()]
    }

    /// `true` when this stack is behaviorally the uniform grid: every
    /// layer unconstrained with pitch 1 and via cost 1. Such stacks
    /// take the PDK-free fast paths everywhere (identical cache keys,
    /// reports, and digests).
    pub fn is_uniform(&self) -> bool {
        self.layers
            .iter()
            .all(|l| l.dir == Dir::Any && l.pitch == 1 && l.via_cost == 1)
    }

    /// The same stack with every pitch and via cost multiplied by `k`
    /// (names suffixed `x<k>`). Physical wirelength of any fixed
    /// layout is exactly `k` times larger under the scaled stack —
    /// the linearity law the conformance oracle pins.
    ///
    /// Errors on `k == 0` or arithmetic overflow — adversarial scale
    /// factors must surface as a reportable message, never a panic
    /// (the serve path feeds user-supplied stacks through here).
    pub fn scaled(&self, k: DbUnits) -> Result<Pdk, String> {
        if k == 0 {
            return Err(format!("pdk `{}`: scale factor must be >= 1", self.name));
        }
        let mul = |v: DbUnits| {
            v.checked_mul(k)
                .ok_or_else(|| format!("pdk `{}`: pitch/via overflow scaling by {k}", self.name))
        };
        Ok(Pdk {
            name: format!("{}x{k}", self.name),
            layers: self
                .layers
                .iter()
                .map(|l| {
                    Ok(PdkLayer {
                        name: l.name.clone(),
                        dir: l.dir,
                        pitch: mul(l.pitch)?,
                        via_cost: mul(l.via_cost)?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
        })
    }

    /// Horizontal track-spacing scale for a `layers`-deep layout: the
    /// maximum pitch over the stack entries that may carry y-runs
    /// (vertical tracks sit at distinct x positions, so their x
    /// spacing must cover the widest vertical-capable layer). 1 for
    /// the uniform stack.
    pub fn xscale(&self, layers: usize) -> i64 {
        self.dir_scale(layers, Dir::allows_y)
    }

    /// Vertical track-spacing scale: the maximum pitch over the stack
    /// entries that may carry x-runs. 1 for the uniform stack.
    pub fn yscale(&self, layers: usize) -> i64 {
        self.dir_scale(layers, Dir::allows_x)
    }

    fn dir_scale(&self, layers: usize, carries: fn(Dir) -> bool) -> i64 {
        let visible = layers.max(1).min(self.layers.len());
        (0..visible)
            .map(|z| self.layer_at(z))
            .filter(|l| carries(l.dir))
            .map(|l| i64::try_from(l.pitch).expect("pitch exceeds i64"))
            .max()
            .unwrap_or(1)
            .max(1)
    }
}

/// Serialize a stack to the text format:
///
/// ```text
/// mlvpdk 1
/// pdk <escaped-name>
/// layer <escaped-name> <H|V|any> pitch=<p> via=<c>
/// ```
pub fn write_pdk(pdk: &Pdk) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "mlvpdk 1");
    let _ = writeln!(out, "pdk {}", escape(&pdk.name));
    for l in &pdk.layers {
        let _ = writeln!(
            out,
            "layer {} {} pitch={} via={}",
            escape(&l.name),
            l.dir.token(),
            l.pitch,
            l.via_cost
        );
    }
    out
}

/// Parse a stack from the text format. Rejects — with the offending
/// line number — zero or overflowing pitches and via costs, duplicate
/// layer names, and stacks with no layers.
///
/// Line handling is normalized up front: `\r\n` endings and trailing
/// whitespace are trimmed per line, and blank or `#` comment lines are
/// skipped *everywhere* (including between the magic and `pdk`
/// headers). Reported line numbers are always 1-based positions in the
/// original text — skipped lines still count — so an error in a
/// CRLF-saved or comment-padded file points at the right line.
pub fn read_pdk(text: &str) -> Result<Pdk, ParseError> {
    let err = |line: usize, message: &str| ParseError {
        line,
        message: message.to_string(),
    };
    let last_line = text.lines().count().max(1);
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let (i, magic) = lines.next().ok_or_else(|| err(1, "empty input"))?;
    if magic != "mlvpdk 1" {
        return Err(err(i, "expected header 'mlvpdk 1'"));
    }
    let (i, header) = lines
        .next()
        .ok_or_else(|| err(last_line, "missing pdk line"))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("pdk") {
        return Err(err(i, "expected 'pdk <name>'"));
    }
    let name = unescape(parts.next().ok_or_else(|| err(i, "missing pdk name"))?)
        .map_err(|m| err(i, &m))?;
    let mut layers: Vec<PdkLayer> = Vec::new();
    for (i, line) in lines {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("layer") => {
                let lname = unescape(parts.next().ok_or_else(|| err(i, "missing layer name"))?)
                    .map_err(|m| err(i, &m))?;
                if layers.iter().any(|l| l.name == lname) {
                    return Err(err(i, &format!("duplicate layer name '{lname}'")));
                }
                let dir = parts
                    .next()
                    .and_then(Dir::from_token)
                    .ok_or_else(|| err(i, "expected direction H, V, or any"))?;
                let mut field = |key: &str| -> Result<DbUnits, ParseError> {
                    let tok = parts
                        .next()
                        .and_then(|t| t.strip_prefix(key))
                        .and_then(|t| t.strip_prefix('='))
                        .ok_or_else(|| err(i, &format!("missing {key}=<n>")))?;
                    tok.parse()
                        .map_err(|_| err(i, &format!("bad or overflowing {key} '{tok}'")))
                };
                let pitch = field("pitch")?;
                if pitch == 0 {
                    return Err(err(i, "pitch must be >= 1"));
                }
                if i64::try_from(pitch).is_err() {
                    return Err(err(i, "pitch exceeds the coordinate range (i64)"));
                }
                let via_cost = field("via")?;
                layers.push(PdkLayer {
                    name: lname,
                    dir,
                    pitch,
                    via_cost,
                });
            }
            Some(other) => return Err(err(i, &format!("unknown record '{other}'"))),
            None => unreachable!("blank lines are filtered"),
        }
    }
    if layers.is_empty() {
        return Err(err(last_line, "a PDK needs at least one layer"));
    }
    Ok(Pdk { name, layers })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_uniform_and_scales_are_one() {
        for n in [1usize, 2, 4, 9] {
            let p = Pdk::uniform(n);
            assert!(p.is_uniform());
            assert_eq!(p.layers.len(), n);
            for layers in [1usize, 2, 8] {
                assert_eq!(p.xscale(layers), 1);
                assert_eq!(p.yscale(layers), 1);
            }
        }
    }

    #[test]
    fn hv6_alternates_and_is_not_uniform() {
        let p = Pdk::hv6();
        assert!(!p.is_uniform());
        assert_eq!(p.layers.len(), 6);
        for (z, l) in p.layers.iter().enumerate() {
            assert_eq!(l.dir, if z % 2 == 0 { Dir::H } else { Dir::V }, "{z}");
            assert!(l.pitch >= 2);
        }
        // cyclic extension past the stack depth
        assert_eq!(p.layer_at(6).name, "M1");
        assert_eq!(p.layer_at(7).name, "M2");
        // scales: max pitch over the direction-capable prefix
        assert_eq!(p.xscale(2), 2); // only M2 (V) visible
        assert_eq!(p.yscale(2), 2); // only M1 (H) visible
        assert_eq!(p.xscale(6), 4); // M6 (V, pitch 4)
        assert_eq!(p.yscale(6), 4); // M5 (H, pitch 4)
    }

    #[test]
    fn named_lookup() {
        assert!(Pdk::named("uniform").unwrap().is_uniform());
        assert_eq!(Pdk::named("hv6").unwrap().name, "hv6");
        assert!(Pdk::named("nope").is_none());
    }

    #[test]
    fn scaled_multiplies_pitches_and_vias() {
        let p = Pdk::hv6().scaled(3).unwrap();
        assert_eq!(p.name, "hv6x3");
        for (a, b) in p.layers.iter().zip(Pdk::hv6().layers.iter()) {
            assert_eq!(a.pitch, 3 * b.pitch);
            assert_eq!(a.via_cost, 3 * b.via_cost);
        }
        // scaling the uniform stack leaves direction freedom intact
        assert!(!Pdk::uniform(4).scaled(2).unwrap().is_uniform());
    }

    #[test]
    fn round_trip() {
        for p in [Pdk::uniform(3), Pdk::hv6(), Pdk::hv6().scaled(5).unwrap()] {
            let text = write_pdk(&p);
            let back = read_pdk(&text).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert_eq!(back, p);
            assert_eq!(write_pdk(&back), text);
        }
    }

    #[test]
    fn adversarial_names_round_trip() {
        let p = Pdk {
            name: "a b\\c\nd".to_string(),
            layers: vec![PdkLayer {
                name: "metal one\t".to_string(),
                dir: Dir::Any,
                pitch: 7,
                via_cost: 0,
            }],
        };
        let back = read_pdk(&write_pdk(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn rejects_zero_pitch() {
        let text = "mlvpdk 1\npdk x\nlayer M1 H pitch=0 via=1\n";
        let e = read_pdk(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("pitch"), "{}", e.message);
    }

    #[test]
    fn rejects_overflowing_pitch() {
        // past u64
        let text = "mlvpdk 1\npdk x\nlayer M1 H pitch=99999999999999999999999 via=1\n";
        let e = read_pdk(text).unwrap_err();
        assert_eq!(e.line, 3);
        // fits u64 but not the i64 coordinate range
        let text = "mlvpdk 1\npdk x\nlayer M1 H pitch=9223372036854775808 via=1\n";
        let e = read_pdk(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("i64"), "{}", e.message);
    }

    #[test]
    fn rejects_empty_layer_list() {
        let e = read_pdk("mlvpdk 1\npdk empty\n").unwrap_err();
        assert!(e.message.contains("at least one layer"), "{}", e.message);
    }

    #[test]
    fn rejects_duplicate_layer_names() {
        let text = "mlvpdk 1\npdk x\nlayer M1 H pitch=2 via=1\nlayer M1 V pitch=2 via=1\n";
        let e = read_pdk(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("duplicate"), "{}", e.message);
    }

    #[test]
    fn crlf_input_parses_with_correct_line_numbers() {
        // a CRLF-saved file with trailing whitespace and comment /
        // blank padding parses identically to the LF original
        let lf = "mlvpdk 1\npdk x\nlayer M1 H pitch=2 via=1\n";
        let crlf = "mlvpdk 1\r\npdk x  \r\n\r\n# comment\r\nlayer M1 H pitch=2 via=1\t\r\n";
        assert_eq!(read_pdk(crlf).unwrap(), read_pdk(lf).unwrap());

        // errors in CRLF input still report the original line number:
        // the bad layer record sits on (1-based) line 5
        let bad = "mlvpdk 1\r\n# padding\r\npdk x\r\n\r\nlayer M1 H pitch=0 via=1\r\n";
        let e = read_pdk(bad).unwrap_err();
        assert_eq!(e.line, 5, "{e}");
        assert!(e.message.contains("pitch"), "{}", e.message);
    }

    #[test]
    fn comments_and_blanks_allowed_between_headers() {
        let text = "# leading comment\n\nmlvpdk 1\n# mid\npdk x\nlayer M1 H pitch=2 via=1\n";
        let p = read_pdk(text).unwrap();
        assert_eq!(p.name, "x");
        // duplicate-layer error on padded input points at the true line
        let dup = "\nmlvpdk 1\npdk x\n\nlayer M1 H pitch=2 via=1\n# c\nlayer M1 V pitch=2 via=1\n";
        let e = read_pdk(dup).unwrap_err();
        assert_eq!(e.line, 7, "{e}");
        // whitespace-only input is still "empty input" at line 1
        let e = read_pdk("  \r\n\t\r\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("empty"), "{}", e.message);
    }

    #[test]
    fn rejects_malformed_records() {
        assert!(read_pdk("").is_err());
        assert!(read_pdk("nope").is_err());
        assert!(read_pdk("mlvpdk 1\nblob\n").is_err());
        assert!(read_pdk("mlvpdk 1\npdk x\nlayer M1 D pitch=1 via=1\n").is_err());
        assert!(read_pdk("mlvpdk 1\npdk x\nlayer M1 H pitch=abc via=1\n").is_err());
        assert!(read_pdk("mlvpdk 1\npdk x\nlayer M1 H via=1\n").is_err());
    }
}
