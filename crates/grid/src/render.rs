//! ASCII rendering of small layouts — used to regenerate the paper's
//! construction figures and for debugging.
//!
//! Two views are provided: a single-layer view (exactly the wires of one
//! layer plus the nodes) and a top view (all layers overlaid). Symbols:
//!
//! * `#` node footprint point,
//! * `-` / `|` x- / y-run of a wire,
//! * `+` wire corner (bend within the plane),
//! * `o` via (the wire changes layer at this planar position),
//! * `X` two or more wires overlap in the projection (legal across
//!   layers in the top view; never appears in a single-layer view of a
//!   legal layout).

use crate::layout::Layout;
use std::collections::HashMap;

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Cell {
    Empty,
    Horizontal,
    Vertical,
    Corner,
    Via,
    Overlap,
    Node,
}

impl Cell {
    fn ch(self) -> char {
        match self {
            Cell::Empty => '.',
            Cell::Horizontal => '-',
            Cell::Vertical => '|',
            Cell::Corner => '+',
            Cell::Via => 'o',
            Cell::Overlap => 'X',
            Cell::Node => '#',
        }
    }

    fn merge(self, other: Cell) -> Cell {
        use Cell::*;
        match (self, other) {
            (Empty, c) | (c, Empty) => c,
            (Node, _) | (_, Node) => Node,
            (a, b) if a == b => a,
            _ => Overlap,
        }
    }
}

fn paint(layout: &Layout, layer: Option<i32>) -> Option<(Vec<Vec<Cell>>, i64, i64)> {
    let bb = layout.bounding_box()?;
    let w = bb.width() as usize;
    let h = bb.height() as usize;
    assert!(
        w * h <= 4_000_000,
        "layout too large to render as ASCII ({w} x {h})"
    );
    let mut cells = vec![vec![Cell::Empty; w]; h];
    let mut put = |x: i64, y: i64, c: Cell| {
        let (cx, cy) = ((x - bb.x0) as usize, (y - bb.y0) as usize);
        cells[cy][cx] = cells[cy][cx].merge(c);
    };
    for wire in &layout.wires {
        let corners = wire.path.corners();
        let on_layer = |z: i32| layer.is_none() || layer == Some(z);
        // paint segment interiors (endpoints handled by the corner pass)
        for seg in corners.windows(2) {
            let (a, b) = (seg[0], seg[1]);
            if a.z == b.z && !on_layer(a.z) {
                continue;
            }
            if a.x != b.x {
                let (lo, hi) = (a.x.min(b.x), a.x.max(b.x));
                for x in lo + 1..hi {
                    put(x, a.y, Cell::Horizontal);
                }
            } else if a.y != b.y {
                let (lo, hi) = (a.y.min(b.y), a.y.max(b.y));
                for y in lo + 1..hi {
                    put(a.x, y, Cell::Vertical);
                }
            }
        }
        // corner/endpoint markers
        for i in 0..corners.len() {
            let c = corners[i];
            let prev = (i > 0).then(|| corners[i - 1]);
            let next = (i + 1 < corners.len()).then(|| corners[i + 1]);
            let via_here = prev.is_some_and(|p| p.z != c.z) || next.is_some_and(|n| n.z != c.z);
            let cell = if via_here {
                Cell::Via
            } else {
                match (prev, next) {
                    (Some(p), Some(n)) if p.x != c.x && n.x != c.x => Cell::Horizontal,
                    (Some(p), Some(n)) if p.y != c.y && n.y != c.y => Cell::Vertical,
                    (Some(_), Some(_)) => Cell::Corner,
                    (Some(p), None) | (None, Some(p)) => {
                        if p.x != c.x {
                            Cell::Horizontal
                        } else {
                            Cell::Vertical
                        }
                    }
                    (None, None) => Cell::Corner,
                }
            };
            if on_layer(c.z) || via_here {
                put(c.x, c.y, cell);
            }
        }
    }
    for n in &layout.nodes {
        for x in n.rect.x0..=n.rect.x1 {
            for y in n.rect.y0..=n.rect.y1 {
                put(x, y, Cell::Node);
            }
        }
    }
    Some((cells, bb.x0, bb.y0))
}

/// Render all layers overlaid (top view). Returns an empty string for an
/// empty layout. Row 0 of the output is the topmost grid row (largest y).
pub fn render_top(layout: &Layout) -> String {
    to_string(paint(layout, None))
}

/// Render the wires of a single layer (plus all node footprints for
/// orientation).
pub fn render_layer(layout: &Layout, layer: i32) -> String {
    to_string(paint(layout, Some(layer)))
}

fn to_string(painted: Option<(Vec<Vec<Cell>>, i64, i64)>) -> String {
    match painted {
        None => String::new(),
        Some((cells, _, _)) => {
            let mut s = String::with_capacity(cells.len() * (cells[0].len() + 1));
            for row in cells.iter().rev() {
                for c in row {
                    s.push(c.ch());
                }
                s.push('\n');
            }
            s
        }
    }
}

/// Render a schematic of labelled blocks arranged on a grid (used for
/// Fig. 1, the recursive-grid block arrangement): each block is drawn as
/// a bordered box with its label centred, with `gap` characters between
/// boxes.
pub fn render_block_grid(labels: &[Vec<String>], cell_w: usize, gap: usize) -> String {
    let rows = labels.len();
    if rows == 0 {
        return String::new();
    }
    let cols = labels[0].len();
    let mut lines: Vec<String> = Vec::new();
    for r in (0..rows).rev() {
        let mut top = String::new();
        let mut mid = String::new();
        let mut bot = String::new();
        for (c, label) in labels[r].iter().enumerate() {
            let inner = cell_w.max(label.len() + 2);
            top.push('+');
            top.push_str(&"-".repeat(inner));
            top.push('+');
            let pad = inner - label.len();
            mid.push('|');
            mid.push_str(&" ".repeat(pad / 2));
            mid.push_str(label);
            mid.push_str(&" ".repeat(pad - pad / 2));
            mid.push('|');
            bot.push('+');
            bot.push_str(&"-".repeat(inner));
            bot.push('+');
            if c + 1 < cols {
                let g = " ".repeat(gap);
                top.push_str(&g);
                mid.push_str(&g);
                bot.push_str(&g);
            }
        }
        lines.push(top);
        lines.push(mid);
        lines.push(bot);
        if r > 0 {
            for _ in 0..gap.min(2) {
                lines.push(String::new());
            }
        }
    }
    lines.join("\n") + "\n"
}

/// Histogram of wire lengths, as `(length, count)` sorted by length —
/// handy for EXPERIMENTS.md tables.
pub fn wire_length_histogram(layout: &Layout) -> Vec<(u64, usize)> {
    let mut h: HashMap<u64, usize> = HashMap::new();
    for w in &layout.wires {
        *h.entry(w.path.length()).or_insert(0) += 1;
    }
    let mut v: Vec<(u64, usize)> = h.into_iter().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point3, Rect};
    use crate::path::WirePath;

    fn p(x: i64, y: i64, z: i32) -> Point3 {
        Point3::new(x, y, z)
    }

    #[test]
    fn renders_simple_wire() {
        let mut l = Layout::new("t", 2);
        l.place_node(0, Rect::new(0, 0, 0, 0));
        l.place_node(1, Rect::new(4, 0, 4, 0));
        l.add_wire(0, 1, WirePath::new(vec![p(0, 0, 0), p(4, 0, 0)]));
        let s = render_top(&l);
        assert_eq!(s, "#---#\n");
    }

    #[test]
    fn renders_bend_and_layers() {
        let mut l = Layout::new("t", 2);
        l.place_node(0, Rect::new(0, 0, 0, 0));
        l.place_node(1, Rect::new(2, 2, 2, 2));
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(0, 0, 0), p(0, 2, 0), p(2, 2, 0)]),
        );
        let s = render_top(&l);
        assert_eq!(s, "+-#\n|..\n#..\n");
        // layer 1 view has no wire
        let s1 = render_layer(&l, 1);
        assert!(s1.contains('#'));
        assert!(!s1.contains('-'));
    }

    #[test]
    fn via_marked() {
        let mut l = Layout::new("t", 2);
        l.place_node(0, Rect::new(0, 0, 0, 0));
        l.place_node(1, Rect::new(3, 0, 3, 0));
        l.add_wire(
            0,
            1,
            WirePath::new(vec![
                p(0, 0, 0),
                p(1, 0, 0),
                p(1, 0, 1),
                p(3, 0, 1),
                p(3, 0, 0),
            ]),
        );
        let s = render_top(&l);
        assert!(s.contains('o'), "{s}");
    }

    #[test]
    fn empty_layout_renders_empty() {
        assert_eq!(render_top(&Layout::new("e", 2)), "");
    }

    #[test]
    fn block_grid_draws_boxes() {
        let labels = vec![
            vec!["B00".to_string(), "B01".to_string()],
            vec!["B10".to_string(), "B11".to_string()],
        ];
        let s = render_block_grid(&labels, 5, 2);
        assert!(s.contains("B00"));
        assert!(s.contains("B11"));
        assert!(s.contains("+-----+"));
        // row 1 rendered above row 0
        let pos10 = s.find("B10").unwrap();
        let pos00 = s.find("B00").unwrap();
        assert!(pos10 < pos00);
    }

    #[test]
    fn histogram_counts() {
        let mut l = Layout::new("t", 2);
        l.place_node(0, Rect::new(0, 0, 0, 0));
        l.place_node(1, Rect::new(3, 0, 3, 0));
        l.add_wire(0, 1, WirePath::new(vec![p(0, 0, 0), p(3, 0, 0)]));
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(0, 0, 0), p(0, 1, 0), p(3, 1, 0), p(3, 0, 0)]),
        );
        let h = wire_length_histogram(&l);
        assert_eq!(h, vec![(3, 1), (5, 1)]);
    }
}
