//! Rectilinear wire paths.
//!
//! A wire is a polyline through the 3-D grid whose segments run along
//! grid lines. We store only the **corner points** (including both
//! endpoints); unit grid points are enumerated on demand for occupancy
//! checking. Layer changes (z-segments) are the model's inter-layer
//! *vias*.

use crate::geom::Point3;

/// A rectilinear path stored as its corner sequence.
///
/// Invariants (validated by [`WirePath::validate`] and enforced by the
/// layout checker):
/// * at least one point;
/// * consecutive corners differ in exactly one coordinate;
/// * the path never revisits a grid point (node-disjointness with itself).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WirePath {
    corners: Vec<Point3>,
}

/// Why a path failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathError {
    /// The corner list was empty.
    Empty,
    /// Corners `i` and `i+1` do not lie on a common grid line.
    NotAxisAligned(usize),
    /// The path visits a grid point twice (the offending point).
    SelfIntersection(Point3),
}

impl WirePath {
    /// Build a path from its corners. Zero-length "segments" (repeated
    /// corners) are collapsed **in place** — the vector's allocation is
    /// kept, so callers recycling corner buffers pay no per-path
    /// allocation. Panics if empty.
    pub fn new(mut corners: Vec<Point3>) -> Self {
        assert!(!corners.is_empty(), "path needs at least one point");
        corners.dedup();
        WirePath { corners }
    }

    /// Take the corner buffer back out (for buffer recycling — the
    /// inverse of [`WirePath::new`]).
    pub fn into_corners(self) -> Vec<Point3> {
        self.corners
    }

    /// The corner sequence (endpoints included).
    pub fn corners(&self) -> &[Point3] {
        &self.corners
    }

    /// First point (source terminal).
    pub fn start(&self) -> Point3 {
        self.corners[0]
    }

    /// Last point (destination terminal).
    pub fn end(&self) -> Point3 {
        *self.corners.last().unwrap()
    }

    /// Wire length in grid edges (sum of segment lengths, z included).
    pub fn length(&self) -> u64 {
        self.corners.windows(2).map(|w| w[0].manhattan(&w[1])).sum()
    }

    /// Planar wire length (x/y segments only, vias excluded) — the
    /// quantity the paper's "maximum wire length" results refer to
    /// (layer counts are O(L) and vias contribute lower-order terms; we
    /// report both).
    pub fn planar_length(&self) -> u64 {
        self.corners
            .windows(2)
            .map(|w| w[0].x.abs_diff(w[1].x) + w[0].y.abs_diff(w[1].y))
            .sum()
    }

    /// Number of vias (unit steps along z).
    pub fn via_count(&self) -> u64 {
        self.corners
            .windows(2)
            .map(|w| w[0].z.abs_diff(w[1].z) as u64)
            .sum()
    }

    /// Single-pass `(planar_length, length, via_count)` — one walk of
    /// the corner windows instead of three, for metric hot paths.
    pub fn stats(&self) -> (u64, u64, u64) {
        let (mut planar, mut vias) = (0u64, 0u64);
        for w in self.corners.windows(2) {
            planar += w[0].x.abs_diff(w[1].x) + w[0].y.abs_diff(w[1].y);
            vias += w[0].z.abs_diff(w[1].z) as u64;
        }
        (planar, planar + vias, vias)
    }

    /// Number of bends (corner points where direction changes).
    pub fn bend_count(&self) -> usize {
        self.corners.len().saturating_sub(2)
    }

    /// Iterate over every grid point the wire occupies, in path order.
    /// Endpoints included; corner points are not repeated.
    pub fn points(&self) -> impl Iterator<Item = Point3> + '_ {
        let first = std::iter::once(self.corners[0]);
        let rest = self.corners.windows(2).flat_map(|w| {
            let (a, b) = (w[0], w[1]);
            let steps = a.manhattan(&b);
            let dx = (b.x - a.x).signum();
            let dy = (b.y - a.y).signum();
            let dz = (b.z - a.z).signum();
            (1..=steps as i64).map(move |t| Point3 {
                x: a.x + dx * t,
                y: a.y + dy * t,
                z: a.z + dz * t as i32,
            })
        });
        first.chain(rest)
    }

    /// Validate the structural invariants.
    pub fn validate(&self) -> Result<(), PathError> {
        if self.corners.is_empty() {
            return Err(PathError::Empty);
        }
        for (i, w) in self.corners.windows(2).enumerate() {
            if !w[0].is_axis_aligned_with(&w[1]) {
                return Err(PathError::NotAxisAligned(i));
            }
        }
        let mut seen = std::collections::HashSet::with_capacity(self.length() as usize + 1);
        for p in self.points() {
            if !seen.insert(p) {
                return Err(PathError::SelfIntersection(p));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i64, y: i64, z: i32) -> Point3 {
        Point3::new(x, y, z)
    }

    #[test]
    fn length_and_vias() {
        let w = WirePath::new(vec![
            p(0, 0, 0),
            p(0, 0, 1),
            p(3, 0, 1),
            p(3, 2, 1),
            p(3, 2, 0),
        ]);
        assert_eq!(w.length(), 1 + 3 + 2 + 1);
        assert_eq!(w.planar_length(), 5);
        assert_eq!(w.via_count(), 2);
        assert_eq!(w.bend_count(), 3);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn points_enumeration() {
        let w = WirePath::new(vec![p(0, 0, 0), p(2, 0, 0), p(2, 1, 0)]);
        let pts: Vec<Point3> = w.points().collect();
        assert_eq!(pts, vec![p(0, 0, 0), p(1, 0, 0), p(2, 0, 0), p(2, 1, 0)]);
    }

    #[test]
    fn single_point_path() {
        let w = WirePath::new(vec![p(5, 5, 0)]);
        assert_eq!(w.length(), 0);
        assert_eq!(w.points().count(), 1);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn repeated_corners_collapsed() {
        let w = WirePath::new(vec![p(0, 0, 0), p(0, 0, 0), p(1, 0, 0)]);
        assert_eq!(w.corners().len(), 2);
    }

    #[test]
    fn stats_agree_with_individual_metrics() {
        let w = WirePath::new(vec![
            p(0, 0, 0),
            p(0, 0, 1),
            p(3, 0, 1),
            p(3, 2, 1),
            p(3, 2, 0),
        ]);
        assert_eq!(w.stats(), (w.planar_length(), w.length(), w.via_count()));
    }

    #[test]
    fn corner_buffer_round_trips_with_capacity() {
        let mut buf = Vec::with_capacity(32);
        buf.extend([p(0, 0, 0), p(0, 0, 0), p(2, 0, 0)]);
        let w = WirePath::new(buf);
        assert_eq!(w.corners(), &[p(0, 0, 0), p(2, 0, 0)]);
        let back = w.into_corners();
        assert!(back.capacity() >= 32, "recycled capacity must survive");
    }

    #[test]
    fn diagonal_rejected() {
        let w = WirePath::new(vec![p(0, 0, 0), p(1, 1, 0)]);
        assert_eq!(w.validate(), Err(PathError::NotAxisAligned(0)));
    }

    #[test]
    fn self_intersection_detected() {
        // a loop: right, up, left, down through start column again
        let w = WirePath::new(vec![
            p(0, 0, 0),
            p(2, 0, 0),
            p(2, 2, 0),
            p(0, 2, 0),
            p(0, 0, 0),
        ]);
        assert_eq!(w.validate(), Err(PathError::SelfIntersection(p(0, 0, 0))));
    }

    #[test]
    fn u_turn_within_segment_detected() {
        // go right 3 then back left 2 along the same track
        let w = WirePath::new(vec![p(0, 0, 0), p(3, 0, 0), p(1, 0, 0)]);
        assert_eq!(w.validate(), Err(PathError::SelfIntersection(p(2, 0, 0))));
    }
}
