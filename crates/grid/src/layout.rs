//! The layout container: node placements + wires + layer budget.

use crate::geom::{Point3, Rect};
use crate::path::WirePath;
use mlv_topology::NodeId;

/// Placement of one network node: an upright rectangle of grid points
/// it occupies exclusively on its **active layer**. The multilayer 2-D
/// grid model (paper §2.2) puts every node on layer 0; the multilayer
/// **3-D** grid model allows several active layers, with nodes of
/// different layers free to share planar coordinates.
#[derive(Clone, Debug)]
pub struct NodePlacement {
    /// The network node this placement realizes.
    pub node: NodeId,
    /// Footprint on the node's active layer.
    pub rect: Rect,
    /// The active layer (`z`) the node sits on (0 in the 2-D model).
    pub layer: i32,
}

/// One routed wire realizing one network edge.
#[derive(Clone, Debug)]
pub struct Wire {
    /// The network edge's endpoints (unordered; stored as given).
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// The routed path. `path.start()` must lie in `u`'s footprint and
    /// `path.end()` in `v`'s, each on that node's active layer.
    pub path: WirePath,
}

/// A complete multilayer layout of a network.
#[derive(Clone, Debug)]
pub struct Layout {
    /// Human-readable description (family + parameters + L).
    pub name: String,
    /// Number of wiring layers `L` the layout claims to use (`z` must
    /// stay in `0..L`).
    pub layers: usize,
    /// One placement per network node.
    pub nodes: Vec<NodePlacement>,
    /// One wire per network edge.
    pub wires: Vec<Wire>,
}

impl Layout {
    /// Create an empty layout with a layer budget.
    pub fn new(name: impl Into<String>, layers: usize) -> Self {
        assert!(layers >= 1, "need at least one layer");
        Layout {
            name: name.into(),
            layers,
            nodes: Vec::new(),
            wires: Vec::new(),
        }
    }

    /// Add a node placement on the default active layer (`z = 0`).
    pub fn place_node(&mut self, node: NodeId, rect: Rect) {
        self.place_node_at(node, rect, 0);
    }

    /// Add a node placement on an explicit active layer (multilayer 3-D
    /// grid model).
    pub fn place_node_at(&mut self, node: NodeId, rect: Rect, layer: i32) {
        assert!(
            layer >= 0 && (layer as usize) < self.layers,
            "active layer out of budget"
        );
        self.nodes.push(NodePlacement { node, rect, layer });
    }

    /// Add a wire.
    pub fn add_wire(&mut self, u: NodeId, v: NodeId, path: WirePath) {
        self.wires.push(Wire { u, v, path });
    }

    /// The bounding rectangle of everything (nodes and wires) in the
    /// x–y plane, or `None` for an empty layout.
    pub fn bounding_box(&self) -> Option<Rect> {
        self.extents().0
    }

    /// Highest layer index actually used by any wire (nodes sit at 0).
    pub fn max_used_layer(&self) -> i32 {
        self.extents().1
    }

    /// Fused single pass over nodes and wire corners: the planar
    /// bounding box (as [`Layout::bounding_box`]) together with the
    /// highest wire layer (as [`Layout::max_used_layer`]).
    pub fn extents(&self) -> (Option<Rect>, i32) {
        let mut bb: Option<Rect> = None;
        let mut max_z = 0i32;
        for n in &self.nodes {
            bb = Some(match bb {
                Some(r) => r.union(&n.rect),
                None => n.rect,
            });
        }
        for w in &self.wires {
            for c in w.path.corners() {
                match &mut bb {
                    Some(r) => r.expand_to(c.x, c.y),
                    None => bb = Some(Rect::new(c.x, c.y, c.x, c.y)),
                }
                max_z = max_z.max(c.z);
            }
        }
        (bb, max_z)
    }

    /// The multiset of wire endpoint pairs (canonical order), for
    /// verification against `Graph::edge_multiset`.
    pub fn wire_multiset(&self) -> std::collections::BTreeMap<(NodeId, NodeId), usize> {
        let mut m = std::collections::BTreeMap::new();
        for w in &self.wires {
            let key = if w.u <= w.v { (w.u, w.v) } else { (w.v, w.u) };
            *m.entry(key).or_insert(0) += 1;
        }
        m
    }

    /// Footprint of a given network node, if placed.
    pub fn footprint(&self, node: NodeId) -> Option<Rect> {
        self.nodes.iter().find(|n| n.node == node).map(|n| n.rect)
    }
}

/// Convenience: a single-point terminal on the active layer.
pub fn terminal(x: i64, y: i64) -> Point3 {
    Point3::new(x, y, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounding_box_covers_nodes_and_wires() {
        let mut l = Layout::new("t", 2);
        l.place_node(0, Rect::new(0, 0, 1, 1));
        l.place_node(1, Rect::new(10, 0, 11, 1));
        l.add_wire(
            0,
            1,
            WirePath::new(vec![
                Point3::new(1, 1, 0),
                Point3::new(1, 5, 0),
                Point3::new(10, 5, 0),
                Point3::new(10, 1, 0),
            ]),
        );
        let bb = l.bounding_box().unwrap();
        assert_eq!(bb, Rect::new(0, 0, 11, 5));
        assert_eq!(l.max_used_layer(), 0);
    }

    #[test]
    fn empty_layout() {
        let l = Layout::new("e", 4);
        assert!(l.bounding_box().is_none());
        assert_eq!(l.max_used_layer(), 0);
        assert!(l.wire_multiset().is_empty());
    }

    #[test]
    fn wire_multiset_canonicalizes() {
        let mut l = Layout::new("t", 2);
        l.place_node(0, Rect::new(0, 0, 0, 0));
        l.place_node(1, Rect::new(2, 0, 2, 0));
        let p = WirePath::new(vec![Point3::new(2, 0, 0), Point3::new(0, 0, 0)]);
        l.add_wire(1, 0, p);
        assert_eq!(l.wire_multiset().get(&(0, 1)), Some(&1));
    }

    #[test]
    fn footprint_lookup() {
        let mut l = Layout::new("t", 2);
        l.place_node(7, Rect::new(3, 4, 5, 6));
        assert_eq!(l.footprint(7), Some(Rect::new(3, 4, 5, 6)));
        assert_eq!(l.footprint(8), None);
    }
}
