//! Layout analytics beyond the headline metrics: where the area
//! actually goes (layer usage, lane utilization), how congested the
//! cuts are, and the wire-length distribution. Used by the ablation
//! tables and handy when tuning a construction.

use crate::hasher::FxBuildHasher;
use crate::layout::Layout;
use std::collections::HashMap;

/// Wire points per layer, indexed by `z` (length = layers).
pub fn layer_usage(layout: &Layout) -> Vec<u64> {
    let mut usage = vec![0u64; layout.layers];
    for w in &layout.wires {
        for p in w.path.points() {
            if (p.z as usize) < usage.len() {
                usage[p.z as usize] += 1;
            }
        }
    }
    usage
}

/// Utilization of the horizontal routing lanes: for each `(y, z)` pair
/// that carries at least one x-run, the fraction of the bounding width
/// actually covered by wire. Returns `(lanes, mean, max)`.
pub fn lane_utilization(layout: &Layout) -> (usize, f64, f64) {
    let Some(bb) = layout.bounding_box() else {
        return (0, 0.0, 0.0);
    };
    let width = bb.width() as f64;
    let mut lanes: HashMap<(i64, i32), u64, FxBuildHasher> = HashMap::default();
    for w in &layout.wires {
        for seg in w.path.corners().windows(2) {
            let (a, b) = (seg[0], seg[1]);
            if a.y == b.y && a.z == b.z && a.x != b.x {
                *lanes.entry((a.y, a.z)).or_insert(0) += a.x.abs_diff(b.x);
            }
        }
    }
    if lanes.is_empty() {
        return (0, 0.0, 0.0);
    }
    let utils: Vec<f64> = lanes.values().map(|&c| c as f64 / width).collect();
    let mean = utils.iter().sum::<f64>() / utils.len() as f64;
    let max = utils.iter().fold(0.0f64, |m, &u| m.max(u));
    (lanes.len(), mean, max)
}

/// Number of wires whose planar extent crosses the vertical line
/// between `x` and `x+1` — the congestion profile a bisection-style cut
/// sees. A wire is counted once however many times it weaves across.
pub fn cut_flux(layout: &Layout, x: i64) -> usize {
    layout
        .wires
        .iter()
        .filter(|w| {
            let (mut lo, mut hi) = (i64::MAX, i64::MIN);
            for c in w.path.corners() {
                lo = lo.min(c.x);
                hi = hi.max(c.x);
            }
            lo <= x && x < hi
        })
        .count()
}

/// The maximum [`cut_flux`] over all vertical cut positions.
pub fn max_cut_flux(layout: &Layout) -> usize {
    let Some(bb) = layout.bounding_box() else {
        return 0;
    };
    // sweep via interval endpoints rather than every x
    let mut delta: HashMap<i64, i64, FxBuildHasher> = HashMap::default();
    for w in &layout.wires {
        let (mut lo, mut hi) = (i64::MAX, i64::MIN);
        for c in w.path.corners() {
            lo = lo.min(c.x);
            hi = hi.max(c.x);
        }
        if lo < hi {
            *delta.entry(lo).or_insert(0) += 1;
            *delta.entry(hi).or_insert(0) -= 1;
        }
    }
    let mut xs: Vec<i64> = delta.keys().copied().collect();
    xs.sort_unstable();
    let mut acc = 0i64;
    let mut best = 0i64;
    for x in xs {
        acc += delta[&x];
        best = best.max(acc);
    }
    let _ = bb;
    best as usize
}

/// Wire-length distribution summary: `(mean, p50, p95, max)` over full
/// lengths (vias included). Zero-wire layouts give all zeros.
pub fn wire_length_stats(layout: &Layout) -> (f64, u64, u64, u64) {
    if layout.wires.is_empty() {
        return (0.0, 0, 0, 0);
    }
    let mut lens: Vec<u64> = layout.wires.iter().map(|w| w.path.length()).collect();
    lens.sort_unstable();
    let n = lens.len();
    let mean = lens.iter().sum::<u64>() as f64 / n as f64;
    (mean, lens[n / 2], lens[(n * 95) / 100], lens[n - 1])
}

/// Fraction of the bounding area covered by node footprints — the
/// "footprint floor" that dilutes the paper's constants at small N.
/// Exceeds 1.0 in multilayer 3-D layouts where nodes stack over the
/// same planar positions.
pub fn footprint_fraction(layout: &Layout) -> f64 {
    let Some(bb) = layout.bounding_box() else {
        return 0.0;
    };
    let nodes: u64 = layout.nodes.iter().map(|n| n.rect.point_count()).sum();
    nodes as f64 / (bb.width() * bb.height()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point3, Rect};
    use crate::path::WirePath;

    fn p(x: i64, y: i64, z: i32) -> Point3 {
        Point3::new(x, y, z)
    }

    fn two_lane_layout() -> Layout {
        let mut l = Layout::new("lanes", 2);
        l.place_node(0, Rect::new(0, 0, 0, 1));
        l.place_node(1, Rect::new(9, 0, 9, 1));
        l.add_wire(0, 1, WirePath::new(vec![p(0, 0, 0), p(9, 0, 0)]));
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(0, 1, 0), p(0, 1, 1), p(9, 1, 1), p(9, 1, 0)]),
        );
        l
    }

    #[test]
    fn layer_usage_counts() {
        let u = layer_usage(&two_lane_layout());
        assert_eq!(u.len(), 2);
        // wire 1: 10 points at z=0; wire 2: 2 terminal points at z=0 +
        // 10 points at z=1
        assert_eq!(u[0], 12);
        assert_eq!(u[1], 10);
    }

    #[test]
    fn lane_utilization_full_lanes() {
        let (lanes, mean, max) = lane_utilization(&two_lane_layout());
        assert_eq!(lanes, 2);
        assert!((mean - 0.9).abs() < 1e-9); // 9 covered of width 10
        assert!((max - 0.9).abs() < 1e-9);
    }

    #[test]
    fn cut_flux_counts_spanning_wires() {
        let l = two_lane_layout();
        assert_eq!(cut_flux(&l, 4), 2);
        assert_eq!(cut_flux(&l, 9), 0); // nothing extends past x=9
        assert_eq!(max_cut_flux(&l), 2);
    }

    #[test]
    fn wire_stats() {
        let (mean, p50, p95, max) = wire_length_stats(&two_lane_layout());
        assert_eq!(max, 11);
        assert_eq!(p50.max(p95), 11);
        assert!(mean > 9.0 && mean < 11.0);
    }

    #[test]
    fn footprint_fraction_reasonable() {
        let f = footprint_fraction(&two_lane_layout());
        // 4 node points in a 10x2 box
        assert!((f - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_layout_analytics() {
        let l = Layout::new("e", 2);
        assert_eq!(layer_usage(&l), vec![0, 0]);
        assert_eq!(lane_utilization(&l), (0, 0.0, 0.0));
        assert_eq!(max_cut_flux(&l), 0);
        assert_eq!(wire_length_stats(&l), (0.0, 0, 0, 0));
        assert_eq!(footprint_fraction(&l), 0.0);
    }
}
