//! Layout metrics: the paper's four figures of merit.
//!
//! * **area** — grid points of the smallest upright bounding rectangle
//!   (paper §2.1/§2.2);
//! * **volume** — `L × area` (paper §2.2 defines volume exactly this
//!   way);
//! * **maximum wire length** — longest single wire; we report both the
//!   planar length (x/y segments, the quantity the paper's closed forms
//!   track) and the full length including vias;
//! * **maximum routed-path length** — the maximum over all
//!   source–destination pairs of the total wire length along a shortest
//!   routing path (paper §1 claim 4), computed by plugging realized wire
//!   lengths into BFS shortest paths of the reference graph.

use crate::layout::Layout;
use crate::pdk::{DbUnits, Pdk};
use mlv_core::exec;
use mlv_topology::routing::max_route_cost;
use mlv_topology::Graph;

/// Aggregated metrics of one layout.
#[derive(Clone, Debug, PartialEq)]
pub struct LayoutMetrics {
    /// Bounding-box width (grid columns).
    pub width: u64,
    /// Bounding-box height (grid rows).
    pub height: u64,
    /// `width × height`.
    pub area: u64,
    /// `layers × area`.
    pub volume: u64,
    /// Layer budget of the layout.
    pub layers: usize,
    /// Highest layer index actually used (0-based).
    pub max_used_layer: i32,
    /// Longest wire, planar (x/y) length.
    pub max_wire_planar: u64,
    /// Longest wire, full length including vias.
    pub max_wire_full: u64,
    /// Sum of all wire lengths (full).
    pub total_wire: u64,
    /// Number of wires.
    pub wire_count: usize,
    /// Number of vias (unit z-steps) across all wires.
    pub via_count: u64,
}

impl LayoutMetrics {
    /// Compute metrics for a layout. Empty layouts get all-zero metrics.
    pub fn of(layout: &Layout) -> Self {
        let (bb, max_used_layer) = layout.extents();
        let (width, height) = match bb {
            Some(bb) => (bb.width(), bb.height()),
            None => (0, 0),
        };
        let area = width * height;
        let (max_wire_planar, max_wire_full, total_wire, via_count) = exec::par_chunk_reduce(
            &layout.wires,
            (0, 0, 0, 0),
            |a, w| {
                let (planar, full, vias) = w.path.stats();
                (a.0.max(planar), a.1.max(full), a.2 + full, a.3 + vias)
            },
            |a, b| (a.0.max(b.0), a.1.max(b.1), a.2 + b.2, a.3 + b.3),
        );
        LayoutMetrics {
            width,
            height,
            area,
            volume: layout.layers as u64 * area,
            layers: layout.layers,
            max_used_layer,
            max_wire_planar,
            max_wire_full,
            total_wire,
            wire_count: layout.wires.len(),
            via_count,
        }
    }

    /// Pitch-weighted physical metrics of this layout under `pdk`
    /// (convenience over [`PhysicalMetrics::of`]).
    pub fn physical(layout: &Layout, pdk: &Pdk) -> Result<PhysicalMetrics, String> {
        PhysicalMetrics::of(layout, pdk)
    }

    /// Maximum total wire length along a shortest routing path between
    /// any source–destination pair (paper §1 claim 4). Requires the
    /// reference graph whose edge order matches `layout.wires` — i.e.
    /// wire `i` realizes edge `i`. `None` if the graph is disconnected
    /// or trivial (metric taken as undefined), or if the layout's wire
    /// count does not match the graph's edge count — untrusted
    /// (e.g. loaded-from-disk) layouts must not crash the caller, and a
    /// mismatched pairing has no meaningful routed-path metric anyway.
    pub fn max_routed_path(layout: &Layout, graph: &Graph) -> Option<u64> {
        if layout.wires.len() != graph.edge_count() {
            return None;
        }
        let lens: Vec<u64> = layout.wires.iter().map(|w| w.path.length()).collect();
        max_route_cost(graph, |e| lens[e as usize])
    }
}

/// Pitch-weighted physical metrics of a layout under a [`Pdk`] — the
/// units in which the exact-wirelength embedding literature states its
/// results.
///
/// This is a **pure cost model** over the layout's grid geometry: a
/// planar unit step on layer `z` costs `pitch(z)` [`DbUnits`], and a
/// via crossing from layer `z` to `z + 1` costs `via_cost(z)`. The
/// bounding box is scaled by the stack's track-spacing scales. Two
/// exact laws follow by construction (and are pinned by the
/// conformance PDK oracle):
///
/// * **identity** — under [`Pdk::uniform`] the physical wirelength
///   equals [`LayoutMetrics::total_wire`] exactly and the physical
///   area equals the grid area;
/// * **linearity** — under [`Pdk::scaled`]`(k)` the physical
///   wirelength of the same layout is exactly `k` times larger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhysicalMetrics {
    /// Stack the metrics were computed under.
    pub pdk: String,
    /// Bounding-box width × horizontal track-spacing scale.
    pub width: DbUnits,
    /// Bounding-box height × vertical track-spacing scale.
    pub height: DbUnits,
    /// `width × height`.
    pub area: DbUnits,
    /// Sum over wires of pitch-weighted planar steps plus via costs.
    pub wirelength: DbUnits,
    /// Longest single wire under the same weighting.
    pub max_wire: DbUnits,
    /// The via-cost portion of `wirelength`.
    pub via_cost: DbUnits,
}

impl PhysicalMetrics {
    /// Compute the pitch-weighted metrics of `layout` under `pdk`.
    /// Corners below layer 0 (only possible in deliberately illegal
    /// layouts) are priced as layer 0.
    ///
    /// All pitch multiplications and cost sums are checked: a stack
    /// with adversarially large pitches or via costs (e.g. a hostile
    /// `@file.pdk` handed to the server) surfaces as an `Err`, never a
    /// debug-panic or a silently wrapped release number.
    pub fn of(layout: &Layout, pdk: &Pdk) -> Result<Self, String> {
        let overflow = || format!("pdk `{}`: physical metrics overflow", pdk.name);
        let (bb, _) = layout.extents();
        let (gw, gh) = match bb {
            Some(bb) => (bb.width(), bb.height()),
            None => (0, 0),
        };
        let width = gw
            .checked_mul(pdk.xscale(layout.layers) as DbUnits)
            .ok_or_else(overflow)?;
        let height = gh
            .checked_mul(pdk.yscale(layout.layers) as DbUnits)
            .ok_or_else(overflow)?;
        let area = width.checked_mul(height).ok_or_else(overflow)?;
        let wire_cost = |w: &crate::layout::Wire| -> Option<(DbUnits, DbUnits)> {
            let mut planar = 0u64;
            let mut vias = 0u64;
            for pair in w.path.corners().windows(2) {
                let (a, b) = (pair[0], pair[1]);
                if a.z != b.z {
                    let (lo, hi) = (a.z.min(b.z).max(0), a.z.max(b.z).max(0));
                    for z in lo..hi {
                        vias = vias.checked_add(pdk.layer_at(z as usize).via_cost)?;
                    }
                } else {
                    let steps = (a.x - b.x).unsigned_abs() + (a.y - b.y).unsigned_abs();
                    let cost = steps.checked_mul(pdk.layer_at(a.z.max(0) as usize).pitch)?;
                    planar = planar.checked_add(cost)?;
                }
            }
            Some((planar, vias))
        };
        // `None` poisons the whole reduction; both closures short-circuit
        // on it, so one overflowing wire fails the batch deterministically.
        let reduced = exec::par_chunk_reduce(
            &layout.wires,
            Some((0u64, 0u64, 0u64)),
            |acc, w| {
                let (total, longest, via_total) = acc?;
                let (planar, vias) = wire_cost(w)?;
                let full = planar.checked_add(vias)?;
                Some((
                    total.checked_add(full)?,
                    longest.max(full),
                    via_total.checked_add(vias)?,
                ))
            },
            |a, b| {
                let (a0, a1, a2) = a?;
                let (b0, b1, b2) = b?;
                Some((a0.checked_add(b0)?, a1.max(b1), a2.checked_add(b2)?))
            },
        );
        let (wirelength, max_wire, via_cost) = reduced.ok_or_else(overflow)?;
        Ok(PhysicalMetrics {
            pdk: pdk.name.clone(),
            width,
            height,
            area,
            wirelength,
            max_wire,
            via_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point3, Rect};
    use crate::path::WirePath;
    use mlv_topology::GraphBuilder;

    fn p(x: i64, y: i64, z: i32) -> Point3 {
        Point3::new(x, y, z)
    }

    #[test]
    fn metrics_of_simple_layout() {
        let mut l = Layout::new("t", 4);
        l.place_node(0, Rect::new(0, 0, 1, 1));
        l.place_node(1, Rect::new(8, 0, 9, 1));
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(1, 1, 0), p(1, 1, 1), p(8, 1, 1), p(8, 1, 0)]),
        );
        let m = LayoutMetrics::of(&l);
        assert_eq!(m.width, 10);
        assert_eq!(m.height, 2);
        assert_eq!(m.area, 20);
        assert_eq!(m.volume, 80);
        assert_eq!(m.max_wire_planar, 7);
        assert_eq!(m.max_wire_full, 9);
        assert_eq!(m.via_count, 2);
        assert_eq!(m.max_used_layer, 1);
    }

    #[test]
    fn empty_layout_metrics() {
        let m = LayoutMetrics::of(&Layout::new("e", 2));
        assert_eq!(m.area, 0);
        assert_eq!(m.max_wire_full, 0);
        assert_eq!(m.wire_count, 0);
    }

    #[test]
    fn routed_path_metric() {
        // path graph 0-1-2, wire lengths 5 and 7 -> max routed path 12
        let mut b = GraphBuilder::new("p3", 3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let mut l = Layout::new("t", 2);
        l.place_node(0, Rect::new(0, 0, 0, 0));
        l.place_node(1, Rect::new(5, 0, 5, 0));
        l.place_node(2, Rect::new(12, 0, 12, 0));
        l.add_wire(0, 1, WirePath::new(vec![p(0, 0, 0), p(5, 0, 0)]));
        l.add_wire(1, 2, WirePath::new(vec![p(5, 0, 0), p(12, 0, 0)]));
        assert_eq!(LayoutMetrics::max_routed_path(&l, &g), Some(12));
    }

    #[test]
    fn routed_path_none_on_wire_edge_mismatch() {
        // a layout whose wires do not pair 1:1 with the graph's edges
        // (e.g. loaded from disk) must yield None, not a panic
        let mut b = GraphBuilder::new("p3", 3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let mut l = Layout::new("t", 2);
        l.place_node(0, Rect::new(0, 0, 0, 0));
        l.add_wire(0, 1, WirePath::new(vec![p(0, 0, 0), p(5, 0, 0)]));
        assert_eq!(LayoutMetrics::max_routed_path(&l, &g), None);
    }

    #[test]
    fn physical_uniform_is_the_identity() {
        let mut l = Layout::new("t", 4);
        l.place_node(0, Rect::new(0, 0, 1, 1));
        l.place_node(1, Rect::new(8, 0, 9, 1));
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(1, 1, 0), p(1, 1, 1), p(8, 1, 1), p(8, 1, 0)]),
        );
        let m = LayoutMetrics::of(&l);
        let ph = PhysicalMetrics::of(&l, &Pdk::uniform(4)).unwrap();
        assert_eq!(ph.wirelength, m.total_wire);
        assert_eq!(ph.max_wire, m.max_wire_full);
        assert_eq!(ph.via_cost, m.via_count);
        assert_eq!(ph.area, m.area);
        assert_eq!((ph.width, ph.height), (m.width, m.height));
    }

    #[test]
    fn physical_weights_by_pitch_and_via_cost() {
        // one x-run of 7 on layer 1 (hv6 M2: V, pitch 2), two via
        // crossings of the M1->M2 boundary (via_cost 2 each)
        let mut l = Layout::new("t", 2);
        l.place_node(0, Rect::new(0, 0, 1, 1));
        l.place_node(1, Rect::new(8, 0, 9, 1));
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(1, 1, 0), p(1, 1, 1), p(8, 1, 1), p(8, 1, 0)]),
        );
        let hv6 = Pdk::hv6();
        let ph = PhysicalMetrics::of(&l, &hv6).unwrap();
        assert_eq!(ph.via_cost, 2 * hv6.layers[0].via_cost);
        assert_eq!(ph.wirelength, 7 * hv6.layers[1].pitch + ph.via_cost);
        // exact linearity under pitch scaling
        let ph3 = PhysicalMetrics::of(&l, &hv6.scaled(3).unwrap()).unwrap();
        assert_eq!(ph3.wirelength, 3 * ph.wirelength);
        assert_eq!(ph3.via_cost, 3 * ph.via_cost);
    }

    #[test]
    fn total_wire_sums() {
        let mut l = Layout::new("t", 2);
        l.place_node(0, Rect::new(0, 0, 0, 0));
        l.place_node(1, Rect::new(3, 0, 3, 0));
        l.add_wire(0, 1, WirePath::new(vec![p(0, 0, 0), p(3, 0, 0)]));
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(0, 0, 0), p(0, 1, 0), p(3, 1, 0), p(3, 0, 0)]),
        );
        let m = LayoutMetrics::of(&l);
        assert_eq!(m.total_wire, 3 + 5);
        assert_eq!(m.wire_count, 2);
    }
}
