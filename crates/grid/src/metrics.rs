//! Layout metrics: the paper's four figures of merit.
//!
//! * **area** — grid points of the smallest upright bounding rectangle
//!   (paper §2.1/§2.2);
//! * **volume** — `L × area` (paper §2.2 defines volume exactly this
//!   way);
//! * **maximum wire length** — longest single wire; we report both the
//!   planar length (x/y segments, the quantity the paper's closed forms
//!   track) and the full length including vias;
//! * **maximum routed-path length** — the maximum over all
//!   source–destination pairs of the total wire length along a shortest
//!   routing path (paper §1 claim 4), computed by plugging realized wire
//!   lengths into BFS shortest paths of the reference graph.

use crate::layout::Layout;
use mlv_core::exec;
use mlv_topology::routing::max_route_cost;
use mlv_topology::Graph;

/// Aggregated metrics of one layout.
#[derive(Clone, Debug, PartialEq)]
pub struct LayoutMetrics {
    /// Bounding-box width (grid columns).
    pub width: u64,
    /// Bounding-box height (grid rows).
    pub height: u64,
    /// `width × height`.
    pub area: u64,
    /// `layers × area`.
    pub volume: u64,
    /// Layer budget of the layout.
    pub layers: usize,
    /// Highest layer index actually used (0-based).
    pub max_used_layer: i32,
    /// Longest wire, planar (x/y) length.
    pub max_wire_planar: u64,
    /// Longest wire, full length including vias.
    pub max_wire_full: u64,
    /// Sum of all wire lengths (full).
    pub total_wire: u64,
    /// Number of wires.
    pub wire_count: usize,
    /// Number of vias (unit z-steps) across all wires.
    pub via_count: u64,
}

impl LayoutMetrics {
    /// Compute metrics for a layout. Empty layouts get all-zero metrics.
    pub fn of(layout: &Layout) -> Self {
        let (bb, max_used_layer) = layout.extents();
        let (width, height) = match bb {
            Some(bb) => (bb.width(), bb.height()),
            None => (0, 0),
        };
        let area = width * height;
        let (max_wire_planar, max_wire_full, total_wire, via_count) = exec::par_chunk_reduce(
            &layout.wires,
            (0, 0, 0, 0),
            |a, w| {
                let (planar, full, vias) = w.path.stats();
                (a.0.max(planar), a.1.max(full), a.2 + full, a.3 + vias)
            },
            |a, b| (a.0.max(b.0), a.1.max(b.1), a.2 + b.2, a.3 + b.3),
        );
        LayoutMetrics {
            width,
            height,
            area,
            volume: layout.layers as u64 * area,
            layers: layout.layers,
            max_used_layer,
            max_wire_planar,
            max_wire_full,
            total_wire,
            wire_count: layout.wires.len(),
            via_count,
        }
    }

    /// Maximum total wire length along a shortest routing path between
    /// any source–destination pair (paper §1 claim 4). Requires the
    /// reference graph whose edge order matches `layout.wires` — i.e.
    /// wire `i` realizes edge `i`. `None` if the graph is disconnected
    /// or trivial (metric taken as undefined), or if the layout's wire
    /// count does not match the graph's edge count — untrusted
    /// (e.g. loaded-from-disk) layouts must not crash the caller, and a
    /// mismatched pairing has no meaningful routed-path metric anyway.
    pub fn max_routed_path(layout: &Layout, graph: &Graph) -> Option<u64> {
        if layout.wires.len() != graph.edge_count() {
            return None;
        }
        let lens: Vec<u64> = layout.wires.iter().map(|w| w.path.length()).collect();
        max_route_cost(graph, |e| lens[e as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point3, Rect};
    use crate::path::WirePath;
    use mlv_topology::GraphBuilder;

    fn p(x: i64, y: i64, z: i32) -> Point3 {
        Point3::new(x, y, z)
    }

    #[test]
    fn metrics_of_simple_layout() {
        let mut l = Layout::new("t", 4);
        l.place_node(0, Rect::new(0, 0, 1, 1));
        l.place_node(1, Rect::new(8, 0, 9, 1));
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(1, 1, 0), p(1, 1, 1), p(8, 1, 1), p(8, 1, 0)]),
        );
        let m = LayoutMetrics::of(&l);
        assert_eq!(m.width, 10);
        assert_eq!(m.height, 2);
        assert_eq!(m.area, 20);
        assert_eq!(m.volume, 80);
        assert_eq!(m.max_wire_planar, 7);
        assert_eq!(m.max_wire_full, 9);
        assert_eq!(m.via_count, 2);
        assert_eq!(m.max_used_layer, 1);
    }

    #[test]
    fn empty_layout_metrics() {
        let m = LayoutMetrics::of(&Layout::new("e", 2));
        assert_eq!(m.area, 0);
        assert_eq!(m.max_wire_full, 0);
        assert_eq!(m.wire_count, 0);
    }

    #[test]
    fn routed_path_metric() {
        // path graph 0-1-2, wire lengths 5 and 7 -> max routed path 12
        let mut b = GraphBuilder::new("p3", 3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let mut l = Layout::new("t", 2);
        l.place_node(0, Rect::new(0, 0, 0, 0));
        l.place_node(1, Rect::new(5, 0, 5, 0));
        l.place_node(2, Rect::new(12, 0, 12, 0));
        l.add_wire(0, 1, WirePath::new(vec![p(0, 0, 0), p(5, 0, 0)]));
        l.add_wire(1, 2, WirePath::new(vec![p(5, 0, 0), p(12, 0, 0)]));
        assert_eq!(LayoutMetrics::max_routed_path(&l, &g), Some(12));
    }

    #[test]
    fn routed_path_none_on_wire_edge_mismatch() {
        // a layout whose wires do not pair 1:1 with the graph's edges
        // (e.g. loaded from disk) must yield None, not a panic
        let mut b = GraphBuilder::new("p3", 3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let mut l = Layout::new("t", 2);
        l.place_node(0, Rect::new(0, 0, 0, 0));
        l.add_wire(0, 1, WirePath::new(vec![p(0, 0, 0), p(5, 0, 0)]));
        assert_eq!(LayoutMetrics::max_routed_path(&l, &g), None);
    }

    #[test]
    fn total_wire_sums() {
        let mut l = Layout::new("t", 2);
        l.place_node(0, Rect::new(0, 0, 0, 0));
        l.place_node(1, Rect::new(3, 0, 3, 0));
        l.add_wire(0, 1, WirePath::new(vec![p(0, 0, 0), p(3, 0, 0)]));
        l.add_wire(
            0,
            1,
            WirePath::new(vec![p(0, 0, 0), p(0, 1, 0), p(3, 1, 0), p(3, 0, 0)]),
        );
        let m = LayoutMetrics::of(&l);
        assert_eq!(m.total_wire, 3 + 5);
        assert_eq!(m.wire_count, 2);
    }
}
