//! Hashing utilities: a small Fx-style hasher for grid-point occupancy
//! sets, and the workspace's canonical FNV-1a stream digest.
//!
//! The legality checker hashes tens of millions of `Point3`s; SipHash
//! (std's default) is needlessly slow for that and HashDoS is not a
//! concern for a layout checker, so we use the classic
//! multiply-and-rotate Fx construction (as used by rustc; see the Rust
//! Performance Book's Hashing chapter). Implemented locally (~30 lines)
//! rather than pulling in a crate.
//!
//! [`fnv1a`] / [`FNV_BASIS`] are the *stable* content-keying digest:
//! unlike Fx (an in-process hash-table mixer), FNV-1a over a canonical
//! byte encoding is an interchange fingerprint — the conformance
//! harness's lattice digests and the batch engine's spec→layout memo
//! keys both print and compare these values across runs, so the
//! definition lives here, spelled exactly once.

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a offset basis (the standard 64-bit initial state).
pub const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into an FNV-1a digest state. Start from [`FNV_BASIS`]
/// (or any prior digest, for incremental keying) and chain freely:
/// `fnv1a(fnv1a(FNV_BASIS, a), b)` digests the concatenated stream.
pub fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Digest a `u64` in little-endian byte order (canonical encoding for
/// numeric fields in content keys).
pub fn fnv1a_u64(state: u64, word: u64) -> u64 {
    fnv1a(state, &word.to_le_bytes())
}

/// `HashMap`/`HashSet` build-hasher alias using [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A fast, non-cryptographic hasher (Fx construction).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_set_with_fx_works() {
        let mut s: HashSet<(i64, i64, i32), FxBuildHasher> = HashSet::default();
        for x in 0..100 {
            for y in 0..100 {
                assert!(s.insert((x, y, (x % 4) as i32)));
            }
        }
        assert_eq!(s.len(), 10_000);
        assert!(s.contains(&(42, 17, 2)));
        assert!(!s.contains(&(42, 17, 3)));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // published FNV-1a 64-bit test vectors
        assert_eq!(fnv1a(FNV_BASIS, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(FNV_BASIS, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(FNV_BASIS, b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv1a_chains_like_concatenation() {
        let whole = fnv1a(FNV_BASIS, b"hello world");
        let chained = fnv1a(fnv1a(FNV_BASIS, b"hello "), b"world");
        assert_eq!(whole, chained);
        assert_eq!(fnv1a_u64(7, 42), fnv1a(7, &42u64.to_le_bytes()));
    }

    #[test]
    fn distinct_inputs_distinct_hashes_smoke() {
        // not a real collision test, just a sanity check that the hasher
        // is not degenerate
        let mut hashes = HashSet::new();
        for i in 0..1000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            hashes.insert(h.finish());
        }
        assert_eq!(hashes.len(), 1000);
    }
}
