//! A small Fx-style hasher for grid-point occupancy sets.
//!
//! The legality checker hashes tens of millions of `Point3`s; SipHash
//! (std's default) is needlessly slow for that and HashDoS is not a
//! concern for a layout checker, so we use the classic
//! multiply-and-rotate Fx construction (as used by rustc; see the Rust
//! Performance Book's Hashing chapter). Implemented locally (~30 lines)
//! rather than pulling in a crate.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap`/`HashSet` build-hasher alias using [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A fast, non-cryptographic hasher (Fx construction).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_set_with_fx_works() {
        let mut s: HashSet<(i64, i64, i32), FxBuildHasher> = HashSet::default();
        for x in 0..100 {
            for y in 0..100 {
                assert!(s.insert((x, y, (x % 4) as i32)));
            }
        }
        assert_eq!(s.len(), 10_000);
        assert!(s.contains(&(42, 17, 2)));
        assert!(!s.contains(&(42, 17, 3)));
    }

    #[test]
    fn distinct_inputs_distinct_hashes_smoke() {
        // not a real collision test, just a sanity check that the hasher
        // is not degenerate
        let mut hashes = HashSet::new();
        for i in 0..1000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            hashes.insert(h.finish());
        }
        assert_eq!(hashes.len(), 1000);
    }
}
