//! Property-based tests (proptest) for the layout engine: *any* graph
//! placed on a grid realizes to a legal multilayer layout at any layer
//! budget — the strongest invariant of the reproduction.

use mlv_core::prop;
use mlv_core::{mlv_proptest, prop_assert, prop_assert_eq, prop_assume};
use mlv_grid::checker::check;
use mlv_grid::metrics::LayoutMetrics;
use mlv_layout::families;
use mlv_layout::realize::{realize, RealizeOptions};
use mlv_layout::scheme::grid_spec;
use mlv_topology::GraphBuilder;

/// Shared body of `node_side_scaling_is_exact`: grow the node side by
/// `extra` on hypercube(4) at `layers` and require the width to scale
/// exactly by the pitch model. Panics (caught by the property driver)
/// on violation.
fn node_side_scaling_case(extra: usize, layers: usize) {
    let fam = families::hypercube(4);
    let base = realize(&fam.spec, &RealizeOptions::with_layers(layers));
    assert!(check(&base, Some(&fam.graph)).is_legal());
    let base_m = LayoutMetrics::of(&base);
    // base pitch: side s and per-gap tracks derived from the width
    let cols = 4u64;
    let base_pitch = base_m.width / cols;
    // per-gap tracks: the 2-track 2-cube bundle split over ⌊L/2⌋
    // groups; the rest of the pitch is the minimal node side
    let wpl = 2u64.div_ceil(layers as u64 / 2);
    let min_side = base_pitch - wpl;
    let grown = realize(
        &fam.spec,
        &RealizeOptions {
            layers,
            node_side: Some((min_side as usize) + extra),
            jog_strategy: Default::default(),
            pdk: None,
        },
    );
    assert!(check(&grown, Some(&fam.graph)).is_legal());
    let grown_m = LayoutMetrics::of(&grown);
    assert_eq!(grown_m.width, cols * (base_pitch + extra as u64));
}

/// Pinned regression: the minimal case the retired
/// `properties.proptest-regressions` file recorded for
/// `node_side_scaling_is_exact` (`extra = 0, layers = 2` — a
/// `node_side` equal to the minimum side must reproduce the base
/// layout's width exactly). Kept as an explicit test so the case
/// survives the switch to the in-repo property harness, which does not
/// read regression files.
#[test]
fn regression_node_side_scaling_extra0_layers2() {
    node_side_scaling_case(0, 2);
}

mlv_proptest! {
    cases = 64;

    /// Random graphs on random grids realize legally at every layer
    /// budget, and the layout realizes exactly the graph.
    #[test]
    fn random_graphs_realize_legally(
        rows in 2usize..5,
        cols in 2usize..5,
        edges in prop::vec((0u32..25, 0u32..25), 1..40),
        layers in 2usize..9,
    ) {
        let n = rows * cols;
        let mut b = GraphBuilder::new("random", n);
        for (u, v) in edges {
            let (u, v) = (u % n as u32, v % n as u32);
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        prop_assume!(g.edge_count() > 0);
        let spec = grid_spec("random", &g, rows, cols, |u| {
            ((u as usize) / cols, (u as usize) % cols)
        });
        spec.assert_valid();
        let layout = realize(&spec, &RealizeOptions::with_layers(layers));
        let report = check(&layout, Some(&g));
        prop_assert!(report.is_legal(), "errors: {:?}", &report.errors[..report.errors.len().min(3)]);
        prop_assert!(layout.max_used_layer() < layers as i32);
    }

    /// Multigraphs (parallel links) also realize legally.
    #[test]
    fn multigraphs_realize_legally(
        multiplicity in 2usize..5,
        layers in 2usize..7,
    ) {
        let mut b = GraphBuilder::new("multi", 9);
        for m in 0..multiplicity {
            for u in 0..9u32 {
                let v = (u + 1 + m as u32) % 9;
                if u != v {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build();
        let spec = grid_spec("multi", &g, 3, 3, |u| ((u as usize) / 3, (u as usize) % 3));
        let layout = realize(&spec, &RealizeOptions::with_layers(layers));
        prop_assert!(check(&layout, Some(&g)).is_legal());
    }

    /// Growing the node side scales the area exactly by the pitch model
    /// and never breaks legality.
    #[test]
    fn node_side_scaling_is_exact(extra in 0usize..12, layers in 2usize..6) {
        node_side_scaling_case(extra, layers);
        prop_assert!(true);
    }

    /// Area and max wire never increase when the layer budget grows.
    #[test]
    fn monotone_in_layers(k in 3usize..6) {
        let fam = families::karyn_cube(k, 2, false);
        let mut prev_area = u64::MAX;
        let mut prev_wire = u64::MAX;
        for layers in [2usize, 4, 6, 8] {
            let m = LayoutMetrics::of(&fam.realize(layers));
            prop_assert!(m.area <= prev_area);
            prop_assert!(m.max_wire_planar <= prev_wire);
            prev_area = m.area;
            prev_wire = m.max_wire_planar;
        }
    }

    /// Odd layer budgets produce byte-identical metrics to the next
    /// lower even budget (the paper's ⌊L/2⌋ grouping).
    #[test]
    fn odd_equals_even_minus_one(n in 2usize..6, odd in 1usize..4) {
        let layers = 2 * odd + 1;
        let fam = families::hypercube(n);
        let mo = LayoutMetrics::of(&fam.realize(layers));
        let me = LayoutMetrics::of(&fam.realize(layers - 1));
        prop_assert_eq!(mo.area, me.area);
        prop_assert_eq!(mo.max_wire_planar, me.max_wire_planar);
    }

    /// Random graphs realize legally in the 3-D model at every slab
    /// count.
    #[test]
    fn random_graphs_realize_3d_legally(
        rows in 2usize..6,
        cols in 2usize..5,
        edges in prop::vec((0u32..30, 0u32..30), 1..35),
        slab_pow in 0u32..3,
    ) {
        use mlv_layout::realize3d::{realize_3d, Realize3dOptions};
        let la = 1usize << slab_pow;
        let layers = 2 * la; // minimum budget: 2 layers per slab
        let n = rows * cols;
        let mut b = GraphBuilder::new("random3d", n);
        for (u, v) in edges {
            let (u, v) = (u % n as u32, v % n as u32);
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        prop_assume!(g.edge_count() > 0);
        let spec = grid_spec("random3d", &g, rows, cols, |u| {
            ((u as usize) / cols, (u as usize) % cols)
        });
        let layout = realize_3d(
            &spec,
            &Realize3dOptions {
                layers,
                active_layers: la,
                node_side: None,
                pdk: None,
            },
        );
        let report = check(&layout, Some(&g));
        prop_assert!(
            report.is_legal(),
            "LA={la}: {:?}",
            &report.errors[..report.errors.len().min(3)]
        );
    }

    /// 3-D realization with grown node sides stays legal and keeps at
    /// least the slot-pitch height.
    #[test]
    fn stacking_monotone_height(la_pow in 0u32..3) {
        use mlv_layout::realize3d::{realize_3d, Realize3dOptions};
        let fam = families::karyn_cube(4, 2, false);
        let la = 1usize << la_pow;
        let layout = realize_3d(
            &fam.spec,
            &Realize3dOptions {
                layers: 8,
                active_layers: la,
                node_side: Some(12),
                pdk: None,
            },
        );
        prop_assert!(check(&layout, Some(&fam.graph)).is_legal());
        let m = LayoutMetrics::of(&layout);
        // 4 rows over la slabs -> ceil(4/la) slots of pitch >= 12
        prop_assert!(m.height >= (4usize.div_ceil(la) * 12) as u64);
    }

    /// Every built-in family realizes legally for random parameters.
    #[test]
    fn family_sampler(which in 0usize..8, layers in 2usize..6) {
        let fam = match which {
            0 => families::hypercube(5),
            1 => families::karyn_cube(4, 2, false),
            2 => families::genhyper(&[5, 4]),
            3 => families::ccc(3),
            4 => families::butterfly(3),
            5 => families::hsn(2, 5),
            6 => families::folded_hypercube(4),
            _ => families::isn(2, 3),
        };
        let layout = fam.realize(layers);
        prop_assert!(check(&layout, Some(&fam.graph)).is_legal());
    }
}
