//! Scratch-pool equivalence and panic-safety tests.
//!
//! The arena layer (thread-local realize scratch, the engine's
//! [`ScratchPool`], and the `recycle` buffer hand-back) is pure
//! mechanism: it must never change a single byte of any result. These
//! suites pin that down two ways — property tests comparing pooled
//! runs against the `MLV_FRESH_ALLOC`-style fresh-allocation mode
//! (`reuse_scratch: false` / [`mlv_layout::realize_fresh`]), and an
//! edge test proving a job that panics mid-pipeline poisons neither
//! the pool nor any later result.

use mlv_core::{mlv_proptest, prop_assert, prop_assert_eq};
use mlv_layout::engine::{lattice_jobs, Engine, EngineOptions, JobResult};
use mlv_layout::spec::{OrthogonalSpec, RowWire};
use mlv_layout::{families, registry};
use mlv_layout::{realize, realize_fresh, recycle, RealizeOptions};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Run one seeded lattice batch and return everything observable about
/// it: per-job report lines, cache counters, and the deterministic
/// trace view (span counts, engine counters, value histograms).
fn observe(seed: u64, cases: usize, reuse_scratch: bool) -> (Vec<String>, String, Vec<String>) {
    let jobs = lattice_jobs(seed, cases);
    let mut engine = Engine::new(EngineOptions {
        reuse_scratch,
        ..EngineOptions::default()
    });
    let trace = mlv_core::trace::Trace::new();
    let report = trace.collect(|| engine.run(&jobs));
    let lines = report.results.iter().map(JobResult::json_line).collect();
    let cache = format!("{:?}", report.cache);
    (lines, cache, trace.aggregate().deterministic_lines())
}

mlv_proptest! {
    cases = 8;

    /// Engine batches are byte-identical with the scratch pool on and
    /// in fresh-allocation debug mode — results, cache counters, and
    /// the aggregate trace (counter values, span/histogram counts).
    #[test]
    fn engine_pooling_never_changes_results(seed in 0u64..1_000_000, cases in 1usize..3) {
        let (pooled, pooled_cache, pooled_trace) = observe(seed, cases, true);
        let (fresh, fresh_cache, fresh_trace) = observe(seed, cases, false);
        prop_assert_eq!(&pooled, &fresh);
        prop_assert_eq!(&pooled_cache, &fresh_cache);
        prop_assert_eq!(&pooled_trace, &fresh_trace);
        prop_assert!(!pooled.is_empty());
    }

    /// The thread-local realize scratch (with recycled layout buffers
    /// fed back in between) emits the same bytes as a cold
    /// fresh-allocation realize, across families, draws, and layer
    /// budgets.
    #[test]
    fn recycled_realize_matches_fresh(seed in 0u64..1_000_000, fi in 0usize..13, li in 0usize..4) {
        let entry = &registry::REGISTRY[fi % registry::REGISTRY.len()];
        let Some(lattice) = &entry.lattice else {
            return Err(mlv_core::prop::CaseError::Reject);
        };
        let mut rng = mlv_core::rng::Rng::seed_from_u64(seed);
        let draw = (lattice.draw)(&mut rng);
        let layers = registry::LAYER_POOL[li % registry::LAYER_POOL.len()];
        let opts = RealizeOptions::with_layers(layers);
        let reference = mlv_grid::io::write_layout(&realize_fresh(&draw.family.spec, &opts));
        // three warm iterations: scratch dirty from *this* spec, not
        // just whatever the previous property case left behind
        for _ in 0..3 {
            let pooled = realize(&draw.family.spec, &opts);
            let text = mlv_grid::io::write_layout(&pooled);
            recycle(pooled);
            prop_assert_eq!(&text, &reference);
        }
    }
}

#[test]
fn engine_pooling_never_changes_results_prop() {
    engine_pooling_never_changes_results();
}

#[test]
fn recycled_realize_matches_fresh_prop() {
    recycled_realize_matches_fresh();
}

/// A job whose spec indexes out of bounds panics mid-pipeline. The
/// engine checks scratch out of the pool *by value*, so the unwind
/// drops that scratch; the pool must stay usable and every later
/// result must match a never-panicked engine byte for byte.
#[test]
fn pool_survives_a_panicked_job() {
    let mut bad = OrthogonalSpec::new("corrupt", 2, 2);
    bad.row_wires.push(RowWire {
        row: 9, // out of range: placement indexes past the grid
        lo: 0,
        hi: 1,
        track: 0,
    });
    let bad_job = mlv_layout::engine::Job::new(
        "corrupt",
        mlv_layout::families::Family {
            graph: mlv_topology::hypercube::hypercube(2),
            spec: bad,
        },
        4,
    );
    let good_jobs = lattice_jobs(2000, 1);

    let mut engine = Engine::new(EngineOptions {
        reuse_scratch: true,
        ..EngineOptions::default()
    });
    // warm the pool, then panic a job on the warmed scratch
    let warm = engine.run(&good_jobs);
    let panicked = catch_unwind(AssertUnwindSafe(|| {
        engine.run(std::slice::from_ref(&bad_job))
    }));
    assert!(panicked.is_err(), "corrupt spec must panic the batch");

    // the same engine keeps producing byte-identical outcomes (the
    // `cached` flag legitimately flips once the memo cache is warm,
    // so compare outcome content, not report lines)...
    let after = engine.run(&good_jobs);
    let lines = |r: &mlv_layout::engine::BatchReport| {
        r.results
            .iter()
            .map(|res| {
                let o = &res.outcome;
                format!(
                    "{}|{:016x}|{:?}|{:?}",
                    res.label, o.digest, o.metrics, o.check
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(lines(&warm), lines(&after));
    // ...and so does a fresh engine that never saw the panic
    let mut control = Engine::new(EngineOptions {
        reuse_scratch: true,
        ..EngineOptions::default()
    });
    assert_eq!(lines(&control.run(&good_jobs)), lines(&after));
}

/// Same edge for the thread-local realize scratch: a panicked realize
/// leaves the thread-local in whatever state the unwind found, and the
/// next realize on this thread must still be byte-correct.
#[test]
fn thread_local_scratch_survives_a_panicked_realize() {
    let fam = families::hypercube(3);
    let opts = RealizeOptions::with_layers(4);
    let reference = mlv_grid::io::write_layout(&realize_fresh(&fam.spec, &opts));

    let mut bad = OrthogonalSpec::new("corrupt", 2, 2);
    bad.row_wires.push(RowWire {
        row: 9,
        lo: 0,
        hi: 1,
        track: 0,
    });
    for _ in 0..2 {
        let r = catch_unwind(AssertUnwindSafe(|| realize(&bad, &opts)));
        assert!(r.is_err(), "corrupt spec must panic");
        let layout = realize(&fam.spec, &opts);
        assert_eq!(mlv_grid::io::write_layout(&layout), reference);
        recycle(layout);
    }
}
