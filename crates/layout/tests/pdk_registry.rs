//! Registry completeness on a real technology stack: every lattice
//! family realizes legally — including direction and pitch legality —
//! on the built-in `hv6` stack across its seeded parameter pool, and
//! the engine's physical metrics surface for every job.

use mlv_grid::pdk::Pdk;
use mlv_layout::engine::{lattice_jobs_with_pdk, CheckStatus, Engine, EngineOptions};
use mlv_layout::registry;
use std::collections::BTreeSet;

#[test]
fn every_lattice_family_is_hv6_clean() {
    let hv6 = Pdk::hv6();
    let jobs = lattice_jobs_with_pdk(2000, 4, Some(&hv6));
    assert!(!jobs.is_empty());
    // the lattice reaches every registry family that advertises one
    // (job labels are "<keyword>:<params> L=<l>")
    let keywords: BTreeSet<&str> = jobs
        .iter()
        .filter_map(|j| j.label.split(':').next())
        .collect();
    let advertised = registry::REGISTRY
        .iter()
        .filter(|e| e.lattice.is_some())
        .count();
    assert_eq!(keywords.len(), advertised, "keywords: {keywords:?}");

    let mut engine = Engine::new(EngineOptions {
        check: true,
        ..EngineOptions::default()
    });
    let report = engine.run(&jobs);
    assert_eq!(report.results.len(), jobs.len());
    for r in &report.results {
        if let CheckStatus::Illegal(why) = &r.outcome.check {
            panic!("hv6 illegal [{}]: {why}", r.label);
        }
        let ph = r
            .outcome
            .physical
            .as_ref()
            .unwrap_or_else(|| panic!("[{}] no physical metrics", r.label));
        assert_eq!(ph.pdk, "hv6", "{}", r.label);
        // pitch-weighting can only grow the unit-grid numbers
        assert!(ph.area >= r.outcome.metrics.area, "{}", r.label);
        assert!(ph.wirelength >= r.outcome.metrics.total_wire, "{}", r.label);
    }
}

#[test]
fn uniform_lattice_jobs_reproduce_the_pdk_free_lattice() {
    let uniform = Pdk::uniform(8);
    let with = lattice_jobs_with_pdk(7, 3, Some(&uniform));
    let without = mlv_layout::engine::lattice_jobs(7, 3);
    assert_eq!(with.len(), without.len());
    for (a, b) in with.iter().zip(&without) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.layers, b.layers);
    }
    // an explicit uniform stack produces byte-identical engine output
    let mut e1 = Engine::new(EngineOptions::default());
    let mut e2 = Engine::new(EngineOptions::default());
    let r1 = e1.run(&with);
    let r2 = e2.run(&without);
    let l1: Vec<String> = r1.results.iter().map(|r| r.json_line()).collect();
    let l2: Vec<String> = r2.results.iter().map(|r| r.json_line()).collect();
    assert_eq!(l1, l2);
}
