//! Failure injection: start from known-legal layouts and corrupt them
//! in every way the model forbids; the checker must catch each one.
//! This is the guarantee that "checker-verified" means something.
//!
//! The injection strategies live in `mlv_conformance::inject` (a
//! dev-dependency; cargo allows the cycle because it only exists for
//! tests) so this suite and the cross-family conformance harness stress
//! the same defect models. On top of the shared strategies this file
//! keeps the defect shapes the strategies don't model — mid-path layer
//! escapes, detours below the die, reroutes through foreign nodes —
//! and the random-perturbation properties.

use mlv_conformance::inject::{inject, inject_with_pdk, Strategy};
use mlv_core::rng::Rng;
use mlv_core::{mlv_proptest, prop_assert, prop_assume};
use mlv_grid::checker::{check, CheckError};
use mlv_grid::geom::Point3;
use mlv_grid::layout::Layout;
use mlv_grid::path::WirePath;
use mlv_layout::families;
use mlv_topology::Graph;

fn legal_layout() -> (Layout, Graph) {
    let fam = families::hypercube(4);
    let layout = fam.realize(4);
    assert!(check(&layout, Some(&fam.graph)).is_legal());
    (layout, fam.graph)
}

/// Every shared injection strategy at several seeded locations: the
/// defect must apply, and the checker must report the strategy's
/// guaranteed error kind.
#[test]
fn every_strategy_caught_at_seeded_locations() {
    for strategy in Strategy::ALL {
        for seed in 0..5u64 {
            let (mut layout, graph) = legal_layout();
            let mut rng = Rng::seed_from_u64(seed);
            let done = inject(&mut layout, strategy, &mut rng)
                .unwrap_or_else(|| panic!("{} not applicable to hypercube(4)", strategy.name()));
            let r = check(&layout, Some(&graph));
            assert!(
                r.errors
                    .iter()
                    .any(|e| e.kind() == strategy.expected_kind()),
                "{} ({}) escaped: expected {}, got {:?}",
                strategy.name(),
                done.detail,
                strategy.expected_kind(),
                r.errors.iter().map(|e| e.kind()).collect::<Vec<_>>()
            );
        }
    }
}

/// Completeness: the strategy set guarantees every `CheckError` variant
/// — this test fails naming any variant no strategy can trigger.
#[test]
fn strategies_cover_every_check_error_variant() {
    let uncovered = mlv_conformance::inject::uncovered_kinds();
    assert!(
        uncovered.is_empty(),
        "CheckError variants without an injection strategy: {uncovered:?}"
    );
    // and the guarantee is dynamic, not just declared: collect the kinds
    // actually reported across one injection of each strategy (the two
    // PDK strategies need a non-uniform stack and the PDK-aware checker)
    let mut seen = std::collections::BTreeSet::new();
    for strategy in Strategy::ALL_WITH_PDK {
        let hv6 = strategy.needs_pdk().then(mlv_grid::pdk::Pdk::hv6);
        let fam = families::hypercube(4);
        let mut layout = match &hv6 {
            Some(pdk) => mlv_layout::realize_fresh(
                &fam.spec,
                &mlv_layout::RealizeOptions::with_pdk(4, pdk.clone()),
            ),
            None => fam.realize(4),
        };
        let mut rng = Rng::seed_from_u64(1);
        if inject_with_pdk(&mut layout, strategy, &mut rng, hv6.as_ref()).is_some() {
            let report = match &hv6 {
                Some(pdk) => mlv_grid::checker::check_with_pdk(&layout, Some(&fam.graph), pdk),
                None => check(&layout, Some(&fam.graph)),
            };
            seen.extend(report.errors.iter().map(|e| e.kind()));
        }
    }
    let missing: Vec<&str> = CheckError::KINDS
        .iter()
        .copied()
        .filter(|k| !seen.contains(k))
        .collect();
    assert!(
        missing.is_empty(),
        "CheckError variants never reported for any injection: {missing:?}"
    );
}

#[test]
fn catches_mid_path_layer_escape() {
    let (mut layout, graph) = legal_layout();
    // push one wire's middle corners above the budget (terminals stay
    // put — the defect the uniform z-shift strategy cannot produce)
    let path = &layout.wires[0].path;
    let corners: Vec<Point3> = path
        .corners()
        .iter()
        .map(|c| {
            if c.z > 0 {
                Point3::new(c.x, c.y, c.z + 10)
            } else {
                *c
            }
        })
        .collect();
    layout.wires[0].path = WirePath::new(corners);
    let r = check(&layout, Some(&graph));
    assert!(r
        .errors
        .iter()
        .any(|e| matches!(e, CheckError::LayerOutOfRange { .. })));
}

#[test]
fn catches_detour_below_the_die() {
    let (mut layout, graph) = legal_layout();
    // legal terminals, but the route dips to z = -1 in between
    let start = layout.wires[0].path.start();
    let end = layout.wires[0].path.end();
    layout.wires[0].path = WirePath::new(vec![
        start,
        Point3::new(start.x, start.y, -1),
        Point3::new(end.x, start.y, -1),
        Point3::new(end.x, end.y, -1),
        end,
    ]);
    let r = check(&layout, Some(&graph));
    assert!(r
        .errors
        .iter()
        .any(|e| matches!(e, CheckError::LayerOutOfRange { .. })));
}

#[test]
fn catches_wire_dragged_through_node() {
    let (mut layout, graph) = legal_layout();
    // reroute one wire straight through the middle of the die at z=0
    let w = layout.wires[0].clone();
    let start = w.path.start();
    let end = w.path.end();
    layout.wires[0].path = WirePath::new(vec![start, Point3::new(end.x, start.y, 0), end]);
    let r = check(&layout, Some(&graph));
    assert!(!r.is_legal(), "reroute through the die undetected");
}

mlv_proptest! {
    cases = 48;

    /// Randomly perturbing one corner of one wire never makes the
    /// checker panic, and if the perturbed layout differs at all in its
    /// occupied points it is (almost always) caught; we only assert
    /// no-panic + classification stability here.
    #[test]
    fn random_corner_perturbation_never_panics(
        wire_idx in 0usize..32,
        corner_idx in 0usize..8,
        dx in -3i64..4,
        dy in -3i64..4,
    ) {
        let (mut layout, graph) = legal_layout();
        let wi = wire_idx % layout.wires.len();
        let corners = layout.wires[wi].path.corners().to_vec();
        let ci = corner_idx % corners.len();
        let mut new_corners = corners.clone();
        new_corners[ci] = Point3::new(
            corners[ci].x + dx,
            corners[ci].y + dy,
            corners[ci].z,
        );
        layout.wires[wi].path = WirePath::new(new_corners);
        let _ = check(&layout, Some(&graph)); // must not panic
    }

    /// Swapping two wires' paths (keeping endpoint claims) is always
    /// caught unless the wires join the same node pair.
    #[test]
    fn swapped_paths_detected(a in 0usize..32, b in 0usize..32) {
        let (mut layout, graph) = legal_layout();
        let (a, b) = (a % layout.wires.len(), b % layout.wires.len());
        prop_assume!(a != b);
        let same_pair = {
            let (wa, wb) = (&layout.wires[a], &layout.wires[b]);
            (wa.u.min(wa.v), wa.u.max(wa.v)) == (wb.u.min(wb.v), wb.u.max(wb.v))
        };
        prop_assume!(!same_pair);
        let pa = layout.wires[a].path.clone();
        let pb = layout.wires[b].path.clone();
        layout.wires[a].path = pb;
        layout.wires[b].path = pa;
        let r = check(&layout, Some(&graph));
        prop_assert!(!r.is_legal());
    }

    /// Shared strategies applied at fully random seeds keep being
    /// caught (the seeded-location test pins 5 seeds; this sweeps).
    #[test]
    fn strategies_caught_at_random_seeds(which in 0usize..10, seed in 0u64..10_000) {
        let strategy = Strategy::ALL[which % Strategy::ALL.len()];
        let (mut layout, graph) = legal_layout();
        let mut rng = Rng::seed_from_u64(seed);
        prop_assume!(inject(&mut layout, strategy, &mut rng).is_some());
        let r = check(&layout, Some(&graph));
        prop_assert!(
            r.errors.iter().any(|e| e.kind() == strategy.expected_kind()),
            "{} escaped at seed {}", strategy.name(), seed
        );
    }
}
