//! Failure injection: start from known-legal layouts and corrupt them
//! in every way the model forbids; the checker must catch each one.
//! This is the guarantee that "checker-verified" means something.

use mlv_core::{mlv_proptest, prop_assert, prop_assume};
use mlv_grid::checker::{check, CheckError};
use mlv_grid::geom::{Point3, Rect};
use mlv_grid::layout::Layout;
use mlv_grid::path::WirePath;
use mlv_layout::families;
use mlv_topology::Graph;

fn legal_layout() -> (Layout, Graph) {
    let fam = families::hypercube(4);
    let layout = fam.realize(4);
    assert!(check(&layout, Some(&fam.graph)).is_legal());
    (layout, fam.graph)
}

#[test]
fn catches_deleted_wire() {
    let (mut layout, graph) = legal_layout();
    layout.wires.pop();
    let r = check(&layout, Some(&graph));
    assert!(r
        .errors
        .iter()
        .any(|e| matches!(e, CheckError::TopologyMismatch { .. })));
}

#[test]
fn catches_duplicated_wire() {
    let (mut layout, graph) = legal_layout();
    let w = layout.wires[0].clone();
    layout.wires.push(w);
    let r = check(&layout, Some(&graph));
    // duplicate occupies the same points AND breaks the multiset
    assert!(r
        .errors
        .iter()
        .any(|e| matches!(e, CheckError::WireConflict { .. })));
    assert!(r
        .errors
        .iter()
        .any(|e| matches!(e, CheckError::TopologyMismatch { .. })));
}

#[test]
fn catches_rewired_endpoints() {
    let (mut layout, graph) = legal_layout();
    // claim the wire connects a different pair (geometry unchanged)
    let (u, v) = (layout.wires[0].u, layout.wires[0].v);
    layout.wires[0].u = (u + 1) % 16;
    let r = check(&layout, Some(&graph));
    assert!(!r.is_legal(), "rewiring {u}->{} undetected", (u + 1) % 16);
    let _ = v;
}

#[test]
fn catches_layer_escape() {
    let (mut layout, graph) = legal_layout();
    // push one wire's middle corners above the budget
    let path = &layout.wires[0].path;
    let corners: Vec<Point3> = path
        .corners()
        .iter()
        .map(|c| {
            if c.z > 0 {
                Point3::new(c.x, c.y, c.z + 10)
            } else {
                *c
            }
        })
        .collect();
    layout.wires[0].path = WirePath::new(corners);
    let r = check(&layout, Some(&graph));
    assert!(r
        .errors
        .iter()
        .any(|e| matches!(e, CheckError::LayerOutOfRange { .. })));
}

#[test]
fn catches_negative_layer() {
    let (mut layout, graph) = legal_layout();
    let start = layout.wires[0].path.start();
    let end = layout.wires[0].path.end();
    layout.wires[0].path = WirePath::new(vec![
        start,
        Point3::new(start.x, start.y, -1),
        Point3::new(end.x, start.y, -1),
        Point3::new(end.x, end.y, -1),
        end,
    ]);
    let r = check(&layout, Some(&graph));
    assert!(r
        .errors
        .iter()
        .any(|e| matches!(e, CheckError::LayerOutOfRange { .. })));
}

#[test]
fn catches_moved_node() {
    let (mut layout, graph) = legal_layout();
    // translate one node footprint away from its terminals
    let r0 = layout.nodes[0].rect;
    layout.nodes[0].rect = Rect::new(r0.x0 + 1000, r0.y0, r0.x1 + 1000, r0.y1);
    let r = check(&layout, Some(&graph));
    assert!(r
        .errors
        .iter()
        .any(|e| matches!(e, CheckError::BadTerminal { .. })));
}

#[test]
fn catches_overlapping_footprints() {
    let (mut layout, graph) = legal_layout();
    let r1 = layout.nodes[1].rect;
    layout.nodes[0].rect = r1;
    let r = check(&layout, Some(&graph));
    assert!(r
        .errors
        .iter()
        .any(|e| matches!(e, CheckError::NodeOverlap { .. })));
}

#[test]
fn catches_wire_dragged_through_node() {
    let (mut layout, graph) = legal_layout();
    // reroute one wire straight through the middle of the die at z=0
    let w = layout.wires[0].clone();
    let start = w.path.start();
    let end = w.path.end();
    layout.wires[0].path = WirePath::new(vec![start, Point3::new(end.x, start.y, 0), end]);
    let r = check(&layout, Some(&graph));
    assert!(!r.is_legal(), "reroute through the die undetected");
}

mlv_proptest! {
    cases = 48;

    /// Randomly perturbing one corner of one wire never makes the
    /// checker panic, and if the perturbed layout differs at all in its
    /// occupied points it is (almost always) caught; we only assert
    /// no-panic + classification stability here.
    #[test]
    fn random_corner_perturbation_never_panics(
        wire_idx in 0usize..32,
        corner_idx in 0usize..8,
        dx in -3i64..4,
        dy in -3i64..4,
    ) {
        let (mut layout, graph) = legal_layout();
        let wi = wire_idx % layout.wires.len();
        let corners = layout.wires[wi].path.corners().to_vec();
        let ci = corner_idx % corners.len();
        let mut new_corners = corners.clone();
        new_corners[ci] = Point3::new(
            corners[ci].x + dx,
            corners[ci].y + dy,
            corners[ci].z,
        );
        layout.wires[wi].path = WirePath::new(new_corners);
        let _ = check(&layout, Some(&graph)); // must not panic
    }

    /// Swapping two wires' paths (keeping endpoint claims) is always
    /// caught unless the wires join the same node pair.
    #[test]
    fn swapped_paths_detected(a in 0usize..32, b in 0usize..32) {
        let (mut layout, graph) = legal_layout();
        let (a, b) = (a % layout.wires.len(), b % layout.wires.len());
        prop_assume!(a != b);
        let same_pair = {
            let (wa, wb) = (&layout.wires[a], &layout.wires[b]);
            (wa.u.min(wa.v), wa.u.max(wa.v)) == (wb.u.min(wb.v), wb.u.max(wb.v))
        };
        prop_assume!(!same_pair);
        let pa = layout.wires[a].path.clone();
        let pb = layout.wires[b].path.clone();
        layout.wires[a].path = pb;
        layout.wires[b].path = pa;
        let r = check(&layout, Some(&graph));
        prop_assert!(!r.is_legal());
    }
}
