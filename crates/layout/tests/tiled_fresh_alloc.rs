//! The tiled-vs-flat lattice identity sweep under the
//! fresh-allocation debug mode. `MLV_FRESH_ALLOC` is read per
//! realization but is process-global state, so this sweep lives in its
//! own test binary (one test, no parallel siblings to race with) and
//! sets the variable before any layout work.

use mlv_core::rng::Rng;
use mlv_layout::engine::layout_digest;
use mlv_layout::registry::{self, LAYER_POOL};
use mlv_layout::RealizeOptions;

#[test]
fn lattice_materialize_matches_flat_fresh_alloc() {
    std::env::set_var("MLV_FRESH_ALLOC", "1");
    let mut checked = 0;
    for entry in registry::REGISTRY {
        let Some(lattice) = &entry.lattice else {
            continue;
        };
        let mut rng = Rng::seed_from_u64(2000);
        let draw = (lattice.draw)(&mut rng);
        for &layers in &LAYER_POOL {
            let opts = RealizeOptions::with_layers(layers);
            let flat = mlv_layout::realize_fresh(&draw.family.spec, &opts);
            let tiled = mlv_layout::realize_tiled(&draw.family.spec, &opts);
            assert_eq!(
                layout_digest(&tiled.materialize()),
                layout_digest(&flat),
                "{} @ L={layers}: tiled materialization diverged under fresh alloc",
                draw.label
            );
            checked += 1;
        }
    }
    assert!(checked >= LAYER_POOL.len(), "lattice sweep was empty");
}
