//! Tiled-vs-flat byte-identity across the registry's lattice
//! vocabulary: for every lattice-bearing family and every layer budget
//! in the pool, materializing the tiled IR must serialize to exactly
//! the bytes the flat realizer emits — pinned via the engine's FNV
//! layout digest, under both the sequential and the parallel emit
//! paths (`MLV_THREADS` 1 vs 8).
//!
//! The fresh-allocation variant of the same sweep lives in
//! `tests/tiled_fresh_alloc.rs` (its own binary: `MLV_FRESH_ALLOC` is
//! process-global).

use mlv_core::rng::Rng;
use mlv_layout::engine::layout_digest;
use mlv_layout::registry::{self, LAYER_POOL};
use mlv_layout::RealizeOptions;

const SEED: u64 = 2000;

/// Realize every (lattice family, L) pair both ways and compare
/// digests; returns the number of pairs checked.
fn sweep_identity() -> usize {
    let mut checked = 0;
    for entry in registry::REGISTRY {
        let Some(lattice) = &entry.lattice else {
            continue;
        };
        let mut rng = Rng::seed_from_u64(SEED);
        let draw = (lattice.draw)(&mut rng);
        for &layers in &LAYER_POOL {
            let opts = RealizeOptions::with_layers(layers);
            let flat = draw.family.realize_with(&opts);
            let tiled = mlv_layout::realize_tiled(&draw.family.spec, &opts);
            assert_eq!(
                layout_digest(&tiled.materialize()),
                layout_digest(&flat),
                "{} @ L={layers}: tiled materialization diverged from flat",
                draw.label
            );
            checked += 1;
        }
    }
    checked
}

#[test]
fn lattice_materialize_matches_flat_sequential() {
    let checked = mlv_core::exec::with_thread_count(1, sweep_identity);
    assert!(checked >= LAYER_POOL.len(), "lattice sweep was empty");
}

#[test]
fn lattice_materialize_matches_flat_parallel() {
    // MLV_PAR_WIRES=1 in CI forces the parallel emit path even for the
    // small lattice shapes; locally this still exercises the pooled
    // sequential path plus thread-count independence of the pipeline
    let checked = mlv_core::exec::with_thread_count(8, sweep_identity);
    assert!(checked >= LAYER_POOL.len(), "lattice sweep was empty");
}
