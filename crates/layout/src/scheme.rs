//! The recursive grid layout scheme (paper §2.3), in its generic form:
//! place nodes on a grid, classify every link as a row wire, a column
//! wire, or a jog, and colour the tracks greedily (optimal per line for
//! the chosen order).
//!
//! This is the workhorse behind every PN-cluster family (butterfly,
//! CCC, reduced hypercubes, HSN/HHN/ISN, k-ary n-cube cluster-c) and
//! the fallback for arbitrary graphs (star graphs and the other Cayley
//! families the paper defers): the *product* families keep their exact
//! constructive track counts via [`crate::product`], while cluster
//! families get greedy counts that match the constructions
//! asymptotically (greedy interval colouring is exactly optimal for the
//! given node order).

use crate::spec::{ColWire, JogWire, OrthogonalSpec, RowWire};
use mlv_topology::{Graph, NodeId};
use std::collections::BTreeMap;

/// Open-interval greedy colouring (touch at a shared slot allowed) —
/// returns per-span tracks.
fn color_open(spans: &[(usize, usize)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| spans[i]);
    let mut track_end: Vec<usize> = Vec::new();
    let mut colors = vec![0usize; spans.len()];
    for &i in &order {
        let (lo, hi) = spans[i];
        let mut assigned = None;
        for (t, end) in track_end.iter_mut().enumerate() {
            if *end <= lo {
                *end = hi;
                assigned = Some(t);
                break;
            }
        }
        colors[i] = assigned.unwrap_or_else(|| {
            track_end.push(hi);
            track_end.len() - 1
        });
    }
    colors
}

/// Build an orthogonal spec for an arbitrary graph from a grid
/// placement. `position(node)` must be injective and fill the grid
/// exactly (`rows·cols = node count`).
///
/// Every edge becomes: a **row wire** if its endpoints share a row, a
/// **col wire** if they share a column, a **jog** otherwise. Row/col
/// tracks are coloured greedily per line.
pub fn grid_spec(
    name: impl Into<String>,
    graph: &Graph,
    rows: usize,
    cols: usize,
    position: impl Fn(NodeId) -> (usize, usize),
) -> OrthogonalSpec {
    assert_eq!(
        rows * cols,
        graph.node_count(),
        "grid must be filled exactly"
    );
    let mut spec = OrthogonalSpec::new(name, rows, cols);
    let mut filled = vec![false; rows * cols];
    for u in graph.node_ids() {
        let (r, c) = position(u);
        assert!(r < rows && c < cols, "position out of range for node {u}");
        let idx = r * cols + c;
        assert!(!filled[idx], "two nodes at grid cell ({r},{c})");
        filled[idx] = true;
        spec.node_at[idx] = u;
    }
    // classify edges
    let mut row_spans: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    let mut col_spans: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    let mut row_edges: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut col_edges: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for e in graph.edge_ids() {
        let (u, v) = graph.endpoints(e);
        let (ru, cu) = position(u);
        let (rv, cv) = position(v);
        if ru == rv {
            row_spans
                .entry(ru)
                .or_default()
                .push((cu.min(cv), cu.max(cv)));
            row_edges.entry(ru).or_default().push(e as usize);
        } else if cu == cv {
            col_spans
                .entry(cu)
                .or_default()
                .push((ru.min(rv), ru.max(rv)));
            col_edges.entry(cu).or_default().push(e as usize);
        } else {
            // orient the jog deterministically: vertical run at the
            // lower-row endpoint
            let (a, b) = if ru < rv {
                ((ru, cu), (rv, cv))
            } else {
                ((rv, cv), (ru, cu))
            };
            spec.jog_wires.push(JogWire { a, b });
        }
    }
    for (r, spans) in &row_spans {
        let colors = color_open(spans);
        for (i, &(lo, hi)) in spans.iter().enumerate() {
            spec.row_wires.push(RowWire {
                row: *r,
                lo,
                hi,
                track: colors[i],
            });
        }
    }
    for (c, spans) in &col_spans {
        let colors = color_open(spans);
        for (i, &(lo, hi)) in spans.iter().enumerate() {
            spec.col_wires.push(ColWire {
                col: *c,
                lo,
                hi,
                track: colors[i],
            });
        }
    }
    spec
}

/// Append extra links (e.g. the folded hypercube's diameter links,
/// §5.3) to an existing spec: same-row links get fresh tracks *above*
/// that row's construction tracks, same-column links likewise, and
/// cross links become jogs. Links are `(node_u, node_v)` pairs.
pub fn append_extra_links(spec: &mut OrthogonalSpec, links: &[(NodeId, NodeId)]) {
    // node -> (row, col)
    let mut pos: BTreeMap<NodeId, (usize, usize)> = BTreeMap::new();
    for r in 0..spec.rows {
        for c in 0..spec.cols {
            pos.insert(spec.node(r, c), (r, c));
        }
    }
    let mut row_extra: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    let mut col_extra: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    for &(u, v) in links {
        let (ru, cu) = pos[&u];
        let (rv, cv) = pos[&v];
        if ru == rv {
            row_extra
                .entry(ru)
                .or_default()
                .push((cu.min(cv), cu.max(cv)));
        } else if cu == cv {
            col_extra
                .entry(cu)
                .or_default()
                .push((ru.min(rv), ru.max(rv)));
        } else {
            let (a, b) = if ru < rv {
                ((ru, cu), (rv, cv))
            } else {
                ((rv, cv), (ru, cu))
            };
            spec.jog_wires.push(JogWire { a, b });
        }
    }
    for (r, spans) in &row_extra {
        let base = spec.row_tracks(*r);
        let colors = color_open(spans);
        for (i, &(lo, hi)) in spans.iter().enumerate() {
            spec.row_wires.push(RowWire {
                row: *r,
                lo,
                hi,
                track: base + colors[i],
            });
        }
    }
    for (c, spans) in &col_extra {
        let base = spec.col_tracks(*c);
        let colors = color_open(spans);
        for (i, &(lo, hi)) in spans.iter().enumerate() {
            spec.col_wires.push(ColWire {
                col: *c,
                lo,
                hi,
                track: base + colors[i],
            });
        }
    }
}

/// Near-square factorization `rows × cols = n` with `rows ≤ cols`,
/// used to arrange arbitrary node counts on a grid.
pub fn near_square(n: usize) -> (usize, usize) {
    assert!(n >= 1);
    let mut best = (1, n);
    let mut r = 1;
    while r * r <= n {
        if n.is_multiple_of(r) {
            best = (r, n / r);
        }
        r += 1;
    }
    best
}

/// Labels for the Fig. 1 block-diagram render of the recursive grid
/// scheme: an l-level hierarchy's level-`l` blocks arranged as a grid.
pub fn figure1_labels(rows: usize, cols: usize) -> Vec<Vec<String>> {
    (0..rows)
        .map(|r| (0..cols).map(|c| format!("B{}{}", r, c)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realize::{realize, RealizeOptions};
    use mlv_grid::checker;
    use mlv_topology::cayley::star;
    use mlv_topology::karyn::KaryNCube;

    #[test]
    fn grid_spec_matches_graph() {
        let t = KaryNCube::torus(4, 2);
        let spec = grid_spec("t", &t.graph, 4, 4, |u| {
            ((u as usize) / 4, (u as usize) % 4)
        });
        spec.assert_valid();
        assert_eq!(spec.edge_multiset(), t.graph.edge_multiset());
        // natural torus placement: every link is a row or col wire
        assert!(spec.jog_wires.is_empty());
        let l = realize(&spec, &RealizeOptions::with_layers(4));
        checker::assert_legal(&l, Some(&t.graph));
    }

    #[test]
    fn arbitrary_graph_with_jogs_realizes() {
        let g = star(4); // 24 nodes
        let (rows, cols) = near_square(24);
        let spec = grid_spec("star4", &g, rows, cols, |u| {
            ((u as usize) / cols, (u as usize) % cols)
        });
        spec.assert_valid();
        assert_eq!(spec.edge_multiset(), g.edge_multiset());
        for layers in [2usize, 4] {
            let l = realize(&spec, &RealizeOptions::with_layers(layers));
            checker::assert_legal(&l, Some(&g));
        }
    }

    #[test]
    fn extra_links_appended_legally() {
        use mlv_topology::GraphBuilder;
        let t = KaryNCube::torus(3, 2);
        let spec0 = grid_spec("t", &t.graph, 3, 3, |u| {
            ((u as usize) / 3, (u as usize) % 3)
        });
        let mut spec = spec0.clone();
        // add diagonal links
        let extra = vec![(0u32, 8u32), (2, 6), (0, 2)];
        append_extra_links(&mut spec, &extra);
        spec.assert_valid();
        // reference graph with extras
        let mut b = GraphBuilder::new("t+", 9);
        for e in t.graph.edge_ids() {
            let (u, v) = t.graph.endpoints(e);
            b.add_edge(u, v);
        }
        for &(u, v) in &extra {
            b.add_edge(u, v);
        }
        let g = b.build();
        let l = realize(&spec, &RealizeOptions::with_layers(4));
        checker::assert_legal(&l, Some(&g));
    }

    #[test]
    fn near_square_factors() {
        assert_eq!(near_square(24), (4, 6));
        assert_eq!(near_square(16), (4, 4));
        assert_eq!(near_square(7), (1, 7));
        assert_eq!(near_square(1), (1, 1));
    }

    #[test]
    fn figure1_labels_shape() {
        let l = figure1_labels(2, 3);
        assert_eq!(l.len(), 2);
        assert_eq!(l[0].len(), 3);
        assert_eq!(l[1][2], "B12");
    }
}
