//! PN-cluster layouts (paper §3.2): lay out the quotient product
//! network on a grid of *blocks* and the cluster inside each block.
//!
//! We flatten the hierarchy: a quotient node at grid cell `(r, q)` with
//! a `c`-member cluster becomes `c` node columns `q·c … q·c + c − 1` of
//! row `r`. Intra-cluster links are then ordinary row wires confined to
//! the block's column range; inter-cluster links attach to their member
//! nodes and are classified as row wires, column wires, or jogs by
//! [`crate::scheme::grid_spec`]. The block abstraction of the paper's
//! recursive grid scheme corresponds exactly to the column-range
//! `[q·c, (q+1)·c)` of each cluster.

use crate::scheme::grid_spec;
use crate::spec::OrthogonalSpec;
use mlv_topology::labels::MixedRadix;
use mlv_topology::{Graph, NodeId};

/// Build the flattened spec of a PN-cluster network.
///
/// * `graph` — the expanded network (ground truth);
/// * `qrows × qcols` — the quotient block grid;
/// * `members` — cluster size `c`;
/// * `cluster_pos(k)` — grid cell of quotient node `k`;
/// * `split(u)` — `(cluster index, member index)` of an expanded node.
pub fn pn_cluster_spec(
    name: impl Into<String>,
    graph: &Graph,
    qrows: usize,
    qcols: usize,
    members: usize,
    cluster_pos: impl Fn(usize) -> (usize, usize),
    split: impl Fn(NodeId) -> (usize, usize),
) -> OrthogonalSpec {
    grid_spec(name, graph, qrows, qcols * members, |u| {
        let (k, m) = split(u);
        assert!(m < members, "member index out of range");
        let (r, q) = cluster_pos(k);
        (r, q * members + m)
    })
}

/// The paper's standard quotient arrangement: quotient nodes are
/// mixed-radix values; the high digit half indexes the grid row and the
/// low half the grid column (§3.1's `i`/`j` split). A **single-digit**
/// quotient (a complete-graph quotient, e.g. a 2-level HSN) is arranged
/// on a near-square 2-D grid instead — the 2-D complete-graph layout of
/// Yeh & Parhami (IPL 1998) that §4.1 builds on — so that both axes
/// keep shrinking with `L`. Returns `(qrows, qcols, position_fn)`.
pub fn digit_split_arrangement(
    addr: &MixedRadix,
) -> (usize, usize, impl Fn(usize) -> (usize, usize) + '_) {
    let single = addr.digit_count() == 1;
    let (sq_r, sq_c) = crate::scheme::near_square(addr.cardinality());
    let half = addr.digit_count() / 2;
    let (lo, hi) = addr.split(half);
    let (mut qcols, mut qrows) = (lo.cardinality(), hi.cardinality());
    if single {
        (qrows, qcols) = (sq_r, sq_c);
    }
    let pos = move |k: usize| {
        if single {
            (k / sq_c, k % sq_c)
        } else {
            let (c, r) = addr.split_index(k, half);
            (r, c)
        }
    };
    (qrows, qcols, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realize::{realize, RealizeOptions};
    use mlv_grid::checker;
    use mlv_grid::metrics::LayoutMetrics;
    use mlv_topology::cluster::{kary_cluster_c, ClusterKind};

    #[test]
    fn kary_cluster_spec_realizes() {
        let pc = kary_cluster_c(3, 2, 4, ClusterKind::Hypercube);
        let addr = MixedRadix::fixed(3, 2);
        let (qr, qc, pos) = digit_split_arrangement(&addr);
        let spec = pn_cluster_spec("3-ary 2-cube cluster-4", &pc.graph, qr, qc, 4, pos, |u| {
            (pc.cluster_of(u), pc.member_of(u))
        });
        spec.assert_valid();
        assert_eq!(spec.edge_multiset(), pc.graph.edge_multiset());
        for layers in [2usize, 4] {
            let l = realize(&spec, &RealizeOptions::with_layers(layers));
            checker::assert_legal(&l, Some(&pc.graph));
        }
    }

    #[test]
    fn cluster_overhead_is_modest() {
        // a k-ary 2-cube with tiny clusters should cost little more than
        // the flat torus (paper: area within 1 + o(1) while c is small)
        use crate::product::{product_spec, standard_product_id};
        use mlv_collinear::karyn::kary_collinear;
        let k = 8;
        let pc = kary_cluster_c(k, 2, 2, ClusterKind::Ring);
        let addr = MixedRadix::fixed(k, 2);
        let (qr, qc, pos) = digit_split_arrangement(&addr);
        let spec = pn_cluster_spec("cluster", &pc.graph, qr, qc, 2, pos, |u| {
            (pc.cluster_of(u), pc.member_of(u))
        });
        let lc = realize(&spec, &RealizeOptions::with_layers(2));
        checker::assert_legal(&lc, Some(&pc.graph));
        let row = kary_collinear(k, 1);
        let flat = product_spec("flat", &row, &row, standard_product_id(k));
        let lf = realize(&flat, &RealizeOptions::with_layers(2));
        let (mc, mf) = (LayoutMetrics::of(&lc), LayoutMetrics::of(&lf));
        // cluster layout pays for 2x nodes but stays within a small factor
        let ratio = mc.area as f64 / mf.area as f64;
        assert!(ratio < 6.0, "ratio {ratio}");
    }

    #[test]
    fn digit_split_shapes() {
        let addr = MixedRadix::fixed(4, 3); // 64 nodes
        let (qr, qc, pos) = digit_split_arrangement(&addr);
        assert_eq!(qr * qc, 64);
        assert_eq!((qr, qc), (16, 4)); // low 1 digit = cols
                                       // node 7 = digits (3, 1, 0) low-first: low part 3, high part 1
        assert_eq!(pos(7), (1, 3));
    }
}
