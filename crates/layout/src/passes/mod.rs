//! The staged realization pipeline: an explicit layout IR threaded
//! through four passes.
//!
//! ```text
//!   OrthogonalSpec + PassConfig
//!        │
//!        ▼
//!   placement  — wire classification (row/col/jog, slab-crossing),
//!        │       node footprint sizing from terminal demand, and the
//!        │       terminal slot discipline (arrive < jog < depart)
//!        ▼
//!   tracks     — shared track grouping: round-robin bundling of
//!        │       construction tracks over ⌊L/2⌋ groups, closed-interval
//!        │       jog colouring, riser allocation, per-gap widths
//!        ▼
//!   layers     — odd/even group-to-layer assignment (x-runs on layer
//!        │       2g, y-runs on 2g+1), slab z-bases for the 3-D model
//!        ▼
//!   emit       — concrete geometry: prefix-sum gap origins, node
//!        │       rectangles, and WirePath generation
//!        ▼
//!   mlv_grid::Layout
//! ```
//!
//! Both public realizers are thin drivers over this pipeline:
//! [`mod@crate::realize`] runs it with a single slab (`L_A = 1`) and
//! [`crate::realize3d`] with `L_A ≥ 1` slabs — the 2-D scheme *is* the
//! 1-slab special case, so the two no longer duplicate the track and
//! terminal machinery.
//!
//! The IR is **struct-of-arrays**: every pass reads and writes flat
//! index vectors inside one reusable `crate::arena::Scratch`
//! (terminal slots indexed `2·ki + hi_end`, track/layer assignments
//! parallel to `kinds`, packed sort records for the terminal and
//! colouring disciplines). Per-stage products stay explicit — they are
//! just columns of the scratch instead of per-pass structs — so
//! alternative track-assignment passes can still be swapped in, while
//! a reused scratch makes the steady-state pipeline allocation-free.

pub(crate) mod emit;
pub(crate) mod geometry;
pub(crate) mod layers;
pub(crate) mod placement;
pub(crate) mod tracks;

use crate::arena::Scratch;
use crate::realize::JogStrategy;
use crate::spec::OrthogonalSpec;
use mlv_grid::layout::Layout;
use mlv_grid::pdk::{Dir, Pdk};

/// Wire count above which the placement/emit passes fan out
/// intra-layout over `mlv_core::exec` (sorting terminal items and
/// interval records, building wire paths per chunk). Below it the
/// sequential paths — which also recycle pooled buffers — win.
/// `MLV_PAR_WIRES` overrides (CI sets `MLV_PAR_WIRES=1` to force the
/// parallel paths and `cmp` their output against sequential runs).
pub(crate) fn par_wire_threshold() -> usize {
    std::env::var("MLV_PAR_WIRES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(10_000)
}

/// Pipeline configuration shared by every pass.
#[derive(Clone, Debug)]
pub(crate) struct PassConfig {
    /// Total wiring layers `L`.
    pub layers: usize,
    /// Active layers `L_A` (1 for the 2-D multilayer grid model).
    pub active_layers: usize,
    /// Node footprint override (≥ the computed terminal demand).
    pub node_side: Option<usize>,
    /// Jog distribution strategy (ablation knob, 2-D driver only).
    pub jog_strategy: JogStrategy,
    /// Name for the emitted layout.
    pub layout_name: String,
    /// Technology stack to realize onto. `None` (or any stack with
    /// [`Pdk::is_uniform`]) is the paper's unit grid and leaves the
    /// pipeline byte-identical to the PDK-free path.
    pub pdk: Option<Pdk>,
}

impl PassConfig {
    /// Wiring layers available to one slab (`L / L_A`).
    pub fn slab_layers(&self) -> usize {
        self.layers / self.active_layers
    }
}

/// Technology context derived once per realization from
/// [`PassConfig::pdk`] and consumed by the tracks / layers / emit
/// passes. For the uniform stack (`pdk: None` or [`Pdk::is_uniform`])
/// every field degenerates to the legacy unit-grid values, so the
/// passes produce byte-identical output by construction.
#[derive(Clone, Debug)]
pub(crate) struct PassContext {
    /// Track groups per slab under the stack's direction budget:
    /// `min` over slabs of `min(|h|, |v|)`. For the uniform stack this
    /// is `⌊(L/L_A)/2⌋` — for odd per-slab budgets the top layer is
    /// left unused, the paper's `L² − 1` odd-L denominators.
    pub groups: usize,
    /// Horizontal track pitch (column-gap scale). 1 for uniform.
    pub xscale: i64,
    /// Vertical track pitch (row-gap scale). 1 for uniform.
    pub yscale: i64,
    /// Per-slab layers carrying x-runs, `h[slab][g]`, ascending z.
    /// Uniform: `zbase + 2g` — the legacy even layers.
    pub h: Vec<Vec<i32>>,
    /// Per-slab layers carrying y-runs, `v[slab][g]`, ascending z.
    /// Uniform: `zbase + 2g + 1` — the legacy odd layers.
    pub v: Vec<Vec<i32>>,
    /// Stack name used to tag pass spans; `None` for uniform stacks
    /// (keeps trace digests of PDK-free runs unchanged).
    pub tag: Option<String>,
}

impl PassContext {
    /// Derive the context for one realization. Panics if the stack
    /// starves a slab of either direction (no legal group exists).
    pub fn new(cfg: &PassConfig) -> PassContext {
        let slab_layers = cfg.slab_layers();
        let pdk = cfg.pdk.as_ref().filter(|p| !p.is_uniform());
        let mut h = Vec::with_capacity(cfg.active_layers);
        let mut v = Vec::with_capacity(cfg.active_layers);
        for slab in 0..cfg.active_layers {
            let zb = (slab * slab_layers) as i32;
            let (mut hs, mut vs) = (Vec::new(), Vec::new());
            for dz in 0..slab_layers {
                let z = zb + dz as i32;
                let dir = pdk.map_or(Dir::Any, |p| p.layer_at(z as usize).dir);
                match dir {
                    Dir::H => hs.push(z),
                    Dir::V => vs.push(z),
                    // Balance free layers, ties to h: reproduces the
                    // legacy even/odd split when every layer is free.
                    Dir::Any => {
                        if hs.len() <= vs.len() {
                            hs.push(z);
                        } else {
                            vs.push(z);
                        }
                    }
                }
            }
            h.push(hs);
            v.push(vs);
        }
        let groups = h
            .iter()
            .zip(&v)
            .map(|(hs, vs)| hs.len().min(vs.len()))
            .min()
            .unwrap_or(0);
        assert!(
            groups >= 1,
            "stack {:?} leaves a slab without an H/V layer pair \
             (L={}, L_A={})",
            cfg.pdk.as_ref().map(|p| p.name.as_str()),
            cfg.layers,
            cfg.active_layers,
        );
        let (xscale, yscale, tag) = match pdk {
            Some(p) => (
                p.xscale(cfg.layers),
                p.yscale(cfg.layers),
                Some(p.name.clone()),
            ),
            None => (1, 1, None),
        };
        PassContext {
            groups,
            xscale,
            yscale,
            h,
            v,
            tag,
        }
    }
}

/// Open one [`PASS_SPANS`] span, tagged with the stack name for
/// non-uniform PDKs (`pass.emit{pdk=hv6}`) so trace digests
/// distinguish stacks; plain key — unchanged digests — otherwise.
fn pass_span(key: &'static str, ctx: &PassContext) -> mlv_core::trace::SpanGuard {
    match ctx.tag.as_deref() {
        Some(name) => mlv_core::trace::span_with(key, &[("pdk", &name as &dyn std::fmt::Display)]),
        None => mlv_core::trace::span(key),
    }
}

/// Wire classification produced by the placement pass. Indices point
/// into the spec's `row_wires` / `col_wires` / `jog_wires`; the `Inter`
/// variants mark slab-crossing wires that must ride a riser.
#[derive(Clone, Copy, Debug)]
pub(crate) enum WireKind {
    /// Same-row link in the row's horizontal bundle.
    Row { idx: usize },
    /// Same-column link within one slab.
    Col { idx: usize },
    /// Cross link within one slab (vertical run + horizontal run).
    Jog { idx: usize },
    /// Column wire whose endpoints land in different slabs.
    InterCol { idx: usize },
    /// Jog wire whose endpoints land in different slabs.
    InterJog { idx: usize },
}

impl WireKind {
    /// Endpoints `(a_row, a_col, b_row, b_col)` of a slab-crossing
    /// wire; `None` for intra-slab kinds.
    pub fn inter_ends(&self, spec: &OrthogonalSpec) -> Option<(usize, usize, usize, usize)> {
        match *self {
            WireKind::InterCol { idx } => {
                let w = &spec.col_wires[idx];
                Some((w.lo, w.col, w.hi, w.col))
            }
            WireKind::InterJog { idx } => {
                let w = &spec.jog_wires[idx];
                Some((w.a.0, w.a.1, w.b.0, w.b.1))
            }
            _ => None,
        }
    }
}

/// Row-block-to-slab mapping: rows are cut into `L_A` contiguous blocks
/// of `slots` rows; block `a` stacks as the slab based at layer
/// `a·L/L_A` (trivial for `L_A = 1`: every row in slab 0).
#[derive(Clone, Copy, Debug)]
pub(crate) struct SlabMap {
    /// Planar row slots shared by the stacked blocks.
    pub slots: usize,
    /// Wiring layers per slab (`L / L_A`).
    pub slab_layers: usize,
}

impl SlabMap {
    /// Slab (row block) of grid row `r`.
    pub fn slab_of(&self, r: usize) -> usize {
        r / self.slots
    }

    /// Planar row slot of grid row `r` within its slab.
    pub fn slot_of(&self, r: usize) -> usize {
        r % self.slots
    }

    /// Bottom (active) layer of slab `a`.
    pub fn zbase(&self, a: usize) -> i32 {
        (a * self.slab_layers) as i32
    }
}

/// Span key of the whole pipeline (wraps the four pass spans).
pub const SPAN_PIPELINE: &str = "pipeline";
/// Span keys of the four passes, in pipeline order.
pub const PASS_SPANS: [&str; 4] = ["pass.placement", "pass.tracks", "pass.layers", "pass.emit"];

/// Wall-clock nanoseconds spent in each pass of one realization — a
/// *view* over the trace the pipeline records (see
/// [`PassTimings::from_trace`]), reported per job by the batch engine
/// ([`crate::engine`]) and the `bench_layout` micro-bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassTimings {
    /// Placement pass (wire classification + footprint sizing).
    pub placement_ns: u64,
    /// Tracks pass (bundling, jog colouring, gap widths).
    pub tracks_ns: u64,
    /// Layers pass (group-to-layer assignment).
    pub layers_ns: u64,
    /// Emit pass (prefix sums + geometry generation).
    pub emit_ns: u64,
}

impl PassTimings {
    /// Total nanoseconds across the four passes.
    pub fn total_ns(&self) -> u64 {
        self.placement_ns + self.tracks_ns + self.layers_ns + self.emit_ns
    }

    /// Extract the four pass totals from a trace aggregate (the
    /// [`PASS_SPANS`] keys). With a per-realization trace this is the
    /// per-job timing; with a run-wide trace it is the cumulative
    /// per-pass breakdown.
    pub fn from_trace(agg: &mlv_core::trace::Aggregate) -> PassTimings {
        let ns = |key: &str| agg.span(key).map(|s| s.total_ns).unwrap_or(0);
        PassTimings {
            placement_ns: ns(PASS_SPANS[0]),
            tracks_ns: ns(PASS_SPANS[1]),
            layers_ns: ns(PASS_SPANS[2]),
            emit_ns: ns(PASS_SPANS[3]),
        }
    }
}

/// Run the full pipeline: placement → tracks → layers → emit, filling
/// (and reusing) the caller's [`Scratch`]. Each stage runs under its
/// [`PASS_SPANS`] span (inert unless a trace is installed), with the
/// whole pipeline wrapped in [`SPAN_PIPELINE`].
pub(crate) fn run_pipeline(spec: &OrthogonalSpec, cfg: &PassConfig, s: &mut Scratch) -> Layout {
    let _pipeline = mlv_core::span!(SPAN_PIPELINE);
    let ctx = PassContext::new(cfg);
    {
        let _s = pass_span(PASS_SPANS[0], &ctx);
        placement::run(spec, cfg, s);
    }
    {
        let _s = pass_span(PASS_SPANS[1], &ctx);
        tracks::run(spec, cfg, &ctx, s);
    }
    {
        let _s = pass_span(PASS_SPANS[2], &ctx);
        layers::run(spec, &ctx, s);
    }
    let _s = pass_span(PASS_SPANS[3], &ctx);
    emit::run(spec, cfg, &ctx, s)
}

/// Run the full pipeline into the **tiled IR**: the same placement →
/// tracks → layers stages (same spans) with the emit stage producing a
/// [`crate::tiled::TiledLayout`] instead of flat geometry.
pub(crate) fn run_pipeline_tiled(
    spec: &OrthogonalSpec,
    cfg: &PassConfig,
    s: &mut Scratch,
) -> crate::tiled::TiledLayout {
    let _pipeline = mlv_core::span!(SPAN_PIPELINE);
    let ctx = PassContext::new(cfg);
    {
        let _s = pass_span(PASS_SPANS[0], &ctx);
        placement::run(spec, cfg, s);
    }
    {
        let _s = pass_span(PASS_SPANS[1], &ctx);
        tracks::run(spec, cfg, &ctx, s);
    }
    {
        let _s = pass_span(PASS_SPANS[2], &ctx);
        layers::run(spec, &ctx, s);
    }
    let _s = pass_span(PASS_SPANS[3], &ctx);
    emit::run_tiled(spec, cfg, &ctx, s)
}

/// [`run_pipeline`] under a local [`mlv_core::trace::Trace`], with the
/// per-pass span totals extracted into a [`PassTimings`]. Events also
/// flow into any enclosing trace (nesting), so a run-wide trace still
/// sees every pass span of every timed realization.
pub(crate) fn run_pipeline_timed(
    spec: &OrthogonalSpec,
    cfg: &PassConfig,
    s: &mut Scratch,
) -> (Layout, PassTimings) {
    let local = mlv_core::trace::Trace::new();
    let layout = local.collect(|| run_pipeline(spec, cfg, s));
    let timings = PassTimings::from_trace(&local.aggregate());
    (layout, timings)
}
