//! Shared wire-geometry resolution: the single source of the concrete
//! corner arithmetic, used by both the flat emit pass and the tiled-IR
//! producer.
//!
//! [`Resolver::resolve`] maps one wire index to a [`WireGeom`]: a
//! [`TileShape`] (the corner-sequence shape plus its layer indices) and
//! the six anchor coordinates that place it (terminals `a`/`b` and the
//! absolute track coordinates `t1`/`t2`). Expanding the shape at those
//! coordinates ([`TileShape::extend_corners`]) reproduces the emit
//! pass's corner sequences exactly — byte-identity between the flat and
//! tiled backends holds by construction because there is only one copy
//! of this arithmetic.

use super::{SlabMap, WireKind};
use crate::passes::layers::LayerAssign;
use crate::passes::placement::{Edge, TermSlot};
use crate::passes::tracks::TrackAssign;
use crate::spec::OrthogonalSpec;
use crate::tiled::TileShape;
use mlv_topology::NodeId;

/// Resolved geometry of one wire: its shape and anchor coordinates.
pub(crate) struct WireGeom {
    /// Corner-sequence shape (carries the layer indices).
    pub shape: TileShape,
    /// First network endpoint.
    pub u: NodeId,
    /// Second network endpoint.
    pub v: NodeId,
    /// a-terminal x.
    pub ax: i64,
    /// a-terminal y.
    pub ay: i64,
    /// b-terminal x.
    pub bx: i64,
    /// b-terminal y.
    pub by: i64,
    /// First absolute track coordinate (row-gap `ty` for rows, column
    /// -gap `tx` for columns, jog `tx`, riser x for slab-crossers).
    pub t1: i64,
    /// Second absolute track coordinate (jog / riser `ty`; 0 unused).
    pub t2: i64,
}

/// Borrowed view over the scratch columns the geometry depends on.
pub(crate) struct Resolver<'a> {
    pub spec: &'a OrthogonalSpec,
    pub side: i64,
    pub slabs: SlabMap,
    pub kinds: &'a [WireKind],
    pub term: &'a [TermSlot],
    pub assign: &'a [TrackAssign],
    pub layer: &'a [LayerAssign],
    pub track_width: &'a [i64],
    pub col_x0: &'a [i64],
    pub slot_y0: &'a [i64],
    /// Horizontal track pitch (1 under the uniform stack).
    pub xscale: i64,
    /// Vertical track pitch (1 under the uniform stack).
    pub yscale: i64,
}

impl Resolver<'_> {
    /// First x coordinate of column `c`'s vertical gap.
    fn gap_x0(&self, c: usize) -> i64 {
        self.col_x0[c] + self.side
    }

    /// First y coordinate of planar slot `sl`'s horizontal gap.
    fn gap_y0(&self, sl: usize) -> i64 {
        self.slot_y0[sl] + self.side
    }

    /// Absolute planar coordinates of a terminal slot.
    fn abs(&self, ki: usize, hi_end: usize) -> (i64, i64) {
        let t = &self.term[2 * ki + hi_end];
        let (x0, y0) = (self.col_x0[t.col], self.slot_y0[self.slabs.slot_of(t.row)]);
        match t.edge {
            Edge::Top => (x0 + t.off, y0 + self.side - 1),
            Edge::Right => (x0 + self.side - 1, y0 + t.off),
        }
    }

    /// Resolve wire `ki`'s concrete geometry.
    pub fn resolve(&self, ki: usize) -> WireGeom {
        let k = &self.kinds[ki];
        let (ax, ay) = self.abs(ki, 0);
        let (bx, by) = self.abs(ki, 1);
        let spec = self.spec;
        let (shape, u, v, t1, t2) = match (*k, self.assign[ki], self.layer[ki]) {
            (
                WireKind::Row { idx },
                TrackAssign::Construction { track: tidx, .. },
                LayerAssign::Intra { zb, zh, zv },
            ) => {
                let w = &spec.row_wires[idx];
                let ty = self.gap_y0(self.slabs.slot_of(w.row)) + tidx * self.yscale;
                (
                    TileShape::Row { zb, zh, zv },
                    spec.node(w.row, w.lo),
                    spec.node(w.row, w.hi),
                    ty,
                    0,
                )
            }
            (
                WireKind::Col { idx },
                TrackAssign::Construction { track: tidx, .. },
                LayerAssign::Intra { zb, zh, zv },
            ) => {
                let w = &spec.col_wires[idx];
                let tx = self.gap_x0(w.col) + tidx * self.xscale;
                (
                    TileShape::Col { zb, zh, zv },
                    spec.node(w.lo, w.col),
                    spec.node(w.hi, w.col),
                    tx,
                    0,
                )
            }
            (
                WireKind::Jog { idx },
                TrackAssign::Jog { tx, ty, .. },
                LayerAssign::Intra { zb, zh, zv },
            ) => {
                let w = &spec.jog_wires[idx];
                let tx = self.gap_x0(w.a.1) + tx * self.xscale;
                let ty = self.gap_y0(self.slabs.slot_of(w.b.0)) + ty * self.yscale;
                (
                    TileShape::Jog { zb, zh, zv },
                    spec.node(w.a.0, w.a.1),
                    spec.node(w.b.0, w.b.1),
                    tx,
                    ty,
                )
            }
            (
                _,
                TrackAssign::Inter { riser, ty, .. },
                LayerAssign::Inter {
                    za,
                    zha,
                    zb,
                    zhb,
                    zvb,
                },
            ) => {
                let (ra, ca, rb, cb) = k.inter_ends(spec).unwrap();
                let riser_x = self.gap_x0(ca) + (self.track_width[ca] + riser) * self.xscale;
                let ty = self.gap_y0(self.slabs.slot_of(rb)) + ty * self.yscale;
                (
                    TileShape::Riser {
                        za,
                        zha,
                        zb,
                        zhb,
                        zvb,
                    },
                    spec.node(ra, ca),
                    spec.node(rb, cb),
                    riser_x,
                    ty,
                )
            }
            _ => unreachable!("wire kind / track / layer assignment mismatch"),
        };
        WireGeom {
            shape,
            u,
            v,
            ax,
            ay,
            bx,
            by,
            t1,
            t2,
        }
    }
}
