//! Pass 3 — layers: the group-to-layer assignment.
//!
//! Group `g` of a slab runs its x-segments on the slab's `g`-th
//! x-carrying layer and its y-segments on the `g`-th y-carrying layer,
//! as partitioned by the technology context
//! ([`crate::passes::PassContext`]). For the uniform stack the
//! partition is the legacy odd/even split — x-runs on `zb + 2g`,
//! y-runs on `zb + 2g + 1` — the paper's assignment of horizontal
//! groups to layers 1,3,5,… and vertical groups to 2,4,6,…
//! (0-indexed here, with the active layer doubling as group 0's
//! x-layer, exactly as the multilayer grid model allows). For odd
//! per-slab budgets the top layer is left unused, which is where the
//! paper's `L² − 1` odd-L denominators come from. Non-uniform stacks
//! instead respect each layer's preferred direction.
//!
//! Slab-crossing wires get layers on both sides: the x-run layer of
//! their source-slab group, and the x/y pair of their destination-slab
//! group; the riser climbs between the two in `z`.

use super::{PassContext, WireKind};
use crate::arena::Scratch;
use crate::passes::tracks::TrackAssign;
use crate::spec::OrthogonalSpec;

/// Layer assignment for one wire.
#[derive(Clone, Copy, Debug)]
pub(crate) enum LayerAssign {
    /// Intra-slab wire: terminal layer `zb`, x-run layer `zh`, y-run
    /// layer `zv`.
    Intra {
        /// Terminal (slab base) layer.
        zb: i32,
        /// x-run layer.
        zh: i32,
        /// y-run layer.
        zv: i32,
    },
    /// Slab-crossing wire: source terminal/x-run layers (`za`, `zha`)
    /// and destination terminal/x-run/y-run layers (`zb`, `zhb`, `zvb`).
    Inter {
        /// Source terminal layer.
        za: i32,
        /// Source-slab x-run layer.
        zha: i32,
        /// Destination terminal layer.
        zb: i32,
        /// Destination-slab x-run layer.
        zhb: i32,
        /// Destination-slab y-run layer.
        zvb: i32,
    },
}

/// Run the layers pass, filling the scratch's `layer` column (parallel
/// to `kinds`).
pub(crate) fn run(spec: &OrthogonalSpec, ctx: &PassContext, s: &mut Scratch) {
    let slabs = s.slabs;
    s.layer.clear();
    s.layer.reserve(s.kinds.len());
    for (k, t) in s.kinds.iter().zip(&s.assign) {
        let home_row = match *k {
            WireKind::Row { idx } => spec.row_wires[idx].row,
            WireKind::Col { idx } => spec.col_wires[idx].lo,
            WireKind::Jog { idx } => spec.jog_wires[idx].a.0,
            _ => {
                let (ra, _, rb, _) = k.inter_ends(spec).unwrap();
                let TrackAssign::Inter {
                    group_a, group_b, ..
                } = *t
                else {
                    unreachable!("inter wire without inter track assignment")
                };
                let (sa, sb) = (slabs.slab_of(ra), slabs.slab_of(rb));
                s.layer.push(LayerAssign::Inter {
                    za: slabs.zbase(sa),
                    zha: ctx.h[sa][group_a],
                    zb: slabs.zbase(sb),
                    zhb: ctx.h[sb][group_b],
                    zvb: ctx.v[sb][group_b],
                });
                continue;
            }
        };
        let slab = slabs.slab_of(home_row);
        let g = t.home_group();
        s.layer.push(LayerAssign::Intra {
            zb: slabs.zbase(slab),
            zh: ctx.h[slab][g],
            zv: ctx.v[slab][g],
        });
    }
}
