//! Pass 4 — emit: concrete geometry.
//!
//! Prefix sums over the per-gap widths turn the IR's gap-local offsets
//! into absolute coordinates: column `c` occupies x in
//! `[col_x0[c], col_x0[c] + s - 1]`, its gap the `wpl[c]` columns after
//! it; planar row slot `sl` likewise in y. Nodes are `s × s` rectangles
//! on their slab's bottom layer; every wire is one [`WirePath`] built
//! from its terminal slots, track offsets, and layer assignment.
//!
//! Wire construction is embarrassingly parallel — each path depends
//! only on its own wire's scratch columns — so above
//! [`super::par_wire_threshold`] the pass fans the wire loop out over
//! [`mlv_core::exec`] in index chunks and concatenates in order; the
//! emitted geometry is byte-identical to the sequential path, which
//! additionally recycles pooled corner buffers from the scratch.

use super::{PassConfig, WireKind};
use crate::arena::Scratch;
use crate::passes::layers::LayerAssign;
use crate::passes::placement::Edge;
use crate::passes::tracks::TrackAssign;
use crate::spec::OrthogonalSpec;
use mlv_core::exec;
use mlv_grid::geom::{Point3, Rect};
use mlv_grid::layout::{Layout, Wire};
use mlv_grid::path::WirePath;

/// Run the emit pass, consuming the scratch's columns into a
/// [`Layout`] (built on the scratch's recycled node/wire storage).
pub(crate) fn run(spec: &OrthogonalSpec, cfg: &PassConfig, s: &mut Scratch) -> Layout {
    let (rows, cols) = (spec.rows, spec.cols);
    let side = s.side;

    // gap origins: column c starts at col_x0[c], its gap side later
    s.col_x0.clear();
    s.col_x0.push(0);
    let mut acc = 0i64;
    for &w in &s.wpl {
        acc += side + w;
        s.col_x0.push(acc);
    }
    s.slot_y0.clear();
    s.slot_y0.push(0);
    let mut acc = 0i64;
    for &h in &s.hpl_slot {
        acc += side + h;
        s.slot_y0.push(acc);
    }

    let (nodes, wires) = s.take_layout_bufs();
    // field-literal construction reuses the recycled vectors;
    // cfg.layers ≥ 2 is asserted by both realizer drivers
    let mut layout = Layout {
        name: cfg.layout_name.clone(),
        layers: cfg.layers,
        nodes,
        wires,
    };
    layout.nodes.reserve(rows * cols);
    layout.wires.reserve(s.kinds.len());

    let slabs = s.slabs;
    for r in 0..rows {
        let y0 = s.slot_y0[slabs.slot_of(r)];
        for c in 0..cols {
            let x0 = s.col_x0[c];
            layout.place_node_at(
                spec.node(r, c),
                Rect::new(x0, y0, x0 + side - 1, y0 + side - 1),
                slabs.zbase(slabs.slab_of(r)),
            );
        }
    }

    // split the scratch so the shared-ref wire builder and the mutable
    // corner-buffer pool can coexist
    let Scratch {
        kinds,
        term,
        assign,
        layer,
        track_width,
        col_x0,
        slot_y0,
        path_pool,
        ..
    } = s;
    let gap_x0 = |c: usize| col_x0[c] + side;
    let gap_y0 = |sl: usize| slot_y0[sl] + side;
    let abs = |ki: usize, hi_end: usize| -> (i64, i64) {
        let t = &term[2 * ki + hi_end];
        let (x0, y0) = (col_x0[t.col], slot_y0[slabs.slot_of(t.row)]);
        match t.edge {
            Edge::Top => (x0 + t.off, y0 + side - 1),
            Edge::Right => (x0 + side - 1, y0 + t.off),
        }
    };
    let p = Point3::new;
    let build = |ki: usize, mut corners: Vec<Point3>| -> Wire {
        let k = &kinds[ki];
        let (ax, ay) = abs(ki, 0);
        let (bx, by) = abs(ki, 1);
        let (u, v) = match (*k, assign[ki], layer[ki]) {
            (
                WireKind::Row { idx },
                TrackAssign::Construction { track: tidx, .. },
                LayerAssign::Intra { zb, zh, zv },
            ) => {
                let w = &spec.row_wires[idx];
                let ty = gap_y0(slabs.slot_of(w.row)) + tidx;
                corners.extend([
                    p(ax, ay, zb),
                    p(ax, ay, zv),
                    p(ax, ty, zv),
                    p(ax, ty, zh),
                    p(bx, ty, zh),
                    p(bx, ty, zv),
                    p(bx, by, zv),
                    p(bx, by, zb),
                ]);
                (spec.node(w.row, w.lo), spec.node(w.row, w.hi))
            }
            (
                WireKind::Col { idx },
                TrackAssign::Construction { track: tidx, .. },
                LayerAssign::Intra { zb, zh, zv },
            ) => {
                let w = &spec.col_wires[idx];
                let tx = gap_x0(w.col) + tidx;
                corners.extend([
                    p(ax, ay, zb),
                    p(ax, ay, zh),
                    p(tx, ay, zh),
                    p(tx, ay, zv),
                    p(tx, by, zv),
                    p(tx, by, zh),
                    p(bx, by, zh),
                    p(bx, by, zb),
                ]);
                (spec.node(w.lo, w.col), spec.node(w.hi, w.col))
            }
            (
                WireKind::Jog { idx },
                TrackAssign::Jog { tx, ty, .. },
                LayerAssign::Intra { zb, zh, zv },
            ) => {
                let w = &spec.jog_wires[idx];
                let tx = gap_x0(w.a.1) + tx;
                let ty = gap_y0(slabs.slot_of(w.b.0)) + ty;
                corners.extend([
                    p(ax, ay, zb),
                    p(ax, ay, zh),
                    p(tx, ay, zh),
                    p(tx, ay, zv),
                    p(tx, ty, zv),
                    p(tx, ty, zh),
                    p(bx, ty, zh),
                    p(bx, ty, zv),
                    p(bx, by, zv),
                    p(bx, by, zb),
                ]);
                (spec.node(w.a.0, w.a.1), spec.node(w.b.0, w.b.1))
            }
            (
                _,
                TrackAssign::Inter { riser, ty, .. },
                LayerAssign::Inter {
                    za,
                    zha,
                    zb,
                    zhb,
                    zvb,
                },
            ) => {
                let (ra, ca, rb, cb) = k.inter_ends(spec).unwrap();
                let riser_x = gap_x0(ca) + track_width[ca] + riser;
                let ty = gap_y0(slabs.slot_of(rb)) + ty;
                corners.extend([
                    p(ax, ay, za),
                    p(ax, ay, zha),
                    p(riser_x, ay, zha),
                    p(riser_x, ay, zvb),
                    p(riser_x, ty, zvb),
                    p(riser_x, ty, zhb),
                    p(bx, ty, zhb),
                    p(bx, ty, zvb),
                    p(bx, by, zvb),
                    p(bx, by, zb),
                ]);
                (spec.node(ra, ca), spec.node(rb, cb))
            }
            _ => unreachable!("wire kind / track / layer assignment mismatch"),
        };
        Wire {
            u,
            v,
            path: WirePath::new(corners),
        }
    };

    if kinds.len() >= super::par_wire_threshold() && exec::thread_count() > 1 {
        let built = exec::par_chunk_map(kinds, 1, |start, chunk| {
            (0..chunk.len())
                .map(|j| build(start + j, Vec::with_capacity(10)))
                .collect()
        });
        layout.wires.extend(built);
    } else {
        for ki in 0..kinds.len() {
            let corners = match path_pool.pop() {
                Some(mut v) => {
                    v.clear();
                    v
                }
                None => Vec::with_capacity(10),
            };
            layout.wires.push(build(ki, corners));
        }
    }
    layout
}
