//! Pass 4 — emit: concrete geometry.
//!
//! Prefix sums over the per-gap widths turn the IR's gap-local offsets
//! into absolute coordinates: column `c` occupies x in
//! `[col_x0[c], col_x0[c] + s - 1]`, its gap the `wpl[c]` columns after
//! it; planar row slot `sl` likewise in y. Nodes are `s × s` rectangles
//! on their slab's bottom layer; every wire is one [`WirePath`] built
//! from its terminal slots, track offsets, and layer assignment.

use super::{PassConfig, WireKind};
use crate::passes::layers::{LayerAssign, LayerPlan};
use crate::passes::placement::{Edge, Placement, TermSlot};
use crate::passes::tracks::{TrackAssign, TrackPlan};
use crate::spec::OrthogonalSpec;
use mlv_grid::geom::{Point3, Rect};
use mlv_grid::layout::Layout;
use mlv_grid::path::WirePath;

/// Run the emit pass.
pub(crate) fn run(
    spec: &OrthogonalSpec,
    cfg: &PassConfig,
    place: &Placement,
    track: &TrackPlan,
    layer: &LayerPlan,
) -> Layout {
    let (rows, cols) = (spec.rows, spec.cols);
    let slabs = &place.slabs;
    let s = place.side;
    let prefix = |steps: &[i64]| -> Vec<i64> {
        std::iter::once(0)
            .chain(steps.iter().scan(0i64, |acc, &w| {
                *acc += s + w;
                Some(*acc)
            }))
            .collect()
    };
    let col_x0 = prefix(&track.wpl);
    let slot_y0 = prefix(&track.hpl_slot);
    let gap_x0 = |c: usize| col_x0[c] + s;
    let gap_y0 = |sl: usize| slot_y0[sl] + s;
    let abs = |t: &TermSlot| -> (i64, i64) {
        let (x0, y0) = (col_x0[t.col], slot_y0[slabs.slot_of(t.row)]);
        match t.edge {
            Edge::Top => (x0 + t.off, y0 + s - 1),
            Edge::Right => (x0 + s - 1, y0 + t.off),
        }
    };

    let mut layout = Layout::new(cfg.layout_name.clone(), cfg.layers);
    #[allow(clippy::needless_range_loop)]
    for r in 0..rows {
        for c in 0..cols {
            layout.place_node_at(
                spec.node(r, c),
                Rect::new(
                    col_x0[c],
                    slot_y0[slabs.slot_of(r)],
                    col_x0[c] + s - 1,
                    slot_y0[slabs.slot_of(r)] + s - 1,
                ),
                slabs.zbase(slabs.slab_of(r)),
            );
        }
    }

    let p = Point3::new;
    for (ki, k) in place.kinds.iter().enumerate() {
        let t = &track.assign[ki];
        let z = &layer.assign[ki];
        let (ax, ay) = abs(&place.term[&(ki, false)]);
        let (bx, by) = abs(&place.term[&(ki, true)]);
        match (*k, *t, *z) {
            (
                WireKind::Row { idx },
                TrackAssign::Construction { track: tidx, .. },
                LayerAssign::Intra { zb, zh, zv },
            ) => {
                let w = &spec.row_wires[idx];
                let ty = gap_y0(slabs.slot_of(w.row)) + tidx;
                layout.add_wire(
                    spec.node(w.row, w.lo),
                    spec.node(w.row, w.hi),
                    WirePath::new(vec![
                        p(ax, ay, zb),
                        p(ax, ay, zv),
                        p(ax, ty, zv),
                        p(ax, ty, zh),
                        p(bx, ty, zh),
                        p(bx, ty, zv),
                        p(bx, by, zv),
                        p(bx, by, zb),
                    ]),
                );
            }
            (
                WireKind::Col { idx },
                TrackAssign::Construction { track: tidx, .. },
                LayerAssign::Intra { zb, zh, zv },
            ) => {
                let w = &spec.col_wires[idx];
                let tx = gap_x0(w.col) + tidx;
                layout.add_wire(
                    spec.node(w.lo, w.col),
                    spec.node(w.hi, w.col),
                    WirePath::new(vec![
                        p(ax, ay, zb),
                        p(ax, ay, zh),
                        p(tx, ay, zh),
                        p(tx, ay, zv),
                        p(tx, by, zv),
                        p(tx, by, zh),
                        p(bx, by, zh),
                        p(bx, by, zb),
                    ]),
                );
            }
            (
                WireKind::Jog { idx },
                TrackAssign::Jog { tx, ty, .. },
                LayerAssign::Intra { zb, zh, zv },
            ) => {
                let w = &spec.jog_wires[idx];
                let tx = gap_x0(w.a.1) + tx;
                let ty = gap_y0(slabs.slot_of(w.b.0)) + ty;
                layout.add_wire(
                    spec.node(w.a.0, w.a.1),
                    spec.node(w.b.0, w.b.1),
                    WirePath::new(vec![
                        p(ax, ay, zb),
                        p(ax, ay, zh),
                        p(tx, ay, zh),
                        p(tx, ay, zv),
                        p(tx, ty, zv),
                        p(tx, ty, zh),
                        p(bx, ty, zh),
                        p(bx, ty, zv),
                        p(bx, by, zv),
                        p(bx, by, zb),
                    ]),
                );
            }
            (
                _,
                TrackAssign::Inter { riser, ty, .. },
                LayerAssign::Inter {
                    za,
                    zha,
                    zb,
                    zhb,
                    zvb,
                },
            ) => {
                let (ra, ca, rb, cb) = k.inter_ends(spec).unwrap();
                let riser_x = gap_x0(ca) + track.track_width[ca] + riser;
                let ty = gap_y0(slabs.slot_of(rb)) + ty;
                layout.add_wire(
                    spec.node(ra, ca),
                    spec.node(rb, cb),
                    WirePath::new(vec![
                        p(ax, ay, za),
                        p(ax, ay, zha),
                        p(riser_x, ay, zha),
                        p(riser_x, ay, zvb),
                        p(riser_x, ty, zvb),
                        p(riser_x, ty, zhb),
                        p(bx, ty, zhb),
                        p(bx, ty, zvb),
                        p(bx, by, zvb),
                        p(bx, by, zb),
                    ]),
                );
            }
            _ => unreachable!("wire kind / track / layer assignment mismatch"),
        }
    }
    layout
}
