//! Pass 4 — emit: concrete geometry.
//!
//! Prefix sums over the per-gap widths turn the IR's gap-local offsets
//! into absolute coordinates: column `c` occupies x in
//! `[col_x0[c], col_x0[c] + s - 1]`, its gap the `wpl[c]` columns after
//! it; planar row slot `sl` likewise in y. Nodes are `s × s` rectangles
//! on their slab's bottom layer; every wire is one [`WirePath`] built
//! from its terminal slots, track offsets, and layer assignment.
//!
//! The per-wire corner arithmetic lives in [`super::geometry`] — shared
//! with the tiled-IR producer ([`run_tiled`]), so the flat and tiled
//! backends are byte-identical by construction.
//!
//! Wire construction is embarrassingly parallel — each path depends
//! only on its own wire's scratch columns — so above
//! [`super::par_wire_threshold`] the pass fans the wire loop out over
//! [`mlv_core::exec`] in index chunks and concatenates in order; the
//! emitted geometry is byte-identical to the sequential path, which
//! additionally recycles pooled corner buffers from the scratch.

use super::geometry::Resolver;
use super::{PassConfig, PassContext};
use crate::arena::Scratch;
use crate::spec::OrthogonalSpec;
use crate::tiled::{TileInstance, TiledLayout};
use mlv_core::exec;
use mlv_grid::geom::{Point3, Rect};
use mlv_grid::layout::{Layout, Wire};
use mlv_grid::path::WirePath;

/// Fill the scratch's prefix-summed gap origins (`col_x0`, `slot_y0`)
/// from the per-gap widths — shared by the flat and tiled emitters.
/// Gap widths stretch by the stack's track pitches (1 under the
/// uniform stack); node footprints stay `side × side`.
fn fill_origins(s: &mut Scratch, ctx: &PassContext) {
    let side = s.side;
    s.col_x0.clear();
    s.col_x0.push(0);
    let mut acc = 0i64;
    for &w in &s.wpl {
        acc += side + w * ctx.xscale;
        s.col_x0.push(acc);
    }
    s.slot_y0.clear();
    s.slot_y0.push(0);
    let mut acc = 0i64;
    for &h in &s.hpl_slot {
        acc += side + h * ctx.yscale;
        s.slot_y0.push(acc);
    }
}

/// Run the emit pass, consuming the scratch's columns into a
/// [`Layout`] (built on the scratch's recycled node/wire storage).
pub(crate) fn run(
    spec: &OrthogonalSpec,
    cfg: &PassConfig,
    ctx: &PassContext,
    s: &mut Scratch,
) -> Layout {
    let (rows, cols) = (spec.rows, spec.cols);
    let side = s.side;
    fill_origins(s, ctx);

    let (nodes, wires) = s.take_layout_bufs();
    // field-literal construction reuses the recycled vectors;
    // cfg.layers ≥ 2 is asserted by both realizer drivers
    let mut layout = Layout {
        name: cfg.layout_name.clone(),
        layers: cfg.layers,
        nodes,
        wires,
    };
    layout.nodes.reserve(rows * cols);
    layout.wires.reserve(s.kinds.len());

    let slabs = s.slabs;
    for r in 0..rows {
        let y0 = s.slot_y0[slabs.slot_of(r)];
        for c in 0..cols {
            let x0 = s.col_x0[c];
            layout.place_node_at(
                spec.node(r, c),
                Rect::new(x0, y0, x0 + side - 1, y0 + side - 1),
                slabs.zbase(slabs.slab_of(r)),
            );
        }
    }

    // split the scratch so the shared-ref wire builder and the mutable
    // corner-buffer pool can coexist
    let Scratch {
        kinds,
        term,
        assign,
        layer,
        track_width,
        col_x0,
        slot_y0,
        path_pool,
        ..
    } = s;
    let resolver = Resolver {
        spec,
        side,
        slabs,
        kinds,
        term,
        assign,
        layer,
        track_width,
        col_x0,
        slot_y0,
        xscale: ctx.xscale,
        yscale: ctx.yscale,
    };
    let build = |ki: usize, mut corners: Vec<Point3>| -> Wire {
        let g = resolver.resolve(ki);
        g.shape
            .extend_corners(g.ax, g.ay, g.bx, g.by, g.t1, g.t2, &mut corners);
        Wire {
            u: g.u,
            v: g.v,
            path: WirePath::new(corners),
        }
    };

    if kinds.len() >= super::par_wire_threshold() && exec::thread_count() > 1 {
        let built = exec::par_chunk_map(kinds, 1, |start, chunk| {
            (0..chunk.len())
                .map(|j| build(start + j, Vec::with_capacity(10)))
                .collect()
        });
        layout.wires.extend(built);
    } else {
        for ki in 0..kinds.len() {
            let corners = match path_pool.pop() {
                Some(mut v) => {
                    v.clear();
                    v
                }
                None => Vec::with_capacity(10),
            };
            layout.wires.push(build(ki, corners));
        }
    }
    layout
}

/// Run the emit pass into the tiled IR: resolve every wire's geometry
/// through the same [`Resolver`] arithmetic as [`run`], interning
/// distinct shapes into the tile table (first-use order) instead of
/// expanding corners. Nodes stay implicit — the grid metadata is
/// copied, not the placements.
pub(crate) fn run_tiled(
    spec: &OrthogonalSpec,
    cfg: &PassConfig,
    ctx: &PassContext,
    s: &mut Scratch,
) -> TiledLayout {
    fill_origins(s, ctx);
    let slabs = s.slabs;
    let side = s.side;
    let resolver = Resolver {
        spec,
        side,
        slabs,
        kinds: &s.kinds,
        term: &s.term,
        assign: &s.assign,
        layer: &s.layer,
        track_width: &s.track_width,
        col_x0: &s.col_x0,
        slot_y0: &s.slot_y0,
        xscale: ctx.xscale,
        yscale: ctx.yscale,
    };
    let mut tiles: Vec<crate::tiled::TileShape> = Vec::new();
    let mut instances: Vec<TileInstance> = Vec::with_capacity(s.kinds.len());
    for ki in 0..s.kinds.len() {
        let g = resolver.resolve(ki);
        // the table stays tiny (one entry per kind × layer-assignment
        // combination), so a linear probe beats hashing
        let tile = match tiles.iter().position(|&t| t == g.shape) {
            Some(i) => i as u32,
            None => {
                tiles.push(g.shape);
                (tiles.len() - 1) as u32
            }
        };
        instances.push(TileInstance {
            tile,
            u: g.u,
            v: g.v,
            ax: g.ax,
            ay: g.ay,
            bx: g.bx,
            by: g.by,
            t1: g.t1,
            t2: g.t2,
        });
    }
    TiledLayout {
        name: cfg.layout_name.clone(),
        layers: cfg.layers,
        rows: spec.rows,
        cols: spec.cols,
        side,
        slots: slabs.slots,
        slab_layers: slabs.slab_layers,
        node_at: spec.node_at.clone(),
        col_x0: s.col_x0.clone(),
        slot_y0: s.slot_y0.clone(),
        tiles,
        instances,
    }
}
