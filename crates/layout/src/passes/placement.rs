//! Pass 1 — placement: classify wires against the slab map, size the
//! node footprint from terminal demand, and fix every terminal's
//! node-local slot.
//!
//! Row-wire ends drop onto the node's **top edge** (excluding the
//! corner), column-wire ends onto its **right edge** (excluding the
//! corner). At each node edge, wires arriving from the left/below
//! (class 0) get smaller offsets than jogs (class 1), which get smaller
//! offsets than wires departing right/up (class 2) — so two same-track
//! wires that touch at a node never share a grid point.
//!
//! Slab-crossing source terminals need planar y positions that are
//! unique across a whole *stack* of nodes (same slot, same column,
//! different slabs): the riser climbs through every slab at the
//! terminal's y, so a stacked neighbour's gap-crossing x-segment at the
//! same offset would hit it. They are therefore allocated from a
//! per-(slot, col) counter that starts above every stack member's
//! intra-wire demand.

use super::{PassConfig, SlabMap, WireKind};
use crate::spec::OrthogonalSpec;
use std::collections::BTreeMap;

/// Which node edge a terminal sits on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Edge {
    /// Top edge: offset is in x from the node's left side.
    Top,
    /// Right edge: offset is in y from the node's bottom side.
    Right,
}

/// A terminal's node-local slot; the emit pass turns it into absolute
/// coordinates once gap widths are known.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TermSlot {
    /// Grid row of the owning node.
    pub row: usize,
    /// Grid column of the owning node.
    pub col: usize,
    /// Node edge the terminal occupies.
    pub edge: Edge,
    /// Offset along the edge (x for top, y for right).
    pub off: i64,
}

/// The placement pass product.
pub(crate) struct Placement {
    /// Row-block-to-slab mapping.
    pub slabs: SlabMap,
    /// Per-wire classification, in emission order (rows, cols, jogs).
    pub kinds: Vec<WireKind>,
    /// Node footprint side `s` (max terminal demand + 1, or the
    /// caller's larger override).
    pub side: i64,
    /// Terminal slot per `(kinds index, is_hi_or_b_end)`.
    pub term: BTreeMap<(usize, bool), TermSlot>,
}

/// Run the placement pass.
///
/// # Panics
/// If `cfg.node_side` is below the computed terminal demand.
pub(crate) fn run(spec: &OrthogonalSpec, cfg: &PassConfig) -> Placement {
    let (rows, cols) = (spec.rows, spec.cols);
    let slabs = SlabMap {
        slots: rows.div_ceil(cfg.active_layers),
        slab_layers: cfg.slab_layers(),
    };

    // --- classify wires ------------------------------------------------
    let mut kinds: Vec<WireKind> = Vec::with_capacity(spec.wire_count());
    for (i, _) in spec.row_wires.iter().enumerate() {
        kinds.push(WireKind::Row { idx: i });
    }
    for (i, w) in spec.col_wires.iter().enumerate() {
        if slabs.slab_of(w.lo) == slabs.slab_of(w.hi) {
            kinds.push(WireKind::Col { idx: i });
        } else {
            kinds.push(WireKind::InterCol { idx: i });
        }
    }
    for (i, w) in spec.jog_wires.iter().enumerate() {
        if slabs.slab_of(w.a.0) == slabs.slab_of(w.b.0) {
            kinds.push(WireKind::Jog { idx: i });
        } else {
            kinds.push(WireKind::InterJog { idx: i });
        }
    }

    // --- terminal demand ------------------------------------------------
    let mut top_count = vec![0usize; rows * cols];
    let mut right_count = vec![0usize; rows * cols];
    for w in &spec.row_wires {
        top_count[w.row * cols + w.lo] += 1;
        top_count[w.row * cols + w.hi] += 1;
    }
    for k in &kinds {
        match *k {
            WireKind::Col { idx } => {
                let w = &spec.col_wires[idx];
                right_count[w.lo * cols + w.col] += 1;
                right_count[w.hi * cols + w.col] += 1;
            }
            WireKind::Jog { idx } => {
                let w = &spec.jog_wires[idx];
                right_count[w.a.0 * cols + w.a.1] += 1;
                top_count[w.b.0 * cols + w.b.1] += 1;
            }
            WireKind::Row { .. } => {}
            _ => {
                if let Some((ra, ca, rb, cb)) = k.inter_ends(spec) {
                    right_count[ra * cols + ca] += 1;
                    top_count[rb * cols + cb] += 1;
                }
            }
        }
    }
    // split intra vs stack-allocated inter demand on the right edge
    let mut intra_right = right_count.clone();
    let mut inter_per_stack: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for k in &kinds {
        if let Some((ra, ca, _, _)) = k.inter_ends(spec) {
            intra_right[ra * cols + ca] -= 1;
            *inter_per_stack.entry((slabs.slot_of(ra), ca)).or_insert(0) += 1;
        }
    }
    let mut stack_intra_max: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for r in 0..rows {
        for c in 0..cols {
            let e = stack_intra_max.entry((slabs.slot_of(r), c)).or_insert(0);
            *e = (*e).max(intra_right[r * cols + c]);
        }
    }
    let right_demand = stack_intra_max
        .iter()
        .map(|(key, &intra)| intra + inter_per_stack.get(key).copied().unwrap_or(0))
        .max()
        .unwrap_or(0);
    let min_side = 1 + top_count
        .iter()
        .copied()
        .max()
        .unwrap_or(0)
        .max(right_demand) as i64;
    let side = match cfg.node_side {
        Some(side) => {
            assert!(
                side as i64 >= min_side,
                "node_side {side} below terminal demand {min_side}"
            );
            side as i64
        }
        None => min_side,
    };

    // --- terminal slots ---------------------------------------------------
    // class 0: arrives (from left / from below), 1: jogs, 2: departs
    let mut top_items: Vec<Vec<(u8, usize, bool)>> = vec![Vec::new(); rows * cols];
    let mut right_items: Vec<Vec<(u8, usize, bool)>> = vec![Vec::new(); rows * cols];
    for (ki, k) in kinds.iter().enumerate() {
        match *k {
            WireKind::Row { idx } => {
                let w = &spec.row_wires[idx];
                // at the hi end the wire arrives from the left (class 0);
                // at the lo end it departs rightward (class 2)
                top_items[w.row * cols + w.hi].push((0, ki, true));
                top_items[w.row * cols + w.lo].push((2, ki, false));
            }
            WireKind::Col { idx } => {
                let w = &spec.col_wires[idx];
                right_items[w.hi * cols + w.col].push((0, ki, true));
                right_items[w.lo * cols + w.col].push((2, ki, false));
            }
            WireKind::Jog { idx } => {
                let w = &spec.jog_wires[idx];
                right_items[w.a.0 * cols + w.a.1].push((1, ki, false));
                top_items[w.b.0 * cols + w.b.1].push((1, ki, true));
            }
            _ => {
                let (_, _, rb, cb) = k.inter_ends(spec).unwrap();
                // the a-side terminal is stack-allocated below
                top_items[rb * cols + cb].push((1, ki, true));
            }
        }
    }
    let mut term: BTreeMap<(usize, bool), TermSlot> = BTreeMap::new();
    let mut stack_counter: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (ki, k) in kinds.iter().enumerate() {
        if let Some((ra, ca, _, _)) = k.inter_ends(spec) {
            let key = (slabs.slot_of(ra), ca);
            let base = stack_intra_max[&key];
            let cnt = stack_counter.entry(key).or_insert(0);
            let off = (base + *cnt) as i64;
            *cnt += 1;
            term.insert(
                (ki, false),
                TermSlot {
                    row: ra,
                    col: ca,
                    edge: Edge::Right,
                    off,
                },
            );
        }
    }
    #[allow(clippy::needless_range_loop)]
    for r in 0..rows {
        for c in 0..cols {
            let pos = r * cols + c;
            let mut items = std::mem::take(&mut top_items[pos]);
            items.sort();
            for (off, &(_, ki, hi_end)) in items.iter().enumerate() {
                term.insert(
                    (ki, hi_end),
                    TermSlot {
                        row: r,
                        col: c,
                        edge: Edge::Top,
                        off: off as i64,
                    },
                );
            }
            let mut items = std::mem::take(&mut right_items[pos]);
            items.sort();
            for (off, &(_, ki, hi_end)) in items.iter().enumerate() {
                term.insert(
                    (ki, hi_end),
                    TermSlot {
                        row: r,
                        col: c,
                        edge: Edge::Right,
                        off: off as i64,
                    },
                );
            }
        }
    }

    Placement {
        slabs,
        kinds,
        side,
        term,
    }
}
