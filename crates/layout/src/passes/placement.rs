//! Pass 1 — placement: classify wires against the slab map, size the
//! node footprint from terminal demand, and fix every terminal's
//! node-local slot.
//!
//! Row-wire ends drop onto the node's **top edge** (excluding the
//! corner), column-wire ends onto its **right edge** (excluding the
//! corner). At each node edge, wires arriving from the left/below
//! (class 0) get smaller offsets than jogs (class 1), which get smaller
//! offsets than wires departing right/up (class 2) — so two same-track
//! wires that touch at a node never share a grid point.
//!
//! Slab-crossing source terminals need planar y positions that are
//! unique across a whole *stack* of nodes (same slot, same column,
//! different slabs): the riser climbs through every slab at the
//! terminal's y, so a stacked neighbour's gap-crossing x-segment at the
//! same offset would hit it. They are therefore allocated from a
//! per-(slot, col) counter that starts above every stack member's
//! intra-wire demand.
//!
//! The terminal discipline is implemented as **one flat sorted array**
//! instead of per-cell vectors: every terminal becomes a packed
//! [`crate::arena::TermItem`] keyed `(cell, edge, class, ki, hi_end)`,
//! one global (parallel) sort groups each node edge into a contiguous
//! run, and a terminal's offset is its position within its run — the
//! exact offsets the per-cell stable sorts produced, at a fraction of
//! the allocation and branching.

use super::{PassConfig, SlabMap, WireKind};
use crate::arena::{Scratch, TermItem};
use crate::spec::OrthogonalSpec;
use mlv_core::exec;

/// Which node edge a terminal sits on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) enum Edge {
    /// Top edge: offset is in x from the node's left side.
    #[default]
    Top,
    /// Right edge: offset is in y from the node's bottom side.
    Right,
}

/// A terminal's node-local slot; the emit pass turns it into absolute
/// coordinates once gap widths are known.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct TermSlot {
    /// Grid row of the owning node.
    pub row: usize,
    /// Grid column of the owning node.
    pub col: usize,
    /// Node edge the terminal occupies.
    pub edge: Edge,
    /// Offset along the edge (x for top, y for right).
    pub off: i64,
}

// TermItem packing: (cell·8 | edge·4 | class, ki·2 | hi_end)
const EDGE_TOP: u64 = 0;
const EDGE_RIGHT: u64 = 1;

fn pack(cell: usize, edge: u64, class: u64, ki: usize, hi_end: bool) -> TermItem {
    (
        ((cell as u64) << 3) | (edge << 2) | class,
        ((ki as u64) << 1) | hi_end as u64,
    )
}

/// Run the placement pass, filling the scratch's placement columns
/// (`slabs`, `kinds`, `side`, `term`).
///
/// # Panics
/// If `cfg.node_side` is below the computed terminal demand.
pub(crate) fn run(spec: &OrthogonalSpec, cfg: &PassConfig, s: &mut Scratch) {
    let (rows, cols) = (spec.rows, spec.cols);
    let slabs = SlabMap {
        slots: rows.div_ceil(cfg.active_layers),
        slab_layers: cfg.slab_layers(),
    };
    s.slabs = slabs;

    // --- classify wires ------------------------------------------------
    s.kinds.clear();
    s.kinds.reserve(spec.wire_count());
    for (i, _) in spec.row_wires.iter().enumerate() {
        s.kinds.push(WireKind::Row { idx: i });
    }
    for (i, w) in spec.col_wires.iter().enumerate() {
        if slabs.slab_of(w.lo) == slabs.slab_of(w.hi) {
            s.kinds.push(WireKind::Col { idx: i });
        } else {
            s.kinds.push(WireKind::InterCol { idx: i });
        }
    }
    for (i, w) in spec.jog_wires.iter().enumerate() {
        if slabs.slab_of(w.a.0) == slabs.slab_of(w.b.0) {
            s.kinds.push(WireKind::Jog { idx: i });
        } else {
            s.kinds.push(WireKind::InterJog { idx: i });
        }
    }

    // --- flat terminal items --------------------------------------------
    // class 0: arrives (from left / from below), 1: jogs, 2: departs
    s.items.clear();
    s.items.reserve(2 * s.kinds.len());
    for (ki, k) in s.kinds.iter().enumerate() {
        match *k {
            WireKind::Row { idx } => {
                let w = &spec.row_wires[idx];
                // at the hi end the wire arrives from the left (class 0);
                // at the lo end it departs rightward (class 2)
                s.items
                    .push(pack(w.row * cols + w.hi, EDGE_TOP, 0, ki, true));
                s.items
                    .push(pack(w.row * cols + w.lo, EDGE_TOP, 2, ki, false));
            }
            WireKind::Col { idx } => {
                let w = &spec.col_wires[idx];
                s.items
                    .push(pack(w.hi * cols + w.col, EDGE_RIGHT, 0, ki, true));
                s.items
                    .push(pack(w.lo * cols + w.col, EDGE_RIGHT, 2, ki, false));
            }
            WireKind::Jog { idx } => {
                let w = &spec.jog_wires[idx];
                s.items
                    .push(pack(w.a.0 * cols + w.a.1, EDGE_RIGHT, 1, ki, false));
                s.items
                    .push(pack(w.b.0 * cols + w.b.1, EDGE_TOP, 1, ki, true));
            }
            _ => {
                let (_, _, rb, cb) = k.inter_ends(spec).unwrap();
                // the a-side terminal is stack-allocated below
                s.items.push(pack(rb * cols + cb, EDGE_TOP, 1, ki, true));
            }
        }
    }
    exec::par_sort_unstable(&mut s.items);

    // --- terminal demand --------------------------------------------------
    // top demand is the longest top-edge run; intra right-edge demand is
    // per-cell run length, maxed over each (slot, col) stack
    let stacks = slabs.slots * cols;
    s.stack_intra_max.clear();
    s.stack_intra_max.resize(stacks, 0);
    s.inter_per_stack.clear();
    s.inter_per_stack.resize(stacks, 0);
    let mut top_max = 0usize;
    let mut i = 0;
    while i < s.items.len() {
        let gkey = s.items[i].0 >> 2; // (cell, edge)
        let mut j = i + 1;
        while j < s.items.len() && s.items[j].0 >> 2 == gkey {
            j += 1;
        }
        let run = j - i;
        if gkey & 1 == EDGE_TOP {
            top_max = top_max.max(run);
        } else {
            let cell = (gkey >> 1) as usize;
            let idx = slabs.slot_of(cell / cols) * cols + cell % cols;
            s.stack_intra_max[idx] = s.stack_intra_max[idx].max(run as u32);
        }
        i = j;
    }
    for k in &s.kinds {
        if let Some((ra, ca, _, _)) = k.inter_ends(spec) {
            s.inter_per_stack[slabs.slot_of(ra) * cols + ca] += 1;
        }
    }
    let right_demand = s
        .stack_intra_max
        .iter()
        .zip(&s.inter_per_stack)
        .map(|(&intra, &inter)| (intra + inter) as usize)
        .max()
        .unwrap_or(0);
    let min_side = 1 + top_max.max(right_demand) as i64;
    s.side = match cfg.node_side {
        Some(side) => {
            assert!(
                side as i64 >= min_side,
                "node_side {side} below terminal demand {min_side}"
            );
            side as i64
        }
        None => min_side,
    };

    // --- terminal slots ---------------------------------------------------
    s.term.clear();
    s.term.resize(2 * s.kinds.len(), TermSlot::default());
    // slab-crossing a-side terminals: stack-allocated past the stack's
    // intra demand, in kinds order
    s.stack_counter.clear();
    s.stack_counter.resize(stacks, 0);
    for (ki, k) in s.kinds.iter().enumerate() {
        if let Some((ra, ca, _, _)) = k.inter_ends(spec) {
            let idx = slabs.slot_of(ra) * cols + ca;
            let off = (s.stack_intra_max[idx] + s.stack_counter[idx]) as i64;
            s.stack_counter[idx] += 1;
            s.term[2 * ki] = TermSlot {
                row: ra,
                col: ca,
                edge: Edge::Right,
                off,
            };
        }
    }
    // everything else: offset = position within the sorted (cell, edge)
    // run, which equals the per-cell (class, ki, hi_end) sort position
    let mut i = 0;
    while i < s.items.len() {
        let gkey = s.items[i].0 >> 2;
        let cell = (gkey >> 1) as usize;
        let (row, col) = (cell / cols, cell % cols);
        let edge = if gkey & 1 == EDGE_TOP {
            Edge::Top
        } else {
            Edge::Right
        };
        let mut j = i;
        while j < s.items.len() && s.items[j].0 >> 2 == gkey {
            let tail = s.items[j].1;
            let (ki, hi_end) = ((tail >> 1) as usize, (tail & 1) as usize);
            s.term[2 * ki + hi_end] = TermSlot {
                row,
                col,
                edge,
                off: (j - i) as i64,
            };
            j += 1;
        }
        i = j;
    }
}
