//! Pass 2 — tracks: shared track grouping and per-gap widths.
//!
//! Construction tracks are split round-robin into `G = ⌊(L/L_A)/2⌋`
//! groups (round-robin keeps per-group counts balanced within one,
//! matching the paper's `⌈h_i/⌊L/2⌋⌉` bundles). Jog wires take appended
//! tracks coloured greedily with *closed*-interval semantics — verticals
//! per (gap column, group, slab), horizontals per (row bundle, group) —
//! so they never touch anything on their tracks at all. Slab-crossing
//! wires pool their horizontal-run colours with the destination row's
//! jogs and additionally own a private riser column appended to the
//! source column's gap.

use super::{PassConfig, WireKind};
use crate::passes::placement::Placement;
use crate::realize::JogStrategy;
use crate::spec::OrthogonalSpec;
use std::collections::BTreeMap;

/// Closed-interval greedy colouring: intervals may share a track only
/// if strictly disjoint. Returns per-interval colours and the number of
/// colours used.
pub(crate) fn color_closed(intervals: &[(usize, usize)]) -> (Vec<usize>, usize) {
    let mut order: Vec<usize> = (0..intervals.len()).collect();
    order.sort_by_key(|&i| intervals[i]);
    let mut track_end: Vec<usize> = Vec::new(); // last hi per track
    let mut colors = vec![0usize; intervals.len()];
    for &i in &order {
        let (lo, hi) = intervals[i];
        let mut assigned = None;
        for (t, end) in track_end.iter_mut().enumerate() {
            if *end < lo {
                *end = hi;
                assigned = Some(t);
                break;
            }
        }
        let t = assigned.unwrap_or_else(|| {
            track_end.push(hi);
            track_end.len() - 1
        });
        colors[i] = t;
    }
    (colors, track_end.len())
}

/// Number of construction tracks `t < base` with `t % groups == g`.
pub(crate) fn count_in_group(base: usize, g: usize, groups: usize) -> usize {
    if base > g {
        (base - g).div_ceil(groups)
    } else {
        0
    }
}

/// Track assignment for one wire: its group(s) and gap-local track
/// offsets. The emit pass adds the gap origins.
#[derive(Clone, Copy, Debug)]
pub(crate) enum TrackAssign {
    /// Row/column construction wire: spec-assigned track `t` lands in
    /// group `t % G` at in-gap offset `t / G`.
    Construction { group: usize, track: i64 },
    /// Intra-slab jog: coloured offsets in the source column gap (`tx`)
    /// and destination row gap (`ty`), past the construction bundle.
    Jog { group: usize, tx: i64, ty: i64 },
    /// Slab-crossing wire: source-slab group `group_a`, destination-slab
    /// group `group_b`, private riser index in the source column gap,
    /// and destination row-gap offset `ty`.
    Inter {
        group_a: usize,
        group_b: usize,
        riser: i64,
        ty: i64,
    },
}

impl TrackAssign {
    /// The group used in the wire's home slab (source slab for
    /// slab-crossing wires).
    pub fn home_group(&self) -> usize {
        match *self {
            TrackAssign::Construction { group, .. } | TrackAssign::Jog { group, .. } => group,
            TrackAssign::Inter { group_a, .. } => group_a,
        }
    }
}

/// The tracks pass product.
pub(crate) struct TrackPlan {
    /// Per-wire assignment, parallel to `Placement::kinds`.
    pub assign: Vec<TrackAssign>,
    /// Horizontal gap height above each planar row slot.
    pub hpl_slot: Vec<i64>,
    /// Vertical gap width right of each column (risers included).
    pub wpl: Vec<i64>,
    /// Construction + jog width of each column gap (risers sit past it).
    pub track_width: Vec<i64>,
}

/// Per-key list of (wire tag, closed interval) awaiting colouring.
type IntervalsByKey = BTreeMap<(usize, usize), Vec<(usize, (usize, usize))>>;
/// Same, additionally keyed by slab.
type IntervalsBySlabKey = BTreeMap<(usize, usize, usize), Vec<(usize, (usize, usize))>>;

#[derive(Default, Clone, Copy)]
struct JAssign {
    group: usize,
    vcolor: usize,
    hcolor: usize,
}

#[derive(Default, Clone, Copy)]
struct IAssign {
    ga: usize,
    gb: usize,
    hcolor: usize,
    riser: usize,
}

/// Run the tracks pass.
pub(crate) fn run(spec: &OrthogonalSpec, cfg: &PassConfig, place: &Placement) -> TrackPlan {
    let groups = cfg.groups();
    let slabs = &place.slabs;
    let (rows, cols) = (spec.rows, spec.cols);

    // --- intra-jog group + colouring keys --------------------------------
    // verticals are keyed (col, group, slab) to stay slab-local; the
    // horizontal keys are slab-local already because rows are unique
    let mut jog_assign: BTreeMap<usize, JAssign> = BTreeMap::new();
    let mut vkeys: IntervalsBySlabKey = BTreeMap::new();
    let mut hkeys: IntervalsByKey = BTreeMap::new();
    let mut intra_jog_counter = 0usize;
    for (i, w) in spec.jog_wires.iter().enumerate() {
        if slabs.slab_of(w.a.0) != slabs.slab_of(w.b.0) {
            continue;
        }
        let g = match cfg.jog_strategy {
            JogStrategy::RoundRobin => intra_jog_counter % groups,
            JogStrategy::SingleGroup => 0,
        };
        intra_jog_counter += 1;
        jog_assign.insert(
            i,
            JAssign {
                group: g,
                ..Default::default()
            },
        );
        let rlo = slabs.slot_of(w.a.0).min(slabs.slot_of(w.b.0));
        let rhi = slabs.slot_of(w.a.0).max(slabs.slot_of(w.b.0));
        vkeys
            .entry((w.a.1, g, slabs.slab_of(w.a.0)))
            .or_default()
            .push((i, (rlo, rhi)));
        let clo = w.a.1.min(w.b.1);
        let chi = w.a.1.max(w.b.1);
        hkeys.entry((w.b.0, g)).or_default().push((i, (clo, chi)));
    }

    // --- slab-crossing wires: groups, risers, pooled h-colouring ---------
    let mut inter_assign: BTreeMap<usize, IAssign> = BTreeMap::new(); // key: kinds index
    let mut riser_count: BTreeMap<usize, usize> = BTreeMap::new();
    let mut inter_counter = 0usize;
    for (ki, k) in place.kinds.iter().enumerate() {
        if let Some((_, ca, rb, cb)) = k.inter_ends(spec) {
            let ga = inter_counter % groups;
            let gb = (inter_counter / groups) % groups;
            inter_counter += 1;
            let riser = {
                let c = riser_count.entry(ca).or_insert(0);
                let r = *c;
                *c += 1;
                r
            };
            inter_assign.insert(
                ki,
                IAssign {
                    ga,
                    gb,
                    hcolor: 0,
                    riser,
                },
            );
            let clo = ca.min(cb);
            let chi = ca.max(cb);
            hkeys
                .entry((rb, gb))
                .or_default()
                .push((usize::MAX - ki, (clo, chi)));
        }
    }

    // --- closed-interval colouring ---------------------------------------
    let mut jog_vtracks: BTreeMap<(usize, usize, usize), usize> = BTreeMap::new();
    for ((c, g, a), items) in &vkeys {
        let spans: Vec<(usize, usize)> = items.iter().map(|&(_, iv)| iv).collect();
        let (colors, used) = color_closed(&spans);
        for (pos, &(i, _)) in items.iter().enumerate() {
            jog_assign.get_mut(&i).unwrap().vcolor = colors[pos];
        }
        jog_vtracks.insert((*c, *g, *a), used);
    }
    let mut jog_htracks: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for ((r, g), items) in &hkeys {
        let spans: Vec<(usize, usize)> = items.iter().map(|&(_, iv)| iv).collect();
        let (colors, used) = color_closed(&spans);
        for (pos, &(tag, _)) in items.iter().enumerate() {
            if tag <= spec.jog_wires.len() {
                jog_assign.get_mut(&tag).unwrap().hcolor = colors[pos];
            } else {
                inter_assign.get_mut(&(usize::MAX - tag)).unwrap().hcolor = colors[pos];
            }
        }
        jog_htracks.insert((*r, *g), used);
    }

    // --- per-gap widths ----------------------------------------------------
    let base_h: Vec<usize> = (0..rows).map(|r| spec.row_tracks(r)).collect();
    let base_w: Vec<usize> = (0..cols).map(|c| spec.col_tracks(c)).collect();
    // per-row bundle height (within its slab), then per-slot max
    let hpl_row: Vec<i64> = (0..rows)
        .map(|r| {
            (0..groups)
                .map(|g| {
                    count_in_group(base_h[r], g, groups)
                        + jog_htracks.get(&(r, g)).copied().unwrap_or(0)
                })
                .max()
                .unwrap_or(0) as i64
        })
        .collect();
    let hpl_slot: Vec<i64> = (0..slabs.slots)
        .map(|sl| {
            (0..cfg.active_layers)
                .filter_map(|a| {
                    let r = a * slabs.slots + sl;
                    (r < rows).then(|| hpl_row[r])
                })
                .max()
                .unwrap_or(0)
        })
        .collect();
    let wpl: Vec<i64> = (0..cols)
        .map(|c| {
            let tracks = (0..groups)
                .map(|g| {
                    let jmax = (0..cfg.active_layers)
                        .map(|a| jog_vtracks.get(&(c, g, a)).copied().unwrap_or(0))
                        .max()
                        .unwrap_or(0);
                    count_in_group(base_w[c], g, groups) + jmax
                })
                .max()
                .unwrap_or(0) as i64;
            tracks + riser_count.get(&c).copied().unwrap_or(0) as i64
        })
        .collect();
    let track_width: Vec<i64> = (0..cols)
        .map(|c| wpl[c] - riser_count.get(&c).copied().unwrap_or(0) as i64)
        .collect();

    // --- per-wire assignment ------------------------------------------------
    let assign: Vec<TrackAssign> = place
        .kinds
        .iter()
        .enumerate()
        .map(|(ki, k)| match *k {
            WireKind::Row { idx } => {
                let w = &spec.row_wires[idx];
                TrackAssign::Construction {
                    group: w.track % groups,
                    track: (w.track / groups) as i64,
                }
            }
            WireKind::Col { idx } => {
                let w = &spec.col_wires[idx];
                TrackAssign::Construction {
                    group: w.track % groups,
                    track: (w.track / groups) as i64,
                }
            }
            WireKind::Jog { idx } => {
                let w = &spec.jog_wires[idx];
                let a = jog_assign[&idx];
                TrackAssign::Jog {
                    group: a.group,
                    tx: (count_in_group(base_w[w.a.1], a.group, groups) + a.vcolor) as i64,
                    ty: (count_in_group(base_h[w.b.0], a.group, groups) + a.hcolor) as i64,
                }
            }
            _ => {
                let (_, _, rb, _) = k.inter_ends(spec).unwrap();
                let ia = inter_assign[&ki];
                TrackAssign::Inter {
                    group_a: ia.ga,
                    group_b: ia.gb,
                    riser: ia.riser as i64,
                    ty: (count_in_group(base_h[rb], ia.gb, groups) + ia.hcolor) as i64,
                }
            }
        })
        .collect();

    TrackPlan {
        assign,
        hpl_slot,
        wpl,
        track_width,
    }
}
