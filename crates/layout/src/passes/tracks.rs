//! Pass 2 — tracks: shared track grouping and per-gap widths.
//!
//! Construction tracks are split round-robin into `G = ⌊(L/L_A)/2⌋`
//! groups (round-robin keeps per-group counts balanced within one,
//! matching the paper's `⌈h_i/⌊L/2⌋⌉` bundles). Jog wires take appended
//! tracks coloured greedily with *closed*-interval semantics — verticals
//! per (gap column, group, slab), horizontals per (row bundle, group) —
//! so they never touch anything on their tracks at all. Slab-crossing
//! wires pool their horizontal-run colours with the destination row's
//! jogs and additionally own a private riser column appended to the
//! source column's gap.
//!
//! The colouring keys are **flat sorted arrays**, not maps: every
//! interval becomes a packed [`crate::arena::IVal`] record
//! `(key, lo, hi, tag)`, one global (parallel) sort groups each
//! colouring key into a contiguous run, and [`color_runs`] first-fits
//! within each run. Tags encode insertion order (jog indices before
//! `jog_len + inter_seq`), so ties colour exactly as the per-key
//! stable sorts did. Per-bundle construction-track counts (`base_h` /
//! `base_w`) are likewise built in one pass over the spec's wires
//! instead of one scan *per* row and column.

use super::{PassConfig, PassContext, WireKind};
use crate::arena::Scratch;
use crate::realize::JogStrategy;
use crate::spec::OrthogonalSpec;
use mlv_core::exec;

/// Closed-interval greedy colouring: intervals may share a track only
/// if strictly disjoint. Returns per-interval colours and the number of
/// colours used. (Reference implementation; the pass itself runs the
/// same algorithm over sorted runs via [`color_runs`].)
#[cfg(test)]
pub(crate) fn color_closed(intervals: &[(usize, usize)]) -> (Vec<usize>, usize) {
    let mut ivals: Vec<crate::arena::IVal> = intervals
        .iter()
        .enumerate()
        .map(|(i, &(lo, hi))| (0u64, lo as u32, hi as u32, i as u32))
        .collect();
    ivals.sort_unstable();
    let mut colors = vec![0usize; intervals.len()];
    let mut used = 0usize;
    let mut track_end = Vec::new();
    color_runs(
        &ivals,
        &mut track_end,
        |tag, color| colors[tag as usize] = color as usize,
        |_, n| used = n as usize,
    );
    (colors, used)
}

/// First-fit colour the sorted interval records run by run (records
/// sharing a `key` form one run). `assign(tag, colour)` fires per
/// interval; `finish(key, used)` fires once per run with the number of
/// colours used. `track_end` is caller-owned scratch.
fn color_runs(
    ivals: &[crate::arena::IVal],
    track_end: &mut Vec<u32>,
    mut assign: impl FnMut(u32, u32),
    mut finish: impl FnMut(u64, u32),
) {
    let mut i = 0;
    while i < ivals.len() {
        let key = ivals[i].0;
        track_end.clear();
        let mut j = i;
        while j < ivals.len() && ivals[j].0 == key {
            let (_, lo, hi, tag) = ivals[j];
            let mut color = None;
            for (t, end) in track_end.iter_mut().enumerate() {
                if *end < lo {
                    *end = hi;
                    color = Some(t as u32);
                    break;
                }
            }
            let c = color.unwrap_or_else(|| {
                track_end.push(hi);
                (track_end.len() - 1) as u32
            });
            assign(tag, c);
            j += 1;
        }
        finish(key, track_end.len() as u32);
        i = j;
    }
}

/// Number of construction tracks `t < base` with `t % groups == g`.
pub(crate) fn count_in_group(base: usize, g: usize, groups: usize) -> usize {
    if base > g {
        (base - g).div_ceil(groups)
    } else {
        0
    }
}

/// Track assignment for one wire: its group(s) and gap-local track
/// offsets. The emit pass adds the gap origins.
#[derive(Clone, Copy, Debug)]
pub(crate) enum TrackAssign {
    /// Row/column construction wire: spec-assigned track `t` lands in
    /// group `t % G` at in-gap offset `t / G`.
    Construction { group: usize, track: i64 },
    /// Intra-slab jog: coloured offsets in the source column gap (`tx`)
    /// and destination row gap (`ty`), past the construction bundle.
    Jog { group: usize, tx: i64, ty: i64 },
    /// Slab-crossing wire: source-slab group `group_a`, destination-slab
    /// group `group_b`, private riser index in the source column gap,
    /// and destination row-gap offset `ty`.
    Inter {
        group_a: usize,
        group_b: usize,
        riser: i64,
        ty: i64,
    },
}

impl TrackAssign {
    /// The group used in the wire's home slab (source slab for
    /// slab-crossing wires).
    pub fn home_group(&self) -> usize {
        match *self {
            TrackAssign::Construction { group, .. } | TrackAssign::Jog { group, .. } => group,
            TrackAssign::Inter { group_a, .. } => group_a,
        }
    }
}

/// Intra-jog working assignment, indexed by jog-wire index.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct JAssign {
    /// Layer group.
    pub group: usize,
    /// Colour in the source column gap.
    pub vcolor: usize,
    /// Colour in the destination row gap.
    pub hcolor: usize,
}

/// Slab-crossing working assignment, indexed by inter sequence number
/// (kinds order).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct IAssign {
    /// Source-slab group.
    pub ga: usize,
    /// Destination-slab group.
    pub gb: usize,
    /// Colour in the destination row gap (pooled with its jogs).
    pub hcolor: usize,
    /// Private riser index in the source column's gap.
    pub riser: usize,
}

/// Run the tracks pass, filling the scratch's track columns
/// (`assign`, `hpl_slot`, `wpl`, `track_width`).
pub(crate) fn run(spec: &OrthogonalSpec, cfg: &PassConfig, ctx: &PassContext, s: &mut Scratch) {
    let groups = ctx.groups;
    let slabs = s.slabs;
    let (rows, cols) = (spec.rows, spec.cols);
    let nslabs = cfg.active_layers;

    // --- intra-jog groups + vertical colouring ---------------------------
    // verticals are keyed (col, group, slab) to stay slab-local; the
    // horizontal keys are slab-local already because rows are unique
    s.jassign.clear();
    s.jassign.resize(spec.jog_wires.len(), JAssign::default());
    s.ivals.clear();
    let mut intra_jog_counter = 0usize;
    for (i, w) in spec.jog_wires.iter().enumerate() {
        if slabs.slab_of(w.a.0) != slabs.slab_of(w.b.0) {
            continue;
        }
        let g = match cfg.jog_strategy {
            JogStrategy::RoundRobin => intra_jog_counter % groups,
            JogStrategy::SingleGroup => 0,
        };
        intra_jog_counter += 1;
        s.jassign[i].group = g;
        let key = ((w.a.1 * groups + g) * nslabs + slabs.slab_of(w.a.0)) as u64;
        let rlo = slabs.slot_of(w.a.0).min(slabs.slot_of(w.b.0));
        let rhi = slabs.slot_of(w.a.0).max(slabs.slot_of(w.b.0));
        s.ivals.push((key, rlo as u32, rhi as u32, i as u32));
    }
    exec::par_sort_unstable(&mut s.ivals);
    s.jog_vtracks.clear();
    s.jog_vtracks.resize(cols * groups * nslabs, 0);
    {
        let (ivals, track_end) = (&s.ivals, &mut s.track_end);
        let (jassign, jog_vtracks) = (&mut s.jassign, &mut s.jog_vtracks);
        color_runs(
            ivals,
            track_end,
            |tag, c| jassign[tag as usize].vcolor = c as usize,
            |key, used| jog_vtracks[key as usize] = used,
        );
    }

    // --- slab-crossing wires: groups, risers, pooled h-colouring ---------
    // horizontal intervals: intra jogs first (jog-index order), then
    // slab-crossing wires (kinds order) — the tag preserves that order
    // for colour tie-breaking
    s.ivals.clear();
    for (i, w) in spec.jog_wires.iter().enumerate() {
        if slabs.slab_of(w.a.0) != slabs.slab_of(w.b.0) {
            continue;
        }
        let g = s.jassign[i].group;
        let key = (w.b.0 * groups + g) as u64;
        let clo = w.a.1.min(w.b.1);
        let chi = w.a.1.max(w.b.1);
        s.ivals.push((key, clo as u32, chi as u32, i as u32));
    }
    let jlen = spec.jog_wires.len() as u32;
    s.iassign.clear();
    s.riser_count.clear();
    s.riser_count.resize(cols, 0);
    for k in &s.kinds {
        if let Some((_, ca, rb, cb)) = k.inter_ends(spec) {
            let n = s.iassign.len();
            let riser = s.riser_count[ca] as usize;
            s.riser_count[ca] += 1;
            s.iassign.push(IAssign {
                ga: n % groups,
                gb: (n / groups) % groups,
                hcolor: 0,
                riser,
            });
            let gb = s.iassign[n].gb;
            let key = (rb * groups + gb) as u64;
            let clo = ca.min(cb);
            let chi = ca.max(cb);
            s.ivals.push((key, clo as u32, chi as u32, jlen + n as u32));
        }
    }
    exec::par_sort_unstable(&mut s.ivals);
    s.jog_htracks.clear();
    s.jog_htracks.resize(rows * groups, 0);
    {
        let (ivals, track_end) = (&s.ivals, &mut s.track_end);
        let (jassign, iassign) = (&mut s.jassign, &mut s.iassign);
        let jog_htracks = &mut s.jog_htracks;
        color_runs(
            ivals,
            track_end,
            |tag, c| {
                if tag < jlen {
                    jassign[tag as usize].hcolor = c as usize;
                } else {
                    iassign[(tag - jlen) as usize].hcolor = c as usize;
                }
            },
            |key, used| jog_htracks[key as usize] = used,
        );
    }

    // --- per-gap widths ----------------------------------------------------
    // construction-track counts per bundle, one pass over each wire list
    s.base_h.clear();
    s.base_h.resize(rows, 0);
    for w in &spec.row_wires {
        let e = &mut s.base_h[w.row];
        *e = (*e).max(w.track as u32 + 1);
    }
    s.base_w.clear();
    s.base_w.resize(cols, 0);
    for w in &spec.col_wires {
        let e = &mut s.base_w[w.col];
        *e = (*e).max(w.track as u32 + 1);
    }
    // per-row bundle height (within its slab), then per-slot max
    s.hpl_row.clear();
    for r in 0..rows {
        let h = (0..groups)
            .map(|g| {
                count_in_group(s.base_h[r] as usize, g, groups)
                    + s.jog_htracks[r * groups + g] as usize
            })
            .max()
            .unwrap_or(0) as i64;
        s.hpl_row.push(h);
    }
    s.hpl_slot.clear();
    for sl in 0..slabs.slots {
        let h = (0..cfg.active_layers)
            .filter_map(|a| {
                let r = a * slabs.slots + sl;
                (r < rows).then(|| s.hpl_row[r])
            })
            .max()
            .unwrap_or(0);
        s.hpl_slot.push(h);
    }
    s.wpl.clear();
    s.track_width.clear();
    for c in 0..cols {
        let tracks = (0..groups)
            .map(|g| {
                let jmax = (0..nslabs)
                    .map(|a| s.jog_vtracks[(c * groups + g) * nslabs + a])
                    .max()
                    .unwrap_or(0) as usize;
                count_in_group(s.base_w[c] as usize, g, groups) + jmax
            })
            .max()
            .unwrap_or(0) as i64;
        s.track_width.push(tracks);
        s.wpl.push(tracks + s.riser_count[c] as i64);
    }

    // --- per-wire assignment ------------------------------------------------
    s.assign.clear();
    s.assign.reserve(s.kinds.len());
    let mut inter_seq = 0usize;
    for k in &s.kinds {
        let a = match *k {
            WireKind::Row { idx } => {
                let w = &spec.row_wires[idx];
                TrackAssign::Construction {
                    group: w.track % groups,
                    track: (w.track / groups) as i64,
                }
            }
            WireKind::Col { idx } => {
                let w = &spec.col_wires[idx];
                TrackAssign::Construction {
                    group: w.track % groups,
                    track: (w.track / groups) as i64,
                }
            }
            WireKind::Jog { idx } => {
                let w = &spec.jog_wires[idx];
                let a = s.jassign[idx];
                TrackAssign::Jog {
                    group: a.group,
                    tx: (count_in_group(s.base_w[w.a.1] as usize, a.group, groups) + a.vcolor)
                        as i64,
                    ty: (count_in_group(s.base_h[w.b.0] as usize, a.group, groups) + a.hcolor)
                        as i64,
                }
            }
            _ => {
                let (_, _, rb, _) = k.inter_ends(spec).unwrap();
                let ia = s.iassign[inter_seq];
                inter_seq += 1;
                TrackAssign::Inter {
                    group_a: ia.ga,
                    group_b: ia.gb,
                    riser: ia.riser as i64,
                    ty: (count_in_group(s.base_h[rb] as usize, ia.gb, groups) + ia.hcolor) as i64,
                }
            }
        };
        s.assign.push(a);
    }
}

#[cfg(test)]
mod tests {
    use super::{color_closed, count_in_group};

    /// Closed intervals sharing an endpoint must not share a track.
    #[test]
    fn closed_semantics_split_touching_intervals() {
        let (colors, used) = color_closed(&[(0, 3), (3, 5), (6, 8)]);
        assert_eq!(used, 2);
        assert_eq!(colors, vec![0, 1, 0]);
    }

    #[test]
    fn disjoint_intervals_share_one_track() {
        let (colors, used) = color_closed(&[(0, 1), (3, 4), (6, 9)]);
        assert_eq!(used, 1);
        assert_eq!(colors, vec![0, 0, 0]);
    }

    #[test]
    fn nested_intervals_each_take_a_track() {
        // every interval contains the next: a clique under closed overlap
        let (colors, used) = color_closed(&[(0, 9), (1, 8), (2, 7), (3, 6)]);
        assert_eq!(used, 4);
        assert_eq!(colors, vec![0, 1, 2, 3]);
    }

    /// First-fit over the *sorted* order: colouring is a function of the
    /// interval set, with input order only breaking exact-duplicate ties.
    #[test]
    fn coloring_is_input_order_invariant_for_distinct_intervals() {
        let a = color_closed(&[(0, 2), (4, 6), (1, 5), (7, 9)]);
        let b = color_closed(&[(7, 9), (1, 5), (0, 2), (4, 6)]);
        // same number of tracks; per-interval colours permuted with input
        assert_eq!(a.1, b.1);
        assert_eq!(a.1, 2);
        assert_eq!(a.0, vec![0, 0, 1, 0]);
        assert_eq!(b.0, vec![0, 1, 0, 0]);
    }

    #[test]
    fn empty_input_uses_no_tracks() {
        let (colors, used) = color_closed(&[]);
        assert!(colors.is_empty());
        assert_eq!(used, 0);
    }

    #[test]
    fn count_in_group_partitions_the_base() {
        for base in 0..12usize {
            for groups in 1..5usize {
                let total: usize = (0..groups).map(|g| count_in_group(base, g, groups)).sum();
                assert_eq!(total, base, "base={base} groups={groups}");
                // round-robin keeps group sizes balanced within one
                let sizes: Vec<_> = (0..groups)
                    .map(|g| count_in_group(base, g, groups))
                    .collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced: {sizes:?}");
            }
        }
    }
}
