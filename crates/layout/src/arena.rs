//! Reusable pass scratch: the struct-of-arrays layout IR plus every
//! buffer the placement → tracks → layers → emit pipeline allocates.
//!
//! One [`Scratch`] holds the flat index vectors the passes fill
//! (products *and* intermediates), the emit pass's recycled corner /
//! node / wire storage, and the engine's serialization buffer. Reusing
//! one `Scratch` across realizations removes essentially all steady
//! state allocation from the hot path:
//!
//! * [`mod@crate::realize`] / [`crate::realize3d`] reuse a thread-local
//!   `Scratch` per calling thread (disable with `MLV_FRESH_ALLOC=1`,
//!   the fresh-allocation debug mode);
//! * the batch engine ([`crate::engine`]) owns a [`ScratchPool`] so the
//!   parallel fan-out recycles scratch across jobs — and recycles each
//!   *discarded* layout's corner buffers back into the pool.
//!
//! Reuse is **panic-safe by construction**: a scratch is checked out of
//! the pool by value and only returned after the job completes, so a
//! panicking realization simply drops its (possibly half-filled)
//! scratch instead of recycling it. Every pass unconditionally
//! `clear()`s the vectors it writes, so even a scratch that *was*
//! reused after an earlier panic cannot leak stale state into a later
//! layout.

use crate::passes::placement::TermSlot;
use crate::passes::tracks::{IAssign, JAssign, TrackAssign};
use crate::passes::SlabMap;
use crate::passes::{layers::LayerAssign, WireKind};
use mlv_grid::geom::Point3;
use mlv_grid::layout::{NodePlacement, Wire};
use std::sync::Mutex;

/// Cap on recycled corner buffers held by one scratch — bounds pool
/// memory at roughly `cap × 10 corners × 24 B` per scratch while still
/// covering every layout the bench vocabulary produces.
const PATH_POOL_CAP: usize = 1 << 14;

/// Cap on pooled scratches held by an engine (the fan-out never has
/// more live jobs than worker threads, so this is generous).
const SCRATCH_POOL_CAP: usize = 64;

/// One flat terminal-item record, packed for sort speed:
/// `(cell·8 | edge·4 | class, ki·2 | hi_end)`. Lexicographic order on
/// the pair reproduces the AoS pipeline's per-cell stable sort by
/// `(class, ki, hi_end)` exactly (cell and edge group the runs; the
/// packed tails are unique, so unstable sorting is deterministic).
pub(crate) type TermItem = (u64, u64);

/// One closed interval awaiting greedy colouring:
/// `(key, lo, hi, tag)`. Sorting reproduces the AoS pipeline's
/// per-key *stable* sort by `(lo, hi)`: `tag` encodes insertion order
/// (jog indices first, then `jog_len + inter_seq`), so ties break
/// exactly as the BTreeMap-of-Vecs did.
pub(crate) type IVal = (u64, u32, u32, u32);

/// Reusable pass scratch: SoA products + intermediates + recycled
/// emit storage. `Default` is an empty scratch; every field is sized
/// and overwritten by the pass that owns it.
#[derive(Debug)]
pub(crate) struct Scratch {
    // --- placement products ---------------------------------------
    /// Row-block-to-slab mapping.
    pub slabs: SlabMap,
    /// Node footprint side.
    pub side: i64,
    /// Per-wire classification, in emission order.
    pub kinds: Vec<WireKind>,
    /// Terminal slots, indexed `2·ki + hi_end` (a-end at `2·ki`).
    pub term: Vec<TermSlot>,
    // --- tracks products ------------------------------------------
    /// Per-wire track assignment, parallel to `kinds`.
    pub assign: Vec<TrackAssign>,
    /// Horizontal gap height above each planar row slot.
    pub hpl_slot: Vec<i64>,
    /// Vertical gap width right of each column (risers included).
    pub wpl: Vec<i64>,
    /// Construction + jog width of each column gap.
    pub track_width: Vec<i64>,
    // --- layers product -------------------------------------------
    /// Per-wire layer assignment, parallel to `kinds`.
    pub layer: Vec<LayerAssign>,
    // --- placement intermediates ----------------------------------
    /// Flat terminal items, globally sorted.
    pub items: Vec<TermItem>,
    /// Max intra right-edge demand per `(slot, col)` stack.
    pub stack_intra_max: Vec<u32>,
    /// Slab-crossing a-side terminals per `(slot, col)` stack.
    pub inter_per_stack: Vec<u32>,
    /// Stack-allocation cursor per `(slot, col)`.
    pub stack_counter: Vec<u32>,
    // --- tracks intermediates -------------------------------------
    /// Jog assignment by jog-wire index (intra jogs only).
    pub jassign: Vec<JAssign>,
    /// Slab-crossing assignment by inter sequence number (ki order).
    pub iassign: Vec<IAssign>,
    /// Interval records for one colouring round (verticals, then
    /// horizontals — the buffer is reused).
    pub ivals: Vec<IVal>,
    /// First-fit end-of-track state, cleared per colouring run.
    pub track_end: Vec<u32>,
    /// Construction track count per row bundle.
    pub base_h: Vec<u32>,
    /// Construction track count per column bundle.
    pub base_w: Vec<u32>,
    /// Per-row bundle height before the per-slot max.
    pub hpl_row: Vec<i64>,
    /// Jog vertical tracks used per `(col, group, slab)`.
    pub jog_vtracks: Vec<u32>,
    /// Jog + inter horizontal tracks used per `(row, group)`.
    pub jog_htracks: Vec<u32>,
    /// Risers appended to each column's gap.
    pub riser_count: Vec<u32>,
    // --- emit intermediates ---------------------------------------
    /// Prefix-summed x origin per column (len `cols + 1`).
    pub col_x0: Vec<i64>,
    /// Prefix-summed y origin per planar row slot (len `slots + 1`).
    pub slot_y0: Vec<i64>,
    // --- recycled emit storage ------------------------------------
    /// Corner buffers recycled from discarded layouts.
    pub path_pool: Vec<Vec<Point3>>,
    /// Recycled node vector for the next layout.
    pub nodes_buf: Vec<NodePlacement>,
    /// Recycled wire vector for the next layout.
    pub wires_buf: Vec<Wire>,
    /// Serialization buffer for digesting (engine only).
    pub io_buf: String,
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch {
            slabs: SlabMap {
                slots: 1,
                slab_layers: 2,
            },
            side: 0,
            kinds: Vec::new(),
            term: Vec::new(),
            assign: Vec::new(),
            hpl_slot: Vec::new(),
            wpl: Vec::new(),
            track_width: Vec::new(),
            layer: Vec::new(),
            items: Vec::new(),
            stack_intra_max: Vec::new(),
            inter_per_stack: Vec::new(),
            stack_counter: Vec::new(),
            jassign: Vec::new(),
            iassign: Vec::new(),
            ivals: Vec::new(),
            track_end: Vec::new(),
            base_h: Vec::new(),
            base_w: Vec::new(),
            hpl_row: Vec::new(),
            jog_vtracks: Vec::new(),
            jog_htracks: Vec::new(),
            riser_count: Vec::new(),
            col_x0: Vec::new(),
            slot_y0: Vec::new(),
            path_pool: Vec::new(),
            nodes_buf: Vec::new(),
            wires_buf: Vec::new(),
            io_buf: String::new(),
        }
    }
}

impl Scratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Hand out recycled node/wire vectors for the emit pass (empty,
    /// capacity preserved).
    pub fn take_layout_bufs(&mut self) -> (Vec<NodePlacement>, Vec<Wire>) {
        let mut nodes = std::mem::take(&mut self.nodes_buf);
        let mut wires = std::mem::take(&mut self.wires_buf);
        nodes.clear();
        wires.clear();
        (nodes, wires)
    }

    /// Recycle a layout that is about to be discarded: its corner
    /// buffers feed the emit pass's `path_pool` and its node/wire
    /// vectors feed [`Scratch::take_layout_bufs`].
    pub fn recycle_layout(&mut self, mut layout: mlv_grid::layout::Layout) {
        for w in layout.wires.drain(..) {
            if self.path_pool.len() >= PATH_POOL_CAP {
                break;
            }
            self.path_pool.push(w.path.into_corners());
        }
        layout.nodes.clear();
        self.nodes_buf = layout.nodes;
        self.wires_buf = layout.wires;
    }
}

/// A mutex-guarded stack of [`Scratch`]es owned by the batch engine.
/// Checkout is by value: a job that panics never returns its scratch,
/// so poisoned state cannot re-enter the pool.
#[derive(Debug, Default)]
pub(crate) struct ScratchPool {
    stack: Mutex<Vec<Scratch>>,
}

impl ScratchPool {
    /// Pop a pooled scratch, or create a fresh one.
    pub fn take(&self) -> Scratch {
        self.lock().pop().unwrap_or_default()
    }

    /// Return a scratch after a successful job (dropped if full).
    pub fn put(&self, scratch: Scratch) {
        let mut stack = self.lock();
        if stack.len() < SCRATCH_POOL_CAP {
            stack.push(scratch);
        }
    }

    /// Pooled scratches currently resident (test observability).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Scratch>> {
        // a poisoned mutex only means some thread panicked while the
        // guard was live; the Vec of scratches is still structurally
        // sound (worst case it holds a half-filled scratch, which the
        // passes clear before use)
        self.stack
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// `true` when `MLV_FRESH_ALLOC` requests the fresh-allocation debug
/// mode: every realization builds a brand-new [`Scratch`] and nothing
/// is pooled — the reference behavior the arena proptests compare
/// against.
pub(crate) fn fresh_alloc_requested() -> bool {
    std::env::var_os("MLV_FRESH_ALLOC").is_some_and(|v| v != *"0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_take_put_roundtrip_and_cap() {
        let pool = ScratchPool::default();
        assert_eq!(pool.len(), 0);
        // taking from an empty pool creates fresh scratches
        let a = pool.take();
        let b = pool.take();
        assert_eq!(pool.len(), 0);
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.len(), 2);
        // LIFO reuse drains what was put back
        let _c = pool.take();
        assert_eq!(pool.len(), 1);
        // the cap bounds residency: overflow is dropped, not stored
        for _ in 0..2 * SCRATCH_POOL_CAP {
            pool.put(Scratch::new());
        }
        assert_eq!(pool.len(), SCRATCH_POOL_CAP);
    }

    #[test]
    fn recycle_layout_feeds_the_corner_pool() {
        let mut s = Scratch::new();
        let fam = crate::families::hypercube(3);
        let layout = crate::realize::realize_fresh(
            &fam.spec,
            &crate::realize::RealizeOptions::with_layers(4),
        );
        let wires = layout.wires.len();
        assert!(wires > 0);
        s.recycle_layout(layout);
        assert_eq!(s.path_pool.len(), wires.min(PATH_POOL_CAP));
        // the node/wire vectors come back empty but with capacity
        assert!(s.nodes_buf.is_empty() && s.wires_buf.is_empty());
        assert!(s.nodes_buf.capacity() > 0 && s.wires_buf.capacity() > 0);
    }
}
