//! The hierarchical **tiled layout IR**: a small table of distinct tile
//! shapes plus an instantiation map, produced directly by the pass
//! pipeline — the flat [`Layout`] is demoted to one materialization
//! backend ([`TiledLayout::materialize`]).
//!
//! The paper's constructions are intensely repetitive: every wire the
//! emit pass generates is one of four corner-sequence *shapes* (row
//! bundle, column bundle, jog, inter-slab riser), parameterized only by
//! its terminal/track coordinates and a handful of layer indices. A
//! [`TiledLayout`] therefore stores
//!
//! * a **tile table** ([`TileShape`]) — the distinct shapes actually
//!   used, typically a few dozen entries regardless of N (one per
//!   (kind, layer-assignment) combination);
//! * an **instantiation map** ([`TileInstance`]) — per wire, a tile id
//!   plus the six anchor coordinates that place it;
//! * an **implicit node grid** — nodes are `side × side` blocks of one
//!   shared shape, instantiated by the `(row, col)` grid metadata
//!   (`col_x0` / `slot_y0` prefix sums, node-id permutation, slab
//!   stacking), so node placements cost no per-node storage at all.
//!
//! Geometry is resolved by the **same** `passes::geometry` arithmetic
//! the flat emit pass uses, so `materialize()` is byte-identical to
//! [`crate::realize::realize`] by construction — the conformance
//! harness's tiled-vs-flat differential oracle pins this. For
//! verification at scales where materializing is hopeless, the IR
//! implements [`mlv_grid::streaming::StreamSource`]: the streaming
//! checker and metrics walk tile instances expanding one ~10-corner
//! buffer at a time.

use crate::realize::RealizeOptions;
use crate::realize3d::Realize3dOptions;
use crate::spec::OrthogonalSpec;
use mlv_grid::geom::{Point3, Rect};
use mlv_grid::hasher::{fnv1a, fnv1a_u64, FNV_BASIS};
use mlv_grid::layout::{Layout, NodePlacement, Wire};
use mlv_grid::path::WirePath;
use mlv_grid::streaming::StreamSource;
use mlv_topology::NodeId;

/// A distinct wire-tile shape: the corner sequence of one wire up to
/// translation of its anchor coordinates. The layer indices are part of
/// the shape (two wires on different track groups are different tiles);
/// everything positional lives in the [`TileInstance`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TileShape {
    /// Row-bundle wire: both terminals on top edges, horizontal run on
    /// track `t1` of the row gap.
    Row {
        /// Terminal (slab base) layer.
        zb: i32,
        /// x-run layer.
        zh: i32,
        /// y-run layer.
        zv: i32,
    },
    /// Column-bundle wire: both terminals on right edges, vertical run
    /// on track `t1` of the column gap.
    Col {
        /// Terminal (slab base) layer.
        zb: i32,
        /// x-run layer.
        zh: i32,
        /// y-run layer.
        zv: i32,
    },
    /// Jog wire: vertical run at `t1`, horizontal run at `t2`.
    Jog {
        /// Terminal (slab base) layer.
        zb: i32,
        /// x-run layer.
        zh: i32,
        /// y-run layer.
        zv: i32,
    },
    /// Slab-crossing wire riding a private riser column at `t1` and a
    /// destination row track at `t2`.
    Riser {
        /// Source terminal layer.
        za: i32,
        /// Source-slab x-run layer.
        zha: i32,
        /// Destination terminal layer.
        zb: i32,
        /// Destination-slab x-run layer.
        zhb: i32,
        /// Destination-slab y-run layer.
        zvb: i32,
    },
}

impl TileShape {
    /// Corners this shape expands to (before degenerate-segment
    /// collapsing).
    pub fn corner_count(&self) -> usize {
        match self {
            TileShape::Row { .. } | TileShape::Col { .. } => 8,
            TileShape::Jog { .. } | TileShape::Riser { .. } => 10,
        }
    }

    /// Expand the shape at instance coordinates into `out` — the exact
    /// corner sequence the flat emit pass generates for this wire.
    /// `(ax, ay)` / `(bx, by)` are the a/b terminals; `t1` / `t2` are
    /// the shape's absolute track coordinates (see variant docs).
    #[allow(clippy::too_many_arguments)]
    pub fn extend_corners(
        &self,
        ax: i64,
        ay: i64,
        bx: i64,
        by: i64,
        t1: i64,
        t2: i64,
        out: &mut Vec<Point3>,
    ) {
        let p = Point3::new;
        match *self {
            TileShape::Row { zb, zh, zv } => {
                let ty = t1;
                out.extend([
                    p(ax, ay, zb),
                    p(ax, ay, zv),
                    p(ax, ty, zv),
                    p(ax, ty, zh),
                    p(bx, ty, zh),
                    p(bx, ty, zv),
                    p(bx, by, zv),
                    p(bx, by, zb),
                ]);
            }
            TileShape::Col { zb, zh, zv } => {
                let tx = t1;
                out.extend([
                    p(ax, ay, zb),
                    p(ax, ay, zh),
                    p(tx, ay, zh),
                    p(tx, ay, zv),
                    p(tx, by, zv),
                    p(tx, by, zh),
                    p(bx, by, zh),
                    p(bx, by, zb),
                ]);
            }
            TileShape::Jog { zb, zh, zv } => {
                let (tx, ty) = (t1, t2);
                out.extend([
                    p(ax, ay, zb),
                    p(ax, ay, zh),
                    p(tx, ay, zh),
                    p(tx, ay, zv),
                    p(tx, ty, zv),
                    p(tx, ty, zh),
                    p(bx, ty, zh),
                    p(bx, ty, zv),
                    p(bx, by, zv),
                    p(bx, by, zb),
                ]);
            }
            TileShape::Riser {
                za,
                zha,
                zb,
                zhb,
                zvb,
            } => {
                let (riser_x, ty) = (t1, t2);
                out.extend([
                    p(ax, ay, za),
                    p(ax, ay, zha),
                    p(riser_x, ay, zha),
                    p(riser_x, ay, zvb),
                    p(riser_x, ty, zvb),
                    p(riser_x, ty, zhb),
                    p(bx, ty, zhb),
                    p(bx, ty, zvb),
                    p(bx, by, zvb),
                    p(bx, by, zb),
                ]);
            }
        }
    }

    fn digest_into(&self, h: u64) -> u64 {
        match *self {
            TileShape::Row { zb, zh, zv } => [0, zb as u64, zh as u64, zv as u64, 0, 0],
            TileShape::Col { zb, zh, zv } => [1, zb as u64, zh as u64, zv as u64, 0, 0],
            TileShape::Jog { zb, zh, zv } => [2, zb as u64, zh as u64, zv as u64, 0, 0],
            TileShape::Riser {
                za,
                zha,
                zb,
                zhb,
                zvb,
            } => [3, za as u64, zha as u64, zb as u64, zhb as u64, zvb as u64],
        }
        .into_iter()
        .fold(h, fnv1a_u64)
    }
}

/// One wire of the instantiation map: a tile id plus the coordinates
/// that place it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileInstance {
    /// Index into [`TiledLayout::tiles`].
    pub tile: u32,
    /// First network endpoint.
    pub u: NodeId,
    /// Second network endpoint.
    pub v: NodeId,
    /// a-terminal x.
    pub ax: i64,
    /// a-terminal y.
    pub ay: i64,
    /// b-terminal x.
    pub bx: i64,
    /// b-terminal y.
    pub by: i64,
    /// First absolute track coordinate (see the shape's docs).
    pub t1: i64,
    /// Second absolute track coordinate (0 when unused).
    pub t2: i64,
}

/// A hierarchical layout: tile table + instantiation map + implicit
/// node grid. See the module docs.
#[derive(Clone, Debug)]
pub struct TiledLayout {
    /// Layout name (same as the flat realization's).
    pub name: String,
    /// Layer budget `L`.
    pub layers: usize,
    /// Node grid rows.
    pub rows: usize,
    /// Node grid columns.
    pub cols: usize,
    /// Node block side (every node is one `side × side` tile).
    pub side: i64,
    /// Planar row slots shared by stacked slabs (`rows` for the 2-D
    /// model).
    pub slots: usize,
    /// Wiring layers per slab (`L` for the 2-D model).
    pub slab_layers: usize,
    /// Node id at grid position `(r, c)`, indexed `r * cols + c`.
    pub node_at: Vec<NodeId>,
    /// Prefix-summed x origin per column (len `cols + 1`).
    pub col_x0: Vec<i64>,
    /// Prefix-summed y origin per planar row slot (len `slots + 1`).
    pub slot_y0: Vec<i64>,
    /// The tile table: distinct wire shapes, in first-use order.
    pub tiles: Vec<TileShape>,
    /// The instantiation map, in emission (wire) order.
    pub instances: Vec<TileInstance>,
}

impl TiledLayout {
    /// Planar row slot of grid row `r`.
    fn slot_of(&self, r: usize) -> usize {
        r % self.slots
    }

    /// Active layer of grid row `r`'s slab.
    fn zbase_of(&self, r: usize) -> i32 {
        ((r / self.slots) * self.slab_layers) as i32
    }

    /// Node placement of grid position `(r, c)` — the implicit node
    /// tile instantiated from the grid metadata.
    fn node_placement(&self, r: usize, c: usize) -> NodePlacement {
        let x0 = self.col_x0[c];
        let y0 = self.slot_y0[self.slot_of(r)];
        NodePlacement {
            node: self.node_at[r * self.cols + c],
            rect: Rect::new(x0, y0, x0 + self.side - 1, y0 + self.side - 1),
            layer: self.zbase_of(r),
        }
    }

    /// Materialize the flat [`Layout`] — byte-identical (same canonical
    /// serialization, same FNV digest) to realizing the spec directly.
    pub fn materialize(&self) -> Layout {
        let mut layout = Layout {
            name: self.name.clone(),
            layers: self.layers,
            nodes: Vec::with_capacity(self.rows * self.cols),
            wires: Vec::with_capacity(self.instances.len()),
        };
        for r in 0..self.rows {
            for c in 0..self.cols {
                let n = self.node_placement(r, c);
                layout.place_node_at(n.node, n.rect, n.layer);
            }
        }
        for inst in &self.instances {
            let shape = self.tiles[inst.tile as usize];
            let mut corners = Vec::with_capacity(shape.corner_count());
            shape.extend_corners(
                inst.ax,
                inst.ay,
                inst.bx,
                inst.by,
                inst.t1,
                inst.t2,
                &mut corners,
            );
            layout.wires.push(Wire {
                u: inst.u,
                v: inst.v,
                path: WirePath::new(corners),
            });
        }
        layout
    }

    /// FNV-1a digest over the IR's canonical content — every field that
    /// determines the materialized geometry, in a fixed order. Used by
    /// the thread-identity CI leg: realizations under different
    /// `MLV_THREADS` must produce bit-identical tiled IRs.
    pub fn digest(&self) -> u64 {
        let mut h = fnv1a(FNV_BASIS, self.name.as_bytes());
        for v in [
            self.layers as u64,
            self.rows as u64,
            self.cols as u64,
            self.side as u64,
            self.slots as u64,
            self.slab_layers as u64,
        ] {
            h = fnv1a_u64(h, v);
        }
        for &n in &self.node_at {
            h = fnv1a_u64(h, n as u64);
        }
        for &x in &self.col_x0 {
            h = fnv1a_u64(h, x as u64);
        }
        for &y in &self.slot_y0 {
            h = fnv1a_u64(h, y as u64);
        }
        h = fnv1a_u64(h, self.tiles.len() as u64);
        for t in &self.tiles {
            h = t.digest_into(h);
        }
        h = fnv1a_u64(h, self.instances.len() as u64);
        for i in &self.instances {
            for v in [
                i.tile as u64,
                i.u as u64,
                i.v as u64,
                i.ax as u64,
                i.ay as u64,
                i.bx as u64,
                i.by as u64,
                i.t1 as u64,
                i.t2 as u64,
            ] {
                h = fnv1a_u64(h, v);
            }
        }
        h
    }
}

impl StreamSource for TiledLayout {
    fn name(&self) -> &str {
        &self.name
    }

    fn layers(&self) -> usize {
        self.layers
    }

    fn node_count(&self) -> usize {
        self.rows * self.cols
    }

    fn wire_count(&self) -> usize {
        self.instances.len()
    }

    fn visit_nodes(&self, f: &mut dyn FnMut(NodePlacement)) {
        for r in 0..self.rows {
            for c in 0..self.cols {
                f(self.node_placement(r, c));
            }
        }
    }

    fn visit_wires(&self, f: &mut dyn FnMut(NodeId, NodeId, &[Point3])) {
        let mut buf: Vec<Point3> = Vec::with_capacity(10);
        for inst in &self.instances {
            buf.clear();
            self.tiles[inst.tile as usize].extend_corners(
                inst.ax, inst.ay, inst.bx, inst.by, inst.t1, inst.t2, &mut buf,
            );
            f(inst.u, inst.v, &buf);
        }
    }
}

/// Realize a spec into the tiled IR (2-D multilayer grid model) — the
/// same pass pipeline as [`crate::realize::realize`], with the emit
/// stage producing tiles instead of flat geometry.
///
/// # Panics
/// If the spec is invalid or `opts.layers < 2`.
pub fn realize_tiled(spec: &OrthogonalSpec, opts: &RealizeOptions) -> TiledLayout {
    let cfg = crate::realize::pass_config(spec, opts);
    crate::realize::with_scratch(|s| crate::passes::run_pipeline_tiled(spec, &cfg, s))
}

/// Realize a spec into the tiled IR in the multilayer 3-D grid model
/// (the [`crate::realize3d`] driver's tiled counterpart; slab-crossing
/// wires become [`TileShape::Riser`] tiles).
///
/// # Panics
/// If the spec is invalid or [`Realize3dOptions::validate`] fails.
pub fn realize_tiled_3d(spec: &OrthogonalSpec, opts: &Realize3dOptions) -> TiledLayout {
    spec.assert_valid();
    if let Err(e) = opts.validate() {
        panic!("need L_A | L, L/L_A >= 2: {e}");
    }
    let cfg = crate::passes::PassConfig {
        layers: opts.layers,
        active_layers: opts.active_layers,
        node_side: opts.node_side,
        jog_strategy: crate::realize::JogStrategy::RoundRobin,
        layout_name: format!(
            "{} @ L={} LA={} (3-D)",
            spec.name, opts.layers, opts.active_layers
        ),
        pdk: opts.pdk.clone(),
    };
    crate::realize::with_scratch(|s| crate::passes::run_pipeline_tiled(spec, &cfg, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::layout_digest;
    use crate::families;
    use crate::realize::realize;
    use mlv_grid::streaming::{check_stream, metrics_stream};
    use mlv_grid::{checker, LayoutMetrics};

    #[test]
    fn materialize_is_byte_identical_to_flat_realization() {
        for (fam, layers) in [
            (families::hypercube(4), 4),
            (families::karyn_cube(4, 2, false), 3),
            (families::ccc(3), 2),
        ] {
            let opts = RealizeOptions::with_layers(layers);
            let flat = realize(&fam.spec, &opts);
            let tiled = realize_tiled(&fam.spec, &opts);
            assert_eq!(
                layout_digest(&tiled.materialize()),
                layout_digest(&flat),
                "{} L={layers}",
                fam.spec.name
            );
        }
    }

    #[test]
    fn tile_table_is_small() {
        let fam = families::hypercube(6);
        let tiled = realize_tiled(&fam.spec, &RealizeOptions::with_layers(4));
        assert_eq!(tiled.instances.len(), fam.spec.wire_count());
        assert!(
            tiled.tiles.len() <= 8,
            "expected a handful of shapes, got {}",
            tiled.tiles.len()
        );
        // every tile id in range, every shape distinct
        for i in &tiled.instances {
            assert!((i.tile as usize) < tiled.tiles.len());
        }
        for (a, sa) in tiled.tiles.iter().enumerate() {
            for sb in &tiled.tiles[a + 1..] {
                assert_ne!(sa, sb);
            }
        }
    }

    #[test]
    fn streaming_walk_matches_materialized_layout() {
        let fam = families::hsn(2, 4);
        let tiled = realize_tiled(&fam.spec, &RealizeOptions::with_layers(4));
        let flat = tiled.materialize();
        assert_eq!(metrics_stream(&tiled), LayoutMetrics::of(&flat));
        let full = checker::check(&flat, Some(&fam.graph));
        let stream = check_stream(&tiled, Some(&fam.graph));
        assert!(stream.is_legal(), "{:?}", stream.errors);
        assert_eq!(stream.errors, full.errors);
        assert_eq!(stream.wire_points, full.wire_points);
        assert_eq!(stream.node_points, full.node_points);
    }

    #[test]
    fn tiled_3d_matches_flat_3d_and_uses_risers() {
        let fam = families::karyn_cube(4, 2, false);
        let opts = Realize3dOptions {
            layers: 8,
            active_layers: 2,
            node_side: None,
            pdk: None,
        };
        let flat = crate::realize3d::realize_3d(&fam.spec, &opts);
        let tiled = realize_tiled_3d(&fam.spec, &opts);
        assert_eq!(layout_digest(&tiled.materialize()), layout_digest(&flat));
        assert!(tiled
            .tiles
            .iter()
            .any(|t| matches!(t, TileShape::Riser { .. })));
        let stream = check_stream(&tiled, Some(&fam.graph));
        assert!(stream.is_legal(), "{:?}", stream.errors);
    }

    #[test]
    fn digest_is_content_keyed() {
        let fam = families::hypercube(4);
        let a = realize_tiled(&fam.spec, &RealizeOptions::with_layers(4));
        let b = realize_tiled(&fam.spec, &RealizeOptions::with_layers(4));
        assert_eq!(a.digest(), b.digest());
        let c = realize_tiled(&fam.spec, &RealizeOptions::with_layers(6));
        assert_ne!(a.digest(), c.digest());
    }
}
