//! Orthogonal specs for Cartesian product networks (paper §3.1/§3.2).
//!
//! For `G = A □ B`, place node `(a, b)` at grid position
//! (row = B-slot of `b`, column = A-slot of `a`); then every A-edge
//! joins two nodes of one row and every B-edge two nodes of one column,
//! so the rows carry copies of A's collinear layout and the columns
//! copies of B's. This single constructor covers k-ary n-cubes (paper
//! §3.1), hypercubes (§5.1), and generalized hypercubes (§4.1) — each is
//! the product of its "row half" and "column half".

use crate::spec::{ColWire, OrthogonalSpec, RowWire};
use mlv_collinear::CollinearLayout;
use mlv_topology::NodeId;

/// Build the orthogonal spec of a product network from the collinear
/// layouts of its two factors.
///
/// * `row_factor` — collinear layout of factor A (its slots become grid
///   columns; its wires become row wires in *every* row);
/// * `col_factor` — collinear layout of factor B (slots become rows);
/// * `node_id(a, b)` — the product network's id for (A-node a, B-node
///   b). Use [`standard_product_id`] for the `b·|A| + a` convention of
///   `mlv_topology::product`.
pub fn product_spec(
    name: impl Into<String>,
    row_factor: &CollinearLayout,
    col_factor: &CollinearLayout,
    node_id: impl Fn(NodeId, NodeId) -> NodeId,
) -> OrthogonalSpec {
    let cols = row_factor.slot_count();
    let rows = col_factor.slot_count();
    let mut spec = OrthogonalSpec::new(name, rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            spec.node_at[r * cols + c] =
                node_id(row_factor.node_at_slot[c], col_factor.node_at_slot[r]);
        }
    }
    for r in 0..rows {
        for w in &row_factor.wires {
            spec.row_wires.push(RowWire {
                row: r,
                lo: w.lo,
                hi: w.hi,
                track: w.track,
            });
        }
    }
    for c in 0..cols {
        for w in &col_factor.wires {
            spec.col_wires.push(ColWire {
                col: c,
                lo: w.lo,
                hi: w.hi,
                track: w.track,
            });
        }
    }
    spec
}

/// The `b·|A| + a` node-id convention used by
/// `mlv_topology::product::cartesian_product`.
pub fn standard_product_id(a_count: usize) -> impl Fn(NodeId, NodeId) -> NodeId {
    move |a, b| b * a_count as NodeId + a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realize::{realize, RealizeOptions};
    use mlv_collinear::ring::ring_collinear;
    use mlv_grid::checker;
    use mlv_grid::metrics::LayoutMetrics;
    use mlv_topology::product::cartesian_product;
    use mlv_topology::ring::ring;

    #[test]
    fn torus_of_rings_realizes_exactly() {
        let a = ring_collinear(4);
        let b = ring_collinear(4);
        let spec = product_spec("4x4 torus", &a, &b, standard_product_id(4));
        spec.assert_valid();
        let g = cartesian_product(&ring(4), &ring(4));
        assert_eq!(spec.edge_multiset(), g.edge_multiset());
        for layers in [2usize, 4] {
            let l = realize(&spec, &RealizeOptions::with_layers(layers));
            checker::assert_legal(&l, Some(&g));
        }
    }

    #[test]
    fn asymmetric_product() {
        let a = ring_collinear(5);
        let b = ring_collinear(3);
        let spec = product_spec("5x3", &a, &b, standard_product_id(5));
        let g = cartesian_product(&ring(5), &ring(3));
        let l = realize(&spec, &RealizeOptions::with_layers(2));
        checker::assert_legal(&l, Some(&g));
        let m = LayoutMetrics::of(&l);
        assert!(m.width > m.height);
    }

    #[test]
    fn area_shrinks_quadratically_with_layers() {
        use mlv_collinear::hypercube::hypercube_collinear;
        let h = hypercube_collinear(4);
        let spec = product_spec("8-cube", &h, &h, standard_product_id(16));
        let l2 = realize(&spec, &RealizeOptions::with_layers(2));
        let l8 = realize(&spec, &RealizeOptions::with_layers(8));
        checker::assert_legal(&l2, None);
        checker::assert_legal(&l8, None);
        let (m2, m8) = (LayoutMetrics::of(&l2), LayoutMetrics::of(&l8));
        // exact expected geometry: 16 rows/cols of pitch s + ceil(10/G)
        // with node side s = 5 (8 terminals split 4+4, +1)
        assert_eq!(m2.width, 16 * (5 + 10));
        assert_eq!(m8.width, 16 * (5 + 10usize.div_ceil(4) as u64));
        let gain = m2.area as f64 / m8.area as f64;
        assert!((gain - (240.0f64 / 128.0).powi(2)).abs() < 1e-9);
        // with tracks ≫ node side the gain tends to (L/2)² = 16; the
        // track-only gain here is already the ideal ⌈10/1⌉/⌈10/4⌉:
        assert_eq!(10usize.div_ceil(4), 3);
    }
}
