//! Realization: turning an [`OrthogonalSpec`] plus a layer budget `L`
//! into a concrete, checker-verifiable [`mlv_grid::Layout`].
//!
//! ## Layer discipline (paper §2.4)
//!
//! Tracks are split round-robin into `G = ⌊L/2⌋` groups (round-robin
//! keeps per-group counts balanced within one, matching the paper's
//! `⌈h_i/⌊L/2⌋⌉` bundles). Group `g` runs its x-segments on layer `2g`
//! and its y-segments on layer `2g+1` — the paper's assignment of
//! horizontal groups to layers 1,3,5,… and vertical groups to 2,4,6,…
//! (0-indexed here, with the active layer `z = 0` doubling as group 0's
//! x-layer, exactly as the multilayer 2-D grid model allows). For odd
//! `L` the top layer is left unused, which is where the paper's
//! `L² − 1` odd-L denominators come from.
//!
//! ## Geometry
//!
//! Every node is an `s × s` footprint (`s` = max terminal demand + 1,
//! or larger if the caller exercises the paper's node-size scalability
//! claim). Row `r`'s horizontal bundle occupies `⌈h_r/G⌉` grid rows
//! *above* row `r`; column `c`'s vertical bundle occupies `⌈w_c/G⌉`
//! grid columns *right of* column `c`. Because the `G` groups stack in
//! `z`, the planar footprint of a bundle shrinks by the full factor
//! `G = ⌊L/2⌋` in each direction — the paper's `(L/2)²` area gain.
//!
//! ## Terminals
//!
//! Row-wire ends drop onto the node's **top edge** (excluding the
//! corner), column-wire ends onto its **right edge** (excluding the
//! corner). At each node, wires arriving from the left/below get
//! smaller offsets than wires departing right/up, so two same-track
//! wires that touch at a node never share a grid point. Jog wires
//! (vertical run + horizontal run) take appended tracks coloured
//! greedily with *closed*-interval semantics, so they never touch
//! anything on their tracks at all.

use crate::spec::OrthogonalSpec;
use mlv_grid::geom::{Point3, Rect};
use mlv_grid::layout::Layout;
use mlv_grid::path::WirePath;
use mlv_topology::{Graph, NodeId};
use std::collections::BTreeMap;

/// How jog wires are distributed over the `⌊L/2⌋` layer groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JogStrategy {
    /// Round-robin over groups (default): jog track demand per gap
    /// shrinks by ≈ ⌊L/2⌋ like the construction tracks do.
    #[default]
    RoundRobin,
    /// All jogs in group 0 — an ablation baseline showing that *not*
    /// spreading the irregular wires forfeits their share of the
    /// multilayer gain.
    SingleGroup,
}

/// Options controlling realization.
#[derive(Clone, Debug)]
pub struct RealizeOptions {
    /// Number of wiring layers `L ≥ 2`.
    pub layers: usize,
    /// Override the node footprint side (must be at least the computed
    /// minimum). Used for the paper's node-size scalability experiments
    /// (§3.2: nodes may grow to `o(Area/N)` without changing leading
    /// constants).
    pub node_side: Option<usize>,
    /// Jog distribution strategy (ablation knob).
    pub jog_strategy: JogStrategy,
}

impl RealizeOptions {
    /// Default options for a given layer count.
    pub fn with_layers(layers: usize) -> Self {
        RealizeOptions {
            layers,
            node_side: None,
            jog_strategy: JogStrategy::RoundRobin,
        }
    }
}

/// Closed-interval greedy colouring: intervals may share a track only
/// if strictly disjoint. Returns per-interval colours and the number of
/// colours used.
pub(crate) fn color_closed(intervals: &[(usize, usize)]) -> (Vec<usize>, usize) {
    let mut order: Vec<usize> = (0..intervals.len()).collect();
    order.sort_by_key(|&i| intervals[i]);
    let mut track_end: Vec<usize> = Vec::new(); // last hi per track
    let mut colors = vec![0usize; intervals.len()];
    for &i in &order {
        let (lo, hi) = intervals[i];
        let mut assigned = None;
        for (t, end) in track_end.iter_mut().enumerate() {
            if *end < lo {
                *end = hi;
                assigned = Some(t);
                break;
            }
        }
        let t = assigned.unwrap_or_else(|| {
            track_end.push(hi);
            track_end.len() - 1
        });
        colors[i] = t;
    }
    (colors, track_end.len())
}

/// Number of construction tracks `t < base` with `t % groups == g`.
pub(crate) fn count_in_group(base: usize, g: usize, groups: usize) -> usize {
    if base > g {
        (base - g).div_ceil(groups)
    } else {
        0
    }
}

/// Per-key list of (jog index, closed interval) awaiting colouring.
type IntervalsByKey = BTreeMap<(usize, usize), Vec<(usize, (usize, usize))>>;

#[derive(Clone, Copy)]
struct JogAssign {
    group: usize,
    vcolor: usize,
    hcolor: usize,
}

/// Realize a spec into a concrete multilayer grid layout.
///
/// # Panics
/// If the spec is invalid, `opts.layers < 2`, or `opts.node_side` is
/// below the minimum terminal demand.
pub fn realize(spec: &OrthogonalSpec, opts: &RealizeOptions) -> Layout {
    spec.assert_valid();
    assert!(opts.layers >= 2, "need at least two layers");
    let groups = opts.layers / 2;
    let (rows, cols) = (spec.rows, spec.cols);

    // --- terminal demand per node -------------------------------------
    let mut top_count = vec![0usize; rows * cols];
    let mut right_count = vec![0usize; rows * cols];
    for w in &spec.row_wires {
        top_count[w.row * cols + w.lo] += 1;
        top_count[w.row * cols + w.hi] += 1;
    }
    for w in &spec.col_wires {
        right_count[w.lo * cols + w.col] += 1;
        right_count[w.hi * cols + w.col] += 1;
    }
    for w in &spec.jog_wires {
        right_count[w.a.0 * cols + w.a.1] += 1;
        top_count[w.b.0 * cols + w.b.1] += 1;
    }
    let min_side = 1 + top_count
        .iter()
        .chain(right_count.iter())
        .copied()
        .max()
        .unwrap_or(0);
    let s = match opts.node_side {
        Some(side) => {
            assert!(
                side >= min_side,
                "node_side {side} below terminal demand {min_side}"
            );
            side
        }
        None => min_side,
    } as i64;

    // --- jog track assignment ------------------------------------------
    // group by round-robin; colour verticals per (gap column, group) and
    // horizontals per (row bundle, group) with closed intervals
    let mut jog_assign = vec![
        JogAssign {
            group: 0,
            vcolor: 0,
            hcolor: 0
        };
        spec.jog_wires.len()
    ];
    let mut vgroups: IntervalsByKey = BTreeMap::new();
    let mut hgroups: IntervalsByKey = BTreeMap::new();
    for (j, w) in spec.jog_wires.iter().enumerate() {
        let g = match opts.jog_strategy {
            JogStrategy::RoundRobin => j % groups,
            JogStrategy::SingleGroup => 0,
        };
        jog_assign[j].group = g;
        let rlo = w.a.0.min(w.b.0);
        let rhi = w.a.0.max(w.b.0);
        vgroups.entry((w.a.1, g)).or_default().push((j, (rlo, rhi)));
        let clo = w.a.1.min(w.b.1);
        let chi = w.a.1.max(w.b.1);
        hgroups.entry((w.b.0, g)).or_default().push((j, (clo, chi)));
    }
    let mut jog_vtracks: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for ((c, g), items) in &vgroups {
        let spans: Vec<(usize, usize)> = items.iter().map(|&(_, iv)| iv).collect();
        let (colors, used) = color_closed(&spans);
        for (pos, &(j, _)) in items.iter().enumerate() {
            jog_assign[j].vcolor = colors[pos];
        }
        jog_vtracks.insert((*c, *g), used);
    }
    let mut jog_htracks: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for ((r, g), items) in &hgroups {
        let spans: Vec<(usize, usize)> = items.iter().map(|&(_, iv)| iv).collect();
        let (colors, used) = color_closed(&spans);
        for (pos, &(j, _)) in items.iter().enumerate() {
            jog_assign[j].hcolor = colors[pos];
        }
        jog_htracks.insert((*r, *g), used);
    }

    // --- bundle widths and geometry -------------------------------------
    let base_h: Vec<usize> = (0..rows).map(|r| spec.row_tracks(r)).collect();
    let base_w: Vec<usize> = (0..cols).map(|c| spec.col_tracks(c)).collect();
    let hpl: Vec<i64> = (0..rows)
        .map(|r| {
            (0..groups)
                .map(|g| {
                    count_in_group(base_h[r], g, groups)
                        + jog_htracks.get(&(r, g)).copied().unwrap_or(0)
                })
                .max()
                .unwrap_or(0) as i64
        })
        .collect();
    let wpl: Vec<i64> = (0..cols)
        .map(|c| {
            (0..groups)
                .map(|g| {
                    count_in_group(base_w[c], g, groups)
                        + jog_vtracks.get(&(c, g)).copied().unwrap_or(0)
                })
                .max()
                .unwrap_or(0) as i64
        })
        .collect();
    // prefix sums: column c occupies x in [col_x0[c], col_x0[c]+s-1],
    // its gap [.. + s, .. + s + wpl[c] - 1]
    let prefix = |steps: &[i64]| -> Vec<i64> {
        std::iter::once(0)
            .chain(steps.iter().scan(0i64, |acc, &w| {
                *acc += s + w;
                Some(*acc)
            }))
            .collect()
    };
    let col_x0 = prefix(&wpl);
    let row_y0 = prefix(&hpl);
    let gap_x0 = |c: usize| col_x0[c] + s;
    let gap_y0 = |r: usize| row_y0[r] + s;

    // --- terminal offsets -----------------------------------------------
    // class 0: arrives (from left / from below), 1: jogs, 2: departs
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Kind {
        Row(usize, bool), // wire idx, is_hi_end
        Col(usize, bool),
        JogA(usize),
        JogB(usize),
    }
    let mut top_items: Vec<Vec<(u8, Kind)>> = vec![Vec::new(); rows * cols];
    let mut right_items: Vec<Vec<(u8, Kind)>> = vec![Vec::new(); rows * cols];
    for (i, w) in spec.row_wires.iter().enumerate() {
        // at the hi end the wire arrives from the left (class 0); at the
        // lo end it departs rightward (class 2)
        top_items[w.row * cols + w.hi].push((0, Kind::Row(i, true)));
        top_items[w.row * cols + w.lo].push((2, Kind::Row(i, false)));
    }
    for (i, w) in spec.col_wires.iter().enumerate() {
        right_items[w.hi * cols + w.col].push((0, Kind::Col(i, true)));
        right_items[w.lo * cols + w.col].push((2, Kind::Col(i, false)));
    }
    for (j, w) in spec.jog_wires.iter().enumerate() {
        right_items[w.a.0 * cols + w.a.1].push((1, Kind::JogA(j)));
        top_items[w.b.0 * cols + w.b.1].push((1, Kind::JogB(j)));
    }
    // terminal coordinates, keyed by wire kind + end
    let mut row_term = vec![(0i64, 0i64); spec.row_wires.len() * 2]; // [i*2+hi_end]
    let mut col_term = vec![(0i64, 0i64); spec.col_wires.len() * 2];
    let mut jog_a_term = vec![(0i64, 0i64); spec.jog_wires.len()];
    let mut jog_b_term = vec![(0i64, 0i64); spec.jog_wires.len()];
    #[allow(clippy::needless_range_loop)]
    for r in 0..rows {
        for c in 0..cols {
            let pos = r * cols + c;
            let (x0, y0) = (col_x0[c], row_y0[r]);
            let items = &mut top_items[pos];
            items.sort();
            for (off, &(_, kind)) in items.iter().enumerate() {
                let coord = (x0 + off as i64, y0 + s - 1);
                match kind {
                    Kind::Row(i, hi_end) => row_term[i * 2 + hi_end as usize] = coord,
                    Kind::JogB(j) => jog_b_term[j] = coord,
                    _ => unreachable!("top edge carries row/jog-b terminals"),
                }
            }
            let items = &mut right_items[pos];
            items.sort();
            for (off, &(_, kind)) in items.iter().enumerate() {
                let coord = (x0 + s - 1, y0 + off as i64);
                match kind {
                    Kind::Col(i, hi_end) => col_term[i * 2 + hi_end as usize] = coord,
                    Kind::JogA(j) => jog_a_term[j] = coord,
                    _ => unreachable!("right edge carries col/jog-a terminals"),
                }
            }
        }
    }

    // --- emit layout ------------------------------------------------------
    let mut layout = Layout::new(format!("{} @ L={}", spec.name, opts.layers), opts.layers);
    #[allow(clippy::needless_range_loop)]
    for r in 0..rows {
        for c in 0..cols {
            layout.place_node(
                spec.node(r, c),
                Rect::new(col_x0[c], row_y0[r], col_x0[c] + s - 1, row_y0[r] + s - 1),
            );
        }
    }
    let p = Point3::new;
    for (i, w) in spec.row_wires.iter().enumerate() {
        let (g, idx) = (w.track % groups, w.track / groups);
        let (zh, zv) = ((2 * g) as i32, (2 * g + 1) as i32);
        let ty_track = gap_y0(w.row) + idx as i64;
        let (ax, ay) = row_term[i * 2]; // lo end
        let (bx, by) = row_term[i * 2 + 1]; // hi end
        layout.add_wire(
            spec.node(w.row, w.lo),
            spec.node(w.row, w.hi),
            WirePath::new(vec![
                p(ax, ay, 0),
                p(ax, ay, zv),
                p(ax, ty_track, zv),
                p(ax, ty_track, zh),
                p(bx, ty_track, zh),
                p(bx, ty_track, zv),
                p(bx, by, zv),
                p(bx, by, 0),
            ]),
        );
    }
    for (i, w) in spec.col_wires.iter().enumerate() {
        let (g, idx) = (w.track % groups, w.track / groups);
        let (zh, zv) = ((2 * g) as i32, (2 * g + 1) as i32);
        let tx_track = gap_x0(w.col) + idx as i64;
        let (ax, ay) = col_term[i * 2]; // lo end
        let (bx, by) = col_term[i * 2 + 1]; // hi end
        layout.add_wire(
            spec.node(w.lo, w.col),
            spec.node(w.hi, w.col),
            WirePath::new(vec![
                p(ax, ay, 0),
                p(ax, ay, zh),
                p(tx_track, ay, zh),
                p(tx_track, ay, zv),
                p(tx_track, by, zv),
                p(tx_track, by, zh),
                p(bx, by, zh),
                p(bx, by, 0),
            ]),
        );
    }
    for (j, w) in spec.jog_wires.iter().enumerate() {
        let a = jog_assign[j];
        let (zh, zv) = ((2 * a.group) as i32, (2 * a.group + 1) as i32);
        let tx_track =
            gap_x0(w.a.1) + (count_in_group(base_w[w.a.1], a.group, groups) + a.vcolor) as i64;
        let ty_track =
            gap_y0(w.b.0) + (count_in_group(base_h[w.b.0], a.group, groups) + a.hcolor) as i64;
        let (ax, ay) = jog_a_term[j];
        let (bx, by) = jog_b_term[j];
        layout.add_wire(
            spec.node(w.a.0, w.a.1),
            spec.node(w.b.0, w.b.1),
            WirePath::new(vec![
                p(ax, ay, 0),
                p(ax, ay, zh),
                p(tx_track, ay, zh),
                p(tx_track, ay, zv),
                p(tx_track, ty_track, zv),
                p(tx_track, ty_track, zh),
                p(bx, ty_track, zh),
                p(bx, ty_track, zv),
                p(bx, by, zv),
                p(bx, by, 0),
            ]),
        );
    }
    layout
}

/// Reorder a layout's wires so that wire `i` realizes edge `i` of the
/// reference graph (needed by the routed-path metric). Panics if the
/// multisets mismatch — run the checker first.
pub fn align_wires(layout: &mut Layout, graph: &Graph) {
    let mut pool: BTreeMap<(NodeId, NodeId), Vec<usize>> = BTreeMap::new();
    for (i, w) in layout.wires.iter().enumerate() {
        let key = if w.u <= w.v { (w.u, w.v) } else { (w.v, w.u) };
        pool.entry(key).or_default().push(i);
    }
    let mut order = Vec::with_capacity(layout.wires.len());
    for e in graph.edge_ids() {
        let key = graph.endpoints_sorted(e);
        let slot = pool
            .get_mut(&key)
            .and_then(|v| v.pop())
            .unwrap_or_else(|| panic!("no wire for edge {key:?}"));
        order.push(slot);
    }
    assert_eq!(order.len(), layout.wires.len(), "extra wires present");
    let mut new_wires = Vec::with_capacity(order.len());
    for &i in &order {
        new_wires.push(layout.wires[i].clone());
    }
    layout.wires = new_wires;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ColWire, JogWire, RowWire};
    use mlv_grid::checker;
    use mlv_grid::metrics::LayoutMetrics;

    /// 2x2 grid, one row wire + one col wire + one jog diagonal.
    fn small_spec() -> OrthogonalSpec {
        let mut s = OrthogonalSpec::new("small", 2, 2);
        s.row_wires.push(RowWire {
            row: 0,
            lo: 0,
            hi: 1,
            track: 0,
        });
        s.col_wires.push(ColWire {
            col: 0,
            lo: 0,
            hi: 1,
            track: 0,
        });
        s.jog_wires.push(JogWire {
            a: (0, 1),
            b: (1, 0),
        });
        s
    }

    #[test]
    fn small_spec_realizes_legally() {
        for layers in [2usize, 3, 4, 6] {
            let l = realize(&small_spec(), &RealizeOptions::with_layers(layers));
            checker::assert_legal(&l, None);
            assert!(l.max_used_layer() < layers as i32);
        }
    }

    #[test]
    fn ring_row_spec_exact() {
        // 1 row of 4 nodes as a ring: 3 adjacent (track 0) + wrap (track 1)
        let mut s = OrthogonalSpec::new("ring-row", 1, 4);
        for c in 0..3 {
            s.row_wires.push(RowWire {
                row: 0,
                lo: c,
                hi: c + 1,
                track: 0,
            });
        }
        s.row_wires.push(RowWire {
            row: 0,
            lo: 0,
            hi: 3,
            track: 1,
        });
        let l = realize(&s, &RealizeOptions::with_layers(2));
        checker::assert_legal(&l, None);
        let m = LayoutMetrics::of(&l);
        // node side = 3 (max 2 terminals + 1); height = side + 2 tracks
        assert_eq!(m.height, 5);
        assert_eq!(m.width, 12);
    }

    #[test]
    fn more_layers_shrink_bundles() {
        let mut s = OrthogonalSpec::new("tracks", 1, 2);
        for t in 0..8 {
            s.row_wires.push(RowWire {
                row: 0,
                lo: 0,
                hi: 1,
                track: t,
            });
        }
        let l2 = realize(&s, &RealizeOptions::with_layers(2));
        let l8 = realize(&s, &RealizeOptions::with_layers(8));
        checker::assert_legal(&l2, None);
        checker::assert_legal(&l8, None);
        let m2 = LayoutMetrics::of(&l2);
        let m8 = LayoutMetrics::of(&l8);
        // bundle shrinks from 8 rows to 2 rows
        assert_eq!(m2.height - m8.height, 6);
    }

    #[test]
    fn odd_layer_budget_uses_floor_groups() {
        let mut s = OrthogonalSpec::new("odd", 1, 2);
        for t in 0..6 {
            s.row_wires.push(RowWire {
                row: 0,
                lo: 0,
                hi: 1,
                track: t,
            });
        }
        let l5 = realize(&s, &RealizeOptions::with_layers(5));
        checker::assert_legal(&l5, None);
        // floor(5/2)=2 groups -> max layer index 3 (< 5, top layer idle)
        assert!(l5.max_used_layer() <= 3);
        let l4 = realize(&s, &RealizeOptions::with_layers(4));
        assert_eq!(LayoutMetrics::of(&l5).area, LayoutMetrics::of(&l4).area);
    }

    #[test]
    fn node_side_override() {
        let s = small_spec();
        let l = realize(
            &s,
            &RealizeOptions {
                layers: 2,
                node_side: Some(7),
                jog_strategy: Default::default(),
            },
        );
        checker::assert_legal(&l, None);
        let m = LayoutMetrics::of(&l);
        assert!(m.width >= 14);
    }

    #[test]
    #[should_panic]
    fn node_side_below_minimum_rejected() {
        let mut s = OrthogonalSpec::new("busy", 1, 2);
        for t in 0..5 {
            s.row_wires.push(RowWire {
                row: 0,
                lo: 0,
                hi: 1,
                track: t,
            });
        }
        let _ = realize(
            &s,
            &RealizeOptions {
                layers: 2,
                node_side: Some(2),
                jog_strategy: Default::default(),
            },
        );
    }

    #[test]
    fn touching_same_track_wires_realize_disjointly() {
        let mut s = OrthogonalSpec::new("touch", 1, 3);
        s.row_wires.push(RowWire {
            row: 0,
            lo: 0,
            hi: 1,
            track: 0,
        });
        s.row_wires.push(RowWire {
            row: 0,
            lo: 1,
            hi: 2,
            track: 0,
        });
        let l = realize(&s, &RealizeOptions::with_layers(2));
        checker::assert_legal(&l, None);
    }

    #[test]
    fn touching_same_track_col_wires() {
        let mut s = OrthogonalSpec::new("touch-col", 3, 1);
        s.col_wires.push(ColWire {
            col: 0,
            lo: 0,
            hi: 1,
            track: 0,
        });
        s.col_wires.push(ColWire {
            col: 0,
            lo: 1,
            hi: 2,
            track: 0,
        });
        let l = realize(&s, &RealizeOptions::with_layers(2));
        checker::assert_legal(&l, None);
    }

    #[test]
    fn many_jogs_share_gaps_legally() {
        let mut s = OrthogonalSpec::new("jogs", 4, 4);
        for r in 0..4 {
            for c in 0..4 {
                let r2 = (r + 1) % 4;
                let c2 = (c + 2) % 4;
                if r2 != r {
                    s.jog_wires.push(JogWire {
                        a: (r, c),
                        b: (r2, c2),
                    });
                }
            }
        }
        for layers in [2usize, 4, 8] {
            let l = realize(&s, &RealizeOptions::with_layers(layers));
            checker::assert_legal(&l, None);
        }
    }

    #[test]
    fn align_wires_orders_by_graph() {
        use mlv_topology::GraphBuilder;
        let mut b = GraphBuilder::new("z", 4);
        b.add_edge(2, 3); // edge 0
        b.add_edge(0, 1); // edge 1
        let g = b.build();
        let mut sp = OrthogonalSpec::new("z", 2, 2);
        sp.node_at = vec![0, 1, 2, 3];
        sp.row_wires.push(RowWire {
            row: 0,
            lo: 0,
            hi: 1,
            track: 0,
        });
        sp.row_wires.push(RowWire {
            row: 1,
            lo: 0,
            hi: 1,
            track: 0,
        });
        let mut l = realize(&sp, &RealizeOptions::with_layers(2));
        align_wires(&mut l, &g);
        let key = |i: usize| {
            let w = &l.wires[i];
            (w.u.min(w.v), w.u.max(w.v))
        };
        assert_eq!(key(0), (2, 3));
        assert_eq!(key(1), (0, 1));
    }
}
