//! Realization: turning an [`OrthogonalSpec`] plus a layer budget `L`
//! into a concrete, checker-verifiable [`mlv_grid::Layout`].
//!
//! This is a thin driver over the staged [`crate::passes`] pipeline
//! (placement → tracks → layers → emit), run with a single slab
//! (`L_A = 1`). See the pass modules for the scheme's mechanics:
//!
//! - `passes::placement` — node footprints and the terminal
//!   ordering discipline (arriving < jogging < departing wires).
//! - `passes::tracks` — round-robin track bundling over
//!   `⌊L/2⌋` groups and closed-interval jog colouring. Because the
//!   groups stack in `z`, the planar footprint of a bundle shrinks by
//!   the full factor `⌊L/2⌋` in each direction — the paper's `(L/2)²`
//!   area gain (§2.4).
//! - `passes::layers` — group `g`'s x-segments on layer `2g`,
//!   y-segments on `2g+1`; odd `L` leaves the top layer unused.
//! - `passes::emit` — prefix-sum geometry and [`WirePath`]
//!   generation.
//!
//! [`WirePath`]: mlv_grid::path::WirePath

use crate::arena::{self, Scratch};
use crate::passes::{self, PassConfig};
use crate::spec::OrthogonalSpec;
use mlv_grid::layout::Layout;
use mlv_topology::{Graph, NodeId};
use std::cell::RefCell;
use std::collections::BTreeMap;

thread_local! {
    /// Per-thread pass scratch reused across realizations (the batch
    /// engine pools its own scratches instead; see `crate::arena`).
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Run `f` with this thread's reusable scratch — or a fresh one when
/// `MLV_FRESH_ALLOC` requests the fresh-allocation debug mode or the
/// thread-local is already borrowed (re-entrant realization from
/// inside a pass would be a bug, but must not abort).
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    if arena::fresh_alloc_requested() {
        return f(&mut Scratch::new());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut s) => f(&mut s),
        Err(_) => f(&mut Scratch::new()),
    })
}

/// How jog wires are distributed over the `⌊L/2⌋` layer groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JogStrategy {
    /// Round-robin over groups (default): jog track demand per gap
    /// shrinks by ≈ ⌊L/2⌋ like the construction tracks do.
    #[default]
    RoundRobin,
    /// All jogs in group 0 — an ablation baseline showing that *not*
    /// spreading the irregular wires forfeits their share of the
    /// multilayer gain.
    SingleGroup,
}

/// Options controlling realization.
#[derive(Clone, Debug)]
pub struct RealizeOptions {
    /// Number of wiring layers `L ≥ 2`.
    pub layers: usize,
    /// Override the node footprint side (must be at least the computed
    /// minimum). Used for the paper's node-size scalability experiments
    /// (§3.2: nodes may grow to `o(Area/N)` without changing leading
    /// constants).
    pub node_side: Option<usize>,
    /// Jog distribution strategy (ablation knob).
    pub jog_strategy: JogStrategy,
    /// Technology stack to realize onto. `None` (the default) and any
    /// stack with [`mlv_grid::Pdk::is_uniform`] are the paper's unit
    /// grid — byte-identical output to the PDK-free pipeline.
    pub pdk: Option<mlv_grid::Pdk>,
}

impl RealizeOptions {
    /// Default options for a given layer count.
    pub fn with_layers(layers: usize) -> Self {
        RealizeOptions {
            layers,
            node_side: None,
            jog_strategy: JogStrategy::RoundRobin,
            pdk: None,
        }
    }

    /// [`RealizeOptions::with_layers`] targeting a technology stack.
    pub fn with_pdk(layers: usize, pdk: mlv_grid::Pdk) -> Self {
        RealizeOptions {
            pdk: Some(pdk),
            ..RealizeOptions::with_layers(layers)
        }
    }
}

/// Realize a spec into a concrete multilayer grid layout.
///
/// # Panics
/// If the spec is invalid, `opts.layers < 2`, or `opts.node_side` is
/// below the minimum terminal demand.
pub fn realize(spec: &OrthogonalSpec, opts: &RealizeOptions) -> Layout {
    with_scratch(|s| passes::run_pipeline(spec, &pass_config(spec, opts), s))
}

/// [`realize`] with a brand-new scratch, bypassing the thread-local
/// reuse entirely — the fresh-allocation reference the arena proptests
/// and `bench_layout --check-regression=self` compare against.
///
/// # Panics
/// As [`realize`].
pub fn realize_fresh(spec: &OrthogonalSpec, opts: &RealizeOptions) -> Layout {
    passes::run_pipeline(spec, &pass_config(spec, opts), &mut Scratch::new())
}

/// [`realize`], additionally reporting per-pass wall-clock timing —
/// the instrumented entry point the batch engine ([`crate::engine`])
/// and the realization micro-bench drive.
///
/// # Panics
/// As [`realize`].
pub fn realize_timed(
    spec: &OrthogonalSpec,
    opts: &RealizeOptions,
) -> (Layout, passes::PassTimings) {
    with_scratch(|s| passes::run_pipeline_timed(spec, &pass_config(spec, opts), s))
}

/// Return a finished [`Layout`] 's buffers to this thread's reusable
/// scratch: its corner buffers feed the next realization's wire paths
/// and its node/wire vectors are handed back verbatim. Call it from
/// steady-state hot loops (realize → consume → recycle) to make
/// repeated realization on one thread allocation-free; the batch
/// engine does the equivalent through its scratch pool. A no-op under
/// `MLV_FRESH_ALLOC`. Never required for correctness — dropping the
/// layout instead merely allocates afresh next time.
pub fn recycle(layout: Layout) {
    if arena::fresh_alloc_requested() {
        return;
    }
    SCRATCH.with(|cell| {
        if let Ok(mut s) = cell.try_borrow_mut() {
            s.recycle_layout(layout);
        }
    });
}

/// [`realize_timed`] on a caller-provided scratch — the batch engine's
/// entry point, fed from its [`crate::arena::ScratchPool`].
pub(crate) fn realize_timed_with(
    spec: &OrthogonalSpec,
    opts: &RealizeOptions,
    s: &mut Scratch,
) -> (Layout, passes::PassTimings) {
    passes::run_pipeline_timed(spec, &pass_config(spec, opts), s)
}

pub(crate) fn pass_config(spec: &OrthogonalSpec, opts: &RealizeOptions) -> PassConfig {
    spec.assert_valid();
    assert!(opts.layers >= 2, "need at least two layers");
    PassConfig {
        layers: opts.layers,
        active_layers: 1,
        node_side: opts.node_side,
        jog_strategy: opts.jog_strategy,
        layout_name: format!("{} @ L={}", spec.name, opts.layers),
        pdk: opts.pdk.clone(),
    }
}

/// Reorder a layout's wires so that wire `i` realizes edge `i` of the
/// reference graph (needed by the routed-path metric). Panics if the
/// multisets mismatch — run the checker first.
pub fn align_wires(layout: &mut Layout, graph: &Graph) {
    let mut pool: BTreeMap<(NodeId, NodeId), Vec<usize>> = BTreeMap::new();
    for (i, w) in layout.wires.iter().enumerate() {
        let key = if w.u <= w.v { (w.u, w.v) } else { (w.v, w.u) };
        pool.entry(key).or_default().push(i);
    }
    let mut order = Vec::with_capacity(layout.wires.len());
    for e in graph.edge_ids() {
        let key = graph.endpoints_sorted(e);
        let slot = pool
            .get_mut(&key)
            .and_then(|v| v.pop())
            .unwrap_or_else(|| panic!("no wire for edge {key:?}"));
        order.push(slot);
    }
    assert_eq!(order.len(), layout.wires.len(), "extra wires present");
    let mut new_wires = Vec::with_capacity(order.len());
    for &i in &order {
        new_wires.push(layout.wires[i].clone());
    }
    layout.wires = new_wires;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ColWire, JogWire, RowWire};
    use mlv_grid::checker;
    use mlv_grid::metrics::LayoutMetrics;

    /// 2x2 grid, one row wire + one col wire + one jog diagonal.
    fn small_spec() -> OrthogonalSpec {
        let mut s = OrthogonalSpec::new("small", 2, 2);
        s.row_wires.push(RowWire {
            row: 0,
            lo: 0,
            hi: 1,
            track: 0,
        });
        s.col_wires.push(ColWire {
            col: 0,
            lo: 0,
            hi: 1,
            track: 0,
        });
        s.jog_wires.push(JogWire {
            a: (0, 1),
            b: (1, 0),
        });
        s
    }

    #[test]
    fn small_spec_realizes_legally() {
        for layers in [2usize, 3, 4, 6] {
            let l = realize(&small_spec(), &RealizeOptions::with_layers(layers));
            checker::assert_legal(&l, None);
            assert!(l.max_used_layer() < layers as i32);
        }
    }

    #[test]
    fn ring_row_spec_exact() {
        // 1 row of 4 nodes as a ring: 3 adjacent (track 0) + wrap (track 1)
        let mut s = OrthogonalSpec::new("ring-row", 1, 4);
        for c in 0..3 {
            s.row_wires.push(RowWire {
                row: 0,
                lo: c,
                hi: c + 1,
                track: 0,
            });
        }
        s.row_wires.push(RowWire {
            row: 0,
            lo: 0,
            hi: 3,
            track: 1,
        });
        let l = realize(&s, &RealizeOptions::with_layers(2));
        checker::assert_legal(&l, None);
        let m = LayoutMetrics::of(&l);
        // node side = 3 (max 2 terminals + 1); height = side + 2 tracks
        assert_eq!(m.height, 5);
        assert_eq!(m.width, 12);
    }

    #[test]
    fn more_layers_shrink_bundles() {
        let mut s = OrthogonalSpec::new("tracks", 1, 2);
        for t in 0..8 {
            s.row_wires.push(RowWire {
                row: 0,
                lo: 0,
                hi: 1,
                track: t,
            });
        }
        let l2 = realize(&s, &RealizeOptions::with_layers(2));
        let l8 = realize(&s, &RealizeOptions::with_layers(8));
        checker::assert_legal(&l2, None);
        checker::assert_legal(&l8, None);
        let m2 = LayoutMetrics::of(&l2);
        let m8 = LayoutMetrics::of(&l8);
        // bundle shrinks from 8 rows to 2 rows
        assert_eq!(m2.height - m8.height, 6);
    }

    #[test]
    fn odd_layer_budget_uses_floor_groups() {
        let mut s = OrthogonalSpec::new("odd", 1, 2);
        for t in 0..6 {
            s.row_wires.push(RowWire {
                row: 0,
                lo: 0,
                hi: 1,
                track: t,
            });
        }
        let l5 = realize(&s, &RealizeOptions::with_layers(5));
        checker::assert_legal(&l5, None);
        // floor(5/2)=2 groups -> max layer index 3 (< 5, top layer idle)
        assert!(l5.max_used_layer() <= 3);
        let l4 = realize(&s, &RealizeOptions::with_layers(4));
        assert_eq!(LayoutMetrics::of(&l5).area, LayoutMetrics::of(&l4).area);
    }

    #[test]
    fn odd_layer_top_layer_unused_across_families() {
        // the paper's odd-L discipline: with G = floor(L/2) groups the
        // highest touchable layer is 2G-1 = L-2, so the top layer stays
        // idle for every family, and the planar result equals L-1 layers
        use crate::families;
        for fam in [
            families::hypercube(4),
            families::karyn_cube(3, 2, false),
            families::ccc(3),
        ] {
            for layers in [3usize, 5, 7] {
                let l = fam.realize(layers);
                assert!(
                    l.max_used_layer() <= layers as i32 - 2,
                    "{}: L={layers} uses top layer",
                    fam.spec.name
                );
                let even = fam.realize(layers - 1);
                assert_eq!(
                    LayoutMetrics::of(&l).area,
                    LayoutMetrics::of(&even).area,
                    "{}: odd L={layers} area differs from L-1",
                    fam.spec.name
                );
            }
        }
    }

    #[test]
    fn node_side_override() {
        let s = small_spec();
        let l = realize(
            &s,
            &RealizeOptions {
                layers: 2,
                node_side: Some(7),
                jog_strategy: Default::default(),
                pdk: None,
            },
        );
        checker::assert_legal(&l, None);
        let m = LayoutMetrics::of(&l);
        assert!(m.width >= 14);
    }

    #[test]
    #[should_panic]
    fn node_side_below_minimum_rejected() {
        let mut s = OrthogonalSpec::new("busy", 1, 2);
        for t in 0..5 {
            s.row_wires.push(RowWire {
                row: 0,
                lo: 0,
                hi: 1,
                track: t,
            });
        }
        let _ = realize(
            &s,
            &RealizeOptions {
                layers: 2,
                node_side: Some(2),
                jog_strategy: Default::default(),
                pdk: None,
            },
        );
    }

    #[test]
    fn touching_same_track_wires_realize_disjointly() {
        let mut s = OrthogonalSpec::new("touch", 1, 3);
        s.row_wires.push(RowWire {
            row: 0,
            lo: 0,
            hi: 1,
            track: 0,
        });
        s.row_wires.push(RowWire {
            row: 0,
            lo: 1,
            hi: 2,
            track: 0,
        });
        let l = realize(&s, &RealizeOptions::with_layers(2));
        checker::assert_legal(&l, None);
    }

    #[test]
    fn touching_same_track_col_wires() {
        let mut s = OrthogonalSpec::new("touch-col", 3, 1);
        s.col_wires.push(ColWire {
            col: 0,
            lo: 0,
            hi: 1,
            track: 0,
        });
        s.col_wires.push(ColWire {
            col: 0,
            lo: 1,
            hi: 2,
            track: 0,
        });
        let l = realize(&s, &RealizeOptions::with_layers(2));
        checker::assert_legal(&l, None);
    }

    #[test]
    fn many_jogs_share_gaps_legally() {
        let mut s = OrthogonalSpec::new("jogs", 4, 4);
        for r in 0..4 {
            for c in 0..4 {
                let r2 = (r + 1) % 4;
                let c2 = (c + 2) % 4;
                if r2 != r {
                    s.jog_wires.push(JogWire {
                        a: (r, c),
                        b: (r2, c2),
                    });
                }
            }
        }
        for layers in [2usize, 4, 8] {
            let l = realize(&s, &RealizeOptions::with_layers(layers));
            checker::assert_legal(&l, None);
        }
    }

    #[test]
    fn align_wires_orders_by_graph() {
        use mlv_topology::GraphBuilder;
        let mut b = GraphBuilder::new("z", 4);
        b.add_edge(2, 3); // edge 0
        b.add_edge(0, 1); // edge 1
        let g = b.build();
        let mut sp = OrthogonalSpec::new("z", 2, 2);
        sp.node_at = vec![0, 1, 2, 3];
        sp.row_wires.push(RowWire {
            row: 0,
            lo: 0,
            hi: 1,
            track: 0,
        });
        sp.row_wires.push(RowWire {
            row: 1,
            lo: 0,
            hi: 1,
            track: 0,
        });
        let mut l = realize(&sp, &RealizeOptions::with_layers(2));
        align_wires(&mut l, &g);
        let key = |i: usize| {
            let w = &l.wires[i];
            (w.u.min(w.v), w.u.max(w.v))
        };
        assert_eq!(key(0), (2, 3));
        assert_eq!(key(1), (0, 1));
    }
}
