//! Abstract orthogonal layouts: the intermediate representation between
//! the collinear constructions and the concrete grid realization.

use mlv_topology::NodeId;
use std::collections::BTreeMap;

/// A link between two nodes of the same grid row, routed in that row's
/// horizontal track bundle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowWire {
    /// Grid row of both endpoints.
    pub row: usize,
    /// Left endpoint's column (`lo < hi`).
    pub lo: usize,
    /// Right endpoint's column.
    pub hi: usize,
    /// Track within the row bundle (0-based, construction-assigned).
    pub track: usize,
}

/// A link between two nodes of the same grid column, routed in that
/// column's vertical track bundle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColWire {
    /// Grid column of both endpoints.
    pub col: usize,
    /// Bottom endpoint's row (`lo < hi`).
    pub lo: usize,
    /// Top endpoint's row.
    pub hi: usize,
    /// Track within the column bundle (0-based, construction-assigned).
    pub track: usize,
}

/// A link whose endpoints share neither row nor column (or whose track
/// management is easier left to the realizer): routed as one vertical
/// run in the column gap right of endpoint `a` plus one horizontal run
/// in endpoint `b`'s row bundle. Tracks are assigned by the realizer
/// (greedy, in a reserved range above the construction tracks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JogWire {
    /// First endpoint (row, col) — the vertical run starts here.
    pub a: (usize, usize),
    /// Second endpoint (row, col) — the horizontal run lands here.
    /// Must satisfy `a.0 != b.0` (same-row links are row wires).
    pub b: (usize, usize),
}

/// An abstract 2-D orthogonal layout.
#[derive(Clone, Debug)]
pub struct OrthogonalSpec {
    /// Human-readable name.
    pub name: String,
    /// Number of node rows.
    pub rows: usize,
    /// Number of node columns.
    pub cols: usize,
    /// Node id at grid position `(r, c)`, indexed `r * cols + c`.
    pub node_at: Vec<NodeId>,
    /// Same-row links.
    pub row_wires: Vec<RowWire>,
    /// Same-column links.
    pub col_wires: Vec<ColWire>,
    /// Cross links (realizer-routed).
    pub jog_wires: Vec<JogWire>,
}

/// Validity violations of a spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// `node_at` is not a permutation of `0..rows*cols`.
    NotAPermutation,
    /// A wire references an out-of-range row/column or has `lo >= hi`.
    BadWire(String),
    /// Two same-track wires overlap in more than a touching endpoint.
    TrackOverlap(String),
}

impl OrthogonalSpec {
    /// Create an empty spec for a rows×cols node grid with the identity
    /// node assignment.
    pub fn new(name: impl Into<String>, rows: usize, cols: usize) -> Self {
        OrthogonalSpec {
            name: name.into(),
            rows,
            cols,
            node_at: (0..(rows * cols) as NodeId).collect(),
            row_wires: Vec::new(),
            col_wires: Vec::new(),
            jog_wires: Vec::new(),
        }
    }

    /// Node id at `(row, col)`.
    pub fn node(&self, row: usize, col: usize) -> NodeId {
        self.node_at[row * self.cols + col]
    }

    /// Total number of wires of all kinds.
    pub fn wire_count(&self) -> usize {
        self.row_wires.len() + self.col_wires.len() + self.jog_wires.len()
    }

    /// Endpoint node pairs of every wire, row wires first, then column
    /// wires, then jogs — the order the realizer emits them in.
    pub fn wire_endpoints(&self) -> Vec<(NodeId, NodeId)> {
        let mut v = Vec::with_capacity(self.wire_count());
        for w in &self.row_wires {
            v.push((self.node(w.row, w.lo), self.node(w.row, w.hi)));
        }
        for w in &self.col_wires {
            v.push((self.node(w.lo, w.col), self.node(w.hi, w.col)));
        }
        for w in &self.jog_wires {
            v.push((self.node(w.a.0, w.a.1), self.node(w.b.0, w.b.1)));
        }
        v
    }

    /// The multiset of wire endpoint pairs (canonical order) for
    /// verification against `Graph::edge_multiset`.
    pub fn edge_multiset(&self) -> BTreeMap<(NodeId, NodeId), usize> {
        let mut m = BTreeMap::new();
        for (a, b) in self.wire_endpoints() {
            let key = if a <= b { (a, b) } else { (b, a) };
            *m.entry(key).or_insert(0) += 1;
        }
        m
    }

    /// Highest construction track index + 1 used in row `r`'s bundle.
    pub fn row_tracks(&self, r: usize) -> usize {
        self.row_wires
            .iter()
            .filter(|w| w.row == r)
            .map(|w| w.track + 1)
            .max()
            .unwrap_or(0)
    }

    /// Highest construction track index + 1 used in column `c`'s bundle.
    pub fn col_tracks(&self, c: usize) -> usize {
        self.col_wires
            .iter()
            .filter(|w| w.col == c)
            .map(|w| w.track + 1)
            .max()
            .unwrap_or(0)
    }

    /// Validate structural rules (ranges, permutation, per-track
    /// open-interval disjointness).
    pub fn validate(&self) -> Result<(), SpecError> {
        let n = self.rows * self.cols;
        let mut seen = vec![false; n];
        if self.node_at.len() != n {
            return Err(SpecError::NotAPermutation);
        }
        for &x in &self.node_at {
            if (x as usize) >= n || seen[x as usize] {
                return Err(SpecError::NotAPermutation);
            }
            seen[x as usize] = true;
        }
        for w in &self.row_wires {
            if w.row >= self.rows || w.lo >= w.hi || w.hi >= self.cols {
                return Err(SpecError::BadWire(format!("{w:?}")));
            }
        }
        for w in &self.col_wires {
            if w.col >= self.cols || w.lo >= w.hi || w.hi >= self.rows {
                return Err(SpecError::BadWire(format!("{w:?}")));
            }
        }
        for w in &self.jog_wires {
            if w.a.0 >= self.rows
                || w.b.0 >= self.rows
                || w.a.1 >= self.cols
                || w.b.1 >= self.cols
                || w.a.0 == w.b.0
            {
                return Err(SpecError::BadWire(format!("{w:?}")));
            }
        }
        // per-(row, track) disjointness
        let mut by: BTreeMap<(usize, usize), Vec<(usize, usize)>> = BTreeMap::new();
        for w in &self.row_wires {
            by.entry((w.row, w.track)).or_default().push((w.lo, w.hi));
        }
        check_track_map(&by, "row")?;
        let mut by: BTreeMap<(usize, usize), Vec<(usize, usize)>> = BTreeMap::new();
        for w in &self.col_wires {
            by.entry((w.col, w.track)).or_default().push((w.lo, w.hi));
        }
        check_track_map(&by, "col")?;
        Ok(())
    }

    /// Panic with context if invalid.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("orthogonal spec '{}' invalid: {e:?}", self.name);
        }
    }
}

fn check_track_map(
    by: &BTreeMap<(usize, usize), Vec<(usize, usize)>>,
    kind: &str,
) -> Result<(), SpecError> {
    for ((line, track), spans) in by {
        let mut s = spans.clone();
        s.sort_unstable();
        for pair in s.windows(2) {
            if pair[1].0 < pair[0].1 {
                return Err(SpecError::TrackOverlap(format!(
                    "{kind} {line} track {track}: {:?} vs {:?}",
                    pair[0], pair[1]
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2x3() -> OrthogonalSpec {
        OrthogonalSpec::new("t", 2, 3)
    }

    #[test]
    fn empty_spec_valid() {
        let s = grid_2x3();
        s.assert_valid();
        assert_eq!(s.wire_count(), 0);
        assert_eq!(s.node(1, 2), 5);
    }

    #[test]
    fn row_wire_endpoints() {
        let mut s = grid_2x3();
        s.row_wires.push(RowWire {
            row: 1,
            lo: 0,
            hi: 2,
            track: 0,
        });
        assert_eq!(s.wire_endpoints(), vec![(3, 5)]);
        s.assert_valid();
    }

    #[test]
    fn track_overlap_detected() {
        let mut s = grid_2x3();
        s.row_wires.push(RowWire {
            row: 0,
            lo: 0,
            hi: 2,
            track: 0,
        });
        s.row_wires.push(RowWire {
            row: 0,
            lo: 1,
            hi: 2,
            track: 0,
        });
        assert!(matches!(s.validate(), Err(SpecError::TrackOverlap(_))));
    }

    #[test]
    fn touching_same_track_ok() {
        let mut s = grid_2x3();
        s.row_wires.push(RowWire {
            row: 0,
            lo: 0,
            hi: 1,
            track: 0,
        });
        s.row_wires.push(RowWire {
            row: 0,
            lo: 1,
            hi: 2,
            track: 0,
        });
        s.assert_valid();
    }

    #[test]
    fn jog_same_row_rejected() {
        let mut s = grid_2x3();
        s.jog_wires.push(JogWire {
            a: (0, 0),
            b: (0, 2),
        });
        assert!(matches!(s.validate(), Err(SpecError::BadWire(_))));
    }

    #[test]
    fn bad_permutation_detected() {
        let mut s = grid_2x3();
        s.node_at[0] = 5;
        assert_eq!(s.validate(), Err(SpecError::NotAPermutation));
    }

    #[test]
    fn track_counts() {
        let mut s = grid_2x3();
        s.row_wires.push(RowWire {
            row: 0,
            lo: 0,
            hi: 1,
            track: 3,
        });
        s.col_wires.push(ColWire {
            col: 2,
            lo: 0,
            hi: 1,
            track: 1,
        });
        assert_eq!(s.row_tracks(0), 4);
        assert_eq!(s.row_tracks(1), 0);
        assert_eq!(s.col_tracks(2), 2);
    }
}
