//! The family registry: one table of every network family the repo
//! lays out — its canonical name, CLI spec grammar, constructor, and
//! (where the conformance harness covers it) the seeded parameter
//! lattice with its calibrated prediction envelope.
//!
//! The CLI parser (`mlv-cli`), the `mlv families` listing, the
//! conformance case builder (`mlv-conformance`), and the bench binaries
//! all enumerate this table, so a family's name and grammar are spelled
//! exactly once in the workspace.

use crate::families::{self, Family};
use mlv_core::rng::Rng;
use mlv_formulas::predictions::{self, Prediction};
use mlv_topology::cluster::ClusterKind;

/// Parsed arguments of a `"<name>:<args>"` family spec.
pub struct FamilyArgs<'a> {
    /// The full spec string, for error messages.
    pub spec: &'a str,
    /// Leading numeric arguments.
    pub nums: Vec<usize>,
    /// All comma-separated argument tokens, trimmed (for trailing word
    /// arguments such as the cluster kind).
    pub words: Vec<&'a str>,
}

impl FamilyArgs<'_> {
    /// Require at least `n` leading numeric arguments.
    pub fn need(&self, n: usize) -> Result<(), String> {
        if self.nums.len() < n {
            Err(format!("'{}': expected {n} numeric argument(s)", self.spec))
        } else {
            Ok(())
        }
    }
}

/// Closed-form prediction at a layer budget, boxed per lattice draw.
pub type PredictFn = Box<dyn Fn(usize) -> Prediction>;

/// One seeded draw from a family's conformance parameter pool.
pub struct LatticeDraw {
    /// `family:params` label (the layer suffix is appended by the
    /// harness).
    pub label: String,
    /// The drawn graph + orthogonal spec.
    pub family: Family,
    /// Leading-term predictor, `None` for draws without closed forms.
    pub predict: Option<PredictFn>,
}

/// Measured/predicted ratio bounds at the Thompson (L = 2) point.
#[derive(Clone, Copy, Debug)]
pub struct RatioEnvelope {
    /// `(lo, hi)` for `measured_area / predicted_area`.
    pub area: (f64, f64),
    /// `(lo, hi)` for `measured_max_wire_planar / predicted_max_wire`,
    /// when the paper states a max-wire leading term.
    pub wire: Option<(f64, f64)>,
}

/// A family's conformance lattice: the seeded draw plus the calibrated
/// envelope its predictions are checked against.
pub struct LatticeSpec {
    /// Draw one parameter choice from the family's pool.
    pub draw: fn(&mut Rng) -> LatticeDraw,
    /// Ratio envelope; required whenever draws carry predictions.
    pub envelope: Option<RatioEnvelope>,
}

/// One row of the registry.
pub struct FamilyEntry {
    /// Canonical name (conformance `--families` vocabulary).
    pub name: &'static str,
    /// CLI spec keyword (differs from `name` only for `genhyper`/`ghc`).
    pub keyword: &'static str,
    /// CLI spec grammar, e.g. `karyn:<k>,<n>`.
    pub grammar: &'static str,
    /// One-line description for `mlv families`.
    pub description: &'static str,
    /// A valid example spec (exercised by tests).
    pub example: &'static str,
    /// Build the family from parsed spec arguments.
    pub construct: fn(&FamilyArgs) -> Result<Family, String>,
    /// Conformance lattice, `None` for families the harness skips.
    pub lattice: Option<LatticeSpec>,
}

/// Layer budgets drawn per lattice case (even, odd, and the degenerate
/// Thompson `L = 2`) — shared by the conformance harness's case builder
/// and the batch engine's lattice enumeration, so both walk the same
/// `(family, params, L)` grid.
pub const LAYER_POOL: [usize; 6] = [2, 3, 4, 5, 6, 8];

fn pick<T: Copy>(rng: &mut Rng, pool: &[T]) -> T {
    pool[rng.gen_range_usize(0..pool.len())]
}

// --- constructors ------------------------------------------------------

fn c_hypercube(a: &FamilyArgs) -> Result<Family, String> {
    a.need(1)?;
    Ok(families::hypercube(a.nums[0]))
}

fn c_karyn(a: &FamilyArgs) -> Result<Family, String> {
    a.need(2)?;
    Ok(families::karyn_cube(a.nums[0], a.nums[1], false))
}

fn c_karyn_folded(a: &FamilyArgs) -> Result<Family, String> {
    a.need(2)?;
    Ok(families::karyn_cube(a.nums[0], a.nums[1], true))
}

fn c_mesh(a: &FamilyArgs) -> Result<Family, String> {
    a.need(2)?;
    Ok(families::karyn_mesh(a.nums[0], a.nums[1]))
}

fn c_genhyper(a: &FamilyArgs) -> Result<Family, String> {
    a.need(1)?;
    Ok(families::genhyper(&a.nums))
}

fn c_complete(a: &FamilyArgs) -> Result<Family, String> {
    a.need(1)?;
    Ok(families::genhyper(&a.nums[..1]))
}

fn c_folded(a: &FamilyArgs) -> Result<Family, String> {
    a.need(1)?;
    Ok(families::folded_hypercube(a.nums[0]))
}

fn c_enhanced(a: &FamilyArgs) -> Result<Family, String> {
    a.need(1)?;
    let seed = a.nums.get(1).copied().unwrap_or(2026) as u64;
    Ok(families::enhanced_cube(a.nums[0], seed))
}

fn c_ccc(a: &FamilyArgs) -> Result<Family, String> {
    a.need(1)?;
    Ok(families::ccc(a.nums[0]))
}

fn c_rh(a: &FamilyArgs) -> Result<Family, String> {
    a.need(1)?;
    Ok(families::reduced_hypercube(a.nums[0]))
}

fn c_butterfly(a: &FamilyArgs) -> Result<Family, String> {
    a.need(1)?;
    let b = a.nums.get(1).copied().unwrap_or(0);
    Ok(families::butterfly_clustered(a.nums[0], b))
}

fn c_hsn(a: &FamilyArgs) -> Result<Family, String> {
    a.need(2)?;
    Ok(families::hsn(a.nums[0], a.nums[1]))
}

fn c_hhn(a: &FamilyArgs) -> Result<Family, String> {
    a.need(2)?;
    Ok(families::hhn(a.nums[0], a.nums[1]))
}

fn c_isn(a: &FamilyArgs) -> Result<Family, String> {
    a.need(2)?;
    Ok(families::isn(a.nums[0], a.nums[1]))
}

fn c_clusterc(a: &FamilyArgs) -> Result<Family, String> {
    a.need(3)?;
    let kind = match a.words.get(3).copied() {
        Some("ring") | None => ClusterKind::Ring,
        Some("cube") | Some("hypercube") => ClusterKind::Hypercube,
        Some("complete") => ClusterKind::Complete,
        Some(other) => return Err(format!("unknown cluster kind '{other}'")),
    };
    Ok(families::kary_cluster(
        a.nums[0], a.nums[1], a.nums[2], kind,
    ))
}

fn c_star(a: &FamilyArgs) -> Result<Family, String> {
    a.need(1)?;
    Ok(families::star(a.nums[0]))
}

fn c_pancake(a: &FamilyArgs) -> Result<Family, String> {
    a.need(1)?;
    Ok(families::pancake(a.nums[0]))
}

fn c_bubble(a: &FamilyArgs) -> Result<Family, String> {
    a.need(1)?;
    Ok(families::bubble_sort(a.nums[0]))
}

fn c_transposition(a: &FamilyArgs) -> Result<Family, String> {
    a.need(1)?;
    Ok(families::transposition(a.nums[0]))
}

fn c_scc(a: &FamilyArgs) -> Result<Family, String> {
    a.need(1)?;
    Ok(families::scc(a.nums[0]))
}

fn c_macrostar(a: &FamilyArgs) -> Result<Family, String> {
    a.need(2)?;
    Ok(families::macro_star(a.nums[0], a.nums[1]))
}

// --- lattice draws -----------------------------------------------------
// Each draw replays the exact RNG call sequence the conformance harness
// has always used for its family, so the seeded lattice (and its FNV
// digest) is stable across refactors.

fn d_hypercube(rng: &mut Rng) -> LatticeDraw {
    let n = pick(rng, &[3usize, 4, 5, 6]);
    LatticeDraw {
        label: format!("hypercube:{n}"),
        family: families::hypercube(n),
        predict: Some(Box::new(move |l| predictions::hypercube(1 << n, l))),
    }
}

fn d_karyn(rng: &mut Rng) -> LatticeDraw {
    let (k, n) = pick(rng, &[(3usize, 2usize), (4, 2), (5, 2), (3, 3)]);
    let fold = rng.gen_bool(0.5);
    LatticeDraw {
        label: format!("karyn:{k},{n}{}", if fold { " folded" } else { "" }),
        family: families::karyn_cube(k, n, fold),
        predict: Some(Box::new(move |l| predictions::karyn(k, n, l))),
    }
}

fn d_mesh(rng: &mut Rng) -> LatticeDraw {
    let (k, n) = pick(rng, &[(3usize, 2usize), (4, 2), (5, 2), (3, 3)]);
    LatticeDraw {
        label: format!("mesh:{k},{n}"),
        family: families::karyn_mesh(k, n),
        predict: Some(Box::new(move |l| predictions::karyn_mesh(k, n, l))),
    }
}

fn d_genhyper(rng: &mut Rng) -> LatticeDraw {
    // uniform radices carry predictions; mixed radices are exercised
    // checker+differential-only
    let uniform = rng.gen_bool(0.7);
    if uniform {
        let (r, n) = pick(rng, &[(3usize, 2usize), (4, 2), (5, 2), (3, 3)]);
        LatticeDraw {
            label: format!("ghc:{r}^{n}"),
            family: families::genhyper(&vec![r; n]),
            predict: Some(Box::new(move |l| predictions::genhyper(r, n, l))),
        }
    } else {
        let radices: &[usize] = pick(rng, &[&[4usize, 3][..], &[5, 3][..], &[4, 3, 2][..]]);
        LatticeDraw {
            label: format!("ghc:{radices:?}"),
            family: families::genhyper(radices),
            predict: None,
        }
    }
}

fn d_butterfly(rng: &mut Rng) -> LatticeDraw {
    let (m, b) = pick(rng, &[(3usize, 0usize), (4, 0), (4, 1)]);
    let n_nodes = m << m;
    LatticeDraw {
        label: format!("butterfly:{m},{b}"),
        family: families::butterfly_clustered(m, b),
        predict: Some(Box::new(move |l| predictions::butterfly(n_nodes, l))),
    }
}

fn d_ccc(rng: &mut Rng) -> LatticeDraw {
    let n = pick(rng, &[3usize, 4]);
    let n_nodes = n << n;
    LatticeDraw {
        label: format!("ccc:{n}"),
        family: families::ccc(n),
        predict: Some(Box::new(move |l| predictions::ccc(n_nodes, l))),
    }
}

fn d_folded(rng: &mut Rng) -> LatticeDraw {
    let n = pick(rng, &[3usize, 4, 5]);
    LatticeDraw {
        label: format!("folded:{n}"),
        family: families::folded_hypercube(n),
        predict: Some(Box::new(move |l| predictions::folded_hypercube(1 << n, l))),
    }
}

fn d_enhanced(rng: &mut Rng) -> LatticeDraw {
    let n = pick(rng, &[3usize, 4, 5]);
    let seed = rng.gen_range_u64(1..1_000_000);
    LatticeDraw {
        label: format!("enhanced:{n} seed={seed}"),
        family: families::enhanced_cube(n, seed),
        predict: Some(Box::new(move |l| predictions::enhanced_cube(1 << n, l))),
    }
}

fn d_hsn(rng: &mut Rng) -> LatticeDraw {
    let (levels, r) = pick(rng, &[(2usize, 3usize), (2, 4), (2, 5), (3, 3)]);
    let n_nodes = r.pow(levels as u32);
    LatticeDraw {
        label: format!("hsn:{levels},{r}"),
        family: families::hsn(levels, r),
        predict: Some(Box::new(move |l| predictions::hsn(n_nodes, l))),
    }
}

fn d_hhn(rng: &mut Rng) -> LatticeDraw {
    let (levels, s) = pick(rng, &[(2usize, 2usize), (2, 3)]);
    let n_nodes = (1usize << s).pow(levels as u32);
    LatticeDraw {
        label: format!("hhn:{levels},{s}"),
        family: families::hhn(levels, s),
        predict: Some(Box::new(move |l| predictions::hsn(n_nodes, l))),
    }
}

fn d_isn(rng: &mut Rng) -> LatticeDraw {
    let (levels, r) = pick(rng, &[(2usize, 3usize), (2, 4)]);
    let family = families::isn(levels, r);
    let n_nodes = family.graph.node_count();
    LatticeDraw {
        label: format!("isn:{levels},{r}"),
        family,
        predict: Some(Box::new(move |l| predictions::isn(n_nodes, l))),
    }
}

fn d_clusterc(rng: &mut Rng) -> LatticeDraw {
    let (k, n, c, kind) = pick(
        rng,
        &[
            (3usize, 2usize, 4usize, ClusterKind::Hypercube),
            (4, 2, 3, ClusterKind::Ring),
            (3, 2, 3, ClusterKind::Complete),
        ],
    );
    LatticeDraw {
        label: format!("clusterc:{k},{n},{c},{kind:?}"),
        family: families::kary_cluster(k, n, c, kind),
        predict: None,
    }
}

fn d_star(rng: &mut Rng) -> LatticeDraw {
    let n = pick(rng, &[3usize, 4]);
    LatticeDraw {
        label: format!("star:{n}"),
        family: families::star(n),
        predict: None,
    }
}

// Envelopes calibrated against the full pool lattice at the Thompson
// point (the `tune_envelopes` sweep in mlv-conformance; re-measure
// after layout-engine changes). Bounds carry ≥ 25% slack beyond the
// observed extremes; a breach means the layout engine's constants
// moved. Large ratios (ISN, butterfly, CCC, HSN) are small-instance
// effects — the lower-order terms the leading constants drop still
// dominate at the pool's N — which is exactly why the envelope is
// per-family.
const HYPERCUBE_ENV: RatioEnvelope = RatioEnvelope {
    area: (2.0, 7.5),
    wire: Some((2.0, 8.0)),
};
const KARYN_ENV: RatioEnvelope = RatioEnvelope {
    area: (4.5, 10.0),
    wire: None,
};
const MESH_ENV: RatioEnvelope = RatioEnvelope {
    area: (12.0, 24.0),
    wire: None,
};
const GENHYPER_ENV: RatioEnvelope = RatioEnvelope {
    area: (2.2, 8.0),
    wire: Some((1.0, 3.5)),
};
const BUTTERFLY_ENV: RatioEnvelope = RatioEnvelope {
    area: (38.0, 90.0),
    wire: Some((5.0, 15.0)),
};
const CCC_ENV: RatioEnvelope = RatioEnvelope {
    area: (40.0, 92.0),
    wire: None,
};
const FOLDED_ENV: RatioEnvelope = RatioEnvelope {
    area: (2.1, 6.0),
    wire: Some((2.1, 5.6)),
};
const ENHANCED_ENV: RatioEnvelope = RatioEnvelope {
    area: (1.6, 8.0),
    wire: Some((1.3, 6.0)),
};
const HSN_ENV: RatioEnvelope = RatioEnvelope {
    area: (24.0, 82.0),
    wire: Some((5.0, 20.0)),
};
const HHN_ENV: RatioEnvelope = RatioEnvelope {
    area: (18.0, 48.0),
    wire: Some((8.5, 15.5)),
};
const ISN_ENV: RatioEnvelope = RatioEnvelope {
    area: (170.0, 420.0),
    wire: Some((22.0, 54.0)),
};

/// The registry itself. Lattice-bearing entries appear in the harness's
/// historical reporting order.
pub static REGISTRY: &[FamilyEntry] = &[
    FamilyEntry {
        name: "hypercube",
        keyword: "hypercube",
        grammar: "hypercube:<n>",
        description: "binary n-cube (2^n nodes)",
        example: "hypercube:4",
        construct: c_hypercube,
        lattice: Some(LatticeSpec {
            draw: d_hypercube,
            envelope: Some(HYPERCUBE_ENV),
        }),
    },
    FamilyEntry {
        name: "karyn",
        keyword: "karyn",
        grammar: "karyn:<k>,<n>",
        description: "k-ary n-cube torus",
        example: "karyn:4,2",
        construct: c_karyn,
        lattice: Some(LatticeSpec {
            draw: d_karyn,
            envelope: Some(KARYN_ENV),
        }),
    },
    FamilyEntry {
        name: "karyn-folded",
        keyword: "karyn-folded",
        grammar: "karyn-folded:<k>,<n>",
        description: "k-ary n-cube with folded rows/columns",
        example: "karyn-folded:4,2",
        construct: c_karyn_folded,
        lattice: None,
    },
    FamilyEntry {
        name: "mesh",
        keyword: "mesh",
        grammar: "mesh:<k>,<n>",
        description: "k-ary n-mesh (no wraparound)",
        example: "mesh:3,2",
        construct: c_mesh,
        lattice: Some(LatticeSpec {
            draw: d_mesh,
            envelope: Some(MESH_ENV),
        }),
    },
    FamilyEntry {
        name: "genhyper",
        keyword: "ghc",
        grammar: "ghc:<r0>,<r1>,...",
        description: "generalized hypercube, mixed radices",
        example: "ghc:4,4",
        construct: c_genhyper,
        lattice: Some(LatticeSpec {
            draw: d_genhyper,
            envelope: Some(GENHYPER_ENV),
        }),
    },
    FamilyEntry {
        name: "complete",
        keyword: "complete",
        grammar: "complete:<n>",
        description: "complete graph K_n (1-dim GHC)",
        example: "complete:6",
        construct: c_complete,
        lattice: None,
    },
    FamilyEntry {
        name: "butterfly",
        keyword: "butterfly",
        grammar: "butterfly:<m>[,<b>]",
        description: "wrapped butterfly, cluster radix 2^b",
        example: "butterfly:4,1",
        construct: c_butterfly,
        lattice: Some(LatticeSpec {
            draw: d_butterfly,
            envelope: Some(BUTTERFLY_ENV),
        }),
    },
    FamilyEntry {
        name: "ccc",
        keyword: "ccc",
        grammar: "ccc:<n>",
        description: "cube-connected cycles",
        example: "ccc:3",
        construct: c_ccc,
        lattice: Some(LatticeSpec {
            draw: d_ccc,
            envelope: Some(CCC_ENV),
        }),
    },
    FamilyEntry {
        name: "rh",
        keyword: "rh",
        grammar: "rh:<n>",
        description: "reduced hypercube (n = 2^s)",
        example: "rh:4",
        construct: c_rh,
        lattice: None,
    },
    FamilyEntry {
        name: "folded",
        keyword: "folded",
        grammar: "folded:<n>",
        description: "folded hypercube",
        example: "folded:4",
        construct: c_folded,
        lattice: Some(LatticeSpec {
            draw: d_folded,
            envelope: Some(FOLDED_ENV),
        }),
    },
    FamilyEntry {
        name: "enhanced",
        keyword: "enhanced",
        grammar: "enhanced:<n>[,<seed>]",
        description: "enhanced cube (random extra links)",
        example: "enhanced:4,7",
        construct: c_enhanced,
        lattice: Some(LatticeSpec {
            draw: d_enhanced,
            envelope: Some(ENHANCED_ENV),
        }),
    },
    FamilyEntry {
        name: "hsn",
        keyword: "hsn",
        grammar: "hsn:<levels>,<r>",
        description: "hierarchical swap network over K_r",
        example: "hsn:2,4",
        construct: c_hsn,
        lattice: Some(LatticeSpec {
            draw: d_hsn,
            envelope: Some(HSN_ENV),
        }),
    },
    FamilyEntry {
        name: "hhn",
        keyword: "hhn",
        grammar: "hhn:<levels>,<s>",
        description: "hierarchical hypercube network (s-cube nuclei)",
        example: "hhn:2,2",
        construct: c_hhn,
        lattice: Some(LatticeSpec {
            draw: d_hhn,
            envelope: Some(HHN_ENV),
        }),
    },
    FamilyEntry {
        name: "isn",
        keyword: "isn",
        grammar: "isn:<levels>,<r>",
        description: "indirect swap network",
        example: "isn:2,3",
        construct: c_isn,
        lattice: Some(LatticeSpec {
            draw: d_isn,
            envelope: Some(ISN_ENV),
        }),
    },
    FamilyEntry {
        name: "clusterc",
        keyword: "clusterc",
        grammar: "clusterc:<k>,<n>,<c>,<ring|cube|complete>",
        description: "k-ary n-cube cluster-c",
        example: "clusterc:3,2,4,cube",
        construct: c_clusterc,
        lattice: Some(LatticeSpec {
            draw: d_clusterc,
            envelope: None,
        }),
    },
    FamilyEntry {
        name: "star",
        keyword: "star",
        grammar: "star:<n>",
        description: "star graph (n! nodes)",
        example: "star:4",
        construct: c_star,
        lattice: Some(LatticeSpec {
            draw: d_star,
            envelope: None,
        }),
    },
    FamilyEntry {
        name: "pancake",
        keyword: "pancake",
        grammar: "pancake:<n>",
        description: "pancake graph",
        example: "pancake:4",
        construct: c_pancake,
        lattice: None,
    },
    FamilyEntry {
        name: "bubble",
        keyword: "bubble",
        grammar: "bubble:<n>",
        description: "bubble-sort graph",
        example: "bubble:4",
        construct: c_bubble,
        lattice: None,
    },
    FamilyEntry {
        name: "transposition",
        keyword: "transposition",
        grammar: "transposition:<n>",
        description: "transposition network",
        example: "transposition:4",
        construct: c_transposition,
        lattice: None,
    },
    FamilyEntry {
        name: "scc",
        keyword: "scc",
        grammar: "scc:<n>",
        description: "star-connected cycles",
        example: "scc:4",
        construct: c_scc,
        lattice: None,
    },
    FamilyEntry {
        name: "macrostar",
        keyword: "macrostar",
        grammar: "macrostar:<l>,<n>",
        description: "macro-star network MS(l,n)",
        example: "macrostar:2,2",
        construct: c_macrostar,
        lattice: None,
    },
];

/// Look up an entry by canonical name or CLI keyword.
pub fn find(name: &str) -> Option<&'static FamilyEntry> {
    REGISTRY
        .iter()
        .find(|e| e.name == name || e.keyword == name)
}

/// Canonical names of the lattice-bearing families, in reporting order
/// (the conformance `--families` vocabulary).
pub fn lattice_names() -> Vec<&'static str> {
    REGISTRY
        .iter()
        .filter(|e| e.lattice.is_some())
        .map(|e| e.name)
        .collect()
}

/// Parse a `"<name>:<args>"` family spec against the registry. Returns
/// a readable error for anything invalid.
pub fn parse(spec: &str) -> Result<Family, String> {
    let (name, rest) = spec.split_once(':').unwrap_or((spec, ""));
    let entry = find(name)
        .ok_or_else(|| format!("unknown family '{name}'; run `mlv families` for the list"))?;
    let words: Vec<&str> = rest.split(',').map(str::trim).collect();
    let nums: Vec<usize> = words
        .iter()
        .map_while(|t| t.parse::<usize>().ok())
        .collect();
    (entry.construct)(&FamilyArgs { spec, nums, words })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_example_parses_and_builds() {
        for e in REGISTRY {
            let fam = parse(e.example).unwrap_or_else(|err| panic!("{}: {err}", e.example));
            assert!(fam.graph.node_count() > 0, "{}", e.example);
            assert!(
                e.example.starts_with(e.keyword),
                "{} example does not use keyword {}",
                e.name,
                e.keyword
            );
            assert!(
                e.grammar.starts_with(e.keyword),
                "{} grammar does not use keyword {}",
                e.name,
                e.keyword
            );
        }
    }

    #[test]
    fn names_and_keywords_are_unique() {
        use std::collections::BTreeSet;
        let names: BTreeSet<_> = REGISTRY.iter().map(|e| e.name).collect();
        let keywords: BTreeSet<_> = REGISTRY.iter().map(|e| e.keyword).collect();
        assert_eq!(names.len(), REGISTRY.len());
        assert_eq!(keywords.len(), REGISTRY.len());
    }

    #[test]
    fn find_matches_name_and_keyword() {
        assert!(find("genhyper").is_some());
        assert!(find("ghc").is_some());
        assert_eq!(find("genhyper").unwrap().name, find("ghc").unwrap().name);
        assert!(find("nope").is_none());
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(parse("nope:3").is_err());
        assert!(parse(REGISTRY[0].name).is_err()); // missing numeric args
        let bad_kind = format!("{}:3,2,4,triangle", find("clusterc").unwrap().keyword);
        assert!(parse(&bad_kind).is_err());
    }

    #[test]
    fn optional_arguments_default() {
        // butterfly's <b> and enhanced's <seed> are optional
        let bf = find("butterfly").unwrap();
        assert!(parse(bf.keyword).is_err());
        assert!((bf.construct)(&FamilyArgs {
            spec: "x",
            nums: vec![3],
            words: vec!["3"],
        })
        .is_ok());
        let en = find("enhanced").unwrap();
        assert!((en.construct)(&FamilyArgs {
            spec: "x",
            nums: vec![4],
            words: vec!["4"],
        })
        .is_ok());
    }

    #[test]
    fn lattice_draws_are_deterministic() {
        for e in REGISTRY.iter().filter(|e| e.lattice.is_some()) {
            let lat = e.lattice.as_ref().unwrap();
            let mut r1 = Rng::seed_from_u64(7);
            let mut r2 = Rng::seed_from_u64(7);
            let a = (lat.draw)(&mut r1);
            let b = (lat.draw)(&mut r2);
            assert_eq!(a.label, b.label, "{}", e.name);
            assert_eq!(
                a.family.graph.edge_multiset(),
                b.family.graph.edge_multiset(),
                "{}",
                e.name
            );
            // prediction-bearing draws require an envelope to check
            // against
            if a.predict.is_some() {
                assert!(
                    lat.envelope.is_some(),
                    "{}: prediction without envelope",
                    e.name
                );
            }
        }
    }

    #[test]
    fn registry_is_complete_per_family() {
        // Adding a family without wiring up the whole vocabulary —
        // bench baseline, parameter pool, calibrated envelope — fails
        // here rather than silently shrinking coverage.
        let bench = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_layout.json"),
        )
        .expect("committed BENCH_layout.json at the repo root");
        for e in REGISTRY {
            let Some(lat) = &e.lattice else { continue };
            // bench label: the committed baseline has a row for this
            // family, so `bench_layout --check-regression` bounds it
            assert!(
                bench.contains(&format!("\"family\":\"{}\"", e.name)),
                "{}: no row in BENCH_layout.json — regenerate the baseline",
                e.name
            );
            // lattice pool: the draw stream actually varies, i.e. the
            // family exposes a parameter pool rather than one point
            let labels: std::collections::BTreeSet<String> = (0..32)
                .map(|s| {
                    let mut rng = Rng::seed_from_u64(s);
                    (lat.draw)(&mut rng).label
                })
                .collect();
            assert!(
                labels.len() > 1,
                "{}: 32 seeds drew a single label {:?} — empty pool?",
                e.name,
                labels
            );
            // calibrated envelope: sane, non-degenerate ratio bounds
            if let Some(env) = &lat.envelope {
                let (lo, hi) = env.area;
                assert!(
                    lo > 0.0 && lo < hi,
                    "{}: uncalibrated area envelope ({lo}, {hi})",
                    e.name
                );
                if let Some((wlo, whi)) = env.wire {
                    assert!(
                        wlo > 0.0 && wlo < whi,
                        "{}: uncalibrated wire envelope ({wlo}, {whi})",
                        e.name
                    );
                }
            }
        }
    }

    #[test]
    fn lattice_labels_start_with_keyword() {
        for e in REGISTRY.iter().filter(|e| e.lattice.is_some()) {
            let mut rng = Rng::seed_from_u64(11);
            let d = (e.lattice.as_ref().unwrap().draw)(&mut rng);
            assert!(
                d.label.starts_with(e.keyword),
                "{}: label {} does not start with {}",
                e.name,
                d.label,
                e.keyword
            );
        }
    }
}
