//! # mlv-layout
//!
//! The paper's primary contribution (Yeh, Varvarigos & Parhami,
//! *Multilayer VLSI Layout for Interconnection Networks*, ICPP 2000):
//! the **orthogonal multilayer layout scheme** and the **recursive grid
//! layout scheme**, together with per-family layout generators for every
//! network the paper treats.
//!
//! ## Pipeline
//!
//! 1. An [`spec::OrthogonalSpec`] describes a 2-D *orthogonal layout*
//!    abstractly: nodes on a rows×cols grid, **row wires** (links between
//!    nodes of one row, in that row's horizontal track bundle), **col
//!    wires** (links within a column, in that column's vertical bundle),
//!    and **jog wires** (links whose endpoints share neither row nor
//!    column — they take one vertical track plus one horizontal track,
//!    as in the recursive grid scheme's block-to-node splicing).
//! 2. [`product`] builds specs for Cartesian products from two collinear
//!    layouts — rows realize the first factor, columns the second
//!    (paper §3.1/§3.2).
//! 3. [`pncluster`] builds specs for PN clusters by *flattening*: each
//!    quotient node expands into a run of member columns carrying the
//!    cluster's own collinear layout, with inter-cluster links attached
//!    to their member nodes (paper §2.3/§3.2).
//! 4. [`mod@realize`] turns a spec plus a layer count `L` into a concrete
//!    [`mlv_grid::Layout`]: tracks are split round-robin into `⌊L/2⌋`
//!    groups, group `g`'s x-runs go to layer `2g` and its y-runs to
//!    layer `2g+1` (the paper's odd/even layer assignment), terminals
//!    are ordered so that touching same-track wires never collide, and
//!    the result passes the full `mlv-grid` legality checker.
//! 5. [`families`] wires it all together, one constructor per network
//!    family, each returning the reference graph and a checker-clean
//!    layout.
//!
//! [`baseline`] adds the comparison points of §2.2: the Thompson layout
//! (this scheme at `L = 2`) and the folded / multilayer-collinear
//! estimates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod arena;
pub mod baseline;
pub mod engine;
pub mod families;
pub mod passes;
pub mod pncluster;
pub mod product;
pub mod realize;
pub mod realize3d;
pub mod registry;
pub mod scheme;
pub mod spec;
pub mod tiled;

pub use realize::{realize, realize_fresh, recycle, RealizeOptions};
pub use spec::{ColWire, JogWire, OrthogonalSpec, RowWire};
pub use tiled::{realize_tiled, realize_tiled_3d, TileInstance, TileShape, TiledLayout};
