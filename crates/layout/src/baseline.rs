//! The paper's model comparison (§1 claims 1–4, §2.2): direct
//! multilayer redesign vs. the two ways of consuming `L` layers without
//! redesign — folding a Thompson layout, and the multilayer collinear
//! layout.

use crate::realize::{realize, RealizeOptions};
use crate::spec::OrthogonalSpec;
use mlv_grid::fold::FoldedEstimate;
use mlv_grid::metrics::LayoutMetrics;

/// Side-by-side metrics of the three models for one network spec.
#[derive(Clone, Debug)]
pub struct ModelComparison {
    /// Layer budget compared at.
    pub layers: usize,
    /// The 2-layer (Thompson) layout's metrics — the shared starting
    /// point.
    pub thompson: LayoutMetrics,
    /// The direct L-layer redesign (the paper's scheme).
    pub direct: LayoutMetrics,
    /// The folded-Thompson baseline (analytic, §2.2).
    pub folded: FoldedEstimate,
}

impl ModelComparison {
    /// Area gain of the direct redesign over Thompson (paper: ≈ L²/4).
    pub fn direct_area_gain(&self) -> f64 {
        self.thompson.area as f64 / self.direct.area as f64
    }

    /// Area gain of folding over Thompson (paper: ≈ L/2).
    pub fn folded_area_gain(&self) -> f64 {
        self.thompson.area as f64 / self.folded.area as f64
    }

    /// Volume gain of the direct redesign (paper: ≈ L/2).
    pub fn direct_volume_gain(&self) -> f64 {
        self.thompson.volume as f64 / self.direct.volume as f64
    }

    /// Volume gain of folding (paper: ≈ 1, i.e. none).
    pub fn folded_volume_gain(&self) -> f64 {
        self.thompson.volume as f64 / self.folded.volume as f64
    }

    /// Max-wire gain of the direct redesign (paper: ≈ L/2).
    pub fn direct_wire_gain(&self) -> f64 {
        self.thompson.max_wire_planar as f64 / self.direct.max_wire_planar as f64
    }

    /// Max-wire gain of folding (paper: ≈ 1).
    pub fn folded_wire_gain(&self) -> f64 {
        self.thompson.max_wire_full as f64 / self.folded.max_wire as f64
    }
}

/// Realize a spec at `L = 2` (Thompson) and at `layers`, and fold the
/// 2-layer metrics analytically onto `layers` layers.
pub fn compare_models(spec: &OrthogonalSpec, layers: usize) -> ModelComparison {
    assert!(layers >= 2 && layers.is_multiple_of(2), "compare at even L");
    let thompson = LayoutMetrics::of(&realize(spec, &RealizeOptions::with_layers(2)));
    let direct = LayoutMetrics::of(&realize(spec, &RealizeOptions::with_layers(layers)));
    let folded = FoldedEstimate::from_two_layer(&thompson, layers);
    ModelComparison {
        layers,
        thompson,
        direct,
        folded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::{product_spec, standard_product_id};
    use mlv_collinear::complete::complete_collinear;

    /// K20 x K20 — a track-dominated spec (100 tracks per bundle vs
    /// node side 21), where the multilayer gains are visible at small N.
    fn ghc_spec(r: usize) -> OrthogonalSpec {
        let f = complete_collinear(r);
        product_spec(format!("K{r}xK{r}"), &f, &f, standard_product_id(r))
    }

    #[test]
    fn direct_beats_folded_on_area() {
        let cmp = compare_models(&ghc_spec(20), 8);
        assert!(
            cmp.direct_area_gain() > cmp.folded_area_gain(),
            "direct {} vs folded {}",
            cmp.direct_area_gain(),
            cmp.folded_area_gain()
        );
    }

    #[test]
    fn folded_volume_unchanged_direct_improves() {
        let cmp = compare_models(&ghc_spec(20), 8);
        // folding: volume gain ~ 1 (slightly < 1 with crease overhead)
        assert!(cmp.folded_volume_gain() <= 1.05);
        // direct: volume strictly improves
        assert!(
            cmp.direct_volume_gain() > 1.3,
            "{}",
            cmp.direct_volume_gain()
        );
    }

    #[test]
    fn direct_wire_gain_positive_folded_flat() {
        let cmp = compare_models(&ghc_spec(16), 8);
        assert!(cmp.direct_wire_gain() > 1.3, "{}", cmp.direct_wire_gain());
        assert!(cmp.folded_wire_gain() <= 1.0 + 1e-9);
    }

    #[test]
    fn l2_comparison_degenerates() {
        let cmp = compare_models(&ghc_spec(8), 2);
        assert!((cmp.direct_area_gain() - 1.0).abs() < 1e-9);
        assert!((cmp.folded_area_gain() - 1.0).abs() < 1e-9);
    }
}
