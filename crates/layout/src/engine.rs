//! The parallel batch-realization engine: many `(family, params, L)`
//! jobs in, per-job results out, with a content-keyed memo cache in
//! the middle.
//!
//! The paper's multilayer scheme makes a single realization cheap
//! (tens of microseconds — see `BENCH_layout.json`), so sweep-shaped
//! workloads — the `(family, params, L)` grids the paper's evaluation
//! implies — are dominated by orchestration. The engine is that
//! orchestration layer, spelled once:
//!
//! * **Fan-out** — jobs are realized on `mlv_core::exec`'s
//!   scoped-thread executor (`MLV_THREADS`-aware), one leader per
//!   distinct spec; results come back **in job order** regardless of
//!   thread count.
//! * **Memoization** — each job is keyed by an FNV-1a digest of its
//!   canonical spec content plus the layer budget
//!   ([`mlv_grid::hasher::fnv1a`]). Repeated specs — common in sweeps,
//!   because folded/direct baselines and re-drawn lattice cases share
//!   sub-specs — are realized once; hit/miss/eviction counters are
//!   surfaced in every [`BatchReport`]. Classification happens
//!   *sequentially in job order before* the parallel fan-out, so the
//!   counters (and the `cached` flag on every result) are identical
//!   for every thread count.
//! * **Results** — each [`JobResult`] carries the layout's FNV content
//!   digest (over the canonical `mlv_grid::io` serialization, the same
//!   digest discipline the conformance harness applies to its lattice
//!   labels), full [`LayoutMetrics`], the legality-check status, and
//!   per-pass wall-clock timing from the placement → tracks → layers →
//!   emit pipeline.
//!
//! `mlv sweep` exposes the engine on the command line; the
//! `bench_layout` micro-bench and the conformance case runner drive
//! their realizations through it too, so the workspace has one
//! concurrency path for batch realization instead of three.

use crate::arena::{self, Scratch, ScratchPool};
use crate::families::Family;
use crate::passes::PassTimings;
use crate::realize::{realize_timed_with, RealizeOptions};
use crate::registry;
use mlv_core::exec;
use mlv_core::rng::{Rng, SplitMix64};
use mlv_grid::checker;
use mlv_grid::hasher::{fnv1a, fnv1a_u64, FNV_BASIS};
use mlv_grid::io::json_escape;
use mlv_grid::layout::Layout;
use mlv_grid::metrics::{LayoutMetrics, PhysicalMetrics};
use mlv_grid::pdk::Pdk;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// One realization request: a family instance at a layer budget.
#[derive(Clone, Debug)]
pub struct Job {
    /// Human-readable `family:params L=<layers>` label for reports.
    pub label: String,
    /// The graph + orthogonal spec to realize.
    pub family: Family,
    /// Layer budget `L ≥ 2`.
    pub layers: usize,
    /// Technology stack to realize onto. `None` — and any stack with
    /// [`Pdk::is_uniform`] — is the paper's unit grid: the memo key,
    /// report lines, and realized geometry are all byte-identical to a
    /// PDK-free job.
    pub pdk: Option<Pdk>,
}

impl Job {
    /// Build a job, deriving the conventional `<label> L=<layers>`
    /// report label from a bare family label.
    pub fn new(label: impl AsRef<str>, family: Family, layers: usize) -> Self {
        Job {
            label: format!("{} L={layers}", label.as_ref()),
            family,
            layers,
            pdk: None,
        }
    }

    /// [`Job::new`] targeting a technology stack.
    pub fn with_pdk(label: impl AsRef<str>, family: Family, layers: usize, pdk: Pdk) -> Self {
        Job {
            pdk: Some(pdk),
            ..Job::new(label, family, layers)
        }
    }

    /// The job's stack when it actually deviates from the uniform
    /// grid; `None` for both `pdk: None` and explicit uniform stacks.
    fn effective_pdk(&self) -> Option<&Pdk> {
        self.pdk.as_ref().filter(|p| !p.is_uniform())
    }
}

/// Legality-check outcome of one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckStatus {
    /// Checking was not requested ([`EngineOptions::check`] = false).
    Skipped,
    /// The full checker passed against the job's reference graph.
    Legal,
    /// The checker found errors; the summary holds the first few,
    /// `Debug`-formatted.
    Illegal(String),
}

impl CheckStatus {
    /// `Some(true)`/`Some(false)` when the check ran, `None` otherwise
    /// (maps onto the reports' `"checked"` JSON field).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            CheckStatus::Skipped => None,
            CheckStatus::Legal => Some(true),
            CheckStatus::Illegal(_) => Some(false),
        }
    }
}

/// What one realization produced — shared (via `Arc`) by every job
/// that hit the same memo key.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// FNV-1a digest of the canonical text serialization of the
    /// layout — two jobs printing the same digest realized
    /// byte-identical layouts.
    pub digest: u64,
    /// Full metrics of the realized layout.
    pub metrics: LayoutMetrics,
    /// Legality-check status.
    pub check: CheckStatus,
    /// Per-pass wall-clock timing of the (single) realization.
    pub timing: PassTimings,
    /// Physical (pitch/via-weighted) metrics — present only for jobs
    /// realized onto a non-uniform stack.
    pub physical: Option<PhysicalMetrics>,
    /// Why physical metrics are absent on a non-uniform stack job:
    /// the checked pitch arithmetic overflowed (adversarial stack).
    /// The job itself still succeeds — geometry and grid metrics are
    /// PDK-independent.
    pub phys_error: Option<String>,
    /// The layout itself, kept only when
    /// [`EngineOptions::keep_layouts`] is set.
    pub layout: Option<Layout>,
}

/// One entry of a [`BatchReport`], in job order.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The job's label, echoed.
    pub label: String,
    /// The job's layer budget, echoed.
    pub layers: usize,
    /// `true` when this job reused a memoized realization (an earlier
    /// job in the batch, or a previous batch on the same engine).
    /// Deterministic: classification walks jobs in order before the
    /// parallel fan-out.
    pub cached: bool,
    /// The (possibly shared) realization outcome.
    pub outcome: Arc<JobOutcome>,
}

impl JobResult {
    /// One deterministic JSON line for this result — the `mlv sweep`
    /// report format. Contains only thread-count-independent fields
    /// (no wall-clock timing), so sweep output is byte-identical for
    /// any `MLV_THREADS`. PDK fields appear only for non-uniform
    /// stacks, keeping uniform sweep output byte-identical to the
    /// PDK-free format.
    pub fn json_line(&self) -> String {
        let o = &self.outcome;
        let m = &o.metrics;
        let mut line = format!(
            "{{\"label\":\"{}\",\"layers\":{},\"digest\":\"{:016x}\",\"cached\":{},\
             \"area\":{},\"volume\":{},\"max_wire_planar\":{},\"max_wire_full\":{},\
             \"total_wire\":{},\"wires\":{},\"vias\":{},\"checked\":{}",
            json_escape(&self.label),
            self.layers,
            o.digest,
            self.cached,
            m.area,
            m.volume,
            m.max_wire_planar,
            m.max_wire_full,
            m.total_wire,
            m.wire_count,
            m.via_count,
            match o.check.as_bool() {
                Some(b) => b.to_string(),
                None => "null".into(),
            },
        );
        if let Some(p) = &o.physical {
            line.push_str(&format!(
                ",\"pdk\":\"{}\",\"phys_area\":{},\"phys_wirelength\":{},\
                 \"phys_max_wire\":{},\"phys_via_cost\":{}",
                json_escape(&p.pdk),
                p.area,
                p.wirelength,
                p.max_wire,
                p.via_cost,
            ));
        }
        if let Some(e) = &o.phys_error {
            line.push_str(&format!(",\"phys_error\":\"{}\"", json_escape(e)));
        }
        line.push('}');
        line
    }
}

/// Memo-cache counters (cumulative over an [`Engine`]'s lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Jobs served from the cache (including duplicates within one
    /// batch, which are realized once).
    pub hits: u64,
    /// Jobs that required a fresh realization.
    pub misses: u64,
    /// Entries dropped to respect [`EngineOptions::cache_capacity`].
    pub evictions: u64,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Run the full legality checker (with the job's reference graph)
    /// on every fresh realization.
    pub check: bool,
    /// Keep the realized [`Layout`] in each outcome (costs memory;
    /// needed by callers that post-process layouts, e.g. the
    /// conformance harness's injection stage).
    pub keep_layouts: bool,
    /// Maximum memoized realizations; the oldest entry is evicted
    /// first (insertion order).
    pub cache_capacity: usize,
    /// Recycle pass scratch (and discarded layouts' buffers) across
    /// jobs through the engine's pool. Defaults to on unless the
    /// `MLV_FRESH_ALLOC` debug mode is requested; results are
    /// byte-identical either way.
    pub reuse_scratch: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            check: true,
            keep_layouts: false,
            cache_capacity: 1024,
            reuse_scratch: !arena::fresh_alloc_requested(),
        }
    }
}

/// Outcome of one [`Engine::run`] call.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job results, in job order.
    pub results: Vec<JobResult>,
    /// Cache counters for this batch alone.
    pub cache: CacheStats,
}

/// The batch-realization engine: a memo cache plus the fan-out logic.
/// Reuse one engine across batches to share the cache; drop it to
/// forget everything.
pub struct Engine {
    opts: EngineOptions,
    map: HashMap<u64, Arc<JobOutcome>>,
    order: VecDeque<u64>,
    stats: CacheStats,
    pool: ScratchPool,
}

impl Engine {
    /// A fresh engine with the given options.
    pub fn new(opts: EngineOptions) -> Self {
        Engine {
            opts,
            map: HashMap::new(),
            order: VecDeque::new(),
            stats: CacheStats::default(),
            pool: ScratchPool::default(),
        }
    }

    /// Cumulative cache counters across every batch run so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries currently memoized (bounded by
    /// [`EngineOptions::cache_capacity`] — `mlv serve`'s soak test pins
    /// that this never exceeds the configured capacity).
    pub fn cache_len(&self) -> usize {
        self.map.len()
    }

    /// Realize a single job — the request/response entry point `mlv
    /// serve` dispatches through. Identical semantics to a one-job
    /// [`Engine::run`] batch (same memo key, same cache counters, same
    /// trace spans), returned unwrapped.
    pub fn run_one(&mut self, job: &Job) -> JobResult {
        self.run(std::slice::from_ref(job))
            .results
            .pop()
            .expect("one job in, one result out")
    }

    /// Realize a batch of jobs. Results come back in job order and are
    /// byte-identical for every thread count: duplicate detection and
    /// the cache counters are computed sequentially in job order, and
    /// only the per-leader realizations fan out over
    /// [`mlv_core::exec`].
    pub fn run(&mut self, jobs: &[Job]) -> BatchReport {
        let _batch = mlv_core::span!("engine.batch");
        let before = self.stats;
        let keys: Vec<u64> = {
            let _s = mlv_core::span!("engine.classify");
            exec::par_map(jobs, |_, j| job_key(j))
        };

        // sequential classification: first occurrence of a new key
        // leads, everything else follows (deterministic counters)
        enum Source {
            Cached(Arc<JobOutcome>),
            Leader(usize),   // index into `leaders`
            Follower(usize), // index into `leaders`
        }
        let mut leaders: Vec<usize> = Vec::new();
        let mut batch_first: HashMap<u64, usize> = HashMap::new();
        let mut sources: Vec<Source> = Vec::with_capacity(jobs.len());
        for (i, key) in keys.iter().enumerate() {
            if let Some(hit) = self.map.get(key) {
                self.stats.hits += 1;
                sources.push(Source::Cached(Arc::clone(hit)));
            } else if let Some(&li) = batch_first.get(key) {
                self.stats.hits += 1;
                sources.push(Source::Follower(li));
            } else {
                self.stats.misses += 1;
                batch_first.insert(*key, leaders.len());
                sources.push(Source::Leader(leaders.len()));
                leaders.push(i);
            }
        }
        mlv_core::counter!("engine.cache.hit", self.stats.hits - before.hits);
        mlv_core::counter!("engine.cache.miss", self.stats.misses - before.misses);

        // parallel fan-out over the distinct specs only; each leader
        // records its queue-to-start latency (enqueue = batch entry)
        let lead_jobs: Vec<&Job> = leaders.iter().map(|&i| &jobs[i]).collect();
        let opts = &self.opts;
        let pool = &self.pool;
        let queued = std::time::Instant::now();
        let outcomes: Vec<Arc<JobOutcome>> = exec::par_map(&lead_jobs, |_, j| {
            mlv_core::histogram!(
                "engine.job.queue_ns",
                queued.elapsed().as_nanos().min(u64::MAX as u128) as u64
            );
            Arc::new(compute(j, opts, pool))
        });

        // memoize in leader order (deterministic eviction)
        for (&i, outcome) in leaders.iter().zip(&outcomes) {
            self.insert(keys[i], Arc::clone(outcome));
        }
        mlv_core::counter!(
            "engine.cache.eviction",
            self.stats.evictions - before.evictions
        );

        let results = jobs
            .iter()
            .zip(&sources)
            .map(|(job, source)| {
                let (cached, outcome) = match source {
                    Source::Cached(o) => (true, Arc::clone(o)),
                    Source::Follower(li) => (true, Arc::clone(&outcomes[*li])),
                    Source::Leader(li) => (false, Arc::clone(&outcomes[*li])),
                };
                JobResult {
                    label: job.label.clone(),
                    layers: job.layers,
                    cached,
                    outcome,
                }
            })
            .collect();
        BatchReport {
            results,
            cache: CacheStats {
                hits: self.stats.hits - before.hits,
                misses: self.stats.misses - before.misses,
                evictions: self.stats.evictions - before.evictions,
            },
        }
    }

    fn insert(&mut self, key: u64, outcome: Arc<JobOutcome>) {
        while self.map.len() >= self.opts.cache_capacity.max(1) {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            self.map.remove(&old);
            self.stats.evictions += 1;
        }
        if self.map.insert(key, outcome).is_none() {
            self.order.push_back(key);
        }
    }
}

/// One fresh realization: timed pipeline, metrics, content digest, and
/// (when requested) the full legality check.
///
/// The pass scratch is checked out of the pool *by value* and only
/// returned after the whole job succeeds — a panicking realization
/// drops its scratch instead of recycling it, so reuse is panic-safe.
fn compute(job: &Job, opts: &EngineOptions, pool: &ScratchPool) -> JobOutcome {
    let _job = mlv_core::span!("engine.job");
    let mut scratch = if opts.reuse_scratch {
        pool.take()
    } else {
        Scratch::new()
    };
    let pdk = job.effective_pdk();
    let mut ropts = RealizeOptions::with_layers(job.layers);
    ropts.pdk = pdk.cloned();
    let (layout, timing) = realize_timed_with(&job.family.spec, &ropts, &mut scratch);
    let metrics = LayoutMetrics::of(&layout);
    let (physical, phys_error) = match pdk.map(|p| PhysicalMetrics::of(&layout, p)) {
        None => (None, None),
        Some(Ok(ph)) => (Some(ph), None),
        Some(Err(e)) => (None, Some(e)),
    };
    mlv_grid::io::write_layout_into(&layout, &mut scratch.io_buf);
    let digest = fnv1a(FNV_BASIS, scratch.io_buf.as_bytes());
    mlv_core::histogram!("engine.job.wires", metrics.wire_count as u64);
    mlv_core::histogram!("engine.job.area", metrics.area);
    let check = if opts.check {
        let r = match pdk {
            Some(p) => checker::check_with_pdk(&layout, Some(&job.family.graph), p),
            None => checker::check(&layout, Some(&job.family.graph)),
        };
        if r.is_legal() {
            CheckStatus::Legal
        } else {
            CheckStatus::Illegal(format!("{:?}", &r.errors[..r.errors.len().min(2)]))
        }
    } else {
        CheckStatus::Skipped
    };
    let layout = if opts.keep_layouts {
        Some(layout)
    } else {
        scratch.recycle_layout(layout);
        None
    };
    if opts.reuse_scratch {
        pool.put(scratch);
    }
    JobOutcome {
        digest,
        metrics,
        check,
        timing,
        physical,
        phys_error,
        layout,
    }
}

/// FNV-1a content digest of a layout: over the canonical `mlv_grid::io`
/// text serialization, so equal digests mean byte-identical layouts
/// under the documented round-trip guarantee.
pub fn layout_digest(layout: &Layout) -> u64 {
    fnv1a(FNV_BASIS, mlv_grid::io::write_layout(layout).as_bytes())
}

/// Memo key of one job: FNV-1a over the canonical spec content
/// (name, grid shape, node arrangement, every wire) plus the layer
/// budget. Field values are digested as little-endian `u64`s with
/// per-section tags, so e.g. a row wire can never collide with a
/// col wire of the same coordinates.
fn job_key(job: &Job) -> u64 {
    let spec = &job.family.spec;
    let mut h = fnv1a(FNV_BASIS, spec.name.as_bytes());
    h = fnv1a_u64(h, 0xA0);
    h = fnv1a_u64(h, spec.rows as u64);
    h = fnv1a_u64(h, spec.cols as u64);
    h = fnv1a_u64(h, 0xA1);
    for &n in &spec.node_at {
        h = fnv1a_u64(h, n as u64);
    }
    h = fnv1a_u64(h, 0xA2);
    for w in &spec.row_wires {
        h = fnv1a_u64(h, w.row as u64);
        h = fnv1a_u64(h, w.lo as u64);
        h = fnv1a_u64(h, w.hi as u64);
        h = fnv1a_u64(h, w.track as u64);
    }
    h = fnv1a_u64(h, 0xA3);
    for w in &spec.col_wires {
        h = fnv1a_u64(h, w.col as u64);
        h = fnv1a_u64(h, w.lo as u64);
        h = fnv1a_u64(h, w.hi as u64);
        h = fnv1a_u64(h, w.track as u64);
    }
    h = fnv1a_u64(h, 0xA4);
    for w in &spec.jog_wires {
        h = fnv1a_u64(h, w.a.0 as u64);
        h = fnv1a_u64(h, w.a.1 as u64);
        h = fnv1a_u64(h, w.b.0 as u64);
        h = fnv1a_u64(h, w.b.1 as u64);
    }
    h = fnv1a_u64(h, 0xA5);
    h = fnv1a_u64(h, job.layers as u64);
    // the uniform stack folds nothing: a uniform-PDK job must share its
    // memo entry (and digest) with the PDK-free job it is identical to
    if let Some(p) = job.effective_pdk() {
        h = fnv1a_u64(h, 0xA6);
        // every variable-length name is length-prefixed: without the
        // prefixes, name bytes from adjacent fields concatenate, so
        // pdk "ab" + layer "c" would alias pdk "a" + layer "bc"
        h = fnv1a_u64(h, p.name.len() as u64);
        h = fnv1a(h, p.name.as_bytes());
        h = fnv1a_u64(h, p.layers.len() as u64);
        for l in &p.layers {
            h = fnv1a_u64(h, l.name.len() as u64);
            h = fnv1a(h, l.name.as_bytes());
            h = fnv1a_u64(h, l.dir as u64);
            h = fnv1a_u64(h, l.pitch);
            h = fnv1a_u64(h, l.via_cost);
        }
    }
    h
}

/// Stable per-family sub-seed: master seed mixed with an FNV-1a hash
/// of the family name through SplitMix64, so adding families or
/// reordering a sweep never perturbs another family's draws. (The
/// conformance harness re-exports this — both walk identical
/// lattices.)
pub fn family_seed(master: u64, family: &str) -> u64 {
    SplitMix64(master ^ fnv1a(FNV_BASIS, family.as_bytes())).next_u64()
}

/// Enumerate the full registry lattice as engine jobs: for every
/// lattice-bearing family, `cases_per_family` seeded draws from its
/// parameter pool, each at a layer budget drawn from
/// [`registry::LAYER_POOL`] **plus** its 2-layer Thompson baseline —
/// the same `(family, params, L)` grid (same RNG discipline, same
/// labels) the conformance harness evaluates, which is exactly what
/// makes the memo cache pay: small pools re-draw the same parameters,
/// and every case shares the Thompson point of its spec.
pub fn lattice_jobs(seed: u64, cases_per_family: usize) -> Vec<Job> {
    lattice_jobs_with_pdk(seed, cases_per_family, None)
}

/// [`lattice_jobs`] with every job targeting a technology stack. The
/// RNG discipline and labels are identical to the PDK-free lattice —
/// only the jobs' `pdk` field differs — so `None` (or a uniform
/// stack) reproduces [`lattice_jobs`] exactly.
pub fn lattice_jobs_with_pdk(seed: u64, cases_per_family: usize, pdk: Option<&Pdk>) -> Vec<Job> {
    let mut jobs = Vec::new();
    for entry in registry::REGISTRY {
        let Some(lattice) = &entry.lattice else {
            continue;
        };
        let mut rng = Rng::seed_from_u64(family_seed(seed, entry.name));
        let sub_seeds: Vec<u64> = (0..cases_per_family).map(|_| rng.next_u64()).collect();
        for s in sub_seeds {
            let mut rng = Rng::seed_from_u64(s);
            let layers = registry::LAYER_POOL[rng.gen_range_usize(0..registry::LAYER_POOL.len())];
            let draw = (lattice.draw)(&mut rng);
            let mut a = Job::new(&draw.label, draw.family.clone(), layers);
            let mut b = Job::new(&draw.label, draw.family, 2);
            a.pdk = pdk.cloned();
            b.pdk = pdk.cloned();
            jobs.push(a);
            jobs.push(b);
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    fn job(n: usize, layers: usize) -> Job {
        Job::new(format!("hypercube:{n}"), families::hypercube(n), layers)
    }

    #[test]
    fn batch_results_in_job_order_with_dedup() {
        let jobs = vec![job(3, 2), job(4, 4), job(3, 2), job(4, 2)];
        let mut engine = Engine::new(EngineOptions::default());
        let report = engine.run(&jobs);
        assert_eq!(report.results.len(), 4);
        assert_eq!(report.cache.misses, 3, "three distinct (spec, L) pairs");
        assert_eq!(report.cache.hits, 1, "the repeated job hits");
        let r = &report.results;
        assert_eq!(r[0].label, "hypercube:3 L=2");
        assert!(!r[0].cached && !r[1].cached && r[2].cached && !r[3].cached);
        // the duplicate shares the leader's outcome verbatim
        assert_eq!(r[0].outcome.digest, r[2].outcome.digest);
        assert!(Arc::ptr_eq(&r[0].outcome, &r[2].outcome));
        // distinct (spec, L) pairs produce distinct layouts
        assert_ne!(r[0].outcome.digest, r[1].outcome.digest);
        assert_ne!(r[1].outcome.digest, r[3].outcome.digest);
        for res in r {
            assert_eq!(res.outcome.check, CheckStatus::Legal);
            assert!(res.outcome.metrics.area > 0);
        }
        // every fresh realization carries pass timing
        assert!(r[0].outcome.timing.total_ns() > 0);
    }

    #[test]
    fn cache_persists_across_batches() {
        let mut engine = Engine::new(EngineOptions::default());
        let first = engine.run(&[job(3, 2)]);
        assert_eq!((first.cache.hits, first.cache.misses), (0, 1));
        let second = engine.run(&[job(3, 2), job(3, 4)]);
        assert_eq!((second.cache.hits, second.cache.misses), (1, 1));
        assert_eq!(engine.stats().hits, 1);
        assert_eq!(engine.stats().misses, 2);
        assert!(second.results[0].cached);
        assert_eq!(
            first.results[0].outcome.digest,
            second.results[0].outcome.digest
        );
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        let mut engine = Engine::new(EngineOptions {
            cache_capacity: 2,
            ..EngineOptions::default()
        });
        engine.run(&[job(3, 2), job(3, 4), job(4, 2)]); // 3 -> evicts first
        assert_eq!(engine.stats().evictions, 1);
        // the oldest (3, 2) was evicted: running it again misses...
        let again = engine.run(&[job(3, 2)]);
        assert_eq!(again.cache.misses, 1);
        // ...while the newest (4, 2) is still resident
        let newest = engine.run(&[job(4, 2)]);
        assert_eq!(newest.cache.hits, 1);
    }

    #[test]
    fn capacity_zero_behaves_as_single_slot() {
        // capacity 0 is clamped to one resident entry: the cache never
        // grows past 1, every insert evicts the previous resident, and
        // same-key reuse within a batch still dedups (batch-local
        // follower detection is upstream of the cache).
        let mut engine = Engine::new(EngineOptions {
            cache_capacity: 0,
            ..EngineOptions::default()
        });
        let first = engine.run(&[job(3, 2), job(3, 2), job(4, 2)]);
        assert_eq!((first.cache.hits, first.cache.misses), (1, 2));
        assert_eq!(first.cache.evictions, 1, "second leader evicts the first");
        // only (4, 2) — the last insert — survives
        let probe = engine.run(&[job(4, 2), job(3, 2)]);
        assert_eq!((probe.cache.hits, probe.cache.misses), (1, 1));
    }

    #[test]
    fn capacity_one_fifo_eviction_order() {
        let mut engine = Engine::new(EngineOptions {
            cache_capacity: 1,
            ..EngineOptions::default()
        });
        engine.run(&[job(3, 2)]);
        assert_eq!(engine.stats().evictions, 0, "first insert fits");
        engine.run(&[job(3, 4)]);
        assert_eq!(engine.stats().evictions, 1, "second key displaces first");
        // re-running the displaced key misses and displaces in turn
        let displaced = engine.run(&[job(3, 2)]);
        assert_eq!(displaced.cache.misses, 1);
        assert_eq!(engine.stats().evictions, 2);
        // the current resident hits without evicting
        let resident = engine.run(&[job(3, 2)]);
        assert_eq!((resident.cache.hits, resident.cache.evictions), (1, 0));
        assert_eq!(engine.stats().evictions, 2);
    }

    #[test]
    fn lattice_counters_reconcile() {
        // over a seeded lattice batch the counters must account for
        // every job: each is either a hit or a miss, and evictions can
        // never exceed inserts (= misses)
        for capacity in [0, 1, 3, 1024] {
            let jobs = lattice_jobs(2000, 2);
            let mut engine = Engine::new(EngineOptions {
                cache_capacity: capacity,
                ..EngineOptions::default()
            });
            let trace = mlv_core::trace::Trace::new();
            let report = trace.collect(|| engine.run(&jobs));
            let c = &report.cache;
            assert_eq!(
                c.hits + c.misses,
                jobs.len() as u64,
                "capacity {capacity}: every job is a hit or a miss"
            );
            assert!(
                c.evictions <= c.misses,
                "capacity {capacity}: evictions {} > misses {}",
                c.evictions,
                c.misses
            );
            // the trace counters mirror the batch report exactly
            let agg = trace.aggregate();
            assert_eq!(agg.counter("engine.cache.hit"), c.hits);
            assert_eq!(agg.counter("engine.cache.miss"), c.misses);
            assert_eq!(agg.counter("engine.cache.eviction"), c.evictions);
            // one engine.job span per leader, one queue-latency sample each
            let jobs_run = agg.span("engine.job").expect("engine.job span").count;
            assert_eq!(jobs_run, c.misses);
            let queue = &agg.histograms["engine.job.queue_ns"];
            assert_eq!(queue.count, c.misses);
        }
    }

    #[test]
    fn trace_digest_identical_across_thread_counts() {
        // the aggregate trace of a lattice batch — span counts, cache
        // counters, value histograms — is byte-identical for any
        // MLV_THREADS; 13 families x 3 cases x 2 = 78 jobs, above
        // exec's inline threshold, so the 8-thread run really fans out
        let jobs = lattice_jobs(2000, 3);
        assert!(jobs.len() > 64, "need enough jobs to exercise fan-out");
        let run = |threads: usize| {
            exec::with_thread_count(threads, || {
                let mut engine = Engine::new(EngineOptions::default());
                let trace = mlv_core::trace::Trace::new();
                trace.collect(|| engine.run(&jobs));
                trace.aggregate()
            })
        };
        let seq = run(1);
        let par = run(8);
        assert_eq!(seq.deterministic_lines(), par.deterministic_lines());
        assert_eq!(seq.digest(), par.digest());
        // the deterministic view is not vacuous: it still carries the
        // pipeline spans and the non-timing histograms
        assert!(seq.span("pipeline").is_some());
        assert!(seq.histograms.contains_key("engine.job.wires"));
        assert!(!seq
            .deterministic_lines()
            .iter()
            .any(|l| l.contains("queue_ns")));
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let jobs = lattice_jobs(7, 2);
        let lines = |threads: usize| {
            exec::with_thread_count(threads, || {
                let mut engine = Engine::new(EngineOptions::default());
                let report = engine.run(&jobs);
                (
                    report
                        .results
                        .iter()
                        .map(JobResult::json_line)
                        .collect::<Vec<_>>(),
                    report.cache,
                )
            })
        };
        let (seq, seq_cache) = lines(1);
        let (par, par_cache) = lines(8);
        assert_eq!(seq, par);
        assert_eq!(seq_cache, par_cache, "cache counters must be deterministic");
        assert!(seq_cache.hits > 0, "lattice sweeps must exercise the cache");
    }

    #[test]
    fn lattice_jobs_are_deterministic_and_cover_every_family() {
        let a = lattice_jobs(2000, 2);
        let b = lattice_jobs(2000, 2);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 2 * 2 * registry::lattice_names().len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(job_key(x), job_key(y));
        }
        // every label ends with its layer suffix; thompson twin follows
        for pair in a.chunks(2) {
            assert!(pair[0].label.contains(" L="));
            assert!(pair[1].label.ends_with(" L=2"));
        }
        // a different master seed reaches the draws
        let c = lattice_jobs(2001, 2);
        assert_ne!(
            a.iter().map(|j| j.label.clone()).collect::<Vec<_>>(),
            c.iter().map(|j| j.label.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn job_key_separates_sections() {
        // a row wire and a col wire with identical coordinates must not
        // collide (the section tags keep encodings disjoint)
        use crate::spec::{ColWire, OrthogonalSpec, RowWire};
        let base = OrthogonalSpec::new("k", 2, 2);
        let mut with_row = base.clone();
        with_row.row_wires.push(RowWire {
            row: 0,
            lo: 0,
            hi: 1,
            track: 0,
        });
        let mut with_col = base.clone();
        with_col.col_wires.push(ColWire {
            col: 0,
            lo: 0,
            hi: 1,
            track: 0,
        });
        let graph = mlv_topology::hypercube::hypercube(2);
        let key = |spec: &OrthogonalSpec, layers: usize| {
            job_key(&Job {
                label: "x".into(),
                family: Family {
                    graph: graph.clone(),
                    spec: spec.clone(),
                },
                layers,
                pdk: None,
            })
        };
        assert_ne!(key(&with_row, 2), key(&with_col, 2));
        assert_ne!(key(&base, 2), key(&base, 4));
        assert_eq!(key(&base, 2), key(&base.clone(), 2));
    }

    fn stack(pdk_name: &str, layer_names: &[&str]) -> Pdk {
        use mlv_grid::pdk::{Dir, PdkLayer};
        Pdk {
            name: pdk_name.to_string(),
            layers: layer_names
                .iter()
                .map(|n| PdkLayer {
                    name: n.to_string(),
                    dir: Dir::Any,
                    pitch: 2, // non-uniform, so effective_pdk keeps it
                    via_cost: 1,
                })
                .collect(),
        }
    }

    #[test]
    fn memo_key_uniform_pdk_shares_pdk_free_entry() {
        // the uniform stack is behaviorally the unit grid: sharing the
        // memo entry with the PDK-free job is intentional
        let plain = job(3, 2);
        let mut uniform = job(3, 2);
        uniform.pdk = Some(Pdk::uniform(2));
        assert_eq!(job_key(&plain), job_key(&uniform));
        let mut engine = Engine::new(EngineOptions::default());
        let report = engine.run(&[plain, uniform]);
        assert!(report.results[1].cached, "uniform job must hit");
        assert!(Arc::ptr_eq(
            &report.results[0].outcome,
            &report.results[1].outcome
        ));
        assert!(report.results[1].outcome.physical.is_none());
    }

    #[test]
    fn memo_key_non_uniform_pdk_never_aliases_pdk_free() {
        let plain = job(3, 2);
        let mut hv = job(3, 2);
        hv.pdk = Some(Pdk::hv6());
        assert_ne!(job_key(&plain), job_key(&hv));
        let mut engine = Engine::new(EngineOptions::default());
        let report = engine.run(&[plain, hv]);
        assert!(!report.results[1].cached, "hv6 job must realize fresh");
        assert!(report.results[1].outcome.physical.is_some());
        assert!(report.results[0].outcome.physical.is_none());
    }

    #[test]
    fn memo_key_length_prefixes_defeat_name_aliasing() {
        // adversarial stacks whose name bytes concatenate identically:
        // without length prefixes in the key hash, all three serialized
        // to the byte stream "abc" + identical dir/pitch/via words and
        // shared one memo entry
        let stacks = [
            stack("ab", &["c"]),
            stack("a", &["bc"]),
            stack("abc", &[""]),
        ];
        let keys: Vec<u64> = stacks
            .iter()
            .map(|p| {
                let mut j = job(3, 2);
                j.pdk = Some(p.clone());
                job_key(&j)
            })
            .collect();
        for a in 0..keys.len() {
            for b in a + 1..keys.len() {
                assert_ne!(
                    keys[a], keys[b],
                    "stacks {:?} and {:?} alias",
                    stacks[a].name, stacks[b].name
                );
            }
        }
        // layer-boundary aliasing within one stack: same pdk name,
        // same concatenated layer-name bytes, different split
        let mut two_a = job(3, 2);
        two_a.pdk = Some(stack("p", &["ab", "c"]));
        let mut two_b = job(3, 2);
        two_b.pdk = Some(stack("p", &["a", "bc"]));
        assert_ne!(job_key(&two_a), job_key(&two_b));
        // and the engine really keeps them as distinct entries
        let mut engine = Engine::new(EngineOptions::default());
        let report = engine.run(&[two_a, two_b]);
        assert!(!report.results[0].cached);
        assert!(!report.results[1].cached, "aliased stacks shared an entry");
    }

    #[test]
    fn keep_layouts_retains_the_layout() {
        let mut engine = Engine::new(EngineOptions {
            keep_layouts: true,
            ..EngineOptions::default()
        });
        let report = engine.run(&[job(3, 2)]);
        let layout = report.results[0].outcome.layout.as_ref().unwrap();
        assert_eq!(layout_digest(layout), report.results[0].outcome.digest);
        // default: layouts are dropped
        let mut lean = Engine::new(EngineOptions::default());
        assert!(lean.run(&[job(3, 2)]).results[0].outcome.layout.is_none());
    }

    #[test]
    fn json_line_is_wellformed_and_label_escaped() {
        let mut engine = Engine::new(EngineOptions::default());
        let mut jobs = vec![job(3, 2)];
        jobs[0].label = "weird \"label\"\n\x7f".into();
        let line = engine.run(&jobs).results[0].json_line();
        // DEL is escaped too — the original private escaper only
        // covered codepoints < 0x20 and leaked \x7f raw into reports
        assert!(line.starts_with("{\"label\":\"weird \\\"label\\\"\\n\\u007f\""));
        assert!(line.contains("\"checked\":true"));
        assert!(!line.contains('\x7f'));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn check_off_reports_skipped() {
        let mut engine = Engine::new(EngineOptions {
            check: false,
            ..EngineOptions::default()
        });
        let report = engine.run(&[job(3, 2)]);
        assert_eq!(report.results[0].outcome.check, CheckStatus::Skipped);
        assert!(report.results[0].json_line().contains("\"checked\":null"));
    }

    #[test]
    fn family_seed_stable_and_distinct() {
        assert_eq!(family_seed(7, "hypercube"), family_seed(7, "hypercube"));
        assert_ne!(family_seed(7, "hypercube"), family_seed(8, "hypercube"));
        assert_ne!(family_seed(7, "hypercube"), family_seed(7, "ccc"));
    }
}
