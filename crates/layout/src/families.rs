//! Per-family layout constructors — one for every network the paper
//! lays out. Each returns a [`Family`]: the reference graph and the
//! orthogonal spec, ready to realize at any layer count.
//!
//! | constructor | paper | construction |
//! |---|---|---|
//! | [`karyn_cube`] | §3.1 | product of two collinear k-ary half-cubes |
//! | [`hypercube`] | §5.1 | product of two `⌊2N/3⌋`-track half-cubes |
//! | [`genhyper`] | §4.1 | product of two collinear GHC halves |
//! | [`folded_hypercube`] | §5.3 | hypercube + diameter links |
//! | [`enhanced_cube`] | §5.3 | hypercube + random links |
//! | [`ccc`] / [`reduced_hypercube`] | §5.2 | hypercube PN cluster |
//! | [`butterfly`] | §4.2 | row-cluster quotient (GHC/hypercube) |
//! | [`hsn`] / [`hhn`] / [`isn`] | §4.3 | GHC quotient PN cluster |
//! | [`kary_cluster`] | §3.2 | k-ary n-cube PN cluster |
//! | [`generic`] + Cayley wrappers | §1/§4.3 | recursive grid fallback |

use crate::pncluster::{digit_split_arrangement, pn_cluster_spec};
use crate::product::{product_spec, standard_product_id};
use crate::realize::{realize, RealizeOptions};
use crate::scheme::{append_extra_links, grid_spec, near_square};
use crate::spec::OrthogonalSpec;
use mlv_collinear::folded::fold_outer_groups;
use mlv_collinear::genhyper::genhyper_collinear;
use mlv_collinear::hypercube::hypercube_collinear;
use mlv_collinear::karyn::kary_collinear;
use mlv_collinear::CollinearLayout;
use mlv_grid::layout::Layout;
use mlv_topology::labels::MixedRadix;
use mlv_topology::{Graph, NodeId};

/// A network family instance: ground-truth graph + orthogonal spec.
///
/// ```
/// use mlv_layout::families;
/// use mlv_grid::{checker, metrics::LayoutMetrics};
///
/// let fam = families::hypercube(5);
/// let layout = fam.realize(4); // 4 wiring layers
/// checker::assert_legal(&layout, Some(&fam.graph));
/// let m = LayoutMetrics::of(&layout);
/// assert!(m.area > 0 && m.volume == 4 * m.area);
/// ```
#[derive(Clone, Debug)]
pub struct Family {
    /// The reference network graph.
    pub graph: Graph,
    /// The orthogonal layout spec realizing exactly that graph.
    pub spec: OrthogonalSpec,
}

impl Family {
    /// Realize at `layers` wiring layers with default options.
    pub fn realize(&self, layers: usize) -> Layout {
        realize(&self.spec, &RealizeOptions::with_layers(layers))
    }

    /// Realize with explicit options (node-size scalability etc.).
    pub fn realize_with(&self, opts: &RealizeOptions) -> Layout {
        realize(&self.spec, opts)
    }
}

/// Split `n` digits into the paper's column half `⌊n/2⌋` (low digits)
/// and row half `⌈n/2⌉` (high digits).
fn halves(n: usize) -> (usize, usize) {
    (n / 2, n - n / 2)
}

/// §3.1 — k-ary n-cube. `fold` applies the paper's row/column folding
/// (shorter wires, slightly more tracks). `k = 2` delegates to the
/// hypercube construction (identical topology, better tracks).
pub fn karyn_cube(k: usize, n: usize, fold: bool) -> Family {
    assert!(k >= 2 && n >= 1);
    if k == 2 {
        return hypercube(n);
    }
    let (lo, hi) = halves(n);
    let make = |dims: usize| -> CollinearLayout {
        let base = kary_collinear(k, dims.max(1));
        if fold && dims >= 1 {
            fold_outer_groups(&base, k)
        } else {
            base
        }
    };
    let graph = mlv_topology::karyn::KaryNCube::torus(k, n).graph;
    let name = format!("{k}-ary {n}-cube{}", if fold { " (folded)" } else { "" });
    if lo == 0 {
        // single row: realize the 1-D collinear layout directly
        let row = make(hi);
        let spec = one_row_spec(name, &row);
        return Family { graph, spec };
    }
    let row = make(lo);
    let col = make(hi);
    let spec = product_spec(name, &row, &col, standard_product_id(k.pow(lo as u32)));
    Family { graph, spec }
}

/// §3.2 — k-ary n-mesh (the torus without wraparound links): the same
/// product construction over the 1-track-per-dimension mesh collinear
/// layouts.
pub fn karyn_mesh(k: usize, n: usize) -> Family {
    assert!(k >= 2 && n >= 1);
    use mlv_collinear::mesh::mesh_collinear;
    let (lo, hi) = halves(n);
    let graph = mlv_topology::karyn::KaryNCube::mesh(k, n).graph;
    let name = format!("{k}-ary {n}-mesh");
    if lo == 0 {
        let row = mesh_collinear(k, hi);
        let spec = one_row_spec(name, &row);
        return Family { graph, spec };
    }
    let row = mesh_collinear(k, lo);
    let col = mesh_collinear(k, hi);
    let spec = product_spec(name, &row, &col, standard_product_id(k.pow(lo as u32)));
    Family { graph, spec }
}

/// §5.1 with an explicit split point: the hypercube as the product of a
/// `lo`-cube (columns) and an `(n−lo)`-cube (rows). The paper's
/// `⌈n/2⌉/⌊n/2⌋` split is the area-optimal choice; other splits trade
/// aspect ratio for area (measured in the split ablation of
/// `table_hypercube`).
pub fn hypercube_with_split(n: usize, lo: usize) -> Family {
    assert!(n >= 1 && lo <= n);
    let graph = mlv_topology::hypercube::hypercube(n);
    let name = format!("{n}-cube split {lo}+{}", n - lo);
    if lo == 0 || lo == n {
        let row = hypercube_collinear(n);
        let spec = one_row_spec(name, &row);
        return Family { graph, spec };
    }
    let row = hypercube_collinear(lo);
    let col = hypercube_collinear(n - lo);
    let spec = product_spec(name, &row, &col, standard_product_id(1 << lo));
    Family { graph, spec }
}

/// §5.1 — binary hypercube via the `⌊2N/3⌋`-track halves.
pub fn hypercube(n: usize) -> Family {
    assert!(n >= 1);
    let (lo, hi) = halves(n);
    let graph = mlv_topology::hypercube::hypercube(n);
    let name = format!("{n}-cube");
    if lo == 0 {
        let row = hypercube_collinear(hi);
        let spec = one_row_spec(name, &row);
        return Family { graph, spec };
    }
    let row = hypercube_collinear(lo);
    let col = hypercube_collinear(hi);
    let spec = product_spec(name, &row, &col, standard_product_id(1 << lo));
    Family { graph, spec }
}

/// §4.1 — generalized hypercube with mixed radices (least significant
/// first); low digit half becomes the columns.
pub fn genhyper(radices: &[usize]) -> Family {
    assert!(!radices.is_empty());
    let half = radices.len() / 2;
    let graph = mlv_topology::genhyper::GeneralizedHypercube::new(radices.to_vec()).graph;
    let name = graph.name().to_string();
    if half == 0 {
        let row = genhyper_collinear(radices);
        let spec = one_row_spec(name, &row);
        return Family { graph, spec };
    }
    let row = genhyper_collinear(&radices[..half]);
    let col = genhyper_collinear(&radices[half..]);
    let a_count: usize = radices[..half].iter().product();
    let spec = product_spec(name, &row, &col, standard_product_id(a_count));
    Family { graph, spec }
}

/// §5.3 — folded hypercube: the hypercube layout plus `N/2` diameter
/// links (complement pairs), appended as extra tracks/jogs.
pub fn folded_hypercube(n: usize) -> Family {
    let base = hypercube(n);
    let graph = mlv_topology::variants::folded_hypercube(n);
    let mut spec = base.spec;
    spec.name = format!("folded {n}-cube");
    let nn = 1usize << n;
    let mask = (nn - 1) as NodeId;
    let links: Vec<(NodeId, NodeId)> = (0..nn as NodeId)
        .filter(|&u| u < (u ^ mask))
        .map(|u| (u, u ^ mask))
        .collect();
    append_extra_links(&mut spec, &links);
    Family { graph, spec }
}

/// §5.3 — enhanced cube: the hypercube layout plus `N` pseudo-random
/// extra links (same seed as the topology constructor).
pub fn enhanced_cube(n: usize, seed: u64) -> Family {
    let base = hypercube(n);
    let graph = mlv_topology::variants::enhanced_cube(n, seed);
    let mut spec = base.spec;
    spec.name = format!("enhanced {n}-cube");
    // the topology constructor emits all cube links first, then the N
    // random extras — recover them from the edge list
    let cube_edges = (n << n) >> 1;
    let links: Vec<(NodeId, NodeId)> = graph
        .edge_ids()
        .skip(cube_edges)
        .map(|e| graph.endpoints(e))
        .collect();
    assert_eq!(links.len(), 1 << n);
    append_extra_links(&mut spec, &links);
    Family { graph, spec }
}

/// §5.2 — cube-connected cycles as a hypercube PN cluster: clusters are
/// the n-node cycles, arranged by the cube address's digit split.
pub fn ccc(n: usize) -> Family {
    let c = mlv_topology::ccc::Ccc::new(n);
    let addr = MixedRadix::fixed(2, n);
    let (qr, qc, pos) = digit_split_arrangement(&addr);
    let spec = pn_cluster_spec(format!("CCC({n})"), &c.graph, qr, qc, n, pos, |u| {
        ((u as usize) / n, (u as usize) % n)
    });
    Family {
        graph: c.graph,
        spec,
    }
}

/// §5.2 — reduced hypercube (hypercube clusters instead of cycles).
pub fn reduced_hypercube(n: usize) -> Family {
    let r = mlv_topology::variants::ReducedHypercube::new(n);
    let addr = MixedRadix::fixed(2, n);
    let (qr, qc, pos) = digit_split_arrangement(&addr);
    let s = n.trailing_zeros();
    let spec = pn_cluster_spec(format!("RH({s},{s})"), &r.graph, qr, qc, n, pos, |u| {
        ((u as usize) / n, (u as usize) % n)
    });
    Family {
        graph: r.graph,
        spec,
    }
}

/// §4.2 — wrapped butterfly as a PN cluster: each of the `R = 2^m` rows
/// is a cluster of its `m` levels; the quotient over rows is the m-cube
/// (radix-2 generalized hypercube) with two links per adjacent pair.
pub fn butterfly(m: usize) -> Family {
    butterfly_clustered(m, 0)
}

/// §4.2, parametric — wrapped butterfly with clusters of `r = 2^b` rows
/// (the rows sharing all but the low `b` address bits) × all `m`
/// levels, i.e. the paper's `r·(log₂R + …)`-node clusters. Adjacent
/// clusters of the quotient (m−b)-cube carry `2r` parallel links
/// (`b = 1` gives the paper's "4 links per neighbouring pair"). Larger
/// `b` trades cluster-internal width for fewer, fatter inter-cluster
/// bundles.
pub fn butterfly_clustered(m: usize, b: usize) -> Family {
    assert!(b < m, "need at least one quotient bit");
    let bf = mlv_topology::butterfly::Butterfly::wrapped(m);
    let rows = bf.rows();
    let levels = bf.levels;
    let r = 1usize << b;
    let addr = MixedRadix::fixed(2, m - b);
    let (qr, qc, pos) = digit_split_arrangement(&addr);
    let spec = pn_cluster_spec(
        format!("wrapped BF({m}) r={r}"),
        &bf.graph,
        qr,
        qc,
        r * levels,
        pos,
        move |u| {
            let (l, w) = ((u as usize) / rows, (u as usize) % rows);
            (w >> b, (w & (r - 1)) * levels + l)
        },
    );
    Family {
        graph: bf.graph,
        spec,
    }
}

/// §4.3 — hierarchical swap network over a complete-graph nucleus of
/// size `r`, `levels ≥ 2`: clusters are the nuclei, the quotient is the
/// (levels−1)-dimensional radix-r generalized hypercube with one link
/// per adjacent pair.
pub fn hsn(levels: usize, r: usize) -> Family {
    assert!(levels >= 2);
    let nucleus = mlv_topology::complete::complete(r);
    let h = mlv_topology::hsn::Hsn::new(levels, &nucleus);
    let addr = MixedRadix::fixed(r, levels - 1);
    let (qr, qc, pos) = digit_split_arrangement(&addr);
    let spec = pn_cluster_spec(
        format!("HSN({levels},K{r})"),
        &h.graph,
        qr,
        qc,
        r,
        pos,
        move |u| ((u as usize) / r, (u as usize) % r),
    );
    Family {
        graph: h.graph,
        spec,
    }
}

/// §4.3 — hierarchical hypercube network: an HSN whose nucleus is the
/// s-cube.
pub fn hhn(levels: usize, s: usize) -> Family {
    assert!(levels >= 2);
    let h = mlv_topology::hhn::Hhn::new(levels, s);
    let r = 1usize << s;
    let addr = MixedRadix::fixed(r, levels - 1);
    let (qr, qc, pos) = digit_split_arrangement(&addr);
    let spec = pn_cluster_spec(
        format!("HHN({levels},{s})"),
        &h.hsn.graph,
        qr,
        qc,
        r,
        pos,
        move |u| ((u as usize) / r, (u as usize) % r),
    );
    Family {
        graph: h.hsn.graph,
        spec,
    }
}

/// §4.3 — indirect swap network: clusters are the `l·r`-node label
/// columns, quotient the radix-r GHC with two links per adjacent pair.
pub fn isn(levels: usize, r: usize) -> Family {
    let i = mlv_topology::isn::Isn::new(levels, r);
    let labels = r.pow(levels as u32);
    let members = levels * r;
    let addr = MixedRadix::fixed(r, levels - 1);
    let (qr, qc, pos) = digit_split_arrangement(&addr);
    let spec = pn_cluster_spec(
        format!("ISN({levels},{r})"),
        &i.graph,
        qr,
        qc,
        members,
        pos,
        move |u| {
            let (stage, label) = ((u as usize) / labels, (u as usize) % labels);
            (label / r, stage * r + label % r)
        },
    );
    Family {
        graph: i.graph,
        spec,
    }
}

/// §3.2 — k-ary n-cube cluster-c.
pub fn kary_cluster(
    k: usize,
    n: usize,
    c: usize,
    kind: mlv_topology::cluster::ClusterKind,
) -> Family {
    let pc = mlv_topology::cluster::kary_cluster_c(k, n, c, kind);
    let addr = MixedRadix::fixed(k, n);
    let (qr, qc, pos) = digit_split_arrangement(&addr);
    let spec = pn_cluster_spec(
        format!("{k}-ary {n}-cube cluster-{c}"),
        &pc.graph,
        qr,
        qc,
        c,
        pos,
        |u| (pc.cluster_of(u), pc.member_of(u)),
    );
    Family {
        graph: pc.graph.clone(),
        spec,
    }
}

/// Generic recursive-grid layout of an arbitrary graph (near-square
/// node grid in id order) — the fallback the paper's techniques reduce
/// to for unstructured networks.
pub fn generic(graph: Graph) -> Family {
    let (rows, cols) = near_square(graph.node_count());
    let spec = grid_spec(graph.name().to_string(), &graph, rows, cols, move |u| {
        ((u as usize) / cols, (u as usize) % cols)
    });
    Family { graph, spec }
}

/// §1/§4.3 — star graph via the generic scheme.
pub fn star(n: usize) -> Family {
    generic(mlv_topology::cayley::star(n))
}

/// Pancake graph via the generic scheme.
pub fn pancake(n: usize) -> Family {
    generic(mlv_topology::cayley::pancake(n))
}

/// Bubble-sort graph via the generic scheme.
pub fn bubble_sort(n: usize) -> Family {
    generic(mlv_topology::cayley::bubble_sort(n))
}

/// Transposition network via the generic scheme.
pub fn transposition(n: usize) -> Family {
    generic(mlv_topology::cayley::transposition(n))
}

/// Star-connected cycles via the generic scheme.
pub fn scc(n: usize) -> Family {
    generic(mlv_topology::cayley::scc(n))
}

/// Macro-star network via the generic scheme.
pub fn macro_star(l: usize, n: usize) -> Family {
    generic(mlv_topology::cayley::macro_star(l, n))
}

/// One-row spec for degenerate (1-D) instances: the collinear layout
/// realized directly.
fn one_row_spec(name: String, row: &CollinearLayout) -> OrthogonalSpec {
    let mut spec = OrthogonalSpec::new(name, 1, row.slot_count());
    spec.node_at = row.node_at_slot.clone();
    for w in &row.wires {
        spec.row_wires.push(crate::spec::RowWire {
            row: 0,
            lo: w.lo,
            hi: w.hi,
            track: w.track,
        });
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlv_grid::checker;

    fn check_family(f: &Family, layers: &[usize]) {
        assert_eq!(
            f.spec.edge_multiset(),
            f.graph.edge_multiset(),
            "{}: spec does not realize the graph",
            f.spec.name
        );
        for &l in layers {
            let layout = f.realize(l);
            checker::assert_legal(&layout, Some(&f.graph));
        }
    }

    #[test]
    fn karyn_families() {
        check_family(&karyn_cube(4, 2, false), &[2, 4]);
        check_family(&karyn_cube(3, 3, false), &[2, 6]);
        check_family(&karyn_cube(4, 2, true), &[2, 4]);
        check_family(&karyn_cube(5, 1, false), &[2]);
    }

    #[test]
    fn mesh_families() {
        check_family(&karyn_mesh(4, 2), &[2, 4]);
        check_family(&karyn_mesh(3, 3), &[2, 4]);
        check_family(&karyn_mesh(6, 1), &[2]);
        // mesh needs fewer tracks than the torus
        use mlv_grid::metrics::LayoutMetrics;
        let mt = LayoutMetrics::of(&karyn_mesh(5, 2).realize(2));
        let tt = LayoutMetrics::of(&karyn_cube(5, 2, false).realize(2));
        assert!(mt.area < tt.area);
    }

    #[test]
    fn binary_karyn_delegates_to_hypercube() {
        let f = karyn_cube(2, 4, false);
        check_family(&f, &[2]);
        assert_eq!(f.spec.name, "4-cube");
    }

    #[test]
    fn hypercube_families() {
        check_family(&hypercube(1), &[2]);
        check_family(&hypercube(4), &[2, 4]);
        check_family(&hypercube(6), &[2, 8]);
    }

    #[test]
    fn hypercube_splits() {
        use mlv_grid::metrics::LayoutMetrics;
        for lo in [0usize, 1, 2, 3, 5, 6] {
            check_family(&hypercube_with_split(6, lo), &[2]);
        }
        // the balanced split is never worse than the extremes
        let balanced = LayoutMetrics::of(&hypercube_with_split(6, 3).realize(2)).area;
        let skewed = LayoutMetrics::of(&hypercube_with_split(6, 1).realize(2)).area;
        assert!(balanced <= skewed);
    }

    #[test]
    fn genhyper_families() {
        check_family(&genhyper(&[3, 3]), &[2, 4]);
        check_family(&genhyper(&[4, 3, 2]), &[2, 4]);
        check_family(&genhyper(&[5]), &[2]);
    }

    #[test]
    fn folded_and_enhanced() {
        check_family(&folded_hypercube(4), &[2, 4]);
        check_family(&enhanced_cube(4, 42), &[2, 4]);
    }

    #[test]
    fn cluster_families() {
        check_family(&ccc(3), &[2, 4]);
        check_family(&reduced_hypercube(4), &[2, 4]);
        check_family(&butterfly(3), &[2, 4]);
        check_family(&butterfly_clustered(4, 1), &[2, 4]);
        check_family(&butterfly_clustered(4, 2), &[2]);
    }

    #[test]
    fn swap_families() {
        check_family(&hsn(2, 4), &[2, 4]);
        check_family(&hsn(3, 3), &[2, 4]);
        check_family(&hhn(2, 2), &[2, 4]);
        check_family(&isn(2, 3), &[2, 4]);
    }

    #[test]
    fn kary_cluster_family() {
        use mlv_topology::cluster::ClusterKind;
        check_family(&kary_cluster(3, 2, 4, ClusterKind::Hypercube), &[2, 4]);
        check_family(&kary_cluster(4, 2, 3, ClusterKind::Ring), &[2]);
    }

    #[test]
    fn cayley_families() {
        check_family(&star(4), &[2, 4]);
        check_family(&pancake(4), &[2]);
        check_family(&bubble_sort(4), &[2]);
        check_family(&transposition(4), &[2]);
        check_family(&scc(4), &[2]);
    }
}
