//! A concrete realizer for the **multilayer 3-D grid model**
//! (paper §2.2) — the model with `L_A` active layers whose constructions
//! the paper defers ("will be reported in the near future").
//!
//! ## Construction
//!
//! The grid rows are cut into `L_A` contiguous blocks; block `a` becomes
//! a *slab* occupying wiring layers `[a·L/L_A, (a+1)·L/L_A)` with its
//! nodes on the slab's bottom layer. Blocks share the same planar row
//! slots, so `L_A` nodes stack over each planar position and the layout
//! height shrinks by ≈ `L_A`. Within a slab, wires route exactly as in
//! the 2-D realizer (track groups, odd/even layer split) — slabs are
//! mutually invisible because their `z` ranges are disjoint.
//!
//! **Inter-slab wires** (column wires or jogs whose endpoints land in
//! different blocks) ride *risers*: each such wire owns a private
//! `(x, y)` grid column appended to its source column's vertical gap.
//! The wire runs from its right-edge terminal to the riser inside its
//! own slab, climbs the riser through the intervening layers (no other
//! wire ever touches a riser's planar position), and finishes like a
//! jog inside the destination slab (riser-column y-run, destination row
//! bundle x-run, top-edge terminal).
//!
//! This is a thin driver over the staged [`crate::passes`] pipeline —
//! the same four passes as [`mod@crate::realize`], run with `L_A ≥ 1`
//! slabs; the 2-D realizer is exactly the `L_A = 1` special case.
//!
//! ## When it pays
//!
//! Stacking does **not** shrink wiring: a slab has `L/L_A` layers, so
//! its bundles are `L_A×` thicker in-plane and the per-slot wiring is a
//! wash. What stacking removes is the **node-footprint floor** — one
//! `s×s` footprint per slot instead of `L_A` of them — plus it costs
//! one riser column per block-crossing wire. The 3-D model therefore
//! pays off exactly where the 2-D multilayer scheme saturates: layouts
//! whose nodes (processors, not wires) dominate the area, and networks
//! with few block-crossing wires (meshes/tori: one or two ring links
//! per column per boundary; hypercubes cross everywhere). `table_3d`
//! measures this boundary; the paper's deferred general construction
//! would need a shared z-track discipline instead of private risers.

use crate::passes::{self, PassConfig};
use crate::realize::JogStrategy;
use crate::spec::OrthogonalSpec;
use mlv_grid::layout::Layout;

/// Options for 3-D realization.
#[derive(Clone, Debug)]
pub struct Realize3dOptions {
    /// Total wiring layers `L`.
    pub layers: usize,
    /// Active layers `L_A ≥ 1`; must divide `L` with `L/L_A ≥ 2`.
    pub active_layers: usize,
    /// Override the node footprint side (≥ the terminal demand). The
    /// 3-D model's payoff is proportional to the node size — see the
    /// module docs.
    pub node_side: Option<usize>,
    /// Technology stack to realize onto. `None` (and any uniform
    /// stack) is the paper's unit grid — byte-identical output to the
    /// PDK-free pipeline. Layer directions are taken per slab window,
    /// so every slab must retain at least one H/V pair.
    pub pdk: Option<mlv_grid::Pdk>,
}

impl Realize3dOptions {
    /// Check the layer budget: `L ≥ 2` total layers, `L_A ≥ 1` active
    /// layers dividing `L`, and at least two wiring layers per slab
    /// (`L/L_A ≥ 2`).
    pub fn validate(&self) -> Result<(), String> {
        let (l, la) = (self.layers, self.active_layers);
        if l < 2 {
            return Err(format!("need at least two layers, got L={l}"));
        }
        if la < 1 {
            return Err("need at least one active layer".into());
        }
        if !l.is_multiple_of(la) {
            return Err(format!("active layers L_A={la} must divide L={l}"));
        }
        if l / la < 2 {
            return Err(format!(
                "need at least two layers per slab, got L/L_A = {l}/{la}"
            ));
        }
        Ok(())
    }
}

/// Realize a spec in the multilayer 3-D grid model. With
/// `active_layers == 1` this reduces exactly to [`mod@crate::realize`]'s
/// geometry.
///
/// # Panics
/// If the spec is invalid or [`Realize3dOptions::validate`] fails.
pub fn realize_3d(spec: &OrthogonalSpec, opts: &Realize3dOptions) -> Layout {
    spec.assert_valid();
    if let Err(e) = opts.validate() {
        panic!("need L_A | L, L/L_A >= 2: {e}");
    }
    let cfg = PassConfig {
        layers: opts.layers,
        active_layers: opts.active_layers,
        node_side: opts.node_side,
        jog_strategy: JogStrategy::RoundRobin,
        layout_name: format!(
            "{} @ L={} LA={} (3-D)",
            spec.name, opts.layers, opts.active_layers
        ),
        pdk: opts.pdk.clone(),
    };
    crate::realize::with_scratch(|s| passes::run_pipeline(spec, &cfg, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use mlv_grid::checker;
    use mlv_grid::metrics::LayoutMetrics;

    fn check_3d(
        fam: &families::Family,
        l: usize,
        la: usize,
        node_side: Option<usize>,
    ) -> LayoutMetrics {
        let layout = realize_3d(
            &fam.spec,
            &Realize3dOptions {
                layers: l,
                active_layers: la,
                node_side,
                pdk: None,
            },
        );
        checker::assert_legal(&layout, Some(&fam.graph));
        LayoutMetrics::of(&layout)
    }

    #[test]
    fn single_slab_matches_2d() {
        let fam = families::karyn_cube(4, 2, false);
        let m3 = check_3d(&fam, 4, 1, None);
        let m2 = LayoutMetrics::of(&fam.realize(4));
        assert_eq!(m3.area, m2.area);
        assert_eq!(m3.max_wire_planar, m2.max_wire_planar);
    }

    #[test]
    fn torus_stacks_legally() {
        // minimal node sizes: stacking saves little or even loses to
        // riser/terminal overhead — the wash the module docs describe
        let fam = families::karyn_cube(6, 2, false);
        let m1 = check_3d(&fam, 8, 1, None);
        let m2 = check_3d(&fam, 8, 2, None);
        assert!(m2.height < m1.height);
        assert!((m2.area as f64) < 1.5 * m1.area as f64);
    }

    #[test]
    fn stacking_pays_with_real_node_sizes() {
        // processors of side 16 dominate the wiring: the 3-D model
        // recovers a large part of the L_A factor
        let fam = families::karyn_cube(6, 2, false);
        let m1 = check_3d(&fam, 8, 1, Some(16));
        let m2 = check_3d(&fam, 8, 2, Some(16));
        let m4 = check_3d(&fam, 8, 4, Some(16));
        let g2 = m1.area as f64 / m2.area as f64;
        let g4 = m1.area as f64 / m4.area as f64;
        assert!(g2 > 1.4, "LA=2 gain {g2}");
        assert!(g4 > g2, "LA=4 gain {g4} <= LA=2 gain {g2}");
    }

    #[test]
    fn mesh_with_node_sizes() {
        let fam = families::karyn_mesh(6, 2);
        let m1 = check_3d(&fam, 12, 1, Some(16));
        let m3 = check_3d(&fam, 12, 3, Some(16));
        assert!(
            (m3.area as f64) < 0.6 * m1.area as f64,
            "3-D area {} vs 2-D {}",
            m3.area,
            m1.area
        );
    }

    #[test]
    fn hypercube_pays_for_risers_but_stays_legal() {
        let fam = families::hypercube(5);
        let _ = check_3d(&fam, 8, 2, None);
    }

    #[test]
    fn cluster_family_with_jogs_stacks_legally() {
        let fam = families::ccc(4);
        let _ = check_3d(&fam, 8, 2, None);
        let fam = families::hsn(2, 5);
        let _ = check_3d(&fam, 8, 2, None);
    }

    #[test]
    fn four_slabs() {
        let fam = families::karyn_cube(8, 2, false);
        let m1 = check_3d(&fam, 16, 1, None);
        let m4 = check_3d(&fam, 16, 4, None);
        assert!(m4.height < m1.height / 2);
    }

    #[test]
    fn validate_accepts_legal_budgets() {
        for (l, la) in [(2usize, 1usize), (4, 1), (4, 2), (8, 2), (8, 4), (12, 3)] {
            let opts = Realize3dOptions {
                layers: l,
                active_layers: la,
                node_side: None,
                pdk: None,
            };
            assert!(opts.validate().is_ok(), "L={l} LA={la} should be legal");
        }
    }

    #[test]
    fn validate_rejects_non_dividing_active_layers() {
        let opts = Realize3dOptions {
            layers: 8,
            active_layers: 3,
            node_side: None,
            pdk: None,
        };
        assert!(opts.validate().unwrap_err().contains("must divide"));
    }

    #[test]
    fn validate_rejects_thin_slabs() {
        // L/L_A = 1 < 2: no room for even one x/y layer pair per slab
        let opts = Realize3dOptions {
            layers: 4,
            active_layers: 4,
            node_side: None,
            pdk: None,
        };
        assert!(opts.validate().unwrap_err().contains("per slab"));
    }

    #[test]
    fn validate_rejects_too_few_layers() {
        for (l, la) in [(1usize, 1usize), (0, 1)] {
            let opts = Realize3dOptions {
                layers: l,
                active_layers: la,
                node_side: None,
                pdk: None,
            };
            assert!(opts.validate().is_err(), "L={l} LA={la} should be rejected");
        }
        let opts = Realize3dOptions {
            layers: 8,
            active_layers: 0,
            node_side: None,
            pdk: None,
        };
        assert!(opts.validate().is_err(), "LA=0 should be rejected");
    }

    #[test]
    #[should_panic]
    fn rejects_non_dividing_active_layers() {
        let fam = families::hypercube(3);
        let _ = realize_3d(
            &fam.spec,
            &Realize3dOptions {
                layers: 8,
                active_layers: 3,
                node_side: None,
                pdk: None,
            },
        );
    }
}
