//! A concrete realizer for the **multilayer 3-D grid model**
//! (paper §2.2) — the model with `L_A` active layers whose constructions
//! the paper defers ("will be reported in the near future").
//!
//! ## Construction
//!
//! The grid rows are cut into `L_A` contiguous blocks; block `a` becomes
//! a *slab* occupying wiring layers `[a·L/L_A, (a+1)·L/L_A)` with its
//! nodes on the slab's bottom layer. Blocks share the same planar row
//! slots, so `L_A` nodes stack over each planar position and the layout
//! height shrinks by ≈ `L_A`. Within a slab, wires route exactly as in
//! the 2-D realizer (track groups, odd/even layer split) — slabs are
//! mutually invisible because their `z` ranges are disjoint.
//!
//! **Inter-slab wires** (column wires or jogs whose endpoints land in
//! different blocks) ride *risers*: each such wire owns a private
//! `(x, y)` grid column appended to its source column's vertical gap.
//! The wire runs from its right-edge terminal to the riser inside its
//! own slab, climbs the riser through the intervening layers (no other
//! wire ever touches a riser's planar position), and finishes like a
//! jog inside the destination slab (riser-column y-run, destination row
//! bundle x-run, top-edge terminal).
//!
//! ## When it pays
//!
//! Stacking does **not** shrink wiring: a slab has `L/L_A` layers, so
//! its bundles are `L_A×` thicker in-plane and the per-slot wiring is a
//! wash. What stacking removes is the **node-footprint floor** — one
//! `s×s` footprint per slot instead of `L_A` of them — plus it costs
//! one riser column per block-crossing wire. The 3-D model therefore
//! pays off exactly where the 2-D multilayer scheme saturates: layouts
//! whose nodes (processors, not wires) dominate the area, and networks
//! with few block-crossing wires (meshes/tori: one or two ring links
//! per column per boundary; hypercubes cross everywhere). `table_3d`
//! measures this boundary; the paper's deferred general construction
//! would need a shared z-track discipline instead of private risers.

use crate::realize::{color_closed, count_in_group};
use crate::spec::OrthogonalSpec;
use mlv_grid::geom::{Point3, Rect};
use mlv_grid::layout::Layout;
use mlv_grid::path::WirePath;
use std::collections::BTreeMap;

/// Options for 3-D realization.
#[derive(Clone, Debug)]
pub struct Realize3dOptions {
    /// Total wiring layers `L`.
    pub layers: usize,
    /// Active layers `L_A ≥ 1`; must divide `L` with `L/L_A ≥ 2`.
    pub active_layers: usize,
    /// Override the node footprint side (≥ the terminal demand). The
    /// 3-D model's payoff is proportional to the node size — see the
    /// module docs.
    pub node_side: Option<usize>,
}

/// Per-key list of (wire tag, closed interval) awaiting colouring.
type IntervalsByKey2 = BTreeMap<(usize, usize), Vec<(usize, (usize, usize))>>;
/// Same, additionally keyed by slab.
type IntervalsBySlabKey = BTreeMap<(usize, usize, usize), Vec<(usize, (usize, usize))>>;

/// Wire kinds after slab classification.
enum Kind3 {
    Row { idx: usize },
    Col { idx: usize },
    Jog { idx: usize },
    InterCol { idx: usize },
    InterJog { idx: usize },
}

/// Realize a spec in the multilayer 3-D grid model. With
/// `active_layers == 1` this reduces exactly to [`crate::realize`]'s
/// geometry.
pub fn realize_3d(spec: &OrthogonalSpec, opts: &Realize3dOptions) -> Layout {
    spec.assert_valid();
    let l = opts.layers;
    let la = opts.active_layers;
    assert!(
        la >= 1 && l.is_multiple_of(la) && l / la >= 2,
        "need L_A | L, L/L_A >= 2"
    );
    let ls = l / la; // layers per slab
    let groups = ls / 2;
    let (rows, cols) = (spec.rows, spec.cols);
    let slots = rows.div_ceil(la);
    let slab_of = |r: usize| r / slots;
    let slot_of = |r: usize| r % slots;
    let zbase = |a: usize| (a * ls) as i32;

    // --- classify wires --------------------------------------------------
    let mut kinds: Vec<Kind3> = Vec::with_capacity(spec.wire_count());
    for (i, _) in spec.row_wires.iter().enumerate() {
        kinds.push(Kind3::Row { idx: i });
    }
    for (i, w) in spec.col_wires.iter().enumerate() {
        if slab_of(w.lo) == slab_of(w.hi) {
            kinds.push(Kind3::Col { idx: i });
        } else {
            kinds.push(Kind3::InterCol { idx: i });
        }
    }
    for (i, w) in spec.jog_wires.iter().enumerate() {
        if slab_of(w.a.0) == slab_of(w.b.0) {
            kinds.push(Kind3::Jog { idx: i });
        } else {
            kinds.push(Kind3::InterJog { idx: i });
        }
    }

    // unified view of inter wires: (a_row, a_col, b_row, b_col)
    let inter_ends = |k: &Kind3| -> Option<(usize, usize, usize, usize)> {
        match *k {
            Kind3::InterCol { idx } => {
                let w = &spec.col_wires[idx];
                Some((w.lo, w.col, w.hi, w.col))
            }
            Kind3::InterJog { idx } => {
                let w = &spec.jog_wires[idx];
                Some((w.a.0, w.a.1, w.b.0, w.b.1))
            }
            _ => None,
        }
    };

    // --- terminal demand --------------------------------------------------
    let mut top_count = vec![0usize; rows * cols];
    let mut right_count = vec![0usize; rows * cols];
    for w in &spec.row_wires {
        top_count[w.row * cols + w.lo] += 1;
        top_count[w.row * cols + w.hi] += 1;
    }
    for k in &kinds {
        match *k {
            Kind3::Col { idx } => {
                let w = &spec.col_wires[idx];
                right_count[w.lo * cols + w.col] += 1;
                right_count[w.hi * cols + w.col] += 1;
            }
            Kind3::Jog { idx } => {
                let w = &spec.jog_wires[idx];
                right_count[w.a.0 * cols + w.a.1] += 1;
                top_count[w.b.0 * cols + w.b.1] += 1;
            }
            _ => {
                if let Some((ra, ca, rb, cb)) = inter_ends(k) {
                    right_count[ra * cols + ca] += 1;
                    top_count[rb * cols + cb] += 1;
                }
            }
        }
    }
    // Inter-wire source terminals need planar y positions that are
    // unique across a whole *stack* of nodes (same slot, same column,
    // different slabs): the riser climbs through every slab at the
    // terminal's y, so a stacked neighbour's gap-crossing x-segment at
    // the same offset would hit it. They are therefore allocated from a
    // per-(slot, col) counter that starts above every stack member's
    // intra-wire demand.
    let mut intra_right = vec![0usize; rows * cols];
    for (i, c_) in right_count.iter().enumerate() {
        intra_right[i] = *c_;
    }
    let mut inter_per_stack: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for k in &kinds {
        if let Some((ra, ca, _, _)) = inter_ends(k) {
            intra_right[ra * cols + ca] -= 1; // split off inter demand
            *inter_per_stack.entry((slot_of(ra), ca)).or_insert(0) += 1;
        }
    }
    let mut stack_intra_max: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for r in 0..rows {
        for c in 0..cols {
            let e = stack_intra_max.entry((slot_of(r), c)).or_insert(0);
            *e = (*e).max(intra_right[r * cols + c]);
        }
    }
    let right_demand = stack_intra_max
        .iter()
        .map(|(key, &intra)| intra + inter_per_stack.get(key).copied().unwrap_or(0))
        .max()
        .unwrap_or(0);
    let min_side = 1 + top_count
        .iter()
        .copied()
        .max()
        .unwrap_or(0)
        .max(right_demand) as i64;
    let s = match opts.node_side {
        Some(side) => {
            assert!(
                side as i64 >= min_side,
                "node_side {side} below terminal demand {min_side}"
            );
            side as i64
        }
        None => min_side,
    };

    // --- intra-jog + inter-wire track assignment ---------------------------
    // intra jogs: vtracks keyed (col, group) — rows of one slab only ever
    // share a (col, group) key with同slab wires because colours are per
    // slab via the row-unique h-keys; to keep v-keys slab-local too we
    // key them (col, group, slab).
    #[derive(Default, Clone, Copy)]
    struct JAssign {
        group: usize,
        vcolor: usize,
        hcolor: usize,
    }
    let mut jog_assign: BTreeMap<usize, JAssign> = BTreeMap::new();
    let mut vkeys: IntervalsBySlabKey = BTreeMap::new();
    let mut hkeys: IntervalsByKey2 = BTreeMap::new();
    let mut intra_jog_counter = 0usize;
    for (i, w) in spec.jog_wires.iter().enumerate() {
        if slab_of(w.a.0) != slab_of(w.b.0) {
            continue;
        }
        let g = intra_jog_counter % groups;
        intra_jog_counter += 1;
        jog_assign.insert(
            i,
            JAssign {
                group: g,
                ..Default::default()
            },
        );
        let rlo = slot_of(w.a.0).min(slot_of(w.b.0));
        let rhi = slot_of(w.a.0).max(slot_of(w.b.0));
        vkeys
            .entry((w.a.1, g, slab_of(w.a.0)))
            .or_default()
            .push((i, (rlo, rhi)));
        let clo = w.a.1.min(w.b.1);
        let chi = w.a.1.max(w.b.1);
        hkeys.entry((w.b.0, g)).or_default().push((i, (clo, chi)));
    }
    // inter wires: group in destination slab + htrack colour pooled with
    // that row's intra jogs; riser index per source column gap
    #[derive(Default, Clone, Copy)]
    struct IAssign {
        ga: usize,
        gb: usize,
        hcolor: usize,
        riser: usize,
    }
    let mut inter_assign: BTreeMap<usize, IAssign> = BTreeMap::new(); // key: kinds index
    let mut riser_count: BTreeMap<usize, usize> = BTreeMap::new();
    let mut inter_counter = 0usize;
    for (ki, k) in kinds.iter().enumerate() {
        if let Some((ra, ca, rb, cb)) = inter_ends(k) {
            let ga = inter_counter % groups;
            let gb = (inter_counter / groups) % groups;
            inter_counter += 1;
            let riser = {
                let c = riser_count.entry(ca).or_insert(0);
                let r = *c;
                *c += 1;
                r
            };
            inter_assign.insert(
                ki,
                IAssign {
                    ga,
                    gb,
                    hcolor: 0,
                    riser,
                },
            );
            let clo = ca.min(cb);
            let chi = ca.max(cb);
            hkeys
                .entry((rb, gb))
                .or_default()
                .push((usize::MAX - ki, (clo, chi)));
            let _ = ra;
        }
    }
    // colour the h-keys (intra jogs and inter wires pooled per (row, g))
    let mut jog_vtracks: BTreeMap<(usize, usize, usize), usize> = BTreeMap::new();
    for ((c, g, a), items) in &vkeys {
        let spans: Vec<(usize, usize)> = items.iter().map(|&(_, iv)| iv).collect();
        let (colors, used) = color_closed(&spans);
        for (pos, &(i, _)) in items.iter().enumerate() {
            jog_assign.get_mut(&i).unwrap().vcolor = colors[pos];
        }
        jog_vtracks.insert((*c, *g, *a), used);
    }
    let mut jog_htracks: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for ((r, g), items) in &hkeys {
        let spans: Vec<(usize, usize)> = items.iter().map(|&(_, iv)| iv).collect();
        let (colors, used) = color_closed(&spans);
        for (pos, &(tag, _)) in items.iter().enumerate() {
            if tag <= spec.jog_wires.len() {
                jog_assign.get_mut(&tag).unwrap().hcolor = colors[pos];
            } else {
                inter_assign.get_mut(&(usize::MAX - tag)).unwrap().hcolor = colors[pos];
            }
        }
        jog_htracks.insert((*r, *g), used);
    }

    // --- geometry -----------------------------------------------------------
    let base_h: Vec<usize> = (0..rows).map(|r| spec.row_tracks(r)).collect();
    let base_w: Vec<usize> = (0..cols).map(|c| spec.col_tracks(c)).collect();
    // per-row bundle height (within its slab), then per-slot max
    let hpl_row: Vec<i64> = (0..rows)
        .map(|r| {
            (0..groups)
                .map(|g| {
                    count_in_group(base_h[r], g, groups)
                        + jog_htracks.get(&(r, g)).copied().unwrap_or(0)
                })
                .max()
                .unwrap_or(0) as i64
        })
        .collect();
    let hpl_slot: Vec<i64> = (0..slots)
        .map(|sl| {
            (0..la)
                .filter_map(|a| {
                    let r = a * slots + sl;
                    (r < rows).then(|| hpl_row[r])
                })
                .max()
                .unwrap_or(0)
        })
        .collect();
    let wpl: Vec<i64> = (0..cols)
        .map(|c| {
            let tracks = (0..groups)
                .map(|g| {
                    let jmax = (0..la)
                        .map(|a| jog_vtracks.get(&(c, g, a)).copied().unwrap_or(0))
                        .max()
                        .unwrap_or(0);
                    count_in_group(base_w[c], g, groups) + jmax
                })
                .max()
                .unwrap_or(0) as i64;
            tracks + riser_count.get(&c).copied().unwrap_or(0) as i64
        })
        .collect();
    let track_width: Vec<i64> = (0..cols)
        .map(|c| wpl[c] - riser_count.get(&c).copied().unwrap_or(0) as i64)
        .collect();
    let prefix = |steps: &[i64]| -> Vec<i64> {
        std::iter::once(0)
            .chain(steps.iter().scan(0i64, |acc, &w| {
                *acc += s + w;
                Some(*acc)
            }))
            .collect()
    };
    let col_x0 = prefix(&wpl);
    let slot_y0 = prefix(&hpl_slot);
    let gap_x0 = |c: usize| col_x0[c] + s;
    let gap_y0 = |sl: usize| slot_y0[sl] + s;

    // --- terminal offsets ------------------------------------------------
    // same class discipline as the 2-D realizer
    let mut top_items: Vec<Vec<(u8, usize, bool)>> = vec![Vec::new(); rows * cols];
    let mut right_items: Vec<Vec<(u8, usize, bool)>> = vec![Vec::new(); rows * cols];
    for (ki, k) in kinds.iter().enumerate() {
        match *k {
            Kind3::Row { idx } => {
                let w = &spec.row_wires[idx];
                top_items[w.row * cols + w.hi].push((0, ki, true));
                top_items[w.row * cols + w.lo].push((2, ki, false));
            }
            Kind3::Col { idx } => {
                let w = &spec.col_wires[idx];
                right_items[w.hi * cols + w.col].push((0, ki, true));
                right_items[w.lo * cols + w.col].push((2, ki, false));
            }
            Kind3::Jog { idx } => {
                let w = &spec.jog_wires[idx];
                right_items[w.a.0 * cols + w.a.1].push((1, ki, false));
                top_items[w.b.0 * cols + w.b.1].push((1, ki, true));
            }
            _ => {
                let (_, _, rb, cb) = inter_ends(k).unwrap();
                // the a-side terminal is stack-allocated below
                top_items[rb * cols + cb].push((1, ki, true));
            }
        }
    }
    // terminal coordinate per (kinds index, is_hi_end/b_side)
    let mut term: BTreeMap<(usize, bool), (i64, i64)> = BTreeMap::new();
    // inter a-side terminals: per-(slot, col) shared counter above the
    // stack's intra demand, so the y is unique across the node stack
    let mut stack_counter: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (ki, k) in kinds.iter().enumerate() {
        if let Some((ra, ca, _, _)) = inter_ends(k) {
            let key = (slot_of(ra), ca);
            let base = stack_intra_max[&key];
            let cnt = stack_counter.entry(key).or_insert(0);
            let off = (base + *cnt) as i64;
            *cnt += 1;
            term.insert(
                (ki, false),
                (col_x0[ca] + s - 1, slot_y0[slot_of(ra)] + off),
            );
        }
    }
    #[allow(clippy::needless_range_loop)]
    for r in 0..rows {
        for c in 0..cols {
            let pos = r * cols + c;
            let x0 = col_x0[c];
            let y0 = slot_y0[slot_of(r)];
            let mut items = std::mem::take(&mut top_items[pos]);
            items.sort();
            for (off, &(_, ki, hi_end)) in items.iter().enumerate() {
                term.insert((ki, hi_end), (x0 + off as i64, y0 + s - 1));
            }
            let mut items = std::mem::take(&mut right_items[pos]);
            items.sort();
            for (off, &(_, ki, hi_end)) in items.iter().enumerate() {
                term.insert((ki, hi_end), (x0 + s - 1, y0 + off as i64));
            }
        }
    }

    // --- emit --------------------------------------------------------------
    let mut layout = Layout::new(format!("{} @ L={l} LA={la} (3-D)", spec.name), l);
    #[allow(clippy::needless_range_loop)]
    for r in 0..rows {
        for c in 0..cols {
            layout.place_node_at(
                spec.node(r, c),
                Rect::new(
                    col_x0[c],
                    slot_y0[slot_of(r)],
                    col_x0[c] + s - 1,
                    slot_y0[slot_of(r)] + s - 1,
                ),
                zbase(slab_of(r)),
            );
        }
    }
    let p = Point3::new;
    for (ki, k) in kinds.iter().enumerate() {
        match *k {
            Kind3::Row { idx } => {
                let w = &spec.row_wires[idx];
                let zb = zbase(slab_of(w.row));
                let (g, tidx) = (w.track % groups, w.track / groups);
                let (zh, zv) = (zb + 2 * g as i32, zb + 2 * g as i32 + 1);
                let ty = gap_y0(slot_of(w.row)) + tidx as i64;
                let (ax, ay) = term[&(ki, false)];
                let (bx, by) = term[&(ki, true)];
                layout.add_wire(
                    spec.node(w.row, w.lo),
                    spec.node(w.row, w.hi),
                    WirePath::new(vec![
                        p(ax, ay, zb),
                        p(ax, ay, zv),
                        p(ax, ty, zv),
                        p(ax, ty, zh),
                        p(bx, ty, zh),
                        p(bx, ty, zv),
                        p(bx, by, zv),
                        p(bx, by, zb),
                    ]),
                );
            }
            Kind3::Col { idx } => {
                let w = &spec.col_wires[idx];
                let zb = zbase(slab_of(w.lo));
                let (g, tidx) = (w.track % groups, w.track / groups);
                let (zh, zv) = (zb + 2 * g as i32, zb + 2 * g as i32 + 1);
                let tx = gap_x0(w.col) + tidx as i64;
                let (ax, ay) = term[&(ki, false)];
                let (bx, by) = term[&(ki, true)];
                layout.add_wire(
                    spec.node(w.lo, w.col),
                    spec.node(w.hi, w.col),
                    WirePath::new(vec![
                        p(ax, ay, zb),
                        p(ax, ay, zh),
                        p(tx, ay, zh),
                        p(tx, ay, zv),
                        p(tx, by, zv),
                        p(tx, by, zh),
                        p(bx, by, zh),
                        p(bx, by, zb),
                    ]),
                );
            }
            Kind3::Jog { idx } => {
                let w = &spec.jog_wires[idx];
                let a = jog_assign[&idx];
                let slab = slab_of(w.a.0);
                let zb = zbase(slab);
                let (zh, zv) = (zb + 2 * a.group as i32, zb + 2 * a.group as i32 + 1);
                let tx = gap_x0(w.a.1)
                    + (count_in_group(base_w[w.a.1], a.group, groups) + a.vcolor) as i64;
                let ty = gap_y0(slot_of(w.b.0))
                    + (count_in_group(base_h[w.b.0], a.group, groups) + a.hcolor) as i64;
                let (ax, ay) = term[&(ki, false)];
                let (bx, by) = term[&(ki, true)];
                layout.add_wire(
                    spec.node(w.a.0, w.a.1),
                    spec.node(w.b.0, w.b.1),
                    WirePath::new(vec![
                        p(ax, ay, zb),
                        p(ax, ay, zh),
                        p(tx, ay, zh),
                        p(tx, ay, zv),
                        p(tx, ty, zv),
                        p(tx, ty, zh),
                        p(bx, ty, zh),
                        p(bx, ty, zv),
                        p(bx, by, zv),
                        p(bx, by, zb),
                    ]),
                );
            }
            _ => {
                let (ra, ca, rb, cb) = inter_ends(k).unwrap();
                let ia = inter_assign[&ki];
                let (za, zbb) = (zbase(slab_of(ra)), zbase(slab_of(rb)));
                let zha = za + 2 * ia.ga as i32;
                let zvb = zbb + 2 * ia.gb as i32 + 1;
                let zhb = zvb - 1;
                let riser_x = gap_x0(ca) + track_width[ca] + ia.riser as i64;
                let ty = gap_y0(slot_of(rb))
                    + (count_in_group(base_h[rb], ia.gb, groups) + ia.hcolor) as i64;
                let (ax, ay) = term[&(ki, false)];
                let (bx, by) = term[&(ki, true)];
                layout.add_wire(
                    spec.node(ra, ca),
                    spec.node(rb, cb),
                    WirePath::new(vec![
                        p(ax, ay, za),
                        p(ax, ay, zha),
                        p(riser_x, ay, zha),
                        p(riser_x, ay, zvb),
                        p(riser_x, ty, zvb),
                        p(riser_x, ty, zhb),
                        p(bx, ty, zhb),
                        p(bx, ty, zvb),
                        p(bx, by, zvb),
                        p(bx, by, zbb),
                    ]),
                );
            }
        }
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use mlv_grid::checker;
    use mlv_grid::metrics::LayoutMetrics;

    fn check_3d(
        fam: &families::Family,
        l: usize,
        la: usize,
        node_side: Option<usize>,
    ) -> LayoutMetrics {
        let layout = realize_3d(
            &fam.spec,
            &Realize3dOptions {
                layers: l,
                active_layers: la,
                node_side,
            },
        );
        checker::assert_legal(&layout, Some(&fam.graph));
        LayoutMetrics::of(&layout)
    }

    #[test]
    fn single_slab_matches_2d() {
        let fam = families::karyn_cube(4, 2, false);
        let m3 = check_3d(&fam, 4, 1, None);
        let m2 = LayoutMetrics::of(&fam.realize(4));
        assert_eq!(m3.area, m2.area);
        assert_eq!(m3.max_wire_planar, m2.max_wire_planar);
    }

    #[test]
    fn torus_stacks_legally() {
        // minimal node sizes: stacking saves little or even loses to
        // riser/terminal overhead — the wash the module docs describe
        let fam = families::karyn_cube(6, 2, false);
        let m1 = check_3d(&fam, 8, 1, None);
        let m2 = check_3d(&fam, 8, 2, None);
        assert!(m2.height < m1.height);
        assert!((m2.area as f64) < 1.5 * m1.area as f64);
    }

    #[test]
    fn stacking_pays_with_real_node_sizes() {
        // processors of side 16 dominate the wiring: the 3-D model
        // recovers a large part of the L_A factor
        let fam = families::karyn_cube(6, 2, false);
        let m1 = check_3d(&fam, 8, 1, Some(16));
        let m2 = check_3d(&fam, 8, 2, Some(16));
        let m4 = check_3d(&fam, 8, 4, Some(16));
        let g2 = m1.area as f64 / m2.area as f64;
        let g4 = m1.area as f64 / m4.area as f64;
        assert!(g2 > 1.4, "LA=2 gain {g2}");
        assert!(g4 > g2, "LA=4 gain {g4} <= LA=2 gain {g2}");
    }

    #[test]
    fn mesh_with_node_sizes() {
        let fam = families::karyn_mesh(6, 2);
        let m1 = check_3d(&fam, 12, 1, Some(16));
        let m3 = check_3d(&fam, 12, 3, Some(16));
        assert!(
            (m3.area as f64) < 0.6 * m1.area as f64,
            "3-D area {} vs 2-D {}",
            m3.area,
            m1.area
        );
    }

    #[test]
    fn hypercube_pays_for_risers_but_stays_legal() {
        let fam = families::hypercube(5);
        let _ = check_3d(&fam, 8, 2, None);
    }

    #[test]
    fn cluster_family_with_jogs_stacks_legally() {
        let fam = families::ccc(4);
        let _ = check_3d(&fam, 8, 2, None);
        let fam = families::hsn(2, 5);
        let _ = check_3d(&fam, 8, 2, None);
    }

    #[test]
    fn four_slabs() {
        let fam = families::karyn_cube(8, 2, false);
        let m1 = check_3d(&fam, 16, 1, None);
        let m4 = check_3d(&fam, 16, 4, None);
        assert!(m4.height < m1.height / 2);
    }

    #[test]
    #[should_panic]
    fn rejects_non_dividing_active_layers() {
        let fam = families::hypercube(3);
        let _ = realize_3d(
            &fam.spec,
            &Realize3dOptions {
                layers: 8,
                active_layers: 3,
                node_side: None,
            },
        );
    }
}
