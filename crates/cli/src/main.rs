//! `mlv` — build, verify, analyze, and render multilayer VLSI layouts
//! of interconnection networks (ICPP 2000 reproduction).
//!
//! ```text
//! mlv families                                  list family specs
//! mlv layout hypercube:8 --layers 4 [options]   build + report one layout
//! mlv sweep karyn:8,2 --layers 2,4,8,16         engine batch, JSON per job
//! mlv sweep --lattice --cases 8                 full registry lattice
//! mlv figures [f1|f2|f3|f4]                     the paper's figures
//! ```
//!
//! `mlv layout` options:
//! `--check` (full legality verification), `--routed` (worst-pair
//! routed wire length), `--node-side S`, `--active-layers LA` (3-D
//! model), `--svg PATH`, `--save PATH` (text format, reloadable with
//! `mlv check`), `--ascii`, `--json` (machine-readable report).

mod parse;
mod report;

use mlv_grid::checker;
use mlv_grid::metrics::LayoutMetrics;
use mlv_grid::svg::{render_svg, SvgOptions};
use mlv_layout::realize::{align_wires, RealizeOptions};
use mlv_layout::realize3d::{realize_3d, Realize3dOptions};
use mlv_layout::registry;
use parse::{parse_family, parse_layers};
use report::Report;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("families") => cmd_families(&args[1..]),
        Some("layout") => cmd_layout(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("figures") => cmd_figures(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("conformance") => cmd_conformance(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{}", HELP);
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n\n{HELP}");
            ExitCode::FAILURE
        }
    }
}

const HELP: &str = "\
mlv — multilayer VLSI layouts of interconnection networks

USAGE:
  mlv families [--json]
  mlv layout <family-spec> --layers <L> [--active-layers <LA>] [--check]
             [--routed] [--node-side <S>] [--svg <path>] [--save <path>]
             [--ascii] [--json] [--tiled] [--pdk uniform|hv6|@file.pdk]
  mlv sweep  <family-spec> --layers <L1,L2,...> [--no-check] [--trace <path>]
             [--pdk uniform|hv6|@file.pdk]
  mlv sweep  --lattice [--seed <u64>] [--cases <n>] [--no-check] [--trace <path>]
             [--pdk uniform|hv6|@file.pdk]
  mlv profile <family> [<params>] [--layers <L>] [--no-check]
             [--pdk uniform|hv6|@file.pdk]
  mlv check  <layout-file.mlv> [--tiled] [--pdk uniform|hv6|@file.pdk]
  mlv serve  [--stdio] [--listen <addr>] [--queue-depth <n>]
             [--max-connections <n>] [--cache-capacity <n>]
             [--pdk uniform|hv6|@file.pdk]
  mlv figures [f1|f2|f3|f4|folded|layout]
  mlv conformance [--seed <u64>] [--cases <n>] [--families a,b,...]
                  [--no-inject] [--pdk-axis]

EXAMPLES:
  mlv layout hypercube:8 --layers 4 --check
  mlv layout karyn:8,2 --layers 8 --svg torus.svg
  mlv layout hypercube:8 --layers 6 --pdk hv6 --check
  mlv sweep ghc:16,16 --layers 2,4,8,16
  mlv sweep --lattice --seed 2000 --cases 8 --trace sweep.trace
  mlv profile hypercube 6 --layers 4
  mlv conformance --seed 2000 --cases 12 --pdk-axis
  mlv serve --stdio
  mlv serve --listen 127.0.0.1:7171 --max-connections 8

`mlv sweep` drives the parallel batch-realization engine: one JSON
line per (family, L) job on stdout (label, layout digest, metrics,
check status, cache flag), in job order and byte-identical for any
MLV_THREADS; cache counters and wall-clock go to stderr. `--lattice`
enumerates the full registry parameter lattice (seeded; the same
(family, params, L) grid the conformance harness walks). Legality
checking is on by default; --no-check skips it. Exits nonzero if any
checked job is illegal. --trace <path> writes the run's trace (one
JSON object per span/counter/histogram plus a closing digest line);
the digest covers only deterministic fields, so it is identical for
any MLV_THREADS.

`mlv layout --tiled` realizes into the hierarchical tile IR instead of
flat geometry: a small tile table plus one instance record per wire.
The report (and `--check`) runs through the streaming walkers, so the
full grid is never materialized; `--save` materializes on demand —
byte-identical to the flat realization. `mlv check --tiled` runs the
streaming checker/metrics over a saved layout.

`mlv profile` realizes one family through the engine under a trace
and prints the trace to stdout: per-pass pipeline spans, engine and
checker spans, counters, histograms, and the deterministic digest.

`mlv conformance` fuzzes every family over a seeded lattice (checker,
differential, and prediction oracles + fault injection), prints one
JSON line per family, and exits nonzero on any violation. Env
fallbacks: MLV_SEED, MLV_CONFORMANCE_CASES, MLV_PDK_AXIS; MLV_THREADS
sizes the executor (the report is byte-identical for any thread count).

`mlv serve` runs the persistent layout service: one engine (shared
memo cache, parallel fan-out) answering JSON-lines requests — kinds
realize, check, metrics, sweep-shard, profile, stats — over stdio
and/or a TCP listener. Per-connection queues are bounded; a full queue
or an over-cap connection is answered with one busy frame carrying
retry_after_ms instead of buffering. Response bytes are deterministic
for any MLV_THREADS. --pdk sets the default stack for requests that
don't carry their own `pdk`/`pdk_text` field. With neither --stdio nor
--listen, serve defaults to stdio.

`--pdk` threads a technology stack through the pipeline: per-layer
preferred directions steer the layer-assignment pass, per-layer pitches
widen wiring gaps and track spacing, and reports gain pitch-weighted
physical area/wirelength. `uniform` is the paper's unit grid — the
identity; with it (or no flag) every output stays byte-identical.
`hv6` is a built-in 6-layer alternating-HV stack; `@file.pdk` loads a
text stack (see mlv-grid's pdk module docs for the format). With a
non-uniform stack `--check` verifies direction/pitch legality too.
`mlv conformance --pdk-axis` adds the technology differential oracle
and the direction/pitch fault-injection strategies.
";

fn cmd_families(args: &[String]) -> ExitCode {
    let json = match args {
        [] => false,
        [flag] if flag == "--json" => true,
        _ => {
            eprintln!("usage: mlv families [--json]");
            return ExitCode::FAILURE;
        }
    };
    if json {
        // one object per line, mirroring the conformance report style
        for e in registry::REGISTRY {
            println!(
                "{{\"name\":\"{}\",\"keyword\":\"{}\",\"spec\":\"{}\",\"description\":\"{}\",\"example\":\"{}\",\"lattice\":{}}}",
                e.name,
                e.keyword,
                e.grammar,
                e.description,
                e.example,
                e.lattice.is_some()
            );
        }
    } else {
        println!("family specs (use with `mlv layout <spec> ...`):\n");
        for e in registry::REGISTRY {
            println!("  {:<42} {}", e.grammar, e.description);
        }
    }
    ExitCode::SUCCESS
}

struct Flags {
    positional: Vec<String>,
    layers: Option<String>,
    active_layers: Option<usize>,
    node_side: Option<usize>,
    svg: Option<String>,
    save: Option<String>,
    ascii: bool,
    json: bool,
    check: bool,
    no_check: bool,
    routed: bool,
    tiled: bool,
    lattice: bool,
    seed: Option<u64>,
    cases: Option<usize>,
    trace: Option<String>,
    pdk: Option<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        positional: Vec::new(),
        layers: None,
        active_layers: None,
        node_side: None,
        svg: None,
        save: None,
        ascii: false,
        json: false,
        check: false,
        no_check: false,
        routed: false,
        tiled: false,
        lattice: false,
        seed: None,
        cases: None,
        trace: None,
        pdk: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--layers" => f.layers = Some(it.next().ok_or("--layers needs a value")?.clone()),
            "--active-layers" => {
                f.active_layers = Some(
                    it.next()
                        .ok_or("--active-layers needs a value")?
                        .parse()
                        .map_err(|_| "--active-layers needs an integer")?,
                )
            }
            "--node-side" => {
                f.node_side = Some(
                    it.next()
                        .ok_or("--node-side needs a value")?
                        .parse()
                        .map_err(|_| "--node-side needs an integer")?,
                )
            }
            "--svg" => f.svg = Some(it.next().ok_or("--svg needs a path")?.clone()),
            "--save" => f.save = Some(it.next().ok_or("--save needs a path")?.clone()),
            "--ascii" => f.ascii = true,
            "--json" => f.json = true,
            "--check" => f.check = true,
            "--no-check" => f.no_check = true,
            "--routed" => f.routed = true,
            "--tiled" => f.tiled = true,
            "--lattice" => f.lattice = true,
            "--seed" => {
                f.seed = Some(
                    it.next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|_| "--seed needs an unsigned integer")?,
                )
            }
            "--cases" => {
                f.cases = Some(
                    it.next()
                        .ok_or("--cases needs a value")?
                        .parse()
                        .map_err(|_| "--cases needs a positive integer")?,
                )
            }
            "--trace" => f.trace = Some(it.next().ok_or("--trace needs a path")?.clone()),
            "--pdk" => {
                f.pdk = Some(
                    it.next()
                        .ok_or("--pdk needs a value (uniform, hv6, or @file.pdk)")?
                        .clone(),
                )
            }
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            other => f.positional.push(other.to_string()),
        }
    }
    Ok(f)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

/// Resolve a `--pdk` value. `uniform` (and any loaded stack that turns
/// out uniform) resolves to `None` — the uniform grid is the identity,
/// so treating it exactly like "no flag" keeps output byte-identical.
fn resolve_pdk(flag: Option<&str>) -> Result<Option<mlv_grid::pdk::Pdk>, String> {
    match flag {
        None | Some("uniform") => Ok(None),
        Some("hv6") => Ok(Some(mlv_grid::pdk::Pdk::hv6())),
        Some(spec) => {
            let Some(path) = spec.strip_prefix('@') else {
                return Err(format!(
                    "unknown PDK '{spec}' (use uniform, hv6, or @file.pdk)"
                ));
            };
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let pdk = mlv_grid::pdk::read_pdk(&text).map_err(|e| format!("{path}: {e}"))?;
            Ok(Some(pdk).filter(|p| !p.is_uniform()))
        }
    }
}

fn cmd_layout(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let Some(spec) = flags.positional.first() else {
        return fail("missing <family-spec>; try `mlv families`");
    };
    let family = match parse_family(spec) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let layers = match flags.layers.as_deref().map(parse_layers) {
        Some(Ok(ls)) if ls.len() == 1 => ls[0],
        Some(Ok(_)) => return fail("`mlv layout` takes one layer count; use `mlv sweep`"),
        Some(Err(e)) => return fail(e),
        None => 2,
    };
    let pdk = match resolve_pdk(flags.pdk.as_deref()) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    if flags.tiled {
        if pdk.is_some() {
            return fail("--pdk with a non-uniform stack needs flat geometry; drop --tiled");
        }
        return cmd_layout_tiled(&family, layers, &flags);
    }
    let mut layout = match flags.active_layers {
        Some(la) if la > 1 => realize_3d(
            &family.spec,
            &Realize3dOptions {
                layers,
                active_layers: la,
                node_side: flags.node_side,
                pdk: pdk.clone(),
            },
        ),
        _ => family.realize_with(&RealizeOptions {
            layers,
            node_side: flags.node_side,
            jog_strategy: Default::default(),
            pdk: pdk.clone(),
        }),
    };
    let mut rep = Report::collect(&layout);
    if let Some(p) = &pdk {
        match mlv_grid::metrics::PhysicalMetrics::of(&layout, p) {
            Ok(ph) => rep.physical = Some(ph),
            Err(e) => eprintln!("warning: {e}"),
        }
    }
    if flags.check {
        let r = match &pdk {
            Some(p) => checker::check_with_pdk(&layout, Some(&family.graph), p),
            None => checker::check(&layout, Some(&family.graph)),
        };
        rep.checked = Some(r.is_legal());
        if !r.is_legal() {
            eprintln!(
                "legality check FAILED: {:?}",
                &r.errors[..r.errors.len().min(3)]
            );
        }
    }
    if flags.routed {
        align_wires(&mut layout, &family.graph);
        rep.routed = LayoutMetrics::max_routed_path(&layout, &family.graph);
    }
    if flags.json {
        print!("{}", rep.json());
    } else {
        print!("{}", rep.text());
    }
    if flags.ascii {
        println!("\n{}", mlv_grid::render::render_top(&layout));
    }
    if let Some(path) = &flags.save {
        if let Err(e) = std::fs::write(path, mlv_grid::io::write_layout(&layout)) {
            return fail(format!("writing {path}: {e}"));
        }
        eprintln!("saved {path}");
    }
    if let Some(path) = flags.svg {
        let svg = render_svg(&layout, &SvgOptions::default());
        if let Err(e) = std::fs::write(&path, svg) {
            return fail(format!("writing {path}: {e}"));
        }
        eprintln!("wrote {path}");
    }
    if rep.checked == Some(false) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `mlv layout --tiled`: realize into the hierarchical tile IR and
/// report through the streaming walkers — the flat grid is never
/// materialized unless `--save` asks for it.
fn cmd_layout_tiled(
    family: &mlv_layout::families::Family,
    layers: usize,
    flags: &Flags,
) -> ExitCode {
    use mlv_grid::streaming::StreamSource;
    if flags.svg.is_some() || flags.ascii || flags.routed {
        return fail("--svg/--ascii/--routed need flat geometry; drop --tiled");
    }
    let tiled = match flags.active_layers {
        Some(la) if la > 1 => mlv_layout::realize_tiled_3d(
            &family.spec,
            &Realize3dOptions {
                layers,
                active_layers: la,
                node_side: flags.node_side,
                pdk: None,
            },
        ),
        _ => mlv_layout::realize_tiled(
            &family.spec,
            &RealizeOptions {
                layers,
                node_side: flags.node_side,
                jog_strategy: Default::default(),
                pdk: None,
            },
        ),
    };
    let m = mlv_grid::streaming::metrics_stream(&tiled);
    let mut legal: Option<bool> = None;
    if flags.check {
        let r = mlv_grid::check_stream(&tiled, Some(&family.graph));
        legal = Some(r.is_legal());
        if !r.is_legal() {
            eprintln!(
                "streaming legality check FAILED: {:?}",
                &r.errors[..r.errors.len().min(3)]
            );
        }
    }
    if flags.json {
        println!(
            "{{\"name\":\"{}\",\"layers\":{},\"nodes\":{},\"wires\":{},\"tiles\":{},\"digest\":\"{:#018x}\",\"width\":{},\"height\":{},\"area\":{},\"volume\":{},\"max_wire\":{},\"vias\":{}{}}}",
            tiled.name,
            tiled.layers,
            tiled.node_count(),
            tiled.wire_count(),
            tiled.tiles.len(),
            tiled.digest(),
            m.width,
            m.height,
            m.area,
            m.volume,
            m.max_wire_full,
            m.via_count,
            match legal {
                Some(ok) => format!(",\"legal\":{ok}"),
                None => String::new(),
            }
        );
    } else {
        println!("{}", tiled.name);
        println!(
            "  tiled IR: {} tile shapes, {} instances",
            tiled.tiles.len(),
            tiled.instances.len()
        );
        println!(
            "  nodes {}  wires {}  layers {}",
            tiled.node_count(),
            tiled.wire_count(),
            tiled.layers
        );
        println!(
            "  streaming metrics: {}x{} area {} volume {} max-wire {} vias {}",
            m.width, m.height, m.area, m.volume, m.max_wire_full, m.via_count
        );
        println!("  tiled digest {:#018x}", tiled.digest());
        if let Some(ok) = legal {
            println!(
                "  streaming legality: {}",
                if ok { "VERIFIED" } else { "FAILED" }
            );
        }
    }
    if let Some(path) = &flags.save {
        let layout = tiled.materialize();
        if let Err(e) = std::fs::write(path, mlv_grid::io::write_layout(&layout)) {
            return fail(format!("writing {path}: {e}"));
        }
        eprintln!("saved {path} (materialized)");
    }
    if legal == Some(false) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `mlv sweep`: realize a batch of `(family, L)` jobs through the
/// engine ([`mlv_layout::engine`]) and print one JSON line per job, in
/// job order. Stdout is deterministic — byte-identical for any
/// `MLV_THREADS` — so sweep reports can be diffed across machines;
/// wall-clock and cache counters go to stderr. Exits nonzero if any
/// checked job is illegal.
fn cmd_sweep(args: &[String]) -> ExitCode {
    use mlv_layout::engine::{CheckStatus, Engine, EngineOptions, Job};
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let pdk = match resolve_pdk(flags.pdk.as_deref()) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    let jobs: Vec<Job> = if flags.lattice {
        if !flags.positional.is_empty() {
            return fail("--lattice enumerates the registry; drop the <family-spec>");
        }
        let seed = flags
            .seed
            .or_else(|| std::env::var("MLV_SEED").ok()?.parse().ok())
            .unwrap_or(2000);
        let cases = flags.cases.unwrap_or(8).max(1);
        match &pdk {
            Some(p) => eprintln!(
                "sweep: lattice seed={seed} cases/family={cases} pdk={}",
                p.name
            ),
            None => eprintln!("sweep: lattice seed={seed} cases/family={cases}"),
        }
        mlv_layout::engine::lattice_jobs_with_pdk(seed, cases, pdk.as_ref())
    } else {
        let Some(spec) = flags.positional.first() else {
            return fail("missing <family-spec> (or use --lattice)");
        };
        let family = match parse_family(spec) {
            Ok(f) => f,
            Err(e) => return fail(e),
        };
        let layers = match flags.layers.as_deref().map(parse_layers) {
            Some(Ok(ls)) => ls,
            Some(Err(e)) => return fail(e),
            None => vec![2, 4, 8],
        };
        layers
            .into_iter()
            .map(|l| match &pdk {
                Some(p) => Job::with_pdk(spec.as_str(), family.clone(), l, p.clone()),
                None => Job::new(spec.as_str(), family.clone(), l),
            })
            .collect()
    };
    let mut engine = Engine::new(EngineOptions {
        check: !flags.no_check,
        ..EngineOptions::default()
    });
    let clock = std::time::Instant::now();
    let trace = flags.trace.as_ref().map(|_| mlv_core::trace::Trace::new());
    let report = match &trace {
        Some(t) => t.collect(|| engine.run(&jobs)),
        None => engine.run(&jobs),
    };
    let elapsed = clock.elapsed();
    if let (Some(path), Some(t)) = (&flags.trace, &trace) {
        if let Err(e) = std::fs::write(path, trace_document(&t.aggregate())) {
            return fail(format!("writing {path}: {e}"));
        }
        eprintln!("trace written to {path}");
    }
    let mut illegal = 0usize;
    for r in &report.results {
        if let CheckStatus::Illegal(why) = &r.outcome.check {
            illegal += 1;
            eprintln!("ILLEGAL [{}]: {why}", r.label);
        }
        println!("{}", r.json_line());
    }
    eprintln!(
        "sweep: {} jobs in {:.1} ms — cache hits={} misses={} evictions={}",
        report.results.len(),
        elapsed.as_secs_f64() * 1e3,
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
    );
    if illegal > 0 {
        eprintln!("sweep: {illegal} illegal layout(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Render an [`Aggregate`](mlv_core::trace::Aggregate) as the trace
/// document format shared by `mlv profile`, `mlv sweep --trace`, and
/// `bench_layout --trace`: one JSON object per span/counter/histogram
/// (stable key order, io-escaped names) followed by a closing
/// `{"type":"digest",...}` line over the deterministic subset.
fn trace_document(agg: &mlv_core::trace::Aggregate) -> String {
    let mut out = String::new();
    for line in agg.json_lines() {
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&format!(
        "{{\"type\":\"digest\",\"value\":\"{:016x}\"}}\n",
        agg.digest()
    ));
    out
}

/// `mlv profile`: realize one `(family, L)` job through the engine
/// under a trace and print the trace document to stdout — pipeline
/// pass spans, engine/checker spans, counters, histograms, and the
/// deterministic digest. Human-readable summary goes to stderr.
fn cmd_profile(args: &[String]) -> ExitCode {
    use mlv_layout::engine::{CheckStatus, Engine, EngineOptions, Job};
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    if flags.positional.is_empty() {
        return fail("missing <family-spec>; try `mlv profile hypercube 6 --layers 4`");
    }
    let spec = flags.positional.join(":");
    let family = match parse_family(&spec) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let layers = match flags.layers.as_deref().map(parse_layers) {
        Some(Ok(ls)) if ls.len() == 1 => ls[0],
        Some(Ok(_)) => return fail("`mlv profile` takes one layer count"),
        Some(Err(e)) => return fail(e),
        None => 4,
    };
    let pdk = match resolve_pdk(flags.pdk.as_deref()) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    let mut engine = Engine::new(EngineOptions {
        check: !flags.no_check,
        ..EngineOptions::default()
    });
    let jobs = vec![match pdk {
        Some(p) => Job::with_pdk(spec.as_str(), family, layers, p),
        None => Job::new(spec.as_str(), family, layers),
    }];
    let clock = std::time::Instant::now();
    let trace = mlv_core::trace::Trace::new();
    let report = trace.collect(|| engine.run(&jobs));
    let elapsed = clock.elapsed();
    let agg = trace.aggregate();
    print!("{}", trace_document(&agg));
    let mut illegal = false;
    for r in &report.results {
        if let CheckStatus::Illegal(why) = &r.outcome.check {
            illegal = true;
            eprintln!("ILLEGAL [{}]: {why}", r.label);
        }
    }
    eprintln!(
        "profile: {spec} L={layers} in {:.1} ms — {} span(s), {} counter(s), {} histogram(s)",
        elapsed.as_secs_f64() * 1e3,
        agg.spans.len(),
        agg.counters.len(),
        agg.histograms.len(),
    );
    if illegal {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `mlv check <file>`: load a saved layout and re-run the structural
/// legality checks (no topology reference).
fn cmd_check(args: &[String]) -> ExitCode {
    let mut tiled = false;
    let mut pdk_flag: Option<String> = None;
    let mut path: Option<&String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiled" => tiled = true,
            "--pdk" => {
                pdk_flag = Some(match it.next() {
                    Some(v) => v.clone(),
                    None => return fail("--pdk needs a value (uniform, hv6, or @file.pdk)"),
                })
            }
            other if other.starts_with("--") => return fail(format!("unknown flag '{other}'")),
            _ => path = Some(a),
        }
    }
    let pdk = match resolve_pdk(pdk_flag.as_deref()) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    if tiled && pdk.is_some() {
        return fail("--pdk with a non-uniform stack needs the full checker; drop --tiled");
    }
    let Some(path) = path else {
        return fail("missing <layout-file.mlv>");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(format!("reading {path}: {e}")),
    };
    let layout = match mlv_grid::io::read_layout(&text) {
        Ok(l) => l,
        Err(e) => return fail(format!("{path}: {e}")),
    };
    // --tiled drives the streaming checker/metrics over the layout as a
    // stream source (constant occupancy memory) instead of the full grid
    let (r, m) = if tiled {
        (
            mlv_grid::check_stream(&layout, None),
            mlv_grid::metrics_stream(&layout),
        )
    } else {
        match &pdk {
            Some(p) => (
                checker::check_with_pdk(&layout, None, p),
                LayoutMetrics::of(&layout),
            ),
            None => (checker::check(&layout, None), LayoutMetrics::of(&layout)),
        }
    };
    println!(
        "{}: {} nodes, {} wires, area {}, layers {}",
        layout.name,
        layout.nodes.len(),
        layout.wires.len(),
        m.area,
        layout.layers
    );
    if let Some(p) = &pdk {
        match mlv_grid::metrics::PhysicalMetrics::of(&layout, p) {
            Ok(ph) => println!(
                "physical [{}]: area {} ({} x {}), wirelength {} (vias {})",
                ph.pdk, ph.area, ph.width, ph.height, ph.wirelength, ph.via_cost
            ),
            Err(e) => println!("physical: unavailable ({e})"),
        }
    }
    if r.is_legal() {
        println!("legality: VERIFIED");
        ExitCode::SUCCESS
    } else {
        println!("legality: FAILED ({} error(s))", r.errors.len());
        for e in r.errors.iter().take(5) {
            println!("  {e:?}");
        }
        ExitCode::FAILURE
    }
}

/// `mlv serve`: run the persistent layout service. `--listen <addr>`
/// starts the TCP transport; `--stdio` (the default when no transport
/// is named) serves stdin/stdout as one connection until EOF. Both may
/// be combined — the TCP listener runs on background threads while the
/// stdio loop blocks the main thread.
fn cmd_serve(args: &[String]) -> ExitCode {
    use mlv_serve::{listen, serve_stdio, ServeConfig, Service};
    let mut stdio = false;
    let mut listen_addr: Option<String> = None;
    let mut max_connections = 16usize;
    let mut pdk_flag: Option<String> = None;
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stdio" => stdio = true,
            "--listen" => {
                listen_addr = Some(match it.next() {
                    Some(v) => v.clone(),
                    None => return fail("--listen needs an address (e.g. 127.0.0.1:7171)"),
                })
            }
            "--queue-depth" => {
                config.queue_depth = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => return fail("--queue-depth needs a positive integer"),
                }
            }
            "--max-connections" => {
                max_connections = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => return fail("--max-connections needs a positive integer"),
                }
            }
            "--cache-capacity" => {
                config.cache_capacity = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => return fail("--cache-capacity needs a positive integer"),
                }
            }
            "--pdk" => {
                pdk_flag = Some(match it.next() {
                    Some(v) => v.clone(),
                    None => return fail("--pdk needs a value (uniform, hv6, or @file.pdk)"),
                })
            }
            other => return fail(format!("unknown serve flag '{other}'")),
        }
    }
    config.default_pdk = match resolve_pdk(pdk_flag.as_deref()) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    let service = std::sync::Arc::new(Service::new(config));
    let server = match &listen_addr {
        Some(addr) => match listen(std::sync::Arc::clone(&service), addr, max_connections) {
            Ok(h) => {
                eprintln!("serve: listening on {}", h.addr());
                Some(h)
            }
            Err(e) => return fail(format!("binding {addr}: {e}")),
        },
        None => None,
    };
    if stdio || listen_addr.is_none() {
        eprintln!("serve: reading JSON-lines requests from stdin");
        let stats = serve_stdio(&service);
        eprintln!(
            "serve: stdio closed — {} accepted, {} shed, {} oversize",
            stats.accepted, stats.shed, stats.oversize
        );
        if let Some(h) = server {
            h.shutdown();
        }
        ExitCode::SUCCESS
    } else {
        // TCP only: the accept loop owns the process lifetime
        server.expect("--listen was given").join();
        ExitCode::SUCCESS
    }
}

/// `mlv conformance`: run the cross-family conformance harness and
/// print one JSON line per family. Exit code: 0 only when every oracle
/// passed, no injection survived, and (for full-vocabulary runs with
/// injection on) every `CheckError` kind was exercised.
fn cmd_conformance(args: &[String]) -> ExitCode {
    let mut config = mlv_conformance::Config::from_env();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                config.seed = match it.next().and_then(|v| v.parse().ok()) {
                    Some(s) => s,
                    None => return fail("--seed needs an unsigned integer"),
                }
            }
            "--cases" => {
                config.cases_per_family = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => return fail("--cases needs a positive integer"),
                }
            }
            "--families" => {
                let Some(list) = it.next() else {
                    return fail("--families needs a comma-separated list");
                };
                let known = mlv_conformance::cases::family_names();
                let families: Vec<String> = list.split(',').map(|s| s.trim().to_string()).collect();
                for f in &families {
                    if !known.contains(&f.as_str()) {
                        return fail(format!("unknown family '{f}'; choose from {known:?}"));
                    }
                }
                config.families = families;
            }
            "--no-inject" => config.inject = false,
            "--pdk-axis" => config.pdk_axis = true,
            other => return fail(format!("unknown conformance flag '{other}'")),
        }
    }
    // full kind coverage is only demanded when the run can deliver it:
    // injection on, the whole family vocabulary in play, and enough
    // cases per family to cycle through every strategy (the cycle is
    // longer when the PDK axis adds its strategies)
    let cycle = if config.pdk_axis {
        mlv_conformance::inject::Strategy::ALL_WITH_PDK.len()
    } else {
        mlv_conformance::inject::Strategy::ALL.len()
    };
    let full = config.inject
        && config.families.len() == mlv_conformance::cases::family_names().len()
        && config.cases_per_family >= cycle;
    eprintln!(
        "conformance: seed={} cases/family={} families={} inject={} pdk_axis={}",
        config.seed,
        config.cases_per_family,
        config.families.len(),
        config.inject,
        config.pdk_axis
    );
    let report = mlv_conformance::run(&config);
    for r in &report.results {
        println!("{}", r.json_line());
    }
    if !report.uncovered_kinds().is_empty() {
        eprintln!(
            "CheckError kinds not exercised: {:?}",
            report.uncovered_kinds()
        );
    }
    if report.passed(full) {
        eprintln!(
            "conformance: PASSED (reproduce with --seed {})",
            report.seed
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "conformance: FAILED (reproduce with --seed {})",
            report.seed
        );
        ExitCode::FAILURE
    }
}

fn cmd_figures(args: &[String]) -> ExitCode {
    use mlv_collinear::complete::complete_collinear;
    use mlv_collinear::hypercube::hypercube_collinear;
    use mlv_collinear::karyn::kary_collinear;
    use mlv_collinear::render::render_tracks;
    use mlv_grid::render::render_block_grid;
    use mlv_layout::scheme::figure1_labels;

    let which = args.first().map(String::as_str).unwrap_or("");
    let all = which.is_empty();
    if all || which == "f1" {
        println!("Figure 1 — recursive grid layout scheme:\n");
        println!("{}", render_block_grid(&figure1_labels(3, 4), 7, 3));
    }
    if all || which == "f2" {
        let l = kary_collinear(3, 2);
        println!(
            "Figure 2 — collinear 3-ary 2-cube ({} tracks):\n",
            l.tracks()
        );
        println!("{}", render_tracks(&l, None));
    }
    if all || which == "f3" {
        let l = complete_collinear(9);
        println!("Figure 3 — collinear K9 ({} tracks):\n", l.tracks());
        println!("{}", render_tracks(&l, None));
    }
    if all || which == "f4" {
        let l = hypercube_collinear(4);
        println!("Figure 4 — collinear 4-cube ({} tracks):\n", l.tracks());
        println!("{}", render_tracks(&l, None));
    }
    ExitCode::SUCCESS
}
