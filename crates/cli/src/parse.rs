//! Family-spec parsing: `"<name>:<args>"` strings to [`Family`]
//! instances (run `mlv families` for every accepted spelling).
//!
//! The grammar itself lives in [`mlv_layout::registry`] — one table
//! shared with the conformance lattice and `mlv families` — so this
//! module is a thin delegate.

use mlv_layout::families::Family;
use mlv_layout::registry;

/// Parse a family spec. Returns a readable error for anything invalid.
pub fn parse_family(spec: &str) -> Result<Family, String> {
    registry::parse(spec)
}

/// Parse a comma-separated layer list, e.g. `"2,4,8"`.
pub fn parse_layers(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .ok()
                .filter(|&l| l >= 2)
                .ok_or_else(|| format!("bad layer count '{t}' (need integers >= 2)"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_registry_example() {
        for entry in registry::REGISTRY {
            let fam =
                parse_family(entry.example).unwrap_or_else(|e| panic!("{}: {e}", entry.example));
            assert!(fam.graph.node_count() > 0, "{}", entry.example);
        }
    }

    #[test]
    fn rejects_unknown_and_missing_arguments() {
        assert!(parse_family("nope:3").is_err());
        // every family needs at least one numeric argument
        for entry in registry::REGISTRY {
            assert!(parse_family(entry.name).is_err(), "{}", entry.name);
        }
    }

    #[test]
    fn layer_list() {
        assert_eq!(parse_layers("2,4,8").unwrap(), vec![2, 4, 8]);
        assert!(parse_layers("1").is_err());
        assert!(parse_layers("x").is_err());
    }

    #[test]
    fn parsed_families_match_direct_construction() {
        // the example spec and a second parse of the same spec must
        // agree exactly — the registry constructors are deterministic
        for entry in registry::REGISTRY {
            let a = parse_family(entry.example).unwrap();
            let b = parse_family(entry.example).unwrap();
            assert_eq!(
                a.graph.edge_multiset(),
                b.graph.edge_multiset(),
                "{}",
                entry.example
            );
        }
    }
}
