//! Family-spec parsing: `"<name>:<args>"` strings to [`Family`]
//! instances, e.g. `hypercube:8`, `karyn:8,2`, `ghc:8,8,8`,
//! `clusterc:8,2,4,ring`.

use mlv_layout::families::{self, Family};
use mlv_topology::cluster::ClusterKind;

/// Everything `parse_family` understands, for `mlv families`.
pub const FAMILY_HELP: &[(&str, &str)] = &[
    ("hypercube:<n>", "binary n-cube (2^n nodes)"),
    ("karyn:<k>,<n>", "k-ary n-cube torus"),
    (
        "karyn-folded:<k>,<n>",
        "k-ary n-cube with folded rows/columns",
    ),
    ("mesh:<k>,<n>", "k-ary n-mesh (no wraparound)"),
    ("ghc:<r0>,<r1>,...", "generalized hypercube, mixed radices"),
    ("complete:<n>", "complete graph K_n (1-dim GHC)"),
    ("folded:<n>", "folded hypercube"),
    (
        "enhanced:<n>[,<seed>]",
        "enhanced cube (random extra links)",
    ),
    ("ccc:<n>", "cube-connected cycles"),
    ("rh:<n>", "reduced hypercube (n = 2^s)"),
    (
        "butterfly:<m>[,<b>]",
        "wrapped butterfly, cluster radix 2^b",
    ),
    ("hsn:<levels>,<r>", "hierarchical swap network over K_r"),
    (
        "hhn:<levels>,<s>",
        "hierarchical hypercube network (s-cube nuclei)",
    ),
    ("isn:<levels>,<r>", "indirect swap network"),
    (
        "clusterc:<k>,<n>,<c>,<ring|cube|complete>",
        "k-ary n-cube cluster-c",
    ),
    ("star:<n>", "star graph (n! nodes)"),
    ("pancake:<n>", "pancake graph"),
    ("bubble:<n>", "bubble-sort graph"),
    ("transposition:<n>", "transposition network"),
    ("scc:<n>", "star-connected cycles"),
    ("macrostar:<l>,<n>", "macro-star network MS(l,n)"),
];

/// Parse a family spec. Returns a readable error for anything invalid.
pub fn parse_family(spec: &str) -> Result<Family, String> {
    let (name, rest) = spec.split_once(':').unwrap_or((spec, ""));
    // leading numeric arguments; trailing word arguments (e.g. the
    // cluster kind) are read from `rest` directly where needed
    let nums: Vec<usize> = rest
        .split(',')
        .map_while(|t| t.trim().parse::<usize>().ok())
        .collect();
    let need = |n: usize| -> Result<(), String> {
        if nums.len() < n {
            Err(format!("'{spec}': expected {n} numeric argument(s)"))
        } else {
            Ok(())
        }
    };
    match name {
        "hypercube" => {
            need(1)?;
            Ok(families::hypercube(nums[0]))
        }
        "karyn" => {
            need(2)?;
            Ok(families::karyn_cube(nums[0], nums[1], false))
        }
        "karyn-folded" => {
            need(2)?;
            Ok(families::karyn_cube(nums[0], nums[1], true))
        }
        "mesh" => {
            need(2)?;
            Ok(families::karyn_mesh(nums[0], nums[1]))
        }
        "ghc" => {
            need(1)?;
            Ok(families::genhyper(&nums))
        }
        "complete" => {
            need(1)?;
            Ok(families::genhyper(&nums[..1]))
        }
        "folded" => {
            need(1)?;
            Ok(families::folded_hypercube(nums[0]))
        }
        "enhanced" => {
            need(1)?;
            let seed = nums.get(1).copied().unwrap_or(2026) as u64;
            Ok(families::enhanced_cube(nums[0], seed))
        }
        "ccc" => {
            need(1)?;
            Ok(families::ccc(nums[0]))
        }
        "rh" => {
            need(1)?;
            Ok(families::reduced_hypercube(nums[0]))
        }
        "butterfly" => {
            need(1)?;
            let b = nums.get(1).copied().unwrap_or(0);
            Ok(families::butterfly_clustered(nums[0], b))
        }
        "hsn" => {
            need(2)?;
            Ok(families::hsn(nums[0], nums[1]))
        }
        "hhn" => {
            need(2)?;
            Ok(families::hhn(nums[0], nums[1]))
        }
        "isn" => {
            need(2)?;
            Ok(families::isn(nums[0], nums[1]))
        }
        "clusterc" => {
            need(3)?;
            let kind = match rest.split(',').nth(3).map(str::trim) {
                Some("ring") | None => ClusterKind::Ring,
                Some("cube") | Some("hypercube") => ClusterKind::Hypercube,
                Some("complete") => ClusterKind::Complete,
                Some(other) => return Err(format!("unknown cluster kind '{other}'")),
            };
            Ok(families::kary_cluster(nums[0], nums[1], nums[2], kind))
        }
        "star" => {
            need(1)?;
            Ok(families::star(nums[0]))
        }
        "pancake" => {
            need(1)?;
            Ok(families::pancake(nums[0]))
        }
        "bubble" => {
            need(1)?;
            Ok(families::bubble_sort(nums[0]))
        }
        "transposition" => {
            need(1)?;
            Ok(families::transposition(nums[0]))
        }
        "scc" => {
            need(1)?;
            Ok(families::scc(nums[0]))
        }
        "macrostar" => {
            need(2)?;
            Ok(families::macro_star(nums[0], nums[1]))
        }
        _ => Err(format!(
            "unknown family '{name}'; run `mlv families` for the list"
        )),
    }
}

/// Parse a comma-separated layer list, e.g. `"2,4,8"`.
pub fn parse_layers(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .ok()
                .filter(|&l| l >= 2)
                .ok_or_else(|| format!("bad layer count '{t}' (need integers >= 2)"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_known_families() {
        for spec in [
            "hypercube:4",
            "karyn:4,2",
            "karyn-folded:4,2",
            "mesh:3,2",
            "ghc:4,4",
            "complete:6",
            "folded:4",
            "enhanced:4,7",
            "ccc:3",
            "rh:4",
            "butterfly:3",
            "butterfly:4,1",
            "hsn:2,4",
            "hhn:2,2",
            "isn:2,3",
            "clusterc:3,2,4,cube",
            "star:4",
            "pancake:4",
            "bubble:4",
            "transposition:4",
            "scc:4",
            "macrostar:2,2",
        ] {
            let fam = parse_family(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(fam.graph.node_count() > 0, "{spec}");
        }
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(parse_family("nope:3").is_err());
        assert!(parse_family("hypercube").is_err());
        assert!(parse_family("clusterc:3,2,4,triangle").is_err());
    }

    #[test]
    fn layer_list() {
        assert_eq!(parse_layers("2,4,8").unwrap(), vec![2, 4, 8]);
        assert!(parse_layers("1").is_err());
        assert!(parse_layers("x").is_err());
    }

    #[test]
    fn parsed_families_match_direct_construction() {
        let a = parse_family("hypercube:5").unwrap();
        let b = mlv_layout::families::hypercube(5);
        assert_eq!(a.graph.edge_multiset(), b.graph.edge_multiset());
    }
}
