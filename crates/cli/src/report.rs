//! Report generation: human-readable and JSON summaries of a layout.

use mlv_grid::analytics;
use mlv_grid::layout::Layout;
use mlv_grid::metrics::{LayoutMetrics, PhysicalMetrics};

/// Everything `mlv layout` reports about one realized layout.
#[derive(Clone, Debug)]
pub struct Report {
    /// Layout name.
    pub name: String,
    /// Node count.
    pub nodes: usize,
    /// Wire count.
    pub wires: usize,
    /// Headline metrics.
    pub metrics: LayoutMetrics,
    /// Maximum routed-path wire length, when computed.
    pub routed: Option<u64>,
    /// Whether the full legality check ran and passed.
    pub checked: Option<bool>,
    /// Wire points per layer.
    pub layer_usage: Vec<u64>,
    /// Horizontal-lane utilization: (lanes, mean, max).
    pub lanes: (usize, f64, f64),
    /// Wire-length stats: (mean, p50, p95, max).
    pub wire_stats: (f64, u64, u64, u64),
    /// Fraction of bounding area covered by node footprints.
    pub footprint_fraction: f64,
    /// Peak vertical-cut congestion.
    pub max_cut_flux: usize,
    /// Pitch-weighted metrics under a non-uniform stack (`--pdk`).
    pub physical: Option<PhysicalMetrics>,
}

impl Report {
    /// Collect a report from a layout (metrics + analytics; checking
    /// and routing are recorded by the caller).
    pub fn collect(layout: &Layout) -> Report {
        Report {
            name: layout.name.clone(),
            nodes: layout.nodes.len(),
            wires: layout.wires.len(),
            metrics: LayoutMetrics::of(layout),
            routed: None,
            checked: None,
            layer_usage: analytics::layer_usage(layout),
            lanes: analytics::lane_utilization(layout),
            wire_stats: analytics::wire_length_stats(layout),
            footprint_fraction: analytics::footprint_fraction(layout),
            max_cut_flux: analytics::max_cut_flux(layout),
            physical: None,
        }
    }

    /// Human-readable rendering.
    pub fn text(&self) -> String {
        let m = &self.metrics;
        let mut s = String::new();
        s.push_str(&format!("layout   : {}\n", self.name));
        s.push_str(&format!(
            "size     : {} nodes, {} wires\n",
            self.nodes, self.wires
        ));
        if let Some(ok) = self.checked {
            s.push_str(&format!(
                "legality : {}\n",
                if ok { "VERIFIED" } else { "FAILED" }
            ));
        }
        s.push_str(&format!(
            "area     : {} ({} x {}), volume {} ({} layers, {} used)\n",
            m.area,
            m.width,
            m.height,
            m.volume,
            m.layers,
            m.max_used_layer + 1
        ));
        s.push_str(&format!(
            "wires    : max {} planar / {} full, total {}, vias {}\n",
            m.max_wire_planar, m.max_wire_full, m.total_wire, m.via_count
        ));
        let (mean, p50, p95, max) = self.wire_stats;
        s.push_str(&format!(
            "lengths  : mean {mean:.1}, p50 {p50}, p95 {p95}, max {max}\n"
        ));
        if let Some(r) = self.routed {
            s.push_str(&format!("routed   : worst-pair total wire {r}\n"));
        }
        let (lanes, lmean, lmax) = self.lanes;
        s.push_str(&format!(
            "lanes    : {lanes} horizontal lanes, utilization mean {:.0}% max {:.0}%\n",
            lmean * 100.0,
            lmax * 100.0
        ));
        s.push_str(&format!(
            "density  : footprint fraction {:.1}%, peak cut flux {}\n",
            self.footprint_fraction * 100.0,
            self.max_cut_flux
        ));
        s.push_str(&format!("layers   : usage {:?}\n", self.layer_usage));
        if let Some(ph) = &self.physical {
            s.push_str(&format!(
                "physical : [{}] area {} ({} x {}), wirelength {} (vias {}), max wire {}\n",
                ph.pdk, ph.area, ph.width, ph.height, ph.wirelength, ph.via_cost, ph.max_wire
            ));
        }
        s
    }

    /// JSON rendering (hand-rolled; flat structure, no external deps).
    /// Byte-identical to the PDK-free report unless a non-uniform
    /// stack added [`Report::physical`] fields.
    pub fn json(&self) -> String {
        let m = &self.metrics;
        let (mean, p50, p95, max) = self.wire_stats;
        let (lanes, lmean, lmax) = self.lanes;
        let mut out = format!(
            concat!(
                "{{\n",
                "  \"name\": \"{}\",\n",
                "  \"nodes\": {},\n",
                "  \"wires\": {},\n",
                "  \"checked\": {},\n",
                "  \"area\": {},\n",
                "  \"width\": {},\n",
                "  \"height\": {},\n",
                "  \"volume\": {},\n",
                "  \"layers\": {},\n",
                "  \"used_layers\": {},\n",
                "  \"max_wire_planar\": {},\n",
                "  \"max_wire_full\": {},\n",
                "  \"total_wire\": {},\n",
                "  \"via_count\": {},\n",
                "  \"routed_worst_pair\": {},\n",
                "  \"wire_len_mean\": {:.3},\n",
                "  \"wire_len_p50\": {},\n",
                "  \"wire_len_p95\": {},\n",
                "  \"wire_len_max\": {},\n",
                "  \"lanes\": {},\n",
                "  \"lane_util_mean\": {:.4},\n",
                "  \"lane_util_max\": {:.4},\n",
                "  \"footprint_fraction\": {:.4},\n",
                "  \"max_cut_flux\": {},\n",
                "  \"layer_usage\": {:?}\n",
                "}}\n",
            ),
            self.name.replace('"', "'"),
            self.nodes,
            self.wires,
            self.checked.map(|b| b.to_string()).unwrap_or("null".into()),
            m.area,
            m.width,
            m.height,
            m.volume,
            m.layers,
            m.max_used_layer + 1,
            m.max_wire_planar,
            m.max_wire_full,
            m.total_wire,
            m.via_count,
            self.routed.map(|r| r.to_string()).unwrap_or("null".into()),
            mean,
            p50,
            p95,
            max,
            lanes,
            lmean,
            lmax,
            self.footprint_fraction,
            self.max_cut_flux,
            self.layer_usage,
        );
        if let Some(ph) = &self.physical {
            out.truncate(out.len() - "\n}\n".len());
            out.push_str(&format!(
                concat!(
                    ",\n",
                    "  \"pdk\": \"{}\",\n",
                    "  \"phys_width\": {},\n",
                    "  \"phys_height\": {},\n",
                    "  \"phys_area\": {},\n",
                    "  \"phys_wirelength\": {},\n",
                    "  \"phys_max_wire\": {},\n",
                    "  \"phys_via_cost\": {}\n",
                    "}}\n",
                ),
                ph.pdk.replace('"', "'"),
                ph.width,
                ph.height,
                ph.area,
                ph.wirelength,
                ph.max_wire,
                ph.via_cost,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlv_layout::families;

    #[test]
    fn report_text_and_json() {
        let layout = families::hypercube(4).realize(4);
        let mut r = Report::collect(&layout);
        r.checked = Some(true);
        r.routed = Some(123);
        let t = r.text();
        assert!(t.contains("VERIFIED"));
        assert!(t.contains("area"));
        assert!(t.contains("routed"));
        let j = r.json();
        assert!(j.contains("\"checked\": true"));
        assert!(j.contains("\"routed_worst_pair\": 123"));
        // rudimentary JSON sanity: balanced braces, no trailing comma
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",\n}"));
    }

    #[test]
    fn unchecked_report_serializes_null() {
        let layout = families::hypercube(3).realize(2);
        let r = Report::collect(&layout);
        assert!(r.json().contains("\"checked\": null"));
    }
}
