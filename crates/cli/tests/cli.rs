//! Integration tests driving the `mlv` binary end to end: registry
//! reachability through `mlv families --json`, and the trace surface
//! (`mlv profile`, `mlv sweep --trace`) that CI's smoke leg parses.

use std::process::Command;

fn mlv(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mlv"))
        .args(args)
        .output()
        .expect("spawn mlv")
}

/// Every registry family — lattice-bearing or not — is reachable from
/// `mlv families --json`, with its keyword, grammar, and lattice flag
/// intact. A family added to the registry without surfacing here fails.
#[test]
fn families_json_covers_registry() {
    let out = mlv(&["families", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), mlv_layout::registry::REGISTRY.len());
    for e in mlv_layout::registry::REGISTRY {
        let line = lines
            .iter()
            .find(|l| l.contains(&format!("\"name\":\"{}\"", e.name)))
            .unwrap_or_else(|| panic!("{}: missing from families --json", e.name));
        assert!(
            line.contains(&format!("\"keyword\":\"{}\"", e.keyword)),
            "{line}"
        );
        assert!(
            line.contains(&format!("\"spec\":\"{}\"", e.grammar)),
            "{line}"
        );
        assert!(
            line.contains(&format!("\"lattice\":{}", e.lattice.is_some())),
            "{line}"
        );
        // the advertised example spec really builds a layout
        let built = mlv(&["layout", e.example, "--json"]);
        assert!(built.status.success(), "{} example failed", e.example);
    }
}

/// `mlv profile` emits one JSON object per line, covers all four
/// pipeline passes plus the engine spans, and closes with a digest.
#[test]
fn profile_emits_full_trace() {
    let out = mlv(&["profile", "hypercube", "6", "--layers", "4"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for line in stdout.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
    }
    for span in [
        "pass.placement",
        "pass.tracks",
        "pass.layers",
        "pass.emit",
        "pipeline",
        "engine.batch",
        "engine.job",
        "checker.check",
    ] {
        assert!(
            stdout.contains(&format!("\"type\":\"span\",\"name\":\"{span}\"")),
            "span {span} missing from:\n{stdout}"
        );
    }
    assert!(stdout.contains("\"name\":\"engine.cache.miss\",\"value\":1"));
    let last = stdout.lines().last().unwrap();
    assert!(
        last.starts_with("{\"type\":\"digest\",\"value\":\""),
        "no closing digest line: {last}"
    );
}

/// The profile digest is stable run-over-run: wall-clock fields vary,
/// the deterministic fingerprint does not.
#[test]
fn profile_digest_is_reproducible() {
    let digest = |out: std::process::Output| -> String {
        String::from_utf8(out.stdout)
            .unwrap()
            .lines()
            .last()
            .unwrap()
            .to_string()
    };
    let a = digest(mlv(&["profile", "ccc", "3", "--layers", "4"]));
    let b = digest(mlv(&["profile", "ccc", "3", "--layers", "4"]));
    assert_eq!(a, b);
}

/// `mlv sweep --trace` writes the trace document next to the normal
/// per-job stdout report, and the job lines stay byte-identical to a
/// traceless run (tracing must not perturb sweep output).
#[test]
fn sweep_trace_file_and_stdout() {
    let dir = std::env::temp_dir().join(format!("mlv-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sweep.trace");
    let args = ["sweep", "--lattice", "--seed", "2000", "--cases", "2"];
    let traced = mlv(&[&args[..], &["--trace", path.to_str().unwrap()]].concat());
    assert!(traced.status.success());
    let plain = mlv(&args);
    assert_eq!(plain.stdout, traced.stdout);
    let doc = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(doc.contains("\"type\":\"span\",\"name\":\"pass.tracks\""));
    assert!(doc.contains("\"type\":\"histogram\",\"name\":\"engine.job.queue_ns\""));
    assert!(doc
        .lines()
        .last()
        .unwrap()
        .starts_with("{\"type\":\"digest\""));
}
