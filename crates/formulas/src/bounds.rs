//! Trivial layout lower bounds from bisection width.
//!
//! The cut argument: slide a vertical line across the layout until the
//! node set is bisected. The cut plane has `H` rows × `L` layers of
//! grid points and each can carry at most one wire, so the line crosses
//! at most `H·L` wires; hence `H ≥ B/L`, and symmetrically `W ≥ B/L`:
//!
//! * **multilayer grid model**: `A ≥ (B/L)²` — the "trivial lower
//!   bound" of the paper's §1. Its headline layouts (butterfly, GHC,
//!   HSN, ISN) are optimal within `2 + o(1)` *per side* of this bound,
//!   i.e. within `4 + o(1)` in area — e.g. the HSN prediction `N²/4L²`
//!   against the bound `(N/4 / L)² = N²/16L²`.
//! * **Thompson model** (`L = 2`): `A ≥ B²/4` in this counting; the
//!   classical statement `A = Ω(B²)` has various constants depending on
//!   how node positions are charged — we expose the cut-counting form
//!   and report measured ratios rather than absolute optimality claims.

/// Lower bound on layout area under the L-layer grid model, from the
/// network's bisection width: `(B/L)²`.
pub fn area_lower_bound(bisection: usize, layers: usize) -> f64 {
    let side = bisection as f64 / layers as f64;
    side * side
}

/// Lower bound under the Thompson model (2 layers).
pub fn thompson_area_lower_bound(bisection: usize) -> f64 {
    area_lower_bound(bisection, 2)
}

/// Optimality ratio of a measured area against the trivial bound
/// (≥ 1 for any legal layout; the paper's headline layouts achieve
/// small constants).
pub fn optimality_ratio(measured_area: u64, bisection: usize, layers: usize) -> f64 {
    measured_area as f64 / area_lower_bound(bisection, layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_scales_inverse_quadratically_in_l() {
        let b2 = area_lower_bound(1000, 2);
        let b8 = area_lower_bound(1000, 8);
        assert!((b2 / b8 - 16.0).abs() < 1e-9);
    }

    #[test]
    fn odd_layers_use_full_l() {
        let b = area_lower_bound(300, 5);
        assert!((b - 3600.0).abs() < 1e-9);
    }

    #[test]
    fn hsn_prediction_exactly_4x_bound() {
        // predicted/bound = (N²/4L²) / (N/(4L))² = 4 — the paper's
        // "optimal within 2 + o(1)" per side
        let n: usize = 4096;
        let l = 8;
        let pred = crate::predictions::hsn(n, l).area;
        let bound = area_lower_bound(n / 4, l);
        let ratio = pred / bound;
        assert!((ratio - 4.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn butterfly_prediction_close_to_bound() {
        // asymptotically predicted/bound -> 1 (both are 4N²/(L²·lg²));
        // at finite m the prediction's lg N = lg(m·2^m) = m + lg m
        // exceeds the bound's m, giving ratio (m/(m+lg m))² < 1.
        let m = 10usize;
        let n = m << m;
        let l = 4;
        let pred = crate::predictions::butterfly(n, l).area;
        let bound = area_lower_bound(crate::bisection::butterfly_wrapped(m), l);
        let ratio = pred / bound;
        let expected = (m as f64 / (n as f64).log2()).powi(2);
        assert!((ratio - expected).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn optimality_ratio_identity() {
        // bound = (40/4)² = 100; measured 400 -> ratio 4
        let r = optimality_ratio(400, 40, 4);
        assert!((r - 4.0).abs() < 1e-9);
    }
}
