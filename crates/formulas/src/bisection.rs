//! Known bisection widths (exact or standard leading terms) for the
//! paper's network families. These feed the layout lower bounds in
//! [`crate::bounds`]; small instances are cross-checked against
//! exhaustive search in the tests.

/// Bisection width of the N-node complete graph: `⌈N/2⌉·⌊N/2⌋`.
pub fn complete(n: usize) -> usize {
    (n / 2) * n.div_ceil(2)
}

/// Bisection width of the n-dimensional hypercube: `N/2 = 2ⁿ⁻¹`.
pub fn hypercube(n: usize) -> usize {
    1usize << (n - 1)
}

/// Bisection width of the folded n-cube: the hypercube's `N/2` plus the
/// `N/2` diameter links all crossing the complement cut ⇒ `N`... more
/// precisely the standard value `2ⁿ` (cube cut `2ⁿ⁻¹` + diameter links
/// `2ⁿ⁻¹`).
pub fn folded_hypercube(n: usize) -> usize {
    1usize << n
}

/// Bisection width of the k-ary n-cube (torus), even `k ≥ 4`:
/// `2·kⁿ⁻¹` (cutting one dimension severs two links — forward and
/// wraparound — per digit line).
pub fn karyn(k: usize, n: usize) -> usize {
    2 * k.pow(n as u32 - 1)
}

/// Bisection width of the fixed-radix generalized hypercube: cutting
/// one dimension in half severs `(r/2)·(r−r/2)` links per digit line,
/// with `N/r` lines ⇒ `≈ N·r/4`.
pub fn genhyper(r: usize, n: usize) -> usize {
    let lines = r.pow(n as u32 - 1);
    lines * (r / 2) * r.div_ceil(2)
}

/// Standard leading term for the wrapped butterfly with `R = 2^m` rows:
/// `Θ(R)`; we use the common `2R` figure (each of the R rows is cut once
/// in each wrap direction).
pub fn butterfly_wrapped(m: usize) -> usize {
    2 * (1usize << m)
}

/// Standard leading term for CCC(n): the cube links dominate, giving
/// `≈ 2ⁿ⁻¹` (half of one dimension's cube links).
pub fn ccc(n: usize) -> usize {
    1usize << (n - 1)
}

/// HSN over an r-nucleus with l levels (`N = r^l`): cutting the top
/// dimension severs one link per cluster pair across the cut,
/// `(r/2)·⌈r/2⌉` pairs per top-digit line × `N/r²` lines ⇒ `≈ N/4`.
pub fn hsn(r: usize, levels: usize) -> usize {
    let lines = r.pow(levels as u32 - 2); // top-dimension digit lines of clusters
    lines * (r / 2) * r.div_ceil(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlv_topology::prelude::*;

    #[test]
    fn complete_matches_exact() {
        for n in 2..10 {
            let g = mlv_topology::complete::complete(n);
            assert_eq!(g.exact_bisection(16), Some(complete(n)), "n={n}");
        }
    }

    #[test]
    fn hypercube_matches_exact() {
        for n in 1..5 {
            let g = mlv_topology::hypercube::hypercube(n);
            assert_eq!(g.exact_bisection(16), Some(hypercube(n)), "n={n}");
        }
    }

    #[test]
    fn torus_matches_exact_small() {
        let g = mlv_topology::karyn::KaryNCube::torus(4, 2).graph;
        assert_eq!(g.exact_bisection(16), Some(karyn(4, 2)));
    }

    #[test]
    fn ghc_matches_exact_small() {
        let g = mlv_topology::genhyper::GeneralizedHypercube::fixed(4, 2).graph;
        assert_eq!(g.exact_bisection(16), Some(genhyper(4, 2)));
    }

    #[test]
    fn folded_hypercube_matches_exact_small() {
        let g = mlv_topology::variants::folded_hypercube(3);
        assert_eq!(g.exact_bisection(8), Some(folded_hypercube(3)));
    }

    #[test]
    fn hsn_cut_is_achievable() {
        // the numbering cut along the top digit achieves the formula
        let nucleus = mlv_topology::complete::complete(4);
        let h = mlv_topology::hsn::Hsn::new(3, &nucleus);
        assert_eq!(h.graph.numbering_cut_width(), {
            // numbering cut = top-digit halving cut: formula value plus
            // intra-cluster/nucleus links crossing (none: clusters are
            // contiguous in the numbering)
            hsn(4, 3)
        });
    }

    #[test]
    fn butterfly_figures_are_plausible() {
        // sanity: the numbering cut is within 2x of the 2R figure
        let bf = mlv_topology::butterfly::Butterfly::wrapped(4);
        let cut = bf.graph.numbering_cut_width();
        let formula = butterfly_wrapped(4);
        assert!(cut <= 2 * formula && formula <= 4 * cut, "cut={cut}");
    }
}
