//! # mlv-formulas
//!
//! Closed-form predictions from the paper (Yeh, Varvarigos & Parhami,
//! ICPP 2000) and the "trivial" lower bounds its optimality claims are
//! measured against.
//!
//! Every evaluation table of the reproduction compares a *measured*
//! quantity (computed from a concrete, checker-verified layout built by
//! `mlv-layout`) against the *predicted* leading term provided here.
//! Predictions are leading terms only — the paper writes each result as
//! `c·f(N,L) + o(f(N,L))` and our harness reports the measured/predicted
//! ratio, which must tend to 1 (or stay within documented slack at the
//! modest sizes a checker-verified layout permits).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisection;
pub mod bounds;
pub mod predictions;

pub use predictions::Prediction;
