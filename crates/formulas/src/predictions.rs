//! Leading-term predictions, one function per paper section.
//!
//! Conventions:
//! * `l` is the number of wiring layers; even and odd `l` get the
//!   paper's respective formulas (`L²` vs `L²−1` in denominators).
//! * `max_wire` is `None` where the paper only gives an order bound
//!   (k-ary n-cubes: `O(N/(Lk²))`).
//! * `max_routed` is the "maximum total length of wires along a shortest
//!   routing path" (paper §1 claim 4), given where the paper states it.

/// Leading-term prediction for one (network, L) configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Layout area leading term.
    pub area: f64,
    /// Layout volume leading term (`L ×` area by the paper's definition).
    pub volume: f64,
    /// Maximum wire length leading term, when the paper states one.
    pub max_wire: Option<f64>,
    /// Maximum routed-path wire length leading term, when stated.
    pub max_routed: Option<f64>,
}

/// Effective squared-layer factor: `L²` for even L, `L²−1` for odd L
/// (odd L leaves one layer unpaired, exactly as in the paper's odd-L
/// area formulas).
fn l2_eff(l: usize) -> f64 {
    let lf = l as f64;
    if l.is_multiple_of(2) {
        lf * lf
    } else {
        lf * lf - 1.0
    }
}

/// §3.1 — k-ary n-cube with `N = kⁿ` nodes on `l` layers:
/// area `16N²/(L²k²)`, volume `16N²/(Lk²)`, max wire `O(N/(Lk²))`
/// (order only; `max_wire` is `None`).
pub fn karyn(k: usize, n: usize, l: usize) -> Prediction {
    let nn = (k as f64).powi(n as i32);
    let k2 = (k * k) as f64;
    let area = 16.0 * nn * nn / (l2_eff(l) * k2);
    Prediction {
        area,
        volume: l as f64 * area,
        max_wire: None,
        max_routed: None,
    }
}

/// §3.1's order bound for the folded k-ary n-cube maximum wire length,
/// `c·N/(Lk²)` with the constant left free by the paper; we expose the
/// scale `N/(Lk²)` so harnesses can report the measured constant.
pub fn karyn_max_wire_scale(k: usize, n: usize, l: usize) -> f64 {
    let nn = (k as f64).powi(n as i32);
    nn / (l as f64 * (k * k) as f64)
}

/// §3.2's mesh extension — k-ary n-mesh: per-dimension tracks halve
/// (`(kⁿ−1)/(k−1)` vs `2(kⁿ−1)/(k−1)`), so both sides halve and the
/// area is a quarter of the torus': `4N²/(L²k²)`.
pub fn karyn_mesh(k: usize, n: usize, l: usize) -> Prediction {
    let torus = karyn(k, n, l);
    Prediction {
        area: torus.area / 4.0,
        volume: torus.volume / 4.0,
        max_wire: None,
        max_routed: None,
    }
}

/// §4.1 — n-dimensional radix-r generalized hypercube (`N = rⁿ`):
/// area `r²N²/(4L²)`, volume `r²N²/(4L)`, max wire `rN/(2L)`,
/// max routed-path `rN/L`.
pub fn genhyper(r: usize, n: usize, l: usize) -> Prediction {
    let nn = (r as f64).powi(n as i32);
    let r2 = (r * r) as f64;
    let area = r2 * nn * nn / (4.0 * l2_eff(l));
    Prediction {
        area,
        volume: l as f64 * area,
        max_wire: Some(r as f64 * nn / (2.0 * l as f64)),
        max_routed: Some(r as f64 * nn / l as f64),
    }
}

/// §4.2 — N-node butterfly: area `4N²/(L²·log₂²N)`, volume
/// `4N²/(L·log₂²N)`, max wire `2N/(L·log₂N)`.
pub fn butterfly(n_nodes: usize, l: usize) -> Prediction {
    let nn = n_nodes as f64;
    let lg = nn.log2();
    let area = 4.0 * nn * nn / (l2_eff(l) * lg * lg);
    Prediction {
        area,
        volume: l as f64 * area,
        max_wire: Some(2.0 * nn / (l as f64 * lg)),
        max_routed: None,
    }
}

/// §4.3 — N-node hierarchical swap network (nucleus size r not a
/// constant): area `N²/(4L²)`, volume `N²/(4L)`, max wire `N/(2L)`,
/// max routed-path `N/L`. HHNs share these numbers.
pub fn hsn(n_nodes: usize, l: usize) -> Prediction {
    let nn = n_nodes as f64;
    let area = nn * nn / (4.0 * l2_eff(l));
    Prediction {
        area,
        volume: l as f64 * area,
        max_wire: Some(nn / (2.0 * l as f64)),
        max_routed: Some(nn / l as f64),
    }
}

/// §4.3 — N-node indirect swap network: area and volume a factor ≈ 4
/// below the same-size butterfly, wire lengths a factor ≈ 2 below.
pub fn isn(n_nodes: usize, l: usize) -> Prediction {
    let b = butterfly(n_nodes, l);
    Prediction {
        area: b.area / 4.0,
        volume: b.volume / 4.0,
        max_wire: b.max_wire.map(|w| w / 2.0),
        max_routed: None,
    }
}

/// §5.1 — N-node hypercube: area `16N²/(9L²)`, volume `16N²/(9L)`
/// (the paper's §5.1 prints `9L²` for the volume too, but volume is
/// `L·area` by its own §2.2 definition — we use `16N²/(9L)`), max wire
/// `2N/(3L)`.
pub fn hypercube(n_nodes: usize, l: usize) -> Prediction {
    let nn = n_nodes as f64;
    let area = 16.0 * nn * nn / (9.0 * l2_eff(l));
    Prediction {
        area,
        volume: l as f64 * area,
        max_wire: Some(2.0 * nn / (3.0 * l as f64)),
        max_routed: None,
    }
}

/// §5.2 — N-node CCC (`N = n·2ⁿ`): area `16N²/(9L²·log₂²N)`. Reduced
/// hypercubes share the formula.
pub fn ccc(n_nodes: usize, l: usize) -> Prediction {
    let nn = n_nodes as f64;
    let lg = nn.log2();
    let area = 16.0 * nn * nn / (9.0 * l2_eff(l) * lg * lg);
    Prediction {
        area,
        volume: l as f64 * area,
        max_wire: None,
        max_routed: None,
    }
}

/// §5.3 — N-node folded hypercube: the hypercube layout plus `N/2`
/// diameter links needing ≤ N/2 extra tracks each way:
/// side `7N/(3L)`, area `49N²/(9L²)`.
pub fn folded_hypercube(n_nodes: usize, l: usize) -> Prediction {
    let nn = n_nodes as f64;
    let area = 49.0 * nn * nn / (9.0 * l2_eff(l));
    Prediction {
        area,
        volume: l as f64 * area,
        max_wire: Some(7.0 * nn / (3.0 * l as f64)),
        max_routed: None,
    }
}

/// §5.3 — N-node enhanced cube: `N` extra links, side `10N/(3L)`,
/// area `100N²/(9L²)`.
pub fn enhanced_cube(n_nodes: usize, l: usize) -> Prediction {
    let nn = n_nodes as f64;
    let area = 100.0 * nn * nn / (9.0 * l2_eff(l));
    Prediction {
        area,
        volume: l as f64 * area,
        max_wire: Some(10.0 * nn / (3.0 * l as f64)),
        max_routed: None,
    }
}

/// §2.2 — the model-comparison ratios of the paper's introduction:
/// going from 2 to `l` layers, the direct multilayer redesign divides
/// the area by `l²/4` (even l), the folded-Thompson baseline only by
/// `l/2`, and the multilayer-collinear baseline by at most `l/2`.
pub fn model_area_gain_direct(l: usize) -> f64 {
    l2_eff(l) / 4.0
}

/// §2.2 — area gain of the folded baseline: `l/2`.
pub fn model_area_gain_folded(l: usize) -> f64 {
    l as f64 / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_odd_layer_factor() {
        assert_eq!(l2_eff(4), 16.0);
        assert_eq!(l2_eff(5), 24.0);
        assert_eq!(l2_eff(2), 4.0);
    }

    #[test]
    fn karyn_scales_as_l_squared() {
        let a2 = karyn(8, 2, 2);
        let a8 = karyn(8, 2, 8);
        assert!((a2.area / a8.area - 16.0).abs() < 1e-9);
        assert!((a2.volume / a8.volume - 4.0).abs() < 1e-9);
    }

    #[test]
    fn hypercube_thompson_matches_known_constant() {
        // L = 2: area = 16N²/36 = 4N²/9 (the known 2-layer figure from
        // Yeh et al. FMPC'99)
        let p = hypercube(64, 2);
        assert!((p.area - 4.0 * 64.0 * 64.0 / 9.0).abs() < 1e-9);
        assert_eq!(p.max_wire, Some(2.0 * 64.0 / 6.0));
    }

    #[test]
    fn ghc_prediction_shape() {
        let p = genhyper(4, 3, 4);
        let n = 64.0;
        assert!((p.area - 16.0 * n * n / (4.0 * 16.0)).abs() < 1e-9);
        assert_eq!(p.max_routed, Some(4.0 * n / 4.0));
    }

    #[test]
    fn isn_is_quarter_butterfly() {
        let b = butterfly(1024, 4);
        let i = isn(1024, 4);
        assert!((b.area / i.area - 4.0).abs() < 1e-9);
        assert!((b.max_wire.unwrap() / i.max_wire.unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn folded_and_enhanced_side_ratios() {
        let h = hypercube(256, 2);
        let f = folded_hypercube(256, 2);
        let e = enhanced_cube(256, 2);
        // sides 2N/3L : 7N/3L : 10N/3L => areas 16:49:100 over 9L²...
        assert!((f.area / h.area - 49.0 / 16.0).abs() < 1e-9);
        assert!((e.area / h.area - 100.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn model_gains() {
        assert_eq!(model_area_gain_direct(8), 16.0);
        assert_eq!(model_area_gain_folded(8), 4.0);
        // direct beats folded for every L > 2
        for l in (4..20).step_by(2) {
            assert!(model_area_gain_direct(l) > model_area_gain_folded(l));
        }
        assert_eq!(model_area_gain_direct(2), model_area_gain_folded(2));
    }

    #[test]
    fn volume_is_l_times_area_everywhere() {
        for l in 2..9 {
            for p in [
                karyn(4, 3, l),
                genhyper(3, 3, l),
                butterfly(640, l),
                hsn(625, l),
                isn(768, l),
                hypercube(128, l),
                ccc(192, l),
                folded_hypercube(64, l),
                enhanced_cube(64, l),
            ] {
                assert!((p.volume - l as f64 * p.area).abs() < 1e-6);
            }
        }
    }
}
