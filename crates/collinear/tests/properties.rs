//! Property-based tests (proptest) for collinear layouts: greedy
//! colouring optimality, construction validity across parameters, and
//! order-change invariants.

use mlv_collinear::complete::complete_collinear;
use mlv_collinear::folded::{fold_outer_groups, folded_sequence, reorder_and_recolor};
use mlv_collinear::genhyper::{genhyper_collinear, genhyper_track_count};
use mlv_collinear::hypercube::{hypercube_collinear, hypercube_track_count};
use mlv_collinear::interval::{color_intervals, max_load};
use mlv_collinear::karyn::{kary_collinear, kary_track_count};
use mlv_collinear::track::CollinearLayout;
use mlv_core::prop;
use mlv_core::{mlv_proptest, prop_assert, prop_assert_eq, prop_assume};

mlv_proptest! {
    /// Greedy interval colouring is optimal: tracks used == max gap
    /// load, and the result validates.
    #[test]
    fn greedy_is_optimal(
        spans_raw in prop::vec((0usize..40, 0usize..40), 1..80)
    ) {
        let spans: Vec<(usize, usize)> = spans_raw
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        prop_assume!(!spans.is_empty());
        let wires = color_intervals(&spans);
        let mut l = CollinearLayout::new("t", (0..41u32).collect());
        l.wires = wires;
        l.assert_valid();
        prop_assert_eq!(l.tracks(), max_load(&spans));
    }

    /// The k-ary construction matches its closed form and the torus
    /// topology for every (k, n) in range.
    #[test]
    fn kary_construction_sound(k in 3usize..6, n in 1usize..4) {
        let l = kary_collinear(k, n);
        l.assert_valid();
        prop_assert_eq!(l.tracks(), kary_track_count(k, n));
        prop_assert_eq!(
            l.edge_multiset(),
            mlv_topology::karyn::KaryNCube::torus(k, n).graph.edge_multiset()
        );
    }

    /// The hypercube construction hits ⌊2N/3⌋ for every n.
    #[test]
    fn hypercube_construction_sound(n in 1usize..10) {
        let l = hypercube_collinear(n);
        l.assert_valid();
        prop_assert_eq!(l.tracks(), hypercube_track_count(n));
        prop_assert_eq!(
            l.edge_multiset(),
            mlv_topology::hypercube::hypercube(n).edge_multiset()
        );
    }

    /// The GHC construction matches its recurrence for random radix
    /// vectors.
    #[test]
    fn ghc_construction_sound(radices in prop::vec(2usize..5, 1..4)) {
        prop_assume!(radices.iter().product::<usize>() <= 256);
        let l = genhyper_collinear(&radices);
        l.assert_valid();
        prop_assert_eq!(l.tracks(), genhyper_track_count(&radices));
        prop_assert_eq!(
            l.edge_multiset(),
            mlv_topology::genhyper::GeneralizedHypercube::new(radices.clone())
                .graph
                .edge_multiset()
        );
    }

    /// Reordering preserves the edge multiset, stays valid, and the
    /// recoloured track count equals the new order's load bound.
    #[test]
    fn reorder_preserves_edges(k in 3usize..6, seed in 0u64..1000) {
        let base = kary_collinear(k, 2);
        // pseudo-random permutation of the slots
        let n = base.slot_count();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let re = reorder_and_recolor(&base, &perm);
        re.assert_valid();
        prop_assert_eq!(re.edge_multiset(), base.edge_multiset());
        prop_assert_eq!(re.tracks(), re.max_load());
    }

    /// Folded sequences are permutations placing consecutive groups at
    /// distance ≤ 2 (wrap pair included).
    #[test]
    fn folded_sequence_is_short_permutation(g in 1usize..40) {
        let seq = folded_sequence(g);
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..g).collect::<Vec<_>>());
        let mut pos = vec![0usize; g];
        for (p, &grp) in seq.iter().enumerate() {
            pos[grp] = p;
        }
        for i in 0..g.saturating_sub(1) {
            prop_assert!(pos[i].abs_diff(pos[i + 1]) <= 2);
        }
        if g >= 2 {
            prop_assert!(pos[0].abs_diff(pos[g - 1]) <= 2);
        }
    }

    /// Folding the outer digit never lengthens the longest ring wire of
    /// the outer dimension beyond 2 group widths and preserves edges.
    #[test]
    fn folding_preserves_and_shortens(k in 4usize..8) {
        let base = kary_collinear(k, 2);
        let folded = fold_outer_groups(&base, k);
        folded.assert_valid();
        prop_assert_eq!(folded.edge_multiset(), base.edge_multiset());
        prop_assert!(folded.max_span() <= 2 * k);
    }

    /// Complete-graph layouts are strictly optimal for every N.
    #[test]
    fn complete_strictly_optimal(n in 2usize..24) {
        let l = complete_collinear(n);
        l.assert_valid();
        prop_assert_eq!(l.tracks(), n * n / 4);
        prop_assert_eq!(l.max_load(), n * n / 4);
    }
}
