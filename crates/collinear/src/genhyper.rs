//! Collinear layout of generalized hypercubes (paper §4.1).
//!
//! Same bottom-up shape as the k-ary n-cube construction, but each new
//! dimension of radix `r` connects the `r` interleaved copies with a
//! **complete graph** per slot group, laid out with the strictly optimal
//! `⌊r²/4⌋`-track K_r template — the groups occupy disjoint slot ranges,
//! so every group shares the same `⌊r²/4⌋` fresh tracks. Track count:
//! `f_r(m+1) = r_m·f_r(m) + ⌊r_m²/4⌋`, and for fixed radix r,
//! `f_r(n) = (N−1)·⌊r²/4⌋/(r−1)`.

use crate::complete::complete_collinear;
use crate::track::CollinearLayout;

/// Track count of the construction for mixed radices (least significant
/// first): `f(1) = ⌊r_0²/4⌋`, `f(m+1) = r_m·f(m) + ⌊r_m²/4⌋`.
pub fn genhyper_track_count(radices: &[usize]) -> usize {
    assert!(!radices.is_empty());
    let mut f = radices[0] * radices[0] / 4;
    for &r in &radices[1..] {
        f = r * f + r * r / 4;
    }
    f
}

/// Closed form for fixed radix r: `(rⁿ − 1)·⌊r²/4⌋/(r − 1)`.
pub fn genhyper_track_count_fixed(r: usize, n: usize) -> usize {
    assert!(r >= 2);
    (r.pow(n as u32) - 1) * (r * r / 4) / (r - 1)
}

/// Collinear layout of the generalized hypercube with the given radices
/// (least significant first). Node ids are mixed-radix values.
pub fn genhyper_collinear(radices: &[usize]) -> CollinearLayout {
    assert!(!radices.is_empty());
    assert!(radices.iter().all(|&r| r >= 2), "radices must be >= 2");
    let mut layout = complete_collinear(radices[0]);
    let mut card = radices[0];
    for &r in &radices[1..] {
        layout = extend_by_complete_dimension(&layout, r, card);
        card *= r;
    }
    layout.name = format!(
        "GHC({}) collinear",
        radices
            .iter()
            .rev()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    layout
}

/// One recursion step: interleave `r` copies of `base` (which covers
/// `card` nodes) and connect each slot group as K_r using the optimal
/// template.
fn extend_by_complete_dimension(base: &CollinearLayout, r: usize, card: usize) -> CollinearLayout {
    let old_n = base.slot_count();
    let f_old = base.tracks();
    let mut node_at_slot = vec![0u32; old_n * r];
    for (slot, &node) in base.node_at_slot.iter().enumerate() {
        for j in 0..r {
            node_at_slot[slot * r + j] = node + (j * card) as u32;
        }
    }
    let mut l = CollinearLayout::new(base.name.clone(), node_at_slot);
    for &w in &base.wires {
        for j in 0..r {
            l.add_wire(w.lo * r + j, w.hi * r + j, j * f_old + w.track);
        }
    }
    // K_r connector template reused across all slot groups
    let template = complete_collinear(r);
    let t = r * f_old;
    for s in 0..old_n {
        for &w in &template.wires {
            l.add_wire(s * r + w.lo, s * r + w.hi, t + w.track);
        }
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlv_topology::genhyper::GeneralizedHypercube;
    use mlv_topology::hypercube::hypercube;

    #[test]
    fn track_formula_matches_construction() {
        for radices in [
            vec![3usize, 3],
            vec![4, 4],
            vec![3, 4, 2],
            vec![5, 3],
            vec![3, 3, 3],
        ] {
            let l = genhyper_collinear(&radices);
            l.assert_valid();
            assert_eq!(
                l.tracks(),
                genhyper_track_count(&radices),
                "radices {radices:?}"
            );
            assert_eq!(
                l.edge_multiset(),
                GeneralizedHypercube::new(radices.clone())
                    .graph
                    .edge_multiset(),
                "radices {radices:?}"
            );
        }
    }

    #[test]
    fn fixed_radix_closed_form() {
        for (r, n) in [(3usize, 2usize), (3, 3), (4, 2), (5, 2)] {
            assert_eq!(
                genhyper_track_count(&vec![r; n]),
                genhyper_track_count_fixed(r, n),
                "r={r} n={n}"
            );
        }
        // K9 as a 1-dimensional radix-9 GHC: 20 tracks (Fig. 3)
        assert_eq!(genhyper_track_count_fixed(9, 1), 20);
    }

    #[test]
    fn radix2_matches_binary_hypercube_topology() {
        // radix-2 GHC is the hypercube; the GHC construction uses
        // floor(4/4)=1 track per dimension-complete-graph, giving
        // f = 2^n - 1 tracks (worse than the dedicated 2N/3 hypercube
        // layout, as the paper's separate §5.1 treatment implies).
        let l = genhyper_collinear(&[2, 2, 2]);
        l.assert_valid();
        assert_eq!(l.tracks(), 7);
        assert_eq!(l.edge_multiset(), hypercube(3).edge_multiset());
    }

    #[test]
    fn single_dimension_is_complete_graph() {
        let l = genhyper_collinear(&[6]);
        l.assert_valid();
        assert_eq!(l.tracks(), 9);
    }
}
