//! Collinear layout of complete graphs (paper §4.1, Fig. 3; Yeh &
//! Parhami, IPL 1998).
//!
//! All `C(N,2)` links become intervals on the slot line; the greedy
//! interval colouring uses exactly the maximum gap load
//! `⌈N/2⌉·⌊N/2⌋ = ⌊N²/4⌋` tracks, which is also the lower bound for
//! *any* node order (every order makes K_N's middle gap carry
//! `⌊N²/4⌋` links) — hence "strictly optimal".

use crate::interval::color_intervals;
use crate::track::CollinearLayout;

/// The optimal complete-graph track count `⌊N²/4⌋`.
pub fn complete_track_count(n: usize) -> usize {
    n * n / 4
}

/// Strictly optimal collinear layout of K_n in natural node order.
pub fn complete_collinear(n: usize) -> CollinearLayout {
    let mut spans = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for i in 0..n {
        for j in i + 1..n {
            spans.push((i, j));
        }
    }
    let mut l = CollinearLayout::new(format!("K{n} collinear"), (0..n as u32).collect());
    l.wires = color_intervals(&spans);
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlv_topology::complete::complete;

    #[test]
    fn figure3_nine_node_complete_graph() {
        // Fig. 3 of the paper: K9 in 20 tracks
        let l = complete_collinear(9);
        l.assert_valid();
        assert_eq!(l.tracks(), 20);
        assert_eq!(complete_track_count(9), 20);
        assert_eq!(l.edge_multiset(), complete(9).edge_multiset());
    }

    #[test]
    fn optimal_for_all_small_n() {
        for n in 2..16 {
            let l = complete_collinear(n);
            l.assert_valid();
            assert_eq!(l.tracks(), n * n / 4, "n={n}");
            assert_eq!(l.max_load(), n * n / 4, "n={n}");
            assert_eq!(l.edge_multiset(), complete(n).edge_multiset());
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(complete_collinear(0).tracks(), 0);
        assert_eq!(complete_collinear(1).tracks(), 0);
        let l = complete_collinear(2);
        assert_eq!(l.tracks(), 1);
    }

    #[test]
    fn max_span_is_full_row() {
        let l = complete_collinear(7);
        assert_eq!(l.max_span(), 6);
    }
}
