//! # mlv-collinear
//!
//! **Collinear layouts** — the 1-D building block of the paper's
//! orthogonal multilayer layout scheme (Yeh, Varvarigos & Parhami,
//! ICPP 2000).
//!
//! A collinear layout places all network nodes along a line and routes
//! every link in one of a number of parallel **tracks** above the line;
//! the track count is the layout's figure of merit, because in the 2-D
//! orthogonal scheme the tracks of each row/column become the layout's
//! height/width. This crate implements the paper's constructions with
//! their exact track counts:
//!
//! | network | tracks | paper |
//! |---|---|---|
//! | k-node ring | 2 | §3.1 |
//! | k-ary n-cube | `2(kⁿ−1)/(k−1)` | §3.1, Fig. 2 |
//! | complete graph K_N | `⌊N²/4⌋` (strictly optimal) | §4.1, Fig. 3 |
//! | generalized hypercube | `f_r(n+1) = r_n f_r(n) + ⌊r_n²/4⌋` | §4.1 |
//! | hypercube | `⌊2N/3⌋` | §5.1, Fig. 4 |
//!
//! plus greedy interval-graph track colouring ([`interval`]) with its
//! max-load lower bound (used both as a generic fallback and to certify
//! optimality), folded node orders that shorten the longest wire
//! ([`folded`]), and an ASCII track-diagram renderer ([`render`]) that
//! regenerates the paper's Figures 2–4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complete;
pub mod folded;
pub mod generic;
pub mod genhyper;
pub mod hypercube;
pub mod interval;
pub mod karyn;
pub mod mesh;
pub mod render;
pub mod ring;
pub mod track;

pub use track::{CollinearLayout, SpanWire, TrackError};
