//! ASCII track diagrams of collinear layouts — regenerates the paper's
//! Figures 2 (3-ary 2-cube), 3 (K₉), and 4 (4-cube).
//!
//! Nodes are drawn on the bottom line as `[i]`; each track is one text
//! row with wires drawn as `o----o` spans. Tracks are drawn top-down
//! (highest track first), matching the paper's figures.

use crate::track::CollinearLayout;

/// Render a track diagram. Each slot gets a column of width
/// `col_width` (auto-sized to the longest node label when `None`).
pub fn render_tracks(layout: &CollinearLayout, col_width: Option<usize>) -> String {
    let n = layout.slot_count();
    if n == 0 {
        return String::new();
    }
    let labels: Vec<String> = layout
        .node_at_slot
        .iter()
        .map(|&v| format!("[{v}]"))
        .collect();
    let cw = col_width
        .unwrap_or_else(|| labels.iter().map(|l| l.len()).max().unwrap_or(3) + 1)
        .max(3);
    let width = n * cw;
    let center = |slot: usize| slot * cw + cw / 2;
    let tracks = layout.tracks();
    let mut rows: Vec<Vec<char>> = vec![vec![' '; width]; tracks];
    for w in &layout.wires {
        let row = &mut rows[w.track];
        let (a, b) = (center(w.lo), center(w.hi));
        for cell in row.iter_mut().take(b).skip(a + 1) {
            *cell = '-';
        }
        row[a] = 'o';
        row[b] = 'o';
    }
    let mut s = String::new();
    for (t, row) in rows.iter().enumerate().rev() {
        s.push_str(&format!("t{t:>3} "));
        s.push_str(&row.iter().collect::<String>());
        s.push('\n');
    }
    s.push_str("     ");
    let mut node_line = vec![' '; width];
    for (slot, label) in labels.iter().enumerate() {
        let start = slot * cw + (cw.saturating_sub(label.len())) / 2;
        for (i, ch) in label.chars().enumerate() {
            if start + i < width {
                node_line[start + i] = ch;
            }
        }
    }
    s.push_str(&node_line.iter().collect::<String>());
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::complete_collinear;
    use crate::hypercube::hypercube_collinear;
    use crate::karyn::kary_collinear;
    use crate::ring::ring_collinear;

    #[test]
    fn ring_diagram() {
        let s = render_tracks(&ring_collinear(4), Some(4));
        // two track rows + node row
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("o--"));
        assert!(s.contains("[0]"));
        assert!(s.contains("[3]"));
    }

    #[test]
    fn figure2_renders_eight_tracks() {
        let s = render_tracks(&kary_collinear(3, 2), None);
        assert_eq!(s.lines().count(), 8 + 1);
    }

    #[test]
    fn figure3_renders_twenty_tracks() {
        let s = render_tracks(&complete_collinear(9), None);
        assert_eq!(s.lines().count(), 20 + 1);
    }

    #[test]
    fn figure4_renders_ten_tracks_in_gray_order() {
        let s = render_tracks(&hypercube_collinear(4), None);
        assert_eq!(s.lines().count(), 10 + 1);
        // Gray order of the low two bits within the first group
        let node_line = s.lines().last().unwrap();
        let i0 = node_line.find("[0]").unwrap();
        let i1 = node_line.find("[1]").unwrap();
        let i3 = node_line.find("[3]").unwrap();
        let i2 = node_line.find("[2]").unwrap();
        assert!(i0 < i1 && i1 < i3 && i3 < i2);
    }

    #[test]
    fn empty_layout_renders_empty() {
        let l = CollinearLayout::new("e", vec![]);
        assert_eq!(render_tracks(&l, None), "");
    }
}
