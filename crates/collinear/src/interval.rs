//! Greedy interval-graph track colouring.
//!
//! Wires of a collinear layout are intervals on the slot line; wires may
//! share a track iff their **open** intervals are disjoint. That makes
//! track assignment an interval-partitioning problem, solved optimally
//! by the classic greedy sweep: process intervals by left endpoint and
//! reuse the track that freed up earliest. The number of tracks used
//! equals the maximum *gap load* (the clique number of the interval
//! overlap graph), which is simultaneously the obvious lower bound — so
//! the assignment is **certifiably optimal** for the given slot order.
//!
//! The paper's strictly optimal `⌊N²/4⌋`-track complete-graph layout
//! (Fig. 3) is exactly this colouring applied to all `C(N,2)` intervals.

use crate::track::SpanWire;
use std::collections::BinaryHeap;

/// Assign tracks greedily to the given spans (`(lo, hi)` with
/// `lo < hi`). Returns wires with track indices and uses the provably
/// minimal number of tracks for this slot order.
pub fn color_intervals(spans: &[(usize, usize)]) -> Vec<SpanWire> {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    // sort by left endpoint; among equal lefts, longer intervals first so
    // that a short touching interval can immediately reuse a track that a
    // wire ending at this slot frees (hi == lo is allowed to share).
    order.sort_by_key(|&i| (spans[i].0, std::cmp::Reverse(spans[i].1)));
    // min-heap of (end, track) for busy tracks; free list of track ids
    let mut busy: BinaryHeap<std::cmp::Reverse<(usize, usize)>> = BinaryHeap::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_track = 0usize;
    let mut out = vec![
        SpanWire {
            lo: 0,
            hi: 0,
            track: 0
        };
        spans.len()
    ];
    for &i in &order {
        let (lo, hi) = spans[i];
        assert!(lo < hi, "degenerate span");
        while let Some(&std::cmp::Reverse((end, track))) = busy.peek() {
            if end <= lo {
                busy.pop();
                free.push(track);
            } else {
                break;
            }
        }
        let track = free.pop().unwrap_or_else(|| {
            let t = next_track;
            next_track += 1;
            t
        });
        busy.push(std::cmp::Reverse((hi, track)));
        out[i] = SpanWire { lo, hi, track };
    }
    out
}

/// The maximum gap load of a span set: the number of open intervals
/// crossing the most-loaded gap. Lower bound on (and, via
/// [`color_intervals`], exactly equal to) the optimal track count.
pub fn max_load(spans: &[(usize, usize)]) -> usize {
    let n = spans.iter().map(|&(_, hi)| hi + 1).max().unwrap_or(0);
    if n < 2 {
        return 0;
    }
    let mut delta = vec![0isize; n];
    for &(lo, hi) in spans {
        delta[lo] += 1;
        delta[hi] -= 1;
    }
    let mut best = 0isize;
    let mut acc = 0isize;
    for &d in &delta[..n - 1] {
        acc += d;
        best = best.max(acc);
    }
    best as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::track::CollinearLayout;

    fn check_valid(spans: &[(usize, usize)], n_slots: usize) -> usize {
        let wires = color_intervals(spans);
        let mut l = CollinearLayout::new("t", (0..n_slots as u32).collect());
        l.wires = wires;
        l.assert_valid();
        l.tracks()
    }

    #[test]
    fn touching_intervals_share_track() {
        let spans = [(0, 1), (1, 2), (2, 3)];
        let t = check_valid(&spans, 4);
        assert_eq!(t, 1);
    }

    #[test]
    fn nested_intervals_get_distinct_tracks() {
        let spans = [(0, 3), (1, 2)];
        let t = check_valid(&spans, 4);
        assert_eq!(t, 2);
    }

    #[test]
    fn complete_graph_load_is_floor_n2_over_4() {
        for n in 2..12usize {
            let mut spans = Vec::new();
            for i in 0..n {
                for j in i + 1..n {
                    spans.push((i, j));
                }
            }
            assert_eq!(max_load(&spans), n * n / 4, "n={n}");
            let t = check_valid(&spans, n);
            assert_eq!(t, n * n / 4, "n={n}");
        }
    }

    #[test]
    fn greedy_matches_load_on_random_spans() {
        // deterministic pseudo-random spans; greedy must hit the load
        // bound exactly
        let mut seed = 0x2545F49_u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _ in 0..20 {
            let n = 30;
            let mut spans = Vec::new();
            for _ in 0..80 {
                let a = next() % n;
                let b = next() % n;
                if a != b {
                    spans.push((a.min(b), a.max(b)));
                }
            }
            let t = check_valid(&spans, n);
            assert_eq!(t, max_load(&spans));
        }
    }

    #[test]
    fn empty_input() {
        assert!(color_intervals(&[]).is_empty());
        assert_eq!(max_load(&[]), 0);
    }
}
