//! The collinear layout data structure and its validity rules.

use mlv_topology::NodeId;
use std::collections::BTreeMap;

/// One wire of a collinear layout: it spans the slot interval
/// `[lo, hi]` in the given track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanWire {
    /// Left slot (inclusive), `lo < hi`.
    pub lo: usize,
    /// Right slot (inclusive).
    pub hi: usize,
    /// Track index (0-based; track 0 is closest to the node row).
    pub track: usize,
}

/// A collinear layout: network nodes in a row of *slots* with wires in
/// horizontal tracks above the row.
///
/// Validity (checked by [`CollinearLayout::validate`]):
///
/// * `node_at_slot` is a permutation of the network's node ids;
/// * every wire has `lo < hi` within the slot range;
/// * within each track, wires may only *touch* at shared slots — their
///   open intervals are pairwise disjoint. (Two wires meeting at a slot
///   attach to distinct terminals of that node when the layout is
///   realized on the grid, exactly as in the paper's ring layout where
///   all k−1 adjacent links share track 1.)
#[derive(Clone, Debug)]
pub struct CollinearLayout {
    /// Human-readable name.
    pub name: String,
    /// Which network node occupies each slot (left to right).
    pub node_at_slot: Vec<NodeId>,
    /// The routed wires.
    pub wires: Vec<SpanWire>,
}

/// A validity violation in a collinear layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrackError {
    /// `node_at_slot` repeats or skips node ids.
    NotAPermutation,
    /// A wire's slots are out of range or reversed.
    BadSpan(SpanWire),
    /// Two wires in the same track overlap in more than a touching slot.
    Overlap(SpanWire, SpanWire),
}

impl CollinearLayout {
    /// Create a layout with the given slot order and no wires.
    pub fn new(name: impl Into<String>, node_at_slot: Vec<NodeId>) -> Self {
        CollinearLayout {
            name: name.into(),
            node_at_slot,
            wires: Vec::new(),
        }
    }

    /// Number of node slots.
    pub fn slot_count(&self) -> usize {
        self.node_at_slot.len()
    }

    /// Number of tracks used (max track index + 1; 0 when wireless).
    pub fn tracks(&self) -> usize {
        self.wires.iter().map(|w| w.track + 1).max().unwrap_or(0)
    }

    /// Longest wire span in slots.
    pub fn max_span(&self) -> usize {
        self.wires.iter().map(|w| w.hi - w.lo).max().unwrap_or(0)
    }

    /// Slot of a given network node. O(n); build your own inverse for
    /// hot paths.
    pub fn slot_of(&self, node: NodeId) -> Option<usize> {
        self.node_at_slot.iter().position(|&x| x == node)
    }

    /// Inverse of `node_at_slot`: `slot_index[node] = slot`.
    pub fn slot_index(&self) -> Vec<usize> {
        let mut inv = vec![usize::MAX; self.node_at_slot.len()];
        for (slot, &node) in self.node_at_slot.iter().enumerate() {
            inv[node as usize] = slot;
        }
        inv
    }

    /// Add a wire (canonicalizes `lo <= hi`).
    pub fn add_wire(&mut self, a: usize, b: usize, track: usize) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.wires.push(SpanWire { lo, hi, track });
    }

    /// The multiset of wire endpoint pairs as *node ids* (canonical
    /// order), for verification against `Graph::edge_multiset`.
    pub fn edge_multiset(&self) -> BTreeMap<(NodeId, NodeId), usize> {
        let mut m = BTreeMap::new();
        for w in &self.wires {
            let (a, b) = (self.node_at_slot[w.lo], self.node_at_slot[w.hi]);
            let key = if a <= b { (a, b) } else { (b, a) };
            *m.entry(key).or_insert(0) += 1;
        }
        m
    }

    /// Check all validity rules.
    pub fn validate(&self) -> Result<(), TrackError> {
        // permutation check
        let n = self.node_at_slot.len();
        let mut seen = vec![false; n];
        for &x in &self.node_at_slot {
            if (x as usize) >= n || seen[x as usize] {
                return Err(TrackError::NotAPermutation);
            }
            seen[x as usize] = true;
        }
        // span checks
        for &w in &self.wires {
            if w.lo >= w.hi || w.hi >= n {
                return Err(TrackError::BadSpan(w));
            }
        }
        // per-track open-interval disjointness
        let mut by_track: BTreeMap<usize, Vec<SpanWire>> = BTreeMap::new();
        for &w in &self.wires {
            by_track.entry(w.track).or_default().push(w);
        }
        for (_, mut ws) in by_track {
            ws.sort_by_key(|w| (w.lo, w.hi));
            for pair in ws.windows(2) {
                if pair[1].lo < pair[0].hi {
                    return Err(TrackError::Overlap(pair[0], pair[1]));
                }
            }
        }
        Ok(())
    }

    /// Panic with context if invalid — the standard test assertion.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("collinear layout '{}' invalid: {e:?}", self.name);
        }
    }

    /// Per-gap wire load: `load[g]` counts wires whose open interval
    /// crosses the gap between slots `g` and `g+1`. The maximum load is
    /// a lower bound on the achievable track count for this slot order.
    pub fn gap_loads(&self) -> Vec<usize> {
        let n = self.slot_count();
        if n < 2 {
            return Vec::new();
        }
        let mut delta = vec![0isize; n];
        for w in &self.wires {
            delta[w.lo] += 1;
            delta[w.hi] -= 1;
        }
        let mut loads = Vec::with_capacity(n - 1);
        let mut acc = 0isize;
        for &d in &delta[..n - 1] {
            acc += d;
            loads.push(acc as usize);
        }
        loads
    }

    /// Maximum gap load — the track-count lower bound for this order.
    pub fn max_load(&self) -> usize {
        self.gap_loads().into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> CollinearLayout {
        let mut l = CollinearLayout::new("t", vec![0, 1, 2, 3]);
        l.add_wire(0, 1, 0);
        l.add_wire(1, 2, 0);
        l.add_wire(0, 3, 1);
        l
    }

    #[test]
    fn touching_wires_valid() {
        let l = simple();
        assert!(l.validate().is_ok());
        assert_eq!(l.tracks(), 2);
        assert_eq!(l.max_span(), 3);
    }

    #[test]
    fn overlap_detected() {
        let mut l = simple();
        l.add_wire(0, 2, 0); // overlaps both wires in track 0
        assert!(matches!(l.validate(), Err(TrackError::Overlap(_, _))));
    }

    #[test]
    fn bad_span_detected() {
        let mut l = simple();
        l.wires.push(SpanWire {
            lo: 2,
            hi: 2,
            track: 3,
        });
        assert!(matches!(l.validate(), Err(TrackError::BadSpan(_))));
        let mut l2 = simple();
        l2.add_wire(0, 9, 0);
        assert!(matches!(l2.validate(), Err(TrackError::BadSpan(_))));
    }

    #[test]
    fn permutation_checked() {
        let mut l = simple();
        l.node_at_slot[2] = 1;
        assert_eq!(l.validate(), Err(TrackError::NotAPermutation));
    }

    #[test]
    fn edge_multiset_uses_node_ids() {
        let mut l = CollinearLayout::new("perm", vec![2, 0, 1]);
        l.add_wire(0, 2, 0); // slots 0 and 2 = nodes 2 and 1
        let m = l.edge_multiset();
        assert_eq!(m.get(&(1, 2)), Some(&1));
    }

    #[test]
    fn gap_loads_and_lower_bound() {
        let l = simple();
        // gaps: 0-1: wires (0,1) and (0,3) -> 2; 1-2: (1,2),(0,3) -> 2;
        // 2-3: (0,3) -> 1
        assert_eq!(l.gap_loads(), vec![2, 2, 1]);
        assert_eq!(l.max_load(), 2);
        assert!(l.tracks() >= l.max_load());
    }

    #[test]
    fn slot_index_inverse() {
        let l = CollinearLayout::new("perm", vec![2, 0, 1]);
        assert_eq!(l.slot_index(), vec![1, 2, 0]);
        assert_eq!(l.slot_of(2), Some(0));
        assert_eq!(l.slot_of(5), None);
    }
}
