//! Collinear layout of rings — the base case of §3.1.
//!
//! k nodes along a row; the k−1 adjacent links share track 0 (they only
//! touch at nodes), the wraparound link takes track 1. Exactly 2 tracks
//! for `k ≥ 3`, 1 track for `k = 2`, none for `k = 1`.

use crate::track::CollinearLayout;

/// Collinear ring layout in natural node order.
pub fn ring_collinear(k: usize) -> CollinearLayout {
    let mut l = CollinearLayout::new(format!("{k}-ring collinear"), (0..k as u32).collect());
    if k == 2 {
        l.add_wire(0, 1, 0);
    } else if k >= 3 {
        for i in 0..k - 1 {
            l.add_wire(i, i + 1, 0);
        }
        l.add_wire(0, k - 1, 1);
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlv_topology::ring::ring;

    #[test]
    fn two_tracks_for_rings() {
        for k in 3..12 {
            let l = ring_collinear(k);
            l.assert_valid();
            assert_eq!(l.tracks(), 2, "k={k}");
            assert_eq!(l.edge_multiset(), ring(k).edge_multiset());
        }
    }

    #[test]
    fn degenerate_rings() {
        let l = ring_collinear(2);
        l.assert_valid();
        assert_eq!(l.tracks(), 1);
        assert_eq!(l.edge_multiset(), ring(2).edge_multiset());
        let l = ring_collinear(1);
        assert_eq!(l.tracks(), 0);
    }

    #[test]
    fn max_span_is_whole_row() {
        let l = ring_collinear(8);
        assert_eq!(l.max_span(), 7);
    }
}
