//! Collinear layout of k-ary n-cubes (paper §3.1, Fig. 2).
//!
//! Bottom-up recursion: a k-ary (m+1)-cube layout interleaves k copies
//! of the k-ary m-cube layout (node `i` of copy `j` at slot `i·k + j`)
//! and adds two tracks for the new dimension's rings — one for the k−1
//! adjacent links of each ring, one for its wraparound link. Track
//! count: `f_k(m+1) = k·f_k(m) + 2`, so
//! `f_k(n) = 2(kⁿ − 1)/(k − 1)`.

use crate::ring::ring_collinear;
use crate::track::CollinearLayout;

/// The paper's track-count formula `f_k(n) = 2(kⁿ − 1)/(k − 1)` for
/// `k ≥ 3` (for `k = 2` the hypercube construction applies instead).
pub fn kary_track_count(k: usize, n: usize) -> usize {
    assert!(k >= 3);
    2 * (k.pow(n as u32) - 1) / (k - 1)
}

/// Collinear k-ary n-cube layout. Node ids are k-ary digit vectors with
/// digit 0 built first (least significant). Requires `k ≥ 3` (the
/// binary case is the hypercube, see [`crate::hypercube`]).
pub fn kary_collinear(k: usize, n: usize) -> CollinearLayout {
    assert!(k >= 3, "use hypercube_collinear for k = 2");
    assert!(n >= 1);
    let mut layout = ring_collinear(k);
    layout.name = format!("{k}-ary {n}-cube collinear");
    let mut m = 1usize;
    while m < n {
        layout = extend_by_ring_dimension(&layout, k, m);
        m += 1;
    }
    layout.name = format!("{k}-ary {n}-cube collinear");
    layout
}

/// One recursion step: interleave k copies of `base` (a layout of the
/// first `m` dimensions, `k^m` nodes) and connect the new dimension's
/// rings with two fresh tracks.
fn extend_by_ring_dimension(base: &CollinearLayout, k: usize, m: usize) -> CollinearLayout {
    let old_n = base.slot_count();
    let f_old = base.tracks();
    let stride = (k.pow(m as u32)) as u32; // node-id increment per copy
    let mut node_at_slot = vec![0u32; old_n * k];
    for (slot, &node) in base.node_at_slot.iter().enumerate() {
        for j in 0..k {
            node_at_slot[slot * k + j] = node + j as u32 * stride;
        }
    }
    let mut l = CollinearLayout::new(base.name.clone(), node_at_slot);
    // scaled copies of the old wires, each copy in its own track block
    for &w in &base.wires {
        for j in 0..k {
            l.add_wire(w.lo * k + j, w.hi * k + j, j * f_old + w.track);
        }
    }
    // new-dimension rings across the k copies of each old slot
    let t = k * f_old;
    for s in 0..old_n {
        for j in 0..k - 1 {
            l.add_wire(s * k + j, s * k + j + 1, t);
        }
        l.add_wire(s * k, s * k + k - 1, t + 1);
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlv_topology::karyn::KaryNCube;

    #[test]
    fn figure2_three_ary_two_cube() {
        // Fig. 2 of the paper: 3-ary 2-cube, f_3(2) = 2(9-1)/2 = 8 tracks
        let l = kary_collinear(3, 2);
        l.assert_valid();
        assert_eq!(l.slot_count(), 9);
        assert_eq!(l.tracks(), 8);
        assert_eq!(kary_track_count(3, 2), 8);
        assert_eq!(
            l.edge_multiset(),
            KaryNCube::torus(3, 2).graph.edge_multiset()
        );
    }

    #[test]
    fn track_formula_matches_construction() {
        for (k, n) in [(3usize, 1usize), (3, 3), (4, 2), (5, 2), (4, 3)] {
            let l = kary_collinear(k, n);
            l.assert_valid();
            assert_eq!(l.tracks(), kary_track_count(k, n), "k={k} n={n}");
            assert_eq!(
                l.edge_multiset(),
                KaryNCube::torus(k, n).graph.edge_multiset(),
                "k={k} n={n}"
            );
        }
    }

    #[test]
    fn track_count_closed_form() {
        assert_eq!(kary_track_count(3, 1), 2);
        assert_eq!(kary_track_count(3, 2), 8);
        assert_eq!(kary_track_count(3, 3), 26);
        assert_eq!(kary_track_count(4, 2), 10);
        assert_eq!(kary_track_count(10, 2), 22);
    }

    #[test]
    fn tracks_are_near_optimal_for_this_order() {
        // greedy lower bound (max load) should be within the two
        // wrap-track slack of the construction
        let l = kary_collinear(4, 2);
        assert!(l.max_load() <= l.tracks());
        assert!(l.tracks() <= l.max_load() + 2);
    }

    #[test]
    fn one_dimension_is_ring() {
        let l = kary_collinear(5, 1);
        l.assert_valid();
        assert_eq!(l.tracks(), 2);
    }
}
