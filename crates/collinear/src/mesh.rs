//! Collinear layouts of k-ary n-meshes (no wraparound links).
//!
//! The paper's §3.2 notes that the k-ary n-cube method "can be easily
//! extended to general meshes and tori"; the mesh is the torus
//! construction minus the wrap track: a k-node path needs **1** track
//! (all k−1 adjacent links touch end to end), and each added dimension
//! contributes one fresh track instead of two:
//! `g_k(m+1) = k·g_k(m) + 1`, so `g_k(n) = (kⁿ − 1)/(k − 1)` — exactly
//! half the torus count in the limit.

use crate::track::CollinearLayout;

/// Mesh track count `g_k(n) = (kⁿ − 1)/(k − 1)`.
pub fn mesh_track_count(k: usize, n: usize) -> usize {
    assert!(k >= 2);
    (k.pow(n as u32) - 1) / (k - 1)
}

/// Collinear k-ary n-mesh layout (paths instead of rings per
/// dimension). Node ids are k-ary digit vectors, digit 0 built first.
pub fn mesh_collinear(k: usize, n: usize) -> CollinearLayout {
    assert!(k >= 2 && n >= 1);
    // base: k-node path, 1 track
    let mut layout = CollinearLayout::new(
        format!("{k}-ary {n}-mesh collinear"),
        (0..k as u32).collect(),
    );
    for i in 0..k - 1 {
        layout.add_wire(i, i + 1, 0);
    }
    let mut m = 1usize;
    while m < n {
        layout = extend_by_path_dimension(&layout, k, m);
        m += 1;
    }
    layout.name = format!("{k}-ary {n}-mesh collinear");
    layout
}

fn extend_by_path_dimension(base: &CollinearLayout, k: usize, m: usize) -> CollinearLayout {
    let old_n = base.slot_count();
    let f_old = base.tracks();
    let stride = (k.pow(m as u32)) as u32;
    let mut node_at_slot = vec![0u32; old_n * k];
    for (slot, &node) in base.node_at_slot.iter().enumerate() {
        for j in 0..k {
            node_at_slot[slot * k + j] = node + j as u32 * stride;
        }
    }
    let mut l = CollinearLayout::new(base.name.clone(), node_at_slot);
    for &w in &base.wires {
        for j in 0..k {
            l.add_wire(w.lo * k + j, w.hi * k + j, j * f_old + w.track);
        }
    }
    let t = k * f_old;
    for s in 0..old_n {
        for j in 0..k - 1 {
            l.add_wire(s * k + j, s * k + j + 1, t);
        }
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlv_topology::karyn::KaryNCube;

    #[test]
    fn track_counts_match_closed_form() {
        for (k, n) in [(2usize, 3usize), (3, 2), (3, 3), (4, 2), (5, 2), (8, 2)] {
            let l = mesh_collinear(k, n);
            l.assert_valid();
            assert_eq!(l.tracks(), mesh_track_count(k, n), "k={k} n={n}");
            assert_eq!(
                l.edge_multiset(),
                KaryNCube::mesh(k, n).graph.edge_multiset(),
                "k={k} n={n}"
            );
        }
    }

    #[test]
    fn mesh_halves_torus_tracks_asymptotically() {
        use crate::karyn::kary_track_count;
        for (k, n) in [(3usize, 3usize), (4, 3), (5, 2)] {
            assert_eq!(2 * mesh_track_count(k, n), kary_track_count(k, n));
        }
    }

    #[test]
    fn one_dimensional_mesh_is_single_track() {
        let l = mesh_collinear(7, 1);
        l.assert_valid();
        assert_eq!(l.tracks(), 1);
        assert_eq!(l.max_span(), 1);
    }

    #[test]
    fn mesh_tracks_are_order_optimal() {
        let l = mesh_collinear(4, 3);
        assert_eq!(l.tracks(), l.max_load());
    }

    #[test]
    fn binary_mesh_is_valid() {
        // k = 2 mesh == k = 2 torus == hypercube topology, but laid out
        // with the simple path recursion (2^n - 1 tracks)
        let l = mesh_collinear(2, 4);
        l.assert_valid();
        assert_eq!(l.tracks(), 15);
        assert_eq!(
            l.edge_multiset(),
            mlv_topology::hypercube::hypercube(4).edge_multiset()
        );
    }
}
