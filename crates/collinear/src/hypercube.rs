//! Collinear layout of hypercubes in exactly `⌊2N/3⌋` tracks (paper
//! §5.1, Fig. 4; Yeh, Varvarigos & Parhami, Frontiers '99).
//!
//! The construction uses the 2-track layout of the 2-cube (nodes in Gray
//! order `00, 01, 11, 10`; the three adjacent links share a track, the
//! `00–10` link takes the second) as its building block:
//!
//! * **even step** (n → n+2): interleave four copies of the n-cube
//!   layout in Gray order within each slot group and connect each group
//!   as a 2-cube with **2** new tracks — `f(n+2) = 4f(n) + 2`;
//! * **odd step** (n → n+1): interleave two copies and connect the pairs
//!   with **1** new track — `f(n+1) = 2f(n) + 1`.
//!
//! Taking even steps from `f(2) = 2` and at most one odd step from the
//! top gives exactly `f(n) = ⌊2·2ⁿ/3⌋` for every n.

use crate::track::CollinearLayout;

/// The paper's hypercube track count `⌊2N/3⌋ = ⌊2·2ⁿ/3⌋`.
pub fn hypercube_track_count(n: usize) -> usize {
    (2 * (1usize << n)) / 3
}

/// Collinear layout of the n-cube in `⌊2N/3⌋` tracks. Node ids are the
/// usual binary labels.
///
/// ```
/// let l = mlv_collinear::hypercube::hypercube_collinear(4); // Fig. 4
/// l.assert_valid();
/// assert_eq!(l.tracks(), 10); // = floor(2*16/3)
/// ```
pub fn hypercube_collinear(n: usize) -> CollinearLayout {
    assert!((1..26).contains(&n));
    let l = build(n);
    debug_assert_eq!(l.tracks(), hypercube_track_count(n));
    l
}

fn build(n: usize) -> CollinearLayout {
    match n {
        1 => {
            let mut l = CollinearLayout::new("1-cube collinear", vec![0, 1]);
            l.add_wire(0, 1, 0);
            l
        }
        2 => base_two_cube(),
        _ if n % 2 == 1 => extend_one(&build(n - 1), n - 1),
        _ => extend_two(&build(n - 2), n - 2),
    }
}

/// Fig. 4's building block: the 2-cube in Gray order, 2 tracks.
fn base_two_cube() -> CollinearLayout {
    let mut l = CollinearLayout::new("2-cube collinear", vec![0b00, 0b01, 0b11, 0b10]);
    l.add_wire(0, 1, 0);
    l.add_wire(1, 2, 0);
    l.add_wire(2, 3, 0);
    l.add_wire(0, 3, 1);
    l
}

/// Odd step: two interleaved copies plus one track of pair links for the
/// new dimension `m` (0-based bit index).
fn extend_one(base: &CollinearLayout, m: usize) -> CollinearLayout {
    let old_n = base.slot_count();
    let f_old = base.tracks();
    let mut node_at_slot = vec![0u32; old_n * 2];
    for (slot, &node) in base.node_at_slot.iter().enumerate() {
        for j in 0..2u32 {
            node_at_slot[slot * 2 + j as usize] = node | (j << m);
        }
    }
    let mut l = CollinearLayout::new(format!("{}-cube collinear", m + 1), node_at_slot);
    for &w in &base.wires {
        for j in 0..2 {
            l.add_wire(w.lo * 2 + j, w.hi * 2 + j, j * f_old + w.track);
        }
    }
    let t = 2 * f_old;
    for s in 0..old_n {
        l.add_wire(s * 2, s * 2 + 1, t);
    }
    l
}

/// Even step: four interleaved copies in Gray order plus a 2-track
/// 2-cube connector for new dimensions `m` and `m+1`.
fn extend_two(base: &CollinearLayout, m: usize) -> CollinearLayout {
    let old_n = base.slot_count();
    let f_old = base.tracks();
    // position p within each group holds copy GRAY[p]
    const GRAY: [u32; 4] = [0b00, 0b01, 0b11, 0b10];
    let mut node_at_slot = vec![0u32; old_n * 4];
    for (slot, &node) in base.node_at_slot.iter().enumerate() {
        for (p, &c) in GRAY.iter().enumerate() {
            node_at_slot[slot * 4 + p] = node | (c << m);
        }
    }
    let mut l = CollinearLayout::new(format!("{}-cube collinear", m + 2), node_at_slot);
    // copies keep their own track blocks, indexed by position p
    for &w in &base.wires {
        for p in 0..4 {
            l.add_wire(w.lo * 4 + p, w.hi * 4 + p, p * f_old + w.track);
        }
    }
    // 2-cube connector per group: chain track + spanning track
    let t = 4 * f_old;
    for s in 0..old_n {
        let b = s * 4;
        l.add_wire(b, b + 1, t);
        l.add_wire(b + 1, b + 2, t);
        l.add_wire(b + 2, b + 3, t);
        l.add_wire(b, b + 3, t + 1);
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlv_topology::hypercube::hypercube;

    #[test]
    fn figure4_four_cube() {
        // Fig. 4 of the paper: 4-cube in floor(2*16/3) = 10 tracks
        let l = hypercube_collinear(4);
        l.assert_valid();
        assert_eq!(l.tracks(), 10);
        assert_eq!(l.edge_multiset(), hypercube(4).edge_multiset());
    }

    #[test]
    fn track_count_matches_floor_two_thirds() {
        for n in 1..11 {
            let l = hypercube_collinear(n);
            l.assert_valid();
            assert_eq!(l.tracks(), hypercube_track_count(n), "n={n}");
            assert_eq!(l.edge_multiset(), hypercube(n).edge_multiset(), "n={n}");
        }
    }

    #[test]
    fn closed_form_values() {
        let expect = [1, 2, 5, 10, 21, 42, 85, 170];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(hypercube_track_count(i + 1), e);
        }
    }

    #[test]
    fn two_cube_base_is_gray_ordered() {
        let l = base_two_cube();
        assert_eq!(l.node_at_slot, vec![0, 1, 3, 2]);
        assert_eq!(l.tracks(), 2);
    }

    #[test]
    fn beats_generic_greedy_order_bound() {
        // the load lower bound for THIS order must not exceed the track
        // count (sanity that construction is tight-ish)
        let l = hypercube_collinear(6);
        assert!(l.max_load() <= l.tracks());
    }
}
