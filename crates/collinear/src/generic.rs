//! Generic collinear layouts for arbitrary graphs — the fallback behind
//! §4.3's "similar strategies can be used for star graphs and other
//! Cayley graphs".
//!
//! Any node order induces a collinear layout (edges become intervals,
//! greedy colouring is optimal *for that order*), so the problem is
//! picking the order — NP-hard in general (minimum cut-width). We
//! provide the standard cheap heuristics: the natural order, a BFS
//! order (good for expander-ish graphs), and seeded random restarts,
//! keeping the best.

use crate::interval::color_intervals;
use crate::track::CollinearLayout;
use mlv_topology::{Graph, NodeId};
use std::collections::VecDeque;

/// Collinear layout of `graph` with nodes in the given order.
pub fn generic_collinear(graph: &Graph, order: &[NodeId]) -> CollinearLayout {
    assert_eq!(
        order.len(),
        graph.node_count(),
        "order must cover all nodes"
    );
    let mut pos = vec![usize::MAX; graph.node_count()];
    for (slot, &v) in order.iter().enumerate() {
        assert!(pos[v as usize] == usize::MAX, "order repeats node {v}");
        pos[v as usize] = slot;
    }
    let spans: Vec<(usize, usize)> = graph
        .edge_ids()
        .map(|e| {
            let (u, v) = graph.endpoints(e);
            let (a, b) = (pos[u as usize], pos[v as usize]);
            (a.min(b), a.max(b))
        })
        .collect();
    let mut l = CollinearLayout::new(
        format!("{} collinear (generic)", graph.name()),
        order.to_vec(),
    );
    l.wires = color_intervals(&spans);
    l
}

/// BFS visiting order from node 0 (unreached nodes appended in id
/// order) — tends to keep edges short on structured graphs.
pub fn bfs_order(graph: &Graph) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut q = VecDeque::new();
    for root in 0..n {
        if seen[root] {
            continue;
        }
        seen[root] = true;
        q.push_back(root as NodeId);
        while let Some(u) = q.pop_front() {
            order.push(u);
            for &(v, _) in graph.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    q.push_back(v);
                }
            }
        }
    }
    order
}

/// Try the natural order, the BFS order, and `restarts` seeded random
/// orders; return the layout with the fewest tracks (ties: first
/// found). Deterministic for a given seed.
pub fn best_order_collinear(graph: &Graph, restarts: usize, seed: u64) -> CollinearLayout {
    let n = graph.node_count();
    let natural: Vec<NodeId> = (0..n as NodeId).collect();
    let mut best = generic_collinear(graph, &natural);
    let bfs = generic_collinear(graph, &bfs_order(graph));
    if bfs.tracks() < best.tracks() {
        best = bfs;
    }
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut order = natural;
    for _ in 0..restarts {
        // Fisher-Yates with the xorshift stream
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let candidate = generic_collinear(graph, &order);
        if candidate.tracks() < best.tracks() {
            best = candidate;
        }
    }
    best
}

/// Local-search refinement of a node order: hill climbing over two move
/// kinds — adjacent transpositions and segment reversals — with the
/// lexicographic fitness `(max gap load, total edge span)`. The max
/// load is the real objective (= the order's optimal track count), but
/// it moves in plateaus; the total span breaks ties and gives the
/// search a descent direction across them. Deterministic for a given
/// seed; stops after a full pass without improvement (≤ `max_rounds`).
pub fn improve_order(graph: &Graph, start: &[NodeId], max_rounds: usize, seed: u64) -> Vec<NodeId> {
    let n = graph.node_count();
    assert_eq!(start.len(), n);
    let fitness = |order: &[NodeId]| -> (usize, usize) {
        let mut pos = vec![0usize; n];
        for (slot, &v) in order.iter().enumerate() {
            pos[v as usize] = slot;
        }
        let mut spans = Vec::with_capacity(graph.edge_count());
        let mut total = 0usize;
        for e in graph.edge_ids() {
            let (u, v) = graph.endpoints(e);
            let (a, b) = (pos[u as usize], pos[v as usize]);
            let (lo, hi) = (a.min(b), a.max(b));
            spans.push((lo, hi));
            total += hi - lo;
        }
        (crate::interval::max_load(&spans), total)
    };
    let mut order = start.to_vec();
    let mut best = fitness(&order);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..max_rounds {
        let mut improved = false;
        // deterministic sweep of adjacent swaps
        for i in 0..n.saturating_sub(1) {
            order.swap(i, i + 1);
            let f = fitness(&order);
            if f < best {
                best = f;
                improved = true;
            } else {
                order.swap(i, i + 1);
            }
        }
        // random segment reversals
        for _ in 0..2 * n {
            let a = (next() as usize) % n;
            let b = (next() as usize) % n;
            let (lo, hi) = (a.min(b), a.max(b));
            if hi - lo < 2 {
                continue;
            }
            order[lo..=hi].reverse();
            let f = fitness(&order);
            if f < best {
                best = f;
                improved = true;
            } else {
                order[lo..=hi].reverse();
            }
        }
        if !improved {
            break;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlv_topology::cayley::star;
    use mlv_topology::complete::complete;
    use mlv_topology::hypercube::hypercube;
    use mlv_topology::ring::ring;

    #[test]
    fn natural_order_complete_graph_is_optimal() {
        let g = complete(10);
        let l = generic_collinear(&g, &(0..10).collect::<Vec<_>>());
        l.assert_valid();
        assert_eq!(l.tracks(), 25); // floor(100/4)
        assert_eq!(l.edge_multiset(), g.edge_multiset());
    }

    #[test]
    fn generic_matches_dedicated_on_rings() {
        let g = ring(9);
        let l = generic_collinear(&g, &(0..9).collect::<Vec<_>>());
        l.assert_valid();
        // greedy finds the 2-track layout for the natural order
        assert_eq!(l.tracks(), 2);
    }

    #[test]
    fn bfs_order_visits_everything() {
        let g = star(4);
        let o = bfs_order(&g);
        let mut sorted = o.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn best_order_beats_or_matches_natural() {
        let g = star(4);
        let natural = generic_collinear(&g, &(0..24).collect::<Vec<_>>());
        let best = best_order_collinear(&g, 8, 42);
        best.assert_valid();
        assert!(best.tracks() <= natural.tracks());
        assert_eq!(best.edge_multiset(), g.edge_multiset());
    }

    #[test]
    fn generic_on_hypercube_upper_bounds_dedicated() {
        // the dedicated construction (2N/3) must never lose to the
        // generic natural order
        use crate::hypercube::hypercube_collinear;
        let g = hypercube(6);
        let generic = generic_collinear(&g, &(0..64).collect::<Vec<_>>());
        let dedicated = hypercube_collinear(6);
        assert!(dedicated.tracks() <= generic.tracks());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = star(4);
        let a = best_order_collinear(&g, 4, 7);
        let b = best_order_collinear(&g, 4, 7);
        assert_eq!(a.tracks(), b.tracks());
        assert_eq!(a.node_at_slot, b.node_at_slot);
    }

    #[test]
    #[should_panic]
    fn repeated_order_rejected() {
        let g = ring(3);
        let _ = generic_collinear(&g, &[0, 1, 1]);
    }

    #[test]
    fn improve_order_never_worsens() {
        let g = star(4);
        let start = bfs_order(&g);
        let before = generic_collinear(&g, &start).max_load();
        let improved = improve_order(&g, &start, 4, 11);
        let after = generic_collinear(&g, &improved).max_load();
        assert!(after <= before, "{after} > {before}");
        // still a permutation realizing the graph
        let l = generic_collinear(&g, &improved);
        l.assert_valid();
        assert_eq!(l.edge_multiset(), g.edge_multiset());
    }

    #[test]
    fn improve_order_untangles_a_scrambled_ring() {
        // a ring in a scrambled order has high load; local search should
        // recover something close to the 2-track optimum
        let g = ring(10);
        let scrambled: Vec<u32> = vec![0, 5, 2, 7, 4, 9, 6, 1, 8, 3];
        let before = generic_collinear(&g, &scrambled).max_load();
        let improved = improve_order(&g, &scrambled, 50, 3);
        let after = generic_collinear(&g, &improved).max_load();
        assert!(after < before, "no improvement: {before} -> {after}");
        assert!(after <= 4, "still tangled: {after}");
    }
}
