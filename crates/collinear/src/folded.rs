//! Folded node orders — the paper's device for cutting the maximum wire
//! length (§3.1: "to reduce the maximum wire length, we fold each row
//! and column").
//!
//! A collinear k-ary layout built in digit order leaves the first
//! dimension's ring spread across the whole row, so its wraparound link
//! spans Θ(row length). *Folding* re-orders the row in the boustrophedon
//! interleave `0, G−1, 1, G−2, …` of the outermost digit groups, after
//! which every ring link of that dimension spans at most two groups.
//! Wires are re-coloured greedily, which is optimal for the new order.

use crate::interval::color_intervals;
use crate::track::CollinearLayout;

/// The folded visiting sequence of `g` groups: position `p` holds group
/// `p/2` for even `p` and group `g−1−(p−1)/2` for odd `p` — i.e.
/// `0, g−1, 1, g−2, 2, …`. Consecutive groups (and the `0/g−1` wrap
/// pair) end up at positions at most 2 apart.
pub fn folded_sequence(g: usize) -> Vec<usize> {
    (0..g)
        .map(|p| {
            if p % 2 == 0 {
                p / 2
            } else {
                g - 1 - (p - 1) / 2
            }
        })
        .collect()
}

/// Re-order a layout's slots by an arbitrary permutation and re-colour
/// all wires greedily (provably minimal tracks for the new order).
/// `sequence[p]` gives the *old* slot placed at new position `p`.
pub fn reorder_and_recolor(base: &CollinearLayout, sequence: &[usize]) -> CollinearLayout {
    let n = base.slot_count();
    assert_eq!(sequence.len(), n, "sequence must cover all slots");
    // position of each old slot in the new order
    let mut pos = vec![usize::MAX; n];
    for (p, &old) in sequence.iter().enumerate() {
        assert!(pos[old] == usize::MAX, "sequence repeats slot {old}");
        pos[old] = p;
    }
    let node_at_slot: Vec<u32> = sequence.iter().map(|&old| base.node_at_slot[old]).collect();
    let spans: Vec<(usize, usize)> = base
        .wires
        .iter()
        .map(|w| {
            let (a, b) = (pos[w.lo], pos[w.hi]);
            (a.min(b), a.max(b))
        })
        .collect();
    let mut l = CollinearLayout::new(format!("{} (folded)", base.name), node_at_slot);
    l.wires = color_intervals(&spans);
    l
}

/// Fold the outermost digit of a layout whose slots consist of `groups`
/// consecutive blocks (block = all slots sharing the outermost digit):
/// blocks are re-ordered by [`folded_sequence`], slots within a block
/// keep their order.
pub fn fold_outer_groups(base: &CollinearLayout, groups: usize) -> CollinearLayout {
    let n = base.slot_count();
    assert!(
        groups >= 1 && n.is_multiple_of(groups),
        "groups must divide slots"
    );
    let size = n / groups;
    let seq = folded_sequence(groups);
    let mut sequence = Vec::with_capacity(n);
    for &g in &seq {
        for off in 0..size {
            sequence.push(g * size + off);
        }
    }
    reorder_and_recolor(base, &sequence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::karyn::kary_collinear;
    use crate::ring::ring_collinear;
    use mlv_topology::karyn::KaryNCube;
    use mlv_topology::ring::ring;

    #[test]
    fn folded_sequence_shape() {
        assert_eq!(folded_sequence(6), vec![0, 5, 1, 4, 2, 3]);
        assert_eq!(folded_sequence(5), vec![0, 4, 1, 3, 2]);
        assert_eq!(folded_sequence(1), vec![0]);
    }

    #[test]
    fn folded_ring_has_short_wires() {
        let base = ring_collinear(12);
        assert_eq!(base.max_span(), 11); // wraparound spans everything
        let folded = fold_outer_groups(&base, 12);
        folded.assert_valid();
        assert!(folded.max_span() <= 2, "span {}", folded.max_span());
        assert_eq!(folded.edge_multiset(), ring(12).edge_multiset());
        // folded ring needs at most 3 tracks (2 before)
        assert!(folded.tracks() <= 3);
    }

    #[test]
    fn folded_kary_cuts_max_span_by_about_k() {
        let k = 5;
        let n = 2;
        let base = kary_collinear(k, n);
        let folded = fold_outer_groups(&base, k);
        folded.assert_valid();
        assert_eq!(
            folded.edge_multiset(),
            KaryNCube::torus(k, n).graph.edge_multiset()
        );
        // outermost ring previously spanned (k-1)*k slots; now <= 2k
        assert_eq!(base.max_span(), (k - 1) * k);
        assert!(folded.max_span() <= 2 * k, "span {}", folded.max_span());
        // track count stays within a small factor
        assert!(folded.tracks() <= 2 * base.tracks());
    }

    #[test]
    fn reorder_identity_preserves_everything() {
        let base = kary_collinear(3, 2);
        let same = reorder_and_recolor(&base, &(0..9).collect::<Vec<_>>());
        same.assert_valid();
        assert_eq!(same.edge_multiset(), base.edge_multiset());
        // greedy recolor can only match or beat the constructive count
        assert!(same.tracks() <= base.tracks());
    }

    #[test]
    #[should_panic]
    fn repeated_sequence_rejected() {
        let base = ring_collinear(4);
        let _ = reorder_and_recolor(&base, &[0, 1, 2, 2]);
    }
}
