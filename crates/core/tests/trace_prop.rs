//! Property tests for [`mlv_core::trace`]: arbitrary nested span
//! trees aggregate the same whether recorded sequentially, recorded
//! across `exec` worker threads, or collected chunk-wise and merged —
//! and an enclosing span's total always covers its children.

use mlv_core::bench::black_box;
use mlv_core::trace::{self, Aggregate, Trace};
use mlv_core::{exec, mlv_proptest, prop, prop_assert, prop_assert_eq};

const NAMES: [&str; 4] = ["tree.a", "tree.b", "tree.c", "tree.d"];

/// Record a deterministic nested span tree derived from `v`: a chain
/// of `v % 4 + 1` nested spans, each bumping a counter and a value
/// histogram, plus one wall-clock histogram that the deterministic
/// digest must ignore.
fn run_item(v: u64) {
    fn nest(depth: usize, x: u64) {
        let _g = trace::span(NAMES[x as usize % NAMES.len()]);
        mlv_core::counter!("items.visited", 1);
        mlv_core::histogram!("items.value", x);
        if depth > 0 {
            nest(depth - 1, x / 3 + 1);
        }
    }
    let clock = std::time::Instant::now();
    nest(v as usize % 4, v);
    mlv_core::histogram!("items.spin_ns", clock.elapsed().as_nanos() as u64);
}

/// Run every item through `exec::par_map` under `threads` workers and
/// return the collected aggregate.
fn aggregate_of(threads: usize, items: &[u64]) -> Aggregate {
    let t = Trace::new();
    t.collect(|| {
        exec::with_thread_count(threads, || {
            exec::par_map(items, |_, &v| run_item(v));
        })
    });
    t.aggregate()
}

mlv_proptest! {
    cases = 24;

    /// Recording across 8 worker threads aggregates to the same
    /// deterministic lines (and digest) as a single-threaded run —
    /// the `MLV_THREADS` independence the CI byte-identity job pins.
    /// Lengths stay above `exec`'s inline threshold (64) so the
    /// 8-thread run really fans out.
    #[test]
    fn threaded_aggregate_matches_sequential(
        items in prop::vec(0u64..1000, 65..140),
    ) {
        let seq = aggregate_of(1, &items);
        let par = aggregate_of(8, &items);
        prop_assert_eq!(seq.deterministic_lines(), par.deterministic_lines());
        prop_assert_eq!(seq.digest(), par.digest());
        let visits: u64 = items.iter().map(|v| v % 4 + 1).sum();
        prop_assert_eq!(seq.counter("items.visited"), visits);
    }

    /// Chunk-wise collection plus [`Aggregate::merge`] equals one
    /// sequential trace on the deterministic view, and merge order
    /// does not matter even for the wall-clock fields.
    #[test]
    fn merged_chunks_match_sequential(
        items in prop::vec(0u64..1000, 1..80),
        chunk in 1usize..9,
    ) {
        let seq = {
            let t = Trace::new();
            t.collect(|| items.iter().for_each(|&v| run_item(v)));
            t.aggregate()
        };
        let parts: Vec<Aggregate> = items
            .chunks(chunk)
            .map(|c| {
                let t = Trace::new();
                t.collect(|| c.iter().for_each(|&v| run_item(v)));
                t.aggregate()
            })
            .collect();
        let mut forward = Aggregate::default();
        parts.iter().for_each(|p| forward.merge(p));
        let mut reverse = Aggregate::default();
        parts.iter().rev().for_each(|p| reverse.merge(p));
        prop_assert_eq!(&forward, &reverse);
        prop_assert_eq!(seq.deterministic_lines(), forward.deterministic_lines());
        prop_assert_eq!(seq.digest(), forward.digest());
    }

    /// An enclosing span's total time covers the sum of its children —
    /// the pipeline invariant (`pipeline >= placement + tracks +
    /// layers + emit`) in miniature, for arbitrary child sets.
    #[test]
    fn outer_span_covers_children(
        children in prop::vec((0usize..4, 1u64..200), 1..8),
    ) {
        let t = Trace::new();
        t.collect(|| {
            let _outer = trace::span("outer");
            for &(name, spin) in &children {
                let _c = trace::span(NAMES[name]);
                let mut acc = 0u64;
                for i in 0..spin * 50 {
                    acc = acc.wrapping_add(black_box(i));
                }
                black_box(acc);
            }
        });
        let agg = t.aggregate();
        let outer = agg.span("outer").expect("outer span recorded");
        let inner_ns: u64 = NAMES
            .iter()
            .filter_map(|n| agg.span(n))
            .map(|s| s.total_ns)
            .sum();
        prop_assert!(
            outer.total_ns >= inner_ns,
            "outer {} ns < sum of children {} ns",
            outer.total_ns,
            inner_ns
        );
        let inner_count: u64 = NAMES
            .iter()
            .filter_map(|n| agg.span(n))
            .map(|s| s.count)
            .sum();
        prop_assert_eq!(inner_count, children.len() as u64);
    }
}
