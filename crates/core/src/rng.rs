//! Seedable pseudo-random number generation: SplitMix64 seeding into a
//! xoshiro256++ core (Blackman & Vigna), the standard construction for
//! fast, high-quality, reproducible non-cryptographic streams.
//!
//! The contract mirrors what the topology generators previously used
//! from `rand`'s `StdRng::seed_from_u64`: the same seed always yields
//! the same sequence, on every platform and every run. Bounded draws
//! use Lemire's unbiased multiply-shift rejection method.

/// The SplitMix64 generator — used to expand a 64-bit seed into
/// xoshiro's 256-bit state, and usable on its own for cheap mixing.
#[derive(Clone, Debug)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next 64-bit output (advances the state).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A seedable xoshiro256++ PRNG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Deterministically seed from a single `u64` (SplitMix64 state
    /// expansion, the construction xoshiro's authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        if s == [0; 4] {
            // xoshiro's one forbidden state; unreachable from SplitMix64
            // in practice, but guard it anyway.
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Rng { s }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from `[0, bound)`; `bound = 0` yields 0. Unbiased
    /// (Lemire multiply-shift with rejection).
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw from a half-open `u64` range. Panics on empty ranges.
    pub fn gen_range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.bounded_u64(range.end - range.start)
    }

    /// Uniform draw from a half-open `usize` range. Panics on empty ranges.
    pub fn gen_range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.bounded_u64((range.end - range.start) as u64) as usize
    }

    /// Uniform draw from a half-open `i64` range. Panics on empty ranges.
    pub fn gen_range_i64(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(self.bounded_u64(span) as i64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 random bits into [0, 1)
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn bounded_draws_in_range() {
        let mut r = Rng::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(r.bounded_u64(bound) < bound);
            }
        }
        for _ in 0..200 {
            let v = r.gen_range_i64(-5..7);
            assert!((-5..7).contains(&v));
        }
    }

    #[test]
    fn bounded_hits_every_value() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[r.gen_range_usize(0..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
