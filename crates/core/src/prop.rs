//! A minimal property-testing harness — the in-repo replacement for the
//! `proptest` crate, covering exactly what the workspace's suites use.
//!
//! Write suites with [`mlv_proptest!`](crate::mlv_proptest):
//!
//! ```
//! use mlv_core::{mlv_proptest, prop, prop_assert, prop_assert_eq, prop_assume};
//!
//! mlv_proptest! {
//!     cases = 64; // optional; defaults to [`DEFAULT_CASES`]
//!
//!     // in a real suite, mark each property with `#[test]`
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assume!(a != b);
//!         prop_assert_eq!(a + b, b + a);
//!         prop_assert!(a + b >= a, "overflowed: {} {}", a, b);
//!     }
//! }
//!
//! addition_commutes();
//! ```
//!
//! Generators are [`Gen`] values: integer ranges (`0u64..1000`), tuples
//! of generators, and [`fn@vec`]`(gen, len_range)`. Each test runs a fixed
//! number of generated cases (override globally with
//! `MLV_PROPTEST_CASES`); the case stream is derived deterministically
//! from the test's name, so runs are reproducible without any
//! bookkeeping, and `MLV_PROPTEST_SEED` re-seeds the whole stream when
//! exploring. There is **no shrinking**: a falsified property reports
//! the generated inputs and the per-case seed verbatim.

use crate::rng::{Rng, SplitMix64};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default number of generated cases per property.
pub const DEFAULT_CASES: usize = 256;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum CaseError {
    /// `prop_assume!` rejected the inputs; the case does not count.
    Reject,
    /// A `prop_assert!`-family macro falsified the property.
    Fail(String),
}

/// A value generator: draws one `Value` from the case RNG.
pub trait Gen {
    /// The generated type.
    type Value: std::fmt::Debug;
    /// Draw one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;
}

macro_rules! impl_gen_for_int_range {
    ($($t:ty),+ $(,)?) => {$(
        impl Gen for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty generator range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
    )+};
}

impl_gen_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Gen, B: Gen> Gen for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Gen, B: Gen, C: Gen> Gen for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Gen, B: Gen, C: Gen, D: Gen> Gen for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Generator of `Vec`s: a length drawn from `len`, then that many
/// elements from `element`.
pub struct VecGen<G> {
    element: G,
    len: std::ops::Range<usize>,
}

/// `Vec` generator with a length range — the counterpart of
/// `proptest::collection::vec`.
pub fn vec<G: Gen>(element: G, len: std::ops::Range<usize>) -> VecGen<G> {
    VecGen { element, len }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        let n = if self.len.start < self.len.end {
            rng.gen_range_usize(self.len.clone())
        } else {
            self.len.start
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn env_usize(var: &str) -> Option<usize> {
    std::env::var(var).ok()?.trim().parse().ok()
}

fn env_u64(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.trim().parse().ok()
}

/// Drive one property: generate and run up to `default_cases` accepted
/// cases (env `MLV_PROPTEST_CASES` overrides). The driver panics — with
/// the test name, per-case seed, and the generated inputs — on the
/// first falsified case or body panic. Called by the
/// [`mlv_proptest!`](crate::mlv_proptest) expansion; not usually by hand.
pub fn run<F>(name: &str, default_cases: usize, mut case: F)
where
    F: FnMut(&mut Rng, &mut String) -> Result<(), CaseError>,
{
    let cases = env_usize("MLV_PROPTEST_CASES")
        .unwrap_or(default_cases)
        .max(1);
    let base = env_u64("MLV_PROPTEST_SEED").unwrap_or_else(|| fnv1a(name));
    let max_attempts = (cases as u64).saturating_mul(20);
    let mut executed = 0usize;
    let mut attempt = 0u64;
    while executed < cases {
        assert!(
            attempt < max_attempts,
            "property '{name}': only {executed}/{cases} cases accepted after \
             {attempt} attempts — prop_assume! rejects too much"
        );
        let seed = SplitMix64(base.wrapping_add(attempt)).next_u64();
        attempt += 1;
        let mut rng = Rng::seed_from_u64(seed);
        let mut inputs = String::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng, &mut inputs)));
        match outcome {
            Ok(Ok(())) => executed += 1,
            Ok(Err(CaseError::Reject)) => {}
            Ok(Err(CaseError::Fail(msg))) => panic!(
                "property '{name}' falsified on case {executed} (seed {seed:#018x}):\n\
                 {inputs}  {msg}"
            ),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic payload>");
                panic!(
                    "property '{name}' panicked on case {executed} (seed {seed:#018x}):\n\
                     {inputs}  panic: {msg}"
                )
            }
        }
    }
}

/// Define property tests: a block of `#[test] fn name(pat in gen, ...)`
/// items, optionally preceded by `cases = N;`. See the [module
/// docs](crate::prop) for the full shape.
#[macro_export]
macro_rules! mlv_proptest {
    (@items $cases:expr; ) => {};
    (@items $cases:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $gen:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::prop::run(::core::stringify!($name), $cases, |__mlv_rng, __mlv_inputs| {
                $(
                    let __mlv_v = $crate::prop::Gen::generate(&($gen), __mlv_rng);
                    __mlv_inputs.push_str(&::std::format!(
                        "  {} = {:?}\n",
                        ::core::stringify!($arg),
                        __mlv_v
                    ));
                    let $arg = __mlv_v;
                )+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::mlv_proptest!(@items $cases; $($rest)*);
    };
    (cases = $cases:expr; $($rest:tt)*) => {
        $crate::mlv_proptest!(@items $cases; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::mlv_proptest!(@items $crate::prop::DEFAULT_CASES; $($rest)*);
    };
}

/// Property assertion: falsifies the enclosing
/// [`mlv_proptest!`](crate::mlv_proptest) case when the condition is
/// false. An optional format string adds detail.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::prop::CaseError::Fail(
                ::std::format!(
                    "{}:{}: {}",
                    ::core::file!(),
                    ::core::line!(),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Property equality assertion (Debug-printing both sides on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__mlv_l, __mlv_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__mlv_l == *__mlv_r,
            "{} == {}\n    left: {:?}\n   right: {:?}",
            ::core::stringify!($left),
            ::core::stringify!($right),
            __mlv_l,
            __mlv_r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__mlv_l, __mlv_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__mlv_l == *__mlv_r,
            "{} == {} ({})\n    left: {:?}\n   right: {:?}",
            ::core::stringify!($left),
            ::core::stringify!($right),
            ::std::format!($($fmt)+),
            __mlv_l,
            __mlv_r
        );
    }};
}

/// Property inequality assertion (Debug-printing both sides on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__mlv_l, __mlv_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__mlv_l != *__mlv_r,
            "{} != {}\n    both: {:?}",
            ::core::stringify!($left),
            ::core::stringify!($right),
            __mlv_l
        );
    }};
}

/// Reject the current generated case without failing the property
/// (rejections do not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::prop::CaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate as mlv_core;
    use mlv_core::prop;

    mlv_proptest! {
        cases = 64;

        /// The harness itself: ranges respect bounds, vec lengths land
        /// in range, assume-rejection works.
        #[test]
        fn generators_respect_bounds(
            x in -50i64..50,
            v in prop::vec(0u32..10, 1..8),
            (a, b) in (0usize..5, 3u8..9),
        ) {
            prop_assume!(x != 49); // exercise rejection
            prop_assert!((-50..50).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 8, "len {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert!(a < 5);
            prop_assert!((3..9).contains(&b));
            prop_assert_eq!(a + 1, 1 + a);
            prop_assert_ne!(b, 0);
        }
    }

    #[test]
    fn failing_property_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::prop::run("always_fails", 8, |rng, inputs| {
                let v = crate::prop::Gen::generate(&(0u32..100), rng);
                inputs.push_str(&format!("  v = {v:?}\n"));
                Err(crate::prop::CaseError::Fail("forced".into()))
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("v = "), "{msg}");
        assert!(msg.contains("forced"), "{msg}");
    }

    #[test]
    fn case_stream_is_deterministic() {
        let collect = || {
            let mut seen = Vec::new();
            crate::prop::run("det_stream", 16, |rng, _| {
                seen.push(crate::prop::Gen::generate(&(0u64..1_000_000), rng));
                Ok(())
            });
            seen
        };
        assert_eq!(collect(), collect());
    }
}
