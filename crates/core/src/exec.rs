//! Chunked data-parallel executor over [`std::thread::scope`].
//!
//! Work is split into one contiguous chunk per worker thread; each
//! worker produces its chunk's results, and chunks are recombined **in
//! input order**, so every function here returns byte-identical output
//! to its sequential equivalent. Thread count comes from
//! [`thread_count`]: a per-thread override (for tests), the
//! `MLV_THREADS` environment variable, or
//! [`std::thread::available_parallelism`], in that priority order.
//!
//! Inputs smaller than [`MIN_CHUNK`] items run inline on the calling
//! thread — spawning is not worth it below that.
//!
//! Every fan-out entry point snapshots the calling thread's installed
//! [`crate::trace`] stack and attaches it in each worker, so spans,
//! counters, and histograms recorded inside parallel work land in the
//! same trace aggregates as sequential execution.

use crate::trace;
use std::cell::Cell;
use std::num::NonZeroUsize;
use std::thread;

/// Inputs with at most this many items are processed sequentially.
pub const MIN_CHUNK: usize = 64;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Run `f` with [`thread_count`] forced to `n` on the current thread.
///
/// This is the test hook for exercising the parallel paths on machines
/// with few cores (and the sequential path on machines with many): the
/// override applies to every executor call made while `f` runs.
pub fn with_thread_count<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    let result = f();
    THREAD_OVERRIDE.with(|c| c.set(prev));
    result
}

/// Worker threads used by the executor on this thread.
///
/// Priority: [`with_thread_count`] override, then `MLV_THREADS`, then
/// [`std::thread::available_parallelism`] (1 if unknown). The
/// environment and parallelism probe are read **once per process** and
/// cached: `available_parallelism` re-reads cgroup limits on Linux
/// (tens of microseconds in containers), far too slow for the pipeline
/// hot paths that gate on the thread count per realization. Tests
/// vary the count via [`with_thread_count`], which bypasses the cache.
pub fn thread_count() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n;
    }
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("MLV_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

fn chunk_len(len: usize, threads: usize) -> usize {
    len.div_ceil(threads).max(1)
}

/// Parallel indexed map: equivalent to
/// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()`, with the
/// closure applied across [`thread_count`] scoped threads. Results are
/// returned in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = thread_count();
    if threads <= 1 || items.len() <= MIN_CHUNK {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = chunk_len(items.len(), threads);
    let tstack = trace::snapshot();
    let per_chunk: Vec<Vec<R>> = thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, c)| {
                let f = &f;
                let tstack = &tstack;
                s.spawn(move || {
                    trace::attach(tstack, || {
                        c.iter()
                            .enumerate()
                            .map(|(i, t)| f(ci * chunk + i, t))
                            .collect::<Vec<R>>()
                    })
                })
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for mut v in per_chunk {
        out.append(&mut v);
    }
    out
}

/// Parallel indexed flat-map in sink style: `f` pushes any number of
/// outputs for its item into a chunk-local buffer (one allocation per
/// chunk, not per item — and no borrow puzzle about iterators that
/// capture the item). Output order is input order.
pub fn par_flat_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &mut Vec<R>) + Sync,
{
    let threads = thread_count();
    if threads <= 1 || items.len() <= MIN_CHUNK {
        let mut out = Vec::new();
        for (i, t) in items.iter().enumerate() {
            f(i, t, &mut out);
        }
        return out;
    }
    let chunk = chunk_len(items.len(), threads);
    let tstack = trace::snapshot();
    let per_chunk: Vec<Vec<R>> = thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, c)| {
                let f = &f;
                let tstack = &tstack;
                s.spawn(move || {
                    trace::attach(tstack, || {
                        let mut buf = Vec::new();
                        for (i, t) in c.iter().enumerate() {
                            f(ci * chunk + i, t, &mut buf);
                        }
                        buf
                    })
                })
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    });
    let mut out = Vec::with_capacity(per_chunk.iter().map(Vec::len).sum());
    for mut v in per_chunk {
        out.append(&mut v);
    }
    out
}

/// Parallel indexed **chunk** fan-out: `f` is called once per
/// contiguous chunk with the chunk's starting index into `items`, and
/// its output `Vec`s are concatenated **in chunk order**. The
/// sequential fallback is a single call `f(0, items)`, so `f` must
/// produce, for any chunking, the concatenation of its per-item
/// outputs — i.e. chunk boundaries must not influence what any single
/// item contributes. Compared to [`par_map`] this lets the worker keep
/// per-chunk state (scratch buffers, batched allocation) across the
/// items of its chunk.
///
/// `min_items` overrides the executor's [`MIN_CHUNK`] inline threshold
/// for this call (callers tune it to the per-item cost).
pub fn par_chunk_map<T, R, F>(items: &[T], min_items: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let threads = thread_count();
    if threads <= 1 || items.len() <= min_items.max(1) {
        return f(0, items);
    }
    let chunk = chunk_len(items.len(), threads);
    let tstack = trace::snapshot();
    let per_chunk: Vec<Vec<R>> = thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, c)| {
                let f = &f;
                let tstack = &tstack;
                s.spawn(move || trace::attach(tstack, || f(ci * chunk, c)))
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    });
    let mut out = Vec::with_capacity(per_chunk.iter().map(Vec::len).sum());
    for mut v in per_chunk {
        out.append(&mut v);
    }
    out
}

/// Parallel chunked fold-then-combine: each worker folds its contiguous
/// chunk with `fold` starting from a clone of `identity`, and the
/// per-chunk accumulators are combined **left to right in chunk order**
/// with `combine`. For `combine` associative with `identity` as a left
/// identity (sums, maxes, and tuples thereof), the result equals the
/// sequential fold exactly.
pub fn par_chunk_reduce<T, A, F, G>(items: &[T], identity: A, fold: F, combine: G) -> A
where
    T: Sync,
    A: Send + Clone,
    F: Fn(A, &T) -> A + Sync,
    G: Fn(A, A) -> A,
{
    let threads = thread_count();
    if threads <= 1 || items.len() <= MIN_CHUNK {
        return items.iter().fold(identity, fold);
    }
    let chunk = chunk_len(items.len(), threads);
    let tstack = trace::snapshot();
    let per_chunk: Vec<A> = thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                let f = &fold;
                let id = identity.clone();
                let tstack = &tstack;
                s.spawn(move || trace::attach(tstack, || c.iter().fold(id, f)))
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    });
    let mut acc = identity;
    for a in per_chunk {
        acc = combine(acc, a);
    }
    acc
}

/// Parallel unstable sort: chunks are sorted on scoped threads, then
/// merged bottom-up through a double buffer. Total order on `T` makes
/// the result identical to `data.sort_unstable()`.
pub fn par_sort_unstable<T: Ord + Send + Copy>(data: &mut Vec<T>) {
    let threads = thread_count();
    if threads <= 1 || data.len() <= 2 * MIN_CHUNK {
        data.sort_unstable();
        return;
    }
    let run = chunk_len(data.len(), threads);
    thread::scope(|s| {
        for piece in data.chunks_mut(run) {
            s.spawn(move || piece.sort_unstable());
        }
    });
    // bottom-up merge of the sorted runs
    let mut src = std::mem::take(data);
    let mut dst: Vec<T> = Vec::with_capacity(src.len());
    let mut width = run;
    while width < src.len() {
        dst.clear();
        let mut i = 0;
        while i < src.len() {
            let mid = (i + width).min(src.len());
            let end = (i + 2 * width).min(src.len());
            merge_into(&src[i..mid], &src[mid..end], &mut dst);
            i = end;
        }
        std::mem::swap(&mut src, &mut dst);
        width *= 2;
    }
    *data = src;
}

fn merge_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut Vec<T>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

fn join_worker<R>(h: thread::ScopedJoinHandle<'_, R>) -> R {
    h.join()
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let items: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 3 + i as u64)
            .collect();
        for threads in [1, 2, 4, 7] {
            let par = with_thread_count(threads, || par_map(&items, |i, x| x * 3 + i as u64));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_flat_map_matches_sequential() {
        let items: Vec<u64> = (0..5_000).collect();
        let seq: Vec<u64> = items.iter().flat_map(|&x| [x, x + 1]).collect();
        let par = with_thread_count(4, || {
            par_flat_map(&items, |_, &x, out| out.extend([x, x + 1]))
        });
        assert_eq!(par, seq);
    }

    #[test]
    fn par_chunk_map_matches_sequential() {
        let items: Vec<u64> = (0..9_999).collect();
        let seq: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 7 + i as u64)
            .collect();
        for threads in [1, 2, 4, 7] {
            let par = with_thread_count(threads, || {
                par_chunk_map(&items, 64, |start, chunk| {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(j, x)| x * 7 + (start + j) as u64)
                        .collect()
                })
            });
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_chunk_map_inline_below_threshold() {
        // below min_items the closure runs exactly once, inline
        let items: Vec<u32> = (0..100).collect();
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let out = with_thread_count(4, || {
            par_chunk_map(&items, 1000, |start, chunk| {
                calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                assert_eq!(start, 0);
                chunk.to_vec()
            })
        });
        assert_eq!(out, items);
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn par_chunk_reduce_matches_sequential() {
        let items: Vec<u64> = (1..=20_000).collect();
        let seq: (u64, u64) = items.iter().fold((0, 0), |a, &x| (a.0 + x, a.1.max(x)));
        let par = with_thread_count(5, || {
            par_chunk_reduce(
                &items,
                (0u64, 0u64),
                |a, &x| (a.0 + x, a.1.max(x)),
                |a, b| (a.0 + b.0, a.1.max(b.1)),
            )
        });
        assert_eq!(par, seq);
    }

    #[test]
    fn par_sort_matches_sequential() {
        let mut v: Vec<(u64, u32)> = Vec::new();
        let mut s = 0x1234_5678_9abc_def0u64;
        for i in 0..30_000u32 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            v.push((s % 997, i));
        }
        let mut seq = v.clone();
        seq.sort_unstable();
        with_thread_count(6, || par_sort_unstable(&mut v));
        assert_eq!(v, seq);
    }

    #[test]
    fn work_spreads_across_threads() {
        // even on a single-core machine the executor must actually use
        // >1 worker threads when asked to (acceptance: parallelism is
        // observable, not vestigial)
        let items: Vec<u32> = (0..10_000).collect();
        let ids = with_thread_count(4, || par_map(&items, |_, _| thread::current().id()));
        let distinct: std::collections::HashSet<_> = ids.iter().copied().collect();
        assert!(
            distinct.len() > 1,
            "expected >1 worker threads, saw {}",
            distinct.len()
        );
        // and the caller's thread does none of the chunk work
        assert!(!ids.contains(&thread::current().id()));
    }

    #[test]
    fn override_nests_and_restores() {
        with_thread_count(3, || {
            assert_eq!(thread_count(), 3);
            with_thread_count(1, || assert_eq!(thread_count(), 1));
            assert_eq!(thread_count(), 3);
        });
    }
}
