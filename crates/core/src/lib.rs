//! # mlv-core
//!
//! The zero-dependency runtime kernel of the workspace. Everything the
//! reproduction previously pulled from crates.io lives here, implemented
//! on `std` alone so the whole workspace builds and tests fully offline:
//!
//! * [`exec`] — a chunked data-parallel executor over
//!   [`std::thread::scope`] (`par_map`, `par_flat_map`,
//!   `par_chunk_reduce`, `par_sort_unstable`), the replacement for rayon
//!   in the legality checker and metrics hot paths;
//! * [`rng`] — a seedable SplitMix64/xoshiro256++ PRNG with the same
//!   deterministic-seed contract the topology generators relied on from
//!   `StdRng::seed_from_u64`;
//! * [`prop`] — a minimal property-testing harness behind the
//!   [`mlv_proptest!`](crate::mlv_proptest) macro: generator values from
//!   ranges/tuples/`vec`, configurable case counts, shrink-free failure
//!   reports that print the generated inputs and the case seed;
//! * [`mod@bench`] — a wall-clock micro-bench harness (warmup + calibration
//!   + median-of-N, one JSON line per benchmark) replacing criterion;
//! * [`queue`] — a bounded FIFO with reject-don't-buffer backpressure
//!   (non-blocking producers, blocking consumers), the admission
//!   control primitive behind `mlv serve`'s per-connection queues;
//! * [`trace`] — zero-dependency structured tracing + metrics (span
//!   guards via [`span!`], counters via [`counter!`], log2 histograms
//!   via [`histogram!`]), aggregated deterministically across threads
//!   and propagated through the executor.
//!
//! Determinism is a design rule throughout: parallel results are
//! combined in input order, so every parallel entry point returns
//! byte-identical output to its sequential equivalent — and the trace
//! subsystem's deterministic rendering is byte-identical for any
//! thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod exec;
pub mod prop;
pub mod queue;
pub mod rng;
pub mod trace;
