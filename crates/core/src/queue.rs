//! A bounded multi-producer FIFO with **reject-don't-buffer**
//! backpressure — the admission-control primitive behind `mlv serve`'s
//! per-connection request queues.
//!
//! The design rule (ROADMAP item 2, the serving north star) is that a
//! server under overload must shed load at the edge with a cheap,
//! immediate "busy, retry later" instead of buffering without bound:
//! producers call [`Bounded::try_push`], which **never blocks** — a
//! full queue returns the item straight back so the caller can emit a
//! retry-after response. The consumer side ([`Bounded::pop`]) blocks on
//! a condvar until an item arrives or the queue is closed and drained,
//! so a worker thread can run a plain `while let Some(x) = q.pop()`
//! loop.
//!
//! Closing ([`Bounded::close`]) is idempotent and wakes every blocked
//! consumer; items already queued are still delivered (drain
//! semantics), after which `pop` returns `None`. Rejection and
//! acceptance counters are tracked so a service can report backpressure
//! in its stats without a second bookkeeping layer.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why [`Bounded::try_push`] handed the item back.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the caller should shed load (the item
    /// is returned unconsumed).
    Full(T),
    /// The queue was closed; no further items will ever be accepted.
    Closed(T),
}

impl<T> PushError<T> {
    /// The rejected item, regardless of the reason.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(t) | PushError::Closed(t) => t,
        }
    }
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    accepted: u64,
    rejected: u64,
}

/// A bounded FIFO queue: non-blocking producers, blocking consumers.
/// See the module docs for the backpressure contract.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    ready: Condvar,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
                accepted: 0,
                rejected: 0,
            }),
            capacity: capacity.max(1),
            ready: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue without blocking. `Err(Full)` when at capacity (the
    /// backpressure signal), `Err(Closed)` after [`Bounded::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().expect("queue poisoned");
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            s.rejected += 1;
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        s.accepted += 1;
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue, blocking until an item is available. Returns `None`
    /// once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).expect("queue poisoned");
        }
    }

    /// [`Bounded::pop`] with a deadline: `Ok(None)` on close-and-drain,
    /// `Err(())` on timeout with the queue still open.
    #[allow(clippy::result_unit_err)]
    pub fn pop_timeout(&self, timeout: Duration) -> Result<Option<T>, ()> {
        let deadline = std::time::Instant::now() + timeout;
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                return Ok(Some(item));
            }
            if s.closed {
                return Ok(None);
            }
            let now = std::time::Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(());
            };
            let (guard, _timed_out) = self.ready.wait_timeout(s, left).expect("queue poisoned");
            s = guard;
        }
    }

    /// Close the queue: producers are rejected from now on, queued
    /// items still drain, blocked consumers wake. Idempotent.
    pub fn close(&self) {
        let mut s = self.state.lock().expect("queue poisoned");
        s.closed = true;
        drop(s);
        self.ready.notify_all();
    }

    /// `true` after [`Bounded::close`].
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }

    /// Items currently queued (momentary).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// `true` when nothing is queued (momentary).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(accepted, rejected)` lifetime counters: every `try_push` is
    /// counted exactly once (closed-rejections are not counted —
    /// shutdown is not backpressure).
    pub fn counters(&self) -> (u64, u64) {
        let s = self.state.lock().expect("queue poisoned");
        (s.accepted, s.rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let q = Bounded::new(3);
        assert_eq!(q.capacity(), 3);
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        // the fourth push is shed, item returned intact
        match q.try_push(99) {
            Err(PushError::Full(v)) => assert_eq!(v, 99),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.counters(), (3, 1));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        // a slot freed: accepted again
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_zero_clamps_to_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(PushError::Full(2))));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Bounded::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert!(q.is_closed());
        // post-close pushes are Closed, not Full, and not counted as shed
        assert!(matches!(q.try_push("c"), Err(PushError::Closed("c"))));
        assert_eq!(q.counters(), (2, 0));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "pop after drain stays None");
    }

    #[test]
    fn pop_blocks_until_push_or_close() {
        let q = Arc::new(Bounded::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(v) = q.pop() {
                    seen.push(v);
                }
                seen
            })
        };
        for i in 0..100u32 {
            // producers spin rather than block: shed items are retried
            let mut item = i;
            loop {
                match q.try_push(item) {
                    Ok(()) => break,
                    Err(PushError::Full(v)) => {
                        item = v;
                        thread::yield_now();
                    }
                    Err(PushError::Closed(_)) => panic!("closed early"),
                }
            }
        }
        q.close();
        let seen = consumer.join().unwrap();
        assert_eq!(seen, (0..100).collect::<Vec<_>>(), "FIFO preserved");
        let (accepted, _) = q.counters();
        assert_eq!(accepted, 100);
    }

    #[test]
    fn pop_timeout_times_out_then_delivers() {
        let q: Bounded<u32> = Bounded::new(2);
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Err(()));
        q.try_push(7).unwrap();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Ok(Some(7)));
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Ok(None));
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(Bounded::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut sum = 0u64;
                let mut count = 0u64;
                while let Some(v) = q.pop() {
                    sum += v as u64;
                    count += 1;
                }
                (sum, count)
            })
        };
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut shed = 0u64;
                    for i in 0..50u32 {
                        let mut item = p * 1000 + i;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(v)) => {
                                    shed += 1;
                                    item = v;
                                    thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => unreachable!(),
                            }
                        }
                    }
                    shed
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let (sum, count) = consumer.join().unwrap();
        assert_eq!(count, 200);
        let expect: u64 = (0..4u64)
            .flat_map(|p| (0..50u64).map(move |i| p * 1000 + i))
            .sum();
        assert_eq!(sum, expect);
        let (accepted, _) = q.counters();
        assert_eq!(accepted, 200);
    }
}
