//! A tiny wall-clock micro-benchmark harness — the in-repo replacement
//! for criterion, sized to what the workspace's benches need.
//!
//! Each benchmark is calibrated (iterations doubled until one sample
//! takes long enough to time meaningfully), warmed up, then sampled N
//! times; the **median** per-iteration time is the headline number.
//! Every benchmark prints exactly one JSON line to stdout:
//!
//! ```text
//! {"group":"checker","bench":"hypercube n=8","iters":4,"samples":11,"median_ns":2310040,...}
//! ```
//!
//! so results are machine-diffable across runs with nothing but grep.
//! `MLV_BENCH_SAMPLES` overrides the sample count globally (e.g. `3`
//! for a CI smoke run).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark timing statistics (per-iteration nanoseconds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stats {
    /// Timed iterations per sample (chosen by calibration).
    pub iters: u64,
    /// Number of samples taken.
    pub samples: usize,
    /// Median per-iteration time.
    pub median_ns: u64,
    /// Mean per-iteration time.
    pub mean_ns: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
}

/// Calibrate, warm up, and sample `f`, returning per-iteration stats.
///
/// `samples` must be ≥ 1. The first (calibration) runs double the
/// iteration count until one batch exceeds ~5 ms, then iterations are
/// scaled so each timed sample takes ~20 ms.
pub fn measure<R>(samples: usize, mut f: impl FnMut() -> R) -> Stats {
    assert!(samples >= 1, "need at least one sample");
    const CALIBRATE: Duration = Duration::from_millis(5);
    const TARGET: Duration = Duration::from_millis(20);
    // calibration doubles as warmup
    let mut iters: u64 = 1;
    let per_iter_ns = loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let el = t.elapsed();
        if el >= CALIBRATE || iters >= 1 << 20 {
            break (el.as_nanos() / iters as u128).max(1);
        }
        iters *= 2;
    };
    iters = ((TARGET.as_nanos() / per_iter_ns).clamp(1, 1 << 24)) as u64;

    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            (t.elapsed().as_nanos() / iters as u128) as u64
        })
        .collect();
    times.sort_unstable();
    Stats {
        iters,
        samples,
        median_ns: times[samples / 2],
        mean_ns: (times.iter().map(|&t| t as u128).sum::<u128>() / samples as u128) as u64,
        min_ns: times[0],
        max_ns: times[samples - 1],
    }
}

/// A named group of benchmarks sharing a sample count — the analogue of
/// a criterion benchmark group.
pub struct BenchGroup {
    group: String,
    samples: usize,
    env_pinned: bool,
}

impl BenchGroup {
    /// Start a group. Sample count defaults to 11; `MLV_BENCH_SAMPLES`
    /// overrides both the default and any [`Self::sample_size`] call
    /// (so a CI smoke run can shrink every bench at once).
    pub fn new(group: impl Into<String>) -> Self {
        let env = std::env::var("MLV_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&n: &usize| n >= 1);
        BenchGroup {
            group: group.into(),
            samples: env.unwrap_or(11),
            env_pinned: env.is_some(),
        }
    }

    /// Set this group's sample count (ignored when `MLV_BENCH_SAMPLES`
    /// pins it globally).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        if !self.env_pinned {
            self.samples = samples.max(1);
        }
        self
    }

    /// Run one benchmark and print its JSON line.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) -> Stats {
        let stats = measure(self.samples, f);
        println!(
            "{{\"group\":{},\"bench\":{},\"iters\":{},\"samples\":{},\
             \"median_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
            json_str(&self.group),
            json_str(name),
            stats.iters,
            stats.samples,
            stats.median_ns,
            stats.mean_ns,
            stats.min_ns,
            stats.max_ns,
        );
        stats
    }

    /// End the group (kept for call-site symmetry with criterion).
    pub fn finish(&mut self) {}
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_positive() {
        let mut x = 0u64;
        let s = measure(5, || {
            for i in 0..2_000u64 {
                x = x.wrapping_add(black_box(i) * 31);
            }
            x
        });
        assert!(s.min_ns > 0);
        assert!(s.min_ns <= s.median_ns);
        assert!(s.median_ns <= s.max_ns);
        assert!(s.min_ns <= s.mean_ns && s.mean_ns <= s.max_ns);
        assert!(s.iters >= 1);
    }

    #[test]
    fn timer_is_monotonic() {
        // wall-clock reads never go backwards across sampling
        let mut last = Instant::now();
        for _ in 0..1000 {
            let now = Instant::now();
            assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("L=2, n=8"), "\"L=2, n=8\"");
    }
}
