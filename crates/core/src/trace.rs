//! Zero-dependency structured tracing + metrics: span guards with
//! nesting and monotonic timing, counters, and fixed-bucket log2
//! histograms, aggregated deterministically across threads.
//!
//! # Model
//!
//! A [`Trace`] is a collector. Installing one with [`Trace::collect`]
//! pushes its sink onto a **thread-local stack**; every event recorded
//! while the stack is non-empty updates *all* installed sinks, so a
//! nested trace (e.g. the per-realization trace behind
//! `PassTimings`) observes its own events while the enclosing run
//! trace accumulates them too — no explicit re-merge step. The
//! `mlv_core::exec` executor snapshots the caller's stack and installs
//! it in each scoped worker, so events from fanned-out work land in
//! the same sinks as sequential execution.
//!
//! Events come in three shapes, written with the exported macros:
//!
//! * [`span!`](crate::span) — an RAII guard; on drop it adds one
//!   occurrence and the elapsed monotonic nanoseconds under its key.
//!   Optional `key = value` fields are folded into the key as
//!   `name{key=value}`.
//! * [`counter!`](crate::counter) — adds a delta to a named `u64`
//!   total.
//! * [`histogram!`](crate::histogram) — records a `u64` value into a
//!   fixed-bucket log2 histogram ([`HIST_BUCKETS`] buckets: bucket 0
//!   holds 0, bucket *k* holds values with bit length *k*).
//!
//! # Determinism
//!
//! Aggregation is per-sink under a mutex with commutative updates
//! (sums over [`BTreeMap`] keys), and emission walks keys in sorted
//! order — so for a workload whose *event multiset* is thread-count
//! independent (everything the engine and pipeline record), the
//! aggregate is identical for any `MLV_THREADS`. Wall-clock data is
//! the one exception, and it is segregated by convention: span
//! durations and any histogram whose name ends in `_ns` are **timing**
//! data, excluded from [`Aggregate::deterministic_lines`] and hence
//! from [`Aggregate::digest`]. The digest is therefore byte-identical
//! across thread counts and is what CI pins.
//!
//! # Disabled path
//!
//! With no trace installed, every macro is a thread-local-read no-op:
//! `span!` skips even the monotonic-clock read. Instrumented hot paths
//! cost a few nanoseconds per event when tracing is off.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of histogram buckets: bucket 0 holds the value 0, bucket
/// `k ≥ 1` holds values `v` with `2^(k-1) <= v < 2^k` (i.e. bit
/// length `k`), up to bucket 64 for values with the top bit set.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Occurrences per log2 bucket (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total values recorded.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Bucket index of a value: 0 for 0, otherwise the bit length.
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Merge another histogram into this one (bucketwise sums).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// Aggregated occurrences + total duration of one span key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed span guards under this key.
    pub count: u64,
    /// Total monotonic nanoseconds across those guards.
    pub total_ns: u64,
}

/// The aggregate a [`Trace`] collects: spans, counters, and histograms
/// keyed by name in sorted order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Aggregate {
    /// Span statistics by key.
    pub spans: BTreeMap<String, SpanStat>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Aggregate {
    /// Merge another aggregate into this one. Merging is commutative
    /// and associative, so any merge order yields the same result.
    pub fn merge(&mut self, other: &Aggregate) {
        for (k, s) in &other.spans {
            let e = entry_mut(&mut self.spans, k);
            e.count += s.count;
            e.total_ns += s.total_ns;
        }
        for (k, v) in &other.counters {
            *entry_mut(&mut self.counters, k) += v;
        }
        for (k, h) in &other.histograms {
            entry_mut(&mut self.histograms, k).merge(h);
        }
    }

    /// Statistics of one span key, if it was recorded.
    pub fn span(&self, key: &str) -> Option<SpanStat> {
        self.spans.get(key).copied()
    }

    /// Total of one counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Full rendering: one JSON object per span/counter/histogram, in
    /// stable (type-then-name-sorted) order, including wall-clock
    /// fields. Names are escaped with the same `\xNN` rules as
    /// `mlv_grid::io` and then JSON-encoded.
    pub fn json_lines(&self) -> Vec<String> {
        self.render(true)
    }

    /// Deterministic rendering: like [`Aggregate::json_lines`] but
    /// with every wall-clock field dropped — span lines carry only
    /// their count, and histograms whose name ends in `_ns` (the
    /// timing-histogram convention) are omitted entirely. For a
    /// thread-count-independent workload these lines are
    /// byte-identical for any `MLV_THREADS`.
    pub fn deterministic_lines(&self) -> Vec<String> {
        self.render(false)
    }

    /// FNV-1a digest over [`Aggregate::deterministic_lines`] — the
    /// thread-count-independent fingerprint of a trace.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for line in self.deterministic_lines() {
            for b in line.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h ^= b'\n' as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    fn render(&self, with_time: bool) -> Vec<String> {
        let mut out = Vec::new();
        for (k, s) in &self.spans {
            let mut line = format!(
                "{{\"type\":\"span\",\"name\":\"{}\",\"count\":{}",
                json_name(k),
                s.count
            );
            if with_time {
                let _ = write!(line, ",\"total_ns\":{}", s.total_ns);
            }
            line.push('}');
            out.push(line);
        }
        for (k, v) in &self.counters {
            out.push(format!(
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                json_name(k),
                v
            ));
        }
        for (k, h) in &self.histograms {
            if !with_time && k.ends_with("_ns") {
                continue;
            }
            let mut line = format!(
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":{{",
                json_name(k),
                h.count,
                h.sum
            );
            let mut first = true;
            for (i, &b) in h.buckets.iter().enumerate() {
                if b > 0 {
                    if !first {
                        line.push(',');
                    }
                    first = false;
                    let _ = write!(line, "\"{i}\":{b}");
                }
            }
            line.push_str("}}");
            out.push(line);
        }
        out
    }
}

fn entry_mut<'a, V: Default>(map: &'a mut BTreeMap<String, V>, key: &str) -> &'a mut V {
    if !map.contains_key(key) {
        map.insert(key.to_string(), V::default());
    }
    map.get_mut(key).expect("just inserted")
}

/// Escape a metric/span name with the same rules as the layout text
/// format (`mlv_grid::io`): the backslash, ASCII whitespace, every
/// control character, and DEL become `\xNN` (two hex digits), so any
/// name renders as printable single-line ASCII-safe text.
pub fn escape_key(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c == '\\' || c == ' ' || (c as u32) < 0x20 || c == '\x7f' {
            let _ = write!(out, "\\x{:02x}", c as u32);
        } else {
            out.push(c);
        }
    }
    out
}

/// [`escape_key`] followed by standard JSON string escaping of the
/// result (`\` and `"`), so trace lines stay valid JSON while the
/// decoded string round-trips through `mlv_grid::io`'s unescape.
fn json_name(s: &str) -> String {
    let mut out = String::new();
    for c in escape_key(s).chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            c => out.push(c),
        }
    }
    out
}

type Sink = Arc<Mutex<Aggregate>>;

thread_local! {
    static STACK: RefCell<Vec<Sink>> = const { RefCell::new(Vec::new()) };
}

/// A trace collector. Cheap to clone (shared sink).
#[derive(Clone, Default)]
pub struct Trace {
    sink: Sink,
}

impl Trace {
    /// A fresh, empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Install this trace on the current thread for the duration of
    /// `f`. Nests: events inside `f` record into this trace *and*
    /// every enclosing one. The installation is panic-safe (the sink
    /// is popped even if `f` unwinds).
    pub fn collect<R>(&self, f: impl FnOnce() -> R) -> R {
        let _g = push(Arc::clone(&self.sink));
        f()
    }

    /// Snapshot of everything collected so far.
    pub fn aggregate(&self) -> Aggregate {
        self.sink.lock().expect("trace sink poisoned").clone()
    }

    /// [`Aggregate::digest`] of the current snapshot.
    pub fn digest(&self) -> u64 {
        self.aggregate().digest()
    }
}

/// A snapshot of the calling thread's installed traces, for handing
/// to worker threads (see [`attach`]). Created by [`snapshot`].
#[derive(Clone, Default)]
pub struct StackSnapshot(Vec<Sink>);

impl StackSnapshot {
    /// `true` when no trace was installed at snapshot time (workers
    /// can skip attaching).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Capture the current thread's trace stack. `mlv_core::exec` calls
/// this before fanning out and [`attach`]es the snapshot in each
/// worker, so traces follow work across the executor boundary.
pub fn snapshot() -> StackSnapshot {
    STACK.with(|s| StackSnapshot(s.borrow().clone()))
}

/// Run `f` with the given snapshot installed as this thread's trace
/// stack (restoring the previous stack afterwards, panic-safely).
pub fn attach<R>(snap: &StackSnapshot, f: impl FnOnce() -> R) -> R {
    struct Restore(Vec<Sink>);
    impl Drop for Restore {
        fn drop(&mut self) {
            STACK.with(|s| std::mem::swap(&mut *s.borrow_mut(), &mut self.0));
        }
    }
    let mut prev = snap.0.clone();
    STACK.with(|s| std::mem::swap(&mut *s.borrow_mut(), &mut prev));
    let _restore = Restore(prev);
    f()
}

/// `true` when at least one trace is installed on this thread —
/// events will be recorded. The macros check this first, so the
/// disabled path costs one thread-local read.
pub fn active() -> bool {
    STACK.with(|s| !s.borrow().is_empty())
}

struct PopGuard;

impl Drop for PopGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

fn push(sink: Sink) -> PopGuard {
    STACK.with(|s| s.borrow_mut().push(sink));
    PopGuard
}

/// Apply `f` to every installed sink's aggregate.
fn record(f: impl Fn(&mut Aggregate)) {
    STACK.with(|s| {
        for sink in s.borrow().iter() {
            f(&mut sink.lock().expect("trace sink poisoned"));
        }
    });
}

/// RAII span: created by [`span!`](crate::span); on drop it records
/// one occurrence and the elapsed nanoseconds under its key. Inert
/// (no clock read, no recording) when no trace was installed at
/// creation time.
pub struct SpanGuard(Option<(Cow<'static, str>, Instant)>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((key, start)) = self.0.take() {
            let ns = start.elapsed().as_nanos() as u64;
            record(|agg| {
                let s = entry_mut(&mut agg.spans, &key);
                s.count += 1;
                s.total_ns += ns;
            });
        }
    }
}

/// Open a span under a fixed key (prefer the [`span!`](crate::span)
/// macro).
pub fn span(key: &'static str) -> SpanGuard {
    if !active() {
        return SpanGuard(None);
    }
    SpanGuard(Some((Cow::Borrowed(key), Instant::now())))
}

/// Open a span whose key folds in `field = value` pairs as
/// `name{a=x,b=y}` (prefer the [`span!`](crate::span) macro). Field
/// formatting is skipped entirely when tracing is off.
pub fn span_with(name: &str, fields: &[(&str, &dyn std::fmt::Display)]) -> SpanGuard {
    if !active() {
        return SpanGuard(None);
    }
    let mut key = String::with_capacity(name.len() + 16);
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(key, "{k}={v}");
    }
    key.push('}');
    SpanGuard(Some((Cow::Owned(key), Instant::now())))
}

/// Add `delta` to a named counter (prefer the
/// [`counter!`](crate::counter) macro).
pub fn add_counter(name: &str, delta: u64) {
    if delta == 0 || !active() {
        return;
    }
    record(|agg| *entry_mut(&mut agg.counters, name) += delta);
}

/// Record one value into a named log2 histogram (prefer the
/// [`histogram!`](crate::histogram) macro). By convention, name
/// histograms of wall-clock values with an `_ns` suffix so they are
/// excluded from deterministic output.
pub fn record_value(name: &str, value: u64) {
    if !active() {
        return;
    }
    record(|agg| entry_mut(&mut agg.histograms, name).record(value));
}

/// Open a [`SpanGuard`]: `span!("pass.tracks")`, or with key fields
/// `span!("conformance.family", name = family)` (fields are folded
/// into the aggregate key as `name{field=value}`). Bind the result —
/// `let _span = span!(...)` — so the guard lives to the end of the
/// scope it measures.
#[macro_export]
macro_rules! span {
    ($name:expr $(,)?) => {
        $crate::trace::span($name)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::trace::span_with(
            $name,
            &[$((::core::stringify!($k), &$v as &dyn ::std::fmt::Display)),+],
        )
    };
}

/// Add to a named counter: `counter!("engine.cache.hit", 1)`.
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr $(,)?) => {
        $crate::trace::add_counter($name, $delta)
    };
}

/// Record a value into a named log2 histogram:
/// `histogram!("engine.job.wires", n)`. Use an `_ns` name suffix for
/// wall-clock values (excluded from deterministic output).
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr $(,)?) => {
        $crate::trace::record_value($name, $value)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate as mlv_core;

    #[test]
    fn bucket_edges() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[64], 1);
        assert_eq!(h.sum, u64::MAX); // saturated
    }

    #[test]
    fn disabled_path_records_nothing() {
        assert!(!active());
        let _g = mlv_core::span!("never");
        mlv_core::counter!("never", 3);
        mlv_core::histogram!("never", 7);
        drop(_g);
        let t = Trace::new();
        assert_eq!(t.aggregate(), Aggregate::default());
    }

    #[test]
    fn spans_counters_histograms_aggregate() {
        let t = Trace::new();
        t.collect(|| {
            assert!(active());
            for i in 0..3u64 {
                let _s = mlv_core::span!("work");
                mlv_core::counter!("items", 2);
                mlv_core::histogram!("size", i);
            }
            let _f = mlv_core::span!("labelled", family = "hypercube", l = 4);
        });
        let a = t.aggregate();
        assert_eq!(a.span("work").unwrap().count, 3);
        assert!(a.span("work").unwrap().total_ns > 0);
        assert_eq!(a.span("labelled{family=hypercube,l=4}").unwrap().count, 1);
        assert_eq!(a.counter("items"), 6);
        let h = &a.histograms["size"];
        assert_eq!((h.count, h.sum), (3, 3));
        assert_eq!((h.buckets[0], h.buckets[1], h.buckets[2]), (1, 1, 1));
        // after collect() ends, recording is off again
        mlv_core::counter!("items", 99);
        assert_eq!(t.aggregate().counter("items"), 6);
    }

    #[test]
    fn nested_traces_both_observe() {
        let outer = Trace::new();
        let inner = Trace::new();
        outer.collect(|| {
            mlv_core::counter!("outer.only", 1);
            inner.collect(|| {
                let _s = mlv_core::span!("shared");
                mlv_core::counter!("both", 5);
            });
        });
        assert_eq!(inner.aggregate().counter("both"), 5);
        assert_eq!(inner.aggregate().counter("outer.only"), 0);
        assert_eq!(outer.aggregate().counter("both"), 5);
        assert_eq!(outer.aggregate().counter("outer.only"), 1);
        assert_eq!(outer.aggregate().span("shared").unwrap().count, 1);
    }

    #[test]
    fn attach_carries_traces_across_threads() {
        let t = Trace::new();
        t.collect(|| {
            let snap = snapshot();
            assert!(!snap.is_empty());
            std::thread::scope(|s| {
                s.spawn(|| {
                    assert!(!active());
                    attach(&snap, || mlv_core::counter!("from.worker", 7));
                    assert!(!active());
                });
            });
        });
        assert_eq!(t.aggregate().counter("from.worker"), 7);
    }

    #[test]
    fn merge_is_order_independent() {
        let mk = |n: u64| {
            let t = Trace::new();
            t.collect(|| {
                mlv_core::counter!("c", n);
                mlv_core::histogram!("h", n);
                let _s = mlv_core::span!("s");
            });
            t.aggregate()
        };
        let (a, b, c) = (mk(1), mk(2), mk(3));
        let mut ab = a.clone();
        ab.merge(&b);
        ab.merge(&c);
        let mut cb = c.clone();
        cb.merge(&b);
        cb.merge(&a);
        assert_eq!(ab.deterministic_lines(), cb.deterministic_lines());
        assert_eq!(ab.counter("c"), 6);
        assert_eq!(ab.spans["s"].count, 3);
    }

    #[test]
    fn deterministic_lines_drop_wall_clock() {
        let t = Trace::new();
        t.collect(|| {
            let _s = mlv_core::span!("p");
            mlv_core::histogram!("latency_ns", 123);
            mlv_core::histogram!("wires", 9);
            mlv_core::counter!("jobs", 1);
        });
        let full = t.aggregate().json_lines().join("\n");
        let det = t.aggregate().deterministic_lines().join("\n");
        assert!(full.contains("total_ns"));
        assert!(full.contains("latency_ns"));
        assert!(!det.contains("total_ns"), "{det}");
        assert!(!det.contains("latency_ns"), "{det}");
        assert!(det.contains("\"wires\""));
        assert!(det.contains("\"jobs\""));
        // digest covers only the deterministic part
        let again = Trace::new();
        again.collect(|| {
            let _s = mlv_core::span!("p");
            mlv_core::histogram!("latency_ns", 456789);
            mlv_core::histogram!("wires", 9);
            mlv_core::counter!("jobs", 1);
        });
        assert_eq!(t.digest(), again.digest());
    }

    #[test]
    fn json_lines_have_stable_order_and_escaping() {
        let t = Trace::new();
        t.collect(|| {
            mlv_core::counter!("b", 1);
            mlv_core::counter!("a", 1);
            let _s = mlv_core::span!("weird name\twith\\stuff");
        });
        let lines = t.aggregate().json_lines();
        // spans first, then counters sorted by name
        assert!(lines[0].starts_with("{\"type\":\"span\""));
        assert!(lines[1].contains("\"name\":\"a\""));
        assert!(lines[2].contains("\"name\":\"b\""));
        // io.rs-style \xNN escaping, JSON-encoded (backslash doubled)
        assert!(
            lines[0].contains("weird\\\\x20name\\\\x09with\\\\x5cstuff"),
            "{}",
            lines[0]
        );
        for l in &lines {
            assert_eq!(l.matches('{').count(), l.matches('}').count());
        }
    }

    #[test]
    fn escape_key_matches_io_rules() {
        assert_eq!(escape_key("plain.name"), "plain.name");
        assert_eq!(escape_key("a b"), "a\\x20b");
        assert_eq!(escape_key("a\\b"), "a\\x5cb");
        assert_eq!(escape_key("\n\x7f"), "\\x0a\\x7f");
    }

    #[test]
    fn collect_is_panic_safe() {
        let t = Trace::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.collect(|| panic!("boom"));
        }));
        assert!(result.is_err());
        assert!(!active(), "stack must be popped after a panic");
    }
}
