//! Request/response tests for the serve dispatcher: every request
//! kind, hostile inputs, and the thread-count determinism contract.

use mlv_core::exec;
use mlv_serve::{ServeConfig, Service};

fn service() -> Service {
    Service::new(ServeConfig::default())
}

fn assert_ok(resp: &str, id: u64) {
    assert!(
        resp.starts_with(&format!("{{\"id\":{id},\"ok\":true,")),
        "unexpected response: {resp}"
    );
}

#[test]
fn realize_round_trips_and_caches() {
    let s = service();
    let r1 = s.handle_line(r#"{"id":1,"kind":"realize","family":"hypercube:3","layers":4}"#);
    assert_ok(&r1, 1);
    assert!(r1.contains("\"digest\":\""), "{r1}");
    assert!(r1.contains("\"cached\":false"), "{r1}");
    assert!(r1.contains("\"checked\":true"), "{r1}");
    // identical request: memo hit, same digest
    let r2 = s.handle_line(r#"{"id":2,"kind":"realize","family":"hypercube:3","layers":4}"#);
    assert!(r2.contains("\"cached\":true"), "{r2}");
    let digest = |r: &str| {
        let i = r.find("\"digest\":\"").unwrap() + 10;
        r[i..i + 16].to_string()
    };
    assert_eq!(digest(&r1), digest(&r2));
}

#[test]
fn check_reports_legality() {
    let s = service();
    let r = s.handle_line(r#"{"id":5,"kind":"check","family":"mesh:4,4"}"#);
    assert_ok(&r, 5);
    assert!(r.contains("\"legal\":true"), "{r}");
    assert!(r.contains("\"digest\":\""), "{r}");
}

#[test]
fn metrics_with_named_pdk_carries_physical_fields() {
    let s = service();
    let r =
        s.handle_line(r#"{"id":9,"kind":"metrics","family":"hypercube:3","layers":4,"pdk":"hv6"}"#);
    assert_ok(&r, 9);
    assert!(r.contains("\"pdk\":\"hv6\""), "{r}");
    assert!(r.contains("\"phys_wirelength\":"), "{r}");
    // the uniform stack intentionally reports the PDK-free shape
    let u = s.handle_line(
        r#"{"id":10,"kind":"metrics","family":"hypercube:3","layers":4,"pdk":"uniform"}"#,
    );
    assert!(!u.contains("\"phys_wirelength\""), "{u}");
}

#[test]
fn hostile_pdk_text_never_panics() {
    let s = service();
    // a pitch near i64::MAX would overflow layout coordinates during
    // emission: rejected up front with a clean error frame
    let huge_pitch = "mlvpdk 1\\npdk evil\\nlayer M1 H pitch=9223372036854775807 via=1\\nlayer M2 V pitch=2 via=1\\n";
    let r = s.handle_line(&format!(
        "{{\"id\":2,\"kind\":\"realize\",\"family\":\"hypercube:4\",\"layers\":4,\"pdk_text\":\"{huge_pitch}\"}}"
    ));
    assert!(r.contains("\"ok\":false"), "{r}");
    assert!(r.contains("serve cap"), "{r}");
    // via costs are uncapped (they never touch geometry): a stack
    // whose weighted sums overflow realizes fine and surfaces
    // phys_error through the checked metrics arithmetic
    let huge_via = "mlvpdk 1\\npdk evil2\\nlayer M1 H pitch=2 via=18446744073709551615\\nlayer M2 V pitch=2 via=18446744073709551615\\n";
    let r = s.handle_line(&format!(
        "{{\"id\":3,\"kind\":\"realize\",\"family\":\"hypercube:4\",\"layers\":4,\"pdk_text\":\"{huge_via}\"}}"
    ));
    assert_ok(&r, 3);
    assert!(r.contains("\"phys_error\":\""), "{r}");
    assert!(r.contains("overflow"), "{r}");
    // a malformed stack is a clean error frame
    let bad = s.handle_line(
        r#"{"id":4,"kind":"realize","family":"hypercube:3","pdk_text":"mlvpdk 1\nbogus\n"}"#,
    );
    assert!(bad.contains("\"ok\":false"), "{bad}");
    assert!(bad.contains("pdk_text"), "{bad}");
}

#[test]
fn crlf_pdk_text_parses() {
    let s = service();
    let r = s.handle_line(
        r#"{"id":6,"kind":"metrics","family":"hypercube:3","pdk_text":"mlvpdk 1\r\npdk win\r\nlayer M1 H pitch=2 via=1\r\nlayer M2 V pitch=2 via=1\r\n"}"#,
    );
    assert_ok(&r, 6);
    assert!(r.contains("\"pdk\":\"win\""), "{r}");
}

#[test]
fn sweep_shards_partition_the_lattice() {
    let s = service();
    let full = s.handle_line(r#"{"id":1,"kind":"sweep-shard","seed":2000,"cases":2}"#);
    assert_ok(&full, 1);
    let count = |r: &str| r.matches("\"label\":").count();
    let total = count(&full);
    assert!(total > 0, "{full}");
    let mut sharded = 0;
    for shard in 0..3 {
        let r = s.handle_line(&format!(
            "{{\"id\":2,\"kind\":\"sweep-shard\",\"seed\":2000,\"cases\":2,\"shard\":{shard},\"shards\":3}}"
        ));
        assert_ok(&r, 2);
        sharded += count(&r);
    }
    assert_eq!(sharded, total, "shards must partition the lattice");
    // out-of-range shard is an error
    let bad = s.handle_line(r#"{"id":3,"kind":"sweep-shard","seed":1,"shard":3,"shards":3}"#);
    assert!(bad.contains("\"ok\":false"), "{bad}");
}

#[test]
fn profile_returns_deterministic_trace() {
    let s = service();
    let r = s.handle_line(r#"{"id":7,"kind":"profile","family":"hypercube:3","layers":4}"#);
    assert_ok(&r, 7);
    assert!(r.contains("\"trace_digest\":\""), "{r}");
    assert!(r.contains("\"span\""), "{r}");
    // wall-clock fields never leak into the deterministic rendering
    assert!(!r.contains("total_ns"), "{r}");
}

#[test]
fn stats_reports_counters_and_cache() {
    let s = service();
    s.handle_line(r#"{"id":1,"kind":"realize","family":"hypercube:3"}"#);
    s.handle_line(r#"{"id":2,"kind":"realize","family":"hypercube:3"}"#);
    s.handle_line("not json at all");
    let r = s.handle_line(r#"{"id":3,"kind":"stats"}"#);
    assert_ok(&r, 3);
    assert!(r.contains("\"hits\":1"), "{r}");
    assert!(r.contains("\"misses\":1"), "{r}");
    assert!(r.contains("\"cache_len\":1"), "{r}");
    assert!(r.contains("serve.request.realize"), "{r}");
    assert!(r.contains("serve.malformed"), "{r}");
    assert!(r.contains("\"in_flight\":1"), "{r}");
}

#[test]
fn malformed_requests_get_error_frames_without_panic() {
    let s = service();
    for bad in [
        "",
        "{",
        "null",
        "42",
        r#"{"id":1}"#,
        r#"{"id":1,"kind":"warp"}"#,
        r#"{"id":1,"kind":"realize"}"#,
        r#"{"id":1,"kind":"realize","family":"nope:3"}"#,
        r#"{"id":1,"kind":"realize","family":"hypercube:3","layers":1}"#,
        r#"{"id":1,"kind":"realize","family":"hypercube:3","layers":99999}"#,
        r#"{"id":1,"kind":"realize","family":"hypercube:3","pdk":"nope"}"#,
        r#"{"id":1,"kind":"sweep-shard"}"#,
        r#"{"id":1,"kind":"sweep-shard","seed":1,"cases":0}"#,
        r#"{"id":1,"kind":"sweep-shard","seed":1,"cases":100000}"#,
        "\u{7f}\u{1}",
    ] {
        let r = s.handle_line(bad);
        assert!(r.contains("\"ok\":false"), "{bad:?} -> {r}");
        assert!(r.ends_with('}'), "{bad:?} -> {r}");
    }
    assert_eq!(s.in_flight(), 0);
}

#[test]
fn responses_byte_identical_across_thread_counts() {
    let requests = [
        r#"{"id":1,"kind":"realize","family":"hypercube:4","layers":4}"#,
        r#"{"id":2,"kind":"check","family":"mesh:4,4","layers":3}"#,
        r#"{"id":3,"kind":"metrics","family":"hypercube:3","layers":4,"pdk":"hv6"}"#,
        r#"{"id":4,"kind":"sweep-shard","seed":2000,"cases":2,"shard":1,"shards":2}"#,
        r#"{"id":5,"kind":"profile","family":"hypercube:4","layers":4}"#,
        r#"{"id":6,"kind":"stats"}"#,
    ];
    let transcript = |threads: usize| {
        exec::with_thread_count(threads, || {
            let s = service();
            requests
                .iter()
                .map(|r| s.handle_line(r))
                .collect::<Vec<_>>()
        })
    };
    let seq = transcript(1);
    let par = transcript(8);
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a, b, "serve responses must not depend on MLV_THREADS");
    }
}
