//! Soak test: a sustained mixed workload over the TCP transport with
//! fault injection — malformed frames, oversized frames, full queues,
//! and mid-request disconnects — asserting the service neither panics
//! nor leaks: every in-flight slot is returned, the memo cache never
//! grows past its capacity, and a healthy request still round-trips
//! after the abuse.
//!
//! Kept time-boxed (a few seconds) so CI can run it on every push; the
//! `bench_serve` load generator is the place for longer runs.

use mlv_serve::{listen, ServeConfig, Service};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;

fn small_service() -> Arc<Service> {
    Arc::new(Service::new(ServeConfig {
        queue_depth: 4,
        cache_capacity: 8,
        max_frame_bytes: 4096,
        ..ServeConfig::default()
    }))
}

/// One well-formed request of each kind, cycled by the clients.
fn request(i: usize) -> String {
    match i % 6 {
        0 => format!(
            "{{\"id\":{i},\"kind\":\"realize\",\"family\":\"hypercube:3\",\"layers\":4}}"
        ),
        1 => format!("{{\"id\":{i},\"kind\":\"check\",\"family\":\"mesh:3,3\"}}"),
        2 => format!(
            "{{\"id\":{i},\"kind\":\"metrics\",\"family\":\"hypercube:3\",\"pdk\":\"hv6\"}}"
        ),
        3 => format!(
            "{{\"id\":{i},\"kind\":\"sweep-shard\",\"seed\":7,\"cases\":1,\"shard\":0,\"shards\":4}}"
        ),
        4 => format!("{{\"id\":{i},\"kind\":\"profile\",\"family\":\"hypercube:3\"}}"),
        _ => format!("{{\"id\":{i},\"kind\":\"stats\"}}"),
    }
}

#[test]
fn soak_mixed_workload_with_fault_injection() {
    let service = small_service();
    let server = listen(Arc::clone(&service), "127.0.0.1:0", 16).expect("bind");
    let addr = server.addr();

    let clients: Vec<_> = (0..4)
        .map(|c| {
            thread::spawn(move || {
                let mut responses = 0usize;
                let mut busy = 0usize;
                for round in 0..3 {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut writer = stream.try_clone().expect("clone");
                    let mut reader = BufReader::new(stream);
                    let mut sent = 0usize;
                    for i in 0..25 {
                        let n = c * 1000 + round * 100 + i;
                        writer.write_all(request(n).as_bytes()).unwrap();
                        writer.write_all(b"\n").unwrap();
                        sent += 1;
                        // fault injection interleaved with real work
                        match i % 5 {
                            0 => {
                                // malformed frame: still gets a response
                                writer.write_all(b"{not json]\n").unwrap();
                                sent += 1;
                            }
                            1 => {
                                // oversized frame: discarded, error frame back
                                let huge = vec![b'z'; 8192];
                                writer.write_all(&huge).unwrap();
                                writer.write_all(b"\n").unwrap();
                                sent += 1;
                            }
                            _ => {}
                        }
                    }
                    if round == 2 && c % 2 == 0 {
                        // mid-request disconnect: fire a request and
                        // hang up without reading the response
                        writer.write_all(request(c).as_bytes()).unwrap();
                        writer.write_all(b"\n").unwrap();
                        drop(writer);
                        continue;
                    }
                    // half-close the write side so the server sees EOF
                    // and drains; then count every response frame
                    stream_shutdown_write(&writer);
                    let mut line = String::new();
                    loop {
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {
                                assert!(
                                    line.starts_with('{') && line.trim_end().ends_with('}'),
                                    "torn frame: {line:?}"
                                );
                                if line.contains("\"error\":\"busy\"") {
                                    busy += 1;
                                    assert!(line.contains("retry_after_ms"), "{line}");
                                }
                                responses += 1;
                            }
                        }
                    }
                    // with a drained connection, one response per frame
                    assert_eq!(responses, sent, "client {c} round {round}");
                    responses = 0;
                }
                busy
            })
        })
        .collect();

    let mut total_busy = 0usize;
    for c in clients {
        total_busy += c.join().expect("client panicked");
    }

    server.shutdown();

    // no leaked request slots, no cache growth past capacity
    assert_eq!(service.in_flight(), 0, "leaked in-flight slots");
    assert!(
        service.cache_len() <= 8,
        "cache grew past capacity: {}",
        service.cache_len()
    );
    // the service still answers cleanly after the abuse
    let stats = service.handle_line("{\"id\":1,\"kind\":\"stats\"}");
    assert!(stats.contains("\"ok\":true"), "{stats}");
    assert!(stats.contains("\"cache_len\":"), "{stats}");
    // the malformed frames were counted, and the queue really was
    // exercised (sheds are workload-dependent, so only log them)
    assert!(stats.contains("serve.malformed"), "{stats}");
    eprintln!("soak: {total_busy} busy frames observed");
}

fn stream_shutdown_write(stream: &TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

#[test]
fn over_capacity_connections_get_busy_frame() {
    let service = small_service();
    let server = listen(Arc::clone(&service), "127.0.0.1:0", 1).expect("bind");
    let addr = server.addr();

    {
        // first connection occupies the only slot
        let first = TcpStream::connect(addr).expect("connect");
        let mut fr = BufReader::new(first.try_clone().expect("clone"));
        (&first)
            .write_all(b"{\"id\":1,\"kind\":\"stats\"}\n")
            .unwrap();
        let mut line = String::new();
        fr.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");

        // second connection is shed with one busy frame and closed
        let second = TcpStream::connect(addr).expect("connect");
        let mut sr = BufReader::new(second);
        let mut busy = String::new();
        sr.read_line(&mut busy).unwrap();
        assert!(busy.contains("\"error\":\"busy\""), "{busy}");
        assert!(busy.contains("retry_after_ms"), "{busy}");
        let mut rest = String::new();
        assert_eq!(sr.read_line(&mut rest).unwrap(), 0, "stream must close");
        // both client streams drop here, so the server's connection
        // thread sees EOF and shutdown below can join it
    }
    server.shutdown();
    assert_eq!(service.in_flight(), 0);
}
