//! The request dispatcher: one shared [`Engine`] behind a mutex, a
//! service-lifetime [`Trace`], and a pure `line in → line out`
//! handler that every transport (stdio, TCP, tests, bench) funnels
//! through.
//!
//! ## Wire protocol
//!
//! One JSON object per line in, one JSON object per line out. Requests
//! carry an `id` (echoed back), a `kind`, and kind-specific fields:
//!
//! | kind          | fields                                         |
//! |---------------|------------------------------------------------|
//! | `realize`     | `family`, `layers`?, `pdk`?/`pdk_text`?        |
//! | `check`       | same as `realize`                              |
//! | `metrics`     | same as `realize`                              |
//! | `sweep-shard` | `seed`, `cases`?, `shard`?, `shards`?, `pdk`?  |
//! | `profile`     | same as `realize`                              |
//! | `stats`       | —                                              |
//!
//! Success frames are `{"id":…,"ok":true,"kind":…,…}`; failures are
//! `{"id":…,"ok":false,"error":…}` (plus `retry_after_ms` on the
//! backpressure path — see [`Service::busy_response`]). Every field a
//! response carries is thread-count-independent: digests, metrics,
//! legality verdicts, and trace renderings all come from the
//! workspace's deterministic paths, so responses are byte-identical
//! for any `MLV_THREADS`.

use crate::json::{self, Value};
use mlv_core::trace::Trace;
use mlv_grid::io::json_escape;
use mlv_grid::pdk::{read_pdk, Pdk};
use mlv_layout::engine::{lattice_jobs_with_pdk, CheckStatus, Engine, EngineOptions, Job};
use mlv_layout::registry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Service configuration, shared by every connection.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Per-connection request-queue depth; a full queue sheds load
    /// with a busy frame instead of buffering.
    pub queue_depth: usize,
    /// `retry_after_ms` hint carried by busy frames.
    pub retry_after_ms: u64,
    /// Engine memo-cache capacity (entries).
    pub cache_capacity: usize,
    /// Maximum request-frame length in bytes; longer frames are
    /// discarded to the next newline and answered with an error.
    pub max_frame_bytes: usize,
    /// Stack applied to requests that don't name one themselves.
    pub default_pdk: Option<Pdk>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 64,
            retry_after_ms: 50,
            cache_capacity: 1024,
            max_frame_bytes: 1 << 20,
            default_pdk: None,
        }
    }
}

/// Hard cap on `cases` per `sweep-shard` request: work per request
/// stays bounded no matter what a client asks for.
const MAX_SWEEP_CASES: usize = 64;
/// Hard cap on a request's layer budget.
const MAX_LAYERS: usize = 1024;
/// Hard cap on a served stack's track pitch. Pitches stretch layout
/// coordinates multiplicatively during geometry emission, so an
/// `i64::MAX`-ish pitch from a hostile `pdk_text` would overflow the
/// coordinate space; 2⁴⁰ leaves > 2²⁰ of headroom for any servable
/// spec. (Via costs are *not* capped — they never touch geometry, and
/// the physical-metrics arithmetic is checked end to end.)
const MAX_PITCH: u64 = 1 << 40;

/// The persistent layout service. Cheap to share behind an `Arc`; all
/// methods take `&self`.
pub struct Service {
    engine: Mutex<Engine>,
    trace: Trace,
    config: ServeConfig,
    in_flight: AtomicU64,
}

impl Service {
    /// A fresh service with its own engine and trace.
    pub fn new(config: ServeConfig) -> Service {
        let engine = Engine::new(EngineOptions {
            cache_capacity: config.cache_capacity,
            ..EngineOptions::default()
        });
        Service {
            engine: Mutex::new(engine),
            trace: Trace::new(),
            config,
            in_flight: AtomicU64::new(0),
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Requests currently being handled (the soak test pins that this
    /// returns to zero — no leaked slots — after every workload).
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Memoized engine entries right now (soak pins this never exceeds
    /// the configured capacity).
    pub fn cache_len(&self) -> usize {
        self.lock_engine().cache_len()
    }

    /// Record a counter into the service trace from outside a request
    /// (the transports use this for shed/oversize/write-error events).
    pub fn note(&self, counter: &'static str) {
        self.trace.collect(|| mlv_core::counter!(counter, 1));
    }

    /// The backpressure frame for a shed request: not an internal
    /// error — an explicit "retry later" with the configured hint.
    pub fn busy_response(&self, id: Option<u64>) -> String {
        format!(
            "{{\"id\":{},\"ok\":false,\"error\":\"busy\",\"retry_after_ms\":{}}}",
            fmt_id(id),
            self.config.retry_after_ms
        )
    }

    /// Handle one request line, producing exactly one response line
    /// (without trailing newline). Never panics on hostile input; the
    /// in-flight gauge is balanced even if a handler unwinds.
    pub fn handle_line(&self, line: &str) -> String {
        struct Slot<'a>(&'a AtomicU64);
        impl Drop for Slot<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let _slot = Slot(&self.in_flight);
        self.trace.collect(|| {
            let _span = mlv_core::span!("serve.request");
            let started = std::time::Instant::now();
            let out =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.dispatch(line)))
                    .unwrap_or_else(|_| {
                        mlv_core::counter!("serve.panic", 1);
                        err_frame(None, "internal: request handler panicked")
                    });
            mlv_core::histogram!(
                "serve.request_ns",
                started.elapsed().as_nanos().min(u64::MAX as u128) as u64
            );
            out
        })
    }

    fn dispatch(&self, line: &str) -> String {
        let req = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                mlv_core::counter!("serve.malformed", 1);
                return err_frame(None, &format!("parse: {e}"));
            }
        };
        let id = req.get("id").and_then(Value::as_u64);
        let Some(kind) = req.get("kind").and_then(Value::as_str) else {
            mlv_core::counter!("serve.malformed", 1);
            return err_frame(id, "missing or non-string 'kind'");
        };
        let body = match kind {
            "realize" => {
                mlv_core::counter!("serve.request.realize", 1);
                self.req_result(&req)
            }
            "check" => {
                mlv_core::counter!("serve.request.check", 1);
                self.req_check(&req)
            }
            "metrics" => {
                mlv_core::counter!("serve.request.metrics", 1);
                self.req_result(&req)
            }
            "sweep-shard" => {
                mlv_core::counter!("serve.request.sweep_shard", 1);
                self.req_sweep_shard(&req)
            }
            "profile" => {
                mlv_core::counter!("serve.request.profile", 1);
                self.req_profile(&req)
            }
            "stats" => {
                mlv_core::counter!("serve.request.stats", 1);
                Ok(self.stats_body())
            }
            other => Err(format!("unknown kind '{other}'")),
        };
        match body {
            Ok(body) => format!(
                "{{\"id\":{},\"ok\":true,\"kind\":\"{}\",{body}}}",
                fmt_id(id),
                json_escape(kind)
            ),
            Err(e) => {
                mlv_core::counter!("serve.request.error", 1);
                err_frame(id, &e)
            }
        }
    }

    /// `realize` and `metrics`: the full sweep-format result object.
    fn req_result(&self, req: &Value) -> Result<String, String> {
        let job = self.job_from(req)?;
        let result = self.lock_engine().run_one(&job);
        Ok(format!("\"result\":{}", result.json_line()))
    }

    /// `check`: digest + the legality verdict (with error summary).
    fn req_check(&self, req: &Value) -> Result<String, String> {
        let job = self.job_from(req)?;
        let result = self.lock_engine().run_one(&job);
        let o = &result.outcome;
        let mut body = format!(
            "\"digest\":\"{:016x}\",\"legal\":{}",
            o.digest,
            matches!(o.check, CheckStatus::Legal)
        );
        if let CheckStatus::Illegal(summary) = &o.check {
            body.push_str(&format!(",\"errors\":\"{}\"", json_escape(summary)));
        }
        Ok(body)
    }

    /// `sweep-shard`: this shard's slice of the seeded registry
    /// lattice, as one engine batch.
    fn req_sweep_shard(&self, req: &Value) -> Result<String, String> {
        let seed = req
            .get("seed")
            .and_then(Value::as_u64)
            .ok_or("missing or non-integer 'seed'")?;
        let cases = match req.get("cases") {
            None => 1,
            Some(v) => v.as_usize().ok_or("bad 'cases'")?,
        };
        if cases == 0 || cases > MAX_SWEEP_CASES {
            return Err(format!("'cases' must be in 1..={MAX_SWEEP_CASES}"));
        }
        let shards = match req.get("shards") {
            None => 1,
            Some(v) => v.as_usize().filter(|&s| s >= 1).ok_or("bad 'shards'")?,
        };
        let shard = match req.get("shard") {
            None => 0,
            Some(v) => v.as_usize().ok_or("bad 'shard'")?,
        };
        if shard >= shards {
            return Err(format!("'shard' {shard} out of range for {shards} shards"));
        }
        let pdk = self.resolve_pdk(req)?;
        let jobs: Vec<Job> = lattice_jobs_with_pdk(seed, cases, pdk.as_ref())
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % shards == shard)
            .map(|(_, j)| j)
            .collect();
        let report = self.lock_engine().run(&jobs);
        let lines: Vec<String> = report.results.iter().map(|r| r.json_line()).collect();
        Ok(format!(
            "\"results\":[{}],\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}}",
            lines.join(","),
            report.cache.hits,
            report.cache.misses,
            report.cache.evictions
        ))
    }

    /// `profile`: one realization under a request-local nested trace;
    /// the response carries the deterministic rendering and its digest.
    fn req_profile(&self, req: &Value) -> Result<String, String> {
        let job = self.job_from(req)?;
        let t = Trace::new();
        let result = t.collect(|| self.lock_engine().run_one(&job));
        let agg = t.aggregate();
        let lines = agg.deterministic_lines();
        Ok(format!(
            "\"cached\":{},\"digest\":\"{:016x}\",\"trace_digest\":\"{:016x}\",\"trace\":[{}]",
            result.cached,
            result.outcome.digest,
            agg.digest(),
            lines.join(",")
        ))
    }

    /// `stats`: engine cache counters plus the service-lifetime trace,
    /// rendered deterministically.
    fn stats_body(&self) -> String {
        let (stats, len) = {
            let engine = self.lock_engine();
            (engine.stats(), engine.cache_len())
        };
        let agg = self.trace.aggregate();
        let lines = agg.deterministic_lines();
        format!(
            "\"engine\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"cache_len\":{len},\"cache_capacity\":{}}},\
             \"in_flight\":{},\"trace_digest\":\"{:016x}\",\"trace\":[{}]",
            stats.hits,
            stats.misses,
            stats.evictions,
            self.config.cache_capacity,
            self.in_flight(),
            agg.digest(),
            lines.join(",")
        )
    }

    fn job_from(&self, req: &Value) -> Result<Job, String> {
        let spec = req
            .get("family")
            .and_then(Value::as_str)
            .ok_or("missing or non-string 'family'")?;
        let layers = match req.get("layers") {
            None => 2,
            Some(v) => v.as_usize().ok_or("bad 'layers'")?,
        };
        if !(2..=MAX_LAYERS).contains(&layers) {
            return Err(format!("'layers' must be in 2..={MAX_LAYERS}"));
        }
        let family = registry::parse(spec)?;
        let pdk = self.resolve_pdk(req)?;
        let mut job = Job::new(spec, family, layers);
        job.pdk = pdk;
        Ok(job)
    }

    fn resolve_pdk(&self, req: &Value) -> Result<Option<Pdk>, String> {
        if let Some(v) = req.get("pdk_text") {
            let text = v.as_str().ok_or("'pdk_text' must be a string")?;
            let pdk = read_pdk(text).map_err(|e| format!("pdk_text {e}"))?;
            if let Some(l) = pdk.layers.iter().find(|l| l.pitch > MAX_PITCH) {
                return Err(format!(
                    "pdk_text layer '{}': pitch {} exceeds the serve cap of {MAX_PITCH}",
                    l.name, l.pitch
                ));
            }
            return Ok(Some(pdk));
        }
        if let Some(v) = req.get("pdk") {
            let name = v.as_str().ok_or("'pdk' must be a string")?;
            return Pdk::named(name)
                .map(Some)
                .ok_or_else(|| format!("unknown pdk '{name}' (try 'uniform' or 'hv6')"));
        }
        Ok(self.config.default_pdk.clone())
    }

    /// The engine mutex, recovering from poisoning: a panicking
    /// request must not wedge the service (the cache is structurally
    /// intact after any single map/queue operation).
    fn lock_engine(&self) -> std::sync::MutexGuard<'_, Engine> {
        self.engine
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

fn fmt_id(id: Option<u64>) -> String {
    match id {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

fn err_frame(id: Option<u64>, message: &str) -> String {
    format!(
        "{{\"id\":{},\"ok\":false,\"error\":\"{}\"}}",
        fmt_id(id),
        json_escape(message)
    )
}
