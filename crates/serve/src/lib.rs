//! # mlv-serve
//!
//! The persistent layout service behind `mlv serve` — the ROADMAP's
//! "serve layout workloads" north star made concrete. One process
//! holds one [`engine`](mlv_layout::engine::Engine) (memo cache,
//! parallel fan-out, trace instrumentation) and answers JSON-lines
//! requests over stdin/stdout and/or a TCP listener:
//!
//! * [`service`] — the transport-agnostic dispatcher: request kinds
//!   `realize`, `check`, `metrics`, `sweep-shard`, `profile`, and
//!   `stats`, every response byte-identical for any `MLV_THREADS`;
//! * [`conn`] — one connection's read → bounded-queue → respond loop,
//!   with reject-with-retry-after backpressure and a frame-length cap
//!   (nothing in the service buffers without bound);
//! * [`tcp`] — the accept loop with a connection admission cap;
//! * [`json`] — the std-only request parser (depth-capped, surrogate
//!   aware, integer-preserving).
//!
//! Determinism discipline matches the rest of the workspace: the
//! response bytes for a given request sequence — digests, metrics,
//! legality verdicts, trace renderings — do not depend on thread
//! count, which is what makes the CI smoke leg's `MLV_THREADS=1` vs
//! `=8` comparison meaningful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod json;
pub mod service;
pub mod tcp;

pub use conn::{serve_connection, ConnStats};
pub use service::{ServeConfig, Service};
pub use tcp::{listen, ServerHandle};

use std::sync::Arc;

/// Serve stdin/stdout as one connection until EOF — the `mlv serve
/// --stdio` main loop. Returns the connection's stats.
pub fn serve_stdio(service: &Arc<Service>) -> ConnStats {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_connection(service, stdin.lock(), stdout)
}
