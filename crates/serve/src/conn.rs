//! One connection: a frame reader feeding a bounded request queue and
//! a worker thread draining it.
//!
//! The backpressure contract lives here. The reader **never blocks on
//! the queue**: a frame that doesn't fit ([`mlv_core::queue::Bounded`]
//! is at capacity) is answered immediately with the service's busy
//! frame and dropped — the connection keeps reading, memory use stays
//! bounded by `queue_depth × max_frame_bytes`, and the client decides
//! when to retry. Oversized frames are discarded to the next newline
//! (never buffered whole) and answered with an error frame.
//!
//! Responses are written by the worker under a shared writer mutex, so
//! busy/oversize frames (written by the reader) interleave with
//! ordinary responses without tearing. A client that disconnects
//! mid-request just makes the remaining writes fail; the worker drains
//! the queue, counts the failures, and exits without unwinding.

use crate::service::Service;
use mlv_core::queue::{Bounded, PushError};
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::{Arc, Mutex};
use std::thread;

/// What one connection processed, for logs and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Frames accepted onto the queue.
    pub accepted: u64,
    /// Frames shed with a busy frame (queue full).
    pub shed: u64,
    /// Frames discarded for exceeding `max_frame_bytes`.
    pub oversize: u64,
    /// Responses that could not be written (client went away).
    pub write_errors: u64,
}

/// Serve one already-established connection until the reader reaches
/// EOF. Blocks the calling thread; the response worker runs on its own
/// thread and is joined before returning.
pub fn serve_connection<R, W>(service: &Arc<Service>, reader: R, writer: W) -> ConnStats
where
    R: Read,
    W: Write + Send + 'static,
{
    let queue: Arc<Bounded<String>> = Arc::new(Bounded::new(service.config().queue_depth));
    let writer = Arc::new(Mutex::new(writer));
    let worker = {
        let queue = Arc::clone(&queue);
        let writer = Arc::clone(&writer);
        let service = Arc::clone(service);
        thread::spawn(move || {
            let mut write_errors = 0u64;
            while let Some(line) = queue.pop() {
                let response = service.handle_line(&line);
                if write_frame(&writer, &response).is_err() {
                    write_errors += 1;
                    service.note("serve.write_error");
                }
            }
            write_errors
        })
    };

    let mut stats = ConnStats::default();
    let mut frames = FrameReader::new(reader, service.config().max_frame_bytes);
    loop {
        match frames.next_frame() {
            Ok(Frame::Eof) => break,
            Ok(Frame::Oversize) => {
                stats.oversize += 1;
                service.note("serve.oversize");
                let msg = format!(
                    "{{\"id\":null,\"ok\":false,\"error\":\"frame exceeds {} bytes\"}}",
                    service.config().max_frame_bytes
                );
                let _ = write_frame(&writer, &msg);
            }
            Ok(Frame::Line(raw)) => {
                let line = match String::from_utf8(raw) {
                    Ok(s) => s,
                    Err(_) => {
                        service.note("serve.malformed_utf8");
                        let _ = write_frame(
                            &writer,
                            "{\"id\":null,\"ok\":false,\"error\":\"frame is not UTF-8\"}",
                        );
                        continue;
                    }
                };
                if line.trim().is_empty() {
                    continue;
                }
                match queue.try_push(line) {
                    Ok(()) => stats.accepted += 1,
                    Err(PushError::Full(line)) => {
                        stats.shed += 1;
                        service.note("serve.shed");
                        let id = crate::json::parse(&line)
                            .ok()
                            .and_then(|v| v.get("id").and_then(crate::json::Value::as_u64));
                        let _ = write_frame(&writer, &service.busy_response(id));
                    }
                    Err(PushError::Closed(_)) => break,
                }
            }
            Err(_) => break, // transport error: treat as disconnect
        }
    }
    queue.close();
    stats.write_errors = worker.join().unwrap_or(0);
    stats
}

fn write_frame<W: Write>(writer: &Mutex<W>, frame: &str) -> std::io::Result<()> {
    let mut w = writer.lock().unwrap_or_else(|p| p.into_inner());
    w.write_all(frame.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

enum Frame {
    Line(Vec<u8>),
    Oversize,
    Eof,
}

/// Newline-delimited frame reader with a hard length cap: a frame
/// longer than `max` is consumed to its terminating newline **without
/// ever being held in memory whole**.
struct FrameReader<R: Read> {
    inner: BufReader<R>,
    max: usize,
}

impl<R: Read> FrameReader<R> {
    fn new(reader: R, max: usize) -> Self {
        FrameReader {
            inner: BufReader::new(reader),
            max: max.max(1),
        }
    }

    fn next_frame(&mut self) -> std::io::Result<Frame> {
        let mut buf: Vec<u8> = Vec::new();
        let mut discarding = false;
        loop {
            let chunk = self.inner.fill_buf()?;
            if chunk.is_empty() {
                return Ok(match (discarding, buf.is_empty()) {
                    (true, _) => Frame::Oversize,
                    (false, true) => Frame::Eof,
                    (false, false) => Frame::Line(std::mem::take(&mut buf)),
                });
            }
            let newline = chunk.iter().position(|&b| b == b'\n');
            let take = newline.map(|p| p + 1).unwrap_or(chunk.len());
            if !discarding {
                let keep = newline.unwrap_or(chunk.len());
                if buf.len() + keep > self.max {
                    buf.clear();
                    discarding = true;
                } else {
                    buf.extend_from_slice(&chunk[..keep]);
                }
            }
            self.inner.consume(take);
            if newline.is_some() {
                return Ok(if discarding {
                    Frame::Oversize
                } else {
                    Frame::Line(std::mem::take(&mut buf))
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(input: &[u8], max: usize) -> Vec<String> {
        let mut fr = FrameReader::new(input, max);
        let mut out = Vec::new();
        loop {
            match fr.next_frame().unwrap() {
                Frame::Eof => return out,
                Frame::Oversize => out.push("<oversize>".to_string()),
                Frame::Line(l) => out.push(String::from_utf8(l).unwrap()),
            }
        }
    }

    #[test]
    fn splits_frames_and_handles_final_unterminated_line() {
        assert_eq!(frames(b"a\nbb\nccc", 100), vec!["a", "bb", "ccc"]);
        assert_eq!(frames(b"", 100), Vec::<String>::new());
        assert_eq!(frames(b"\n\n", 100), vec!["", ""]);
    }

    #[test]
    fn oversize_frames_are_discarded_not_buffered() {
        let mut input = vec![b'x'; 10_000];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        assert_eq!(frames(&input, 16), vec!["<oversize>", "ok"]);
        // oversize at EOF without a newline still reports
        assert_eq!(frames(&[b'y'; 64], 16), vec!["<oversize>"]);
    }

    #[test]
    fn frames_exactly_at_the_cap_pass() {
        assert_eq!(frames(b"1234\nx\n", 4), vec!["1234", "x"]);
        assert_eq!(frames(b"12345\nx\n", 4), vec!["<oversize>", "x"]);
    }
}
