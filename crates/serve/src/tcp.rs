//! The TCP transport: an accept loop handing each connection to
//! [`crate::conn::serve_connection`] on its own thread, with a
//! connection-count admission cap (over the cap, the server writes one
//! busy frame and closes — the same reject-don't-buffer discipline as
//! the per-connection queues).

use crate::conn::serve_connection;
use crate::service::Service;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

/// A running TCP server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the accept thread running for the
/// process lifetime (the `mlv serve` CLI does exactly that and blocks
/// on stdio instead).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block on the accept loop — the `mlv serve --listen` (without
    /// `--stdio`) main loop, where the listener owns the process
    /// lifetime. Returns only if the accept thread exits (a prior
    /// `stop` flag or a listener error).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let threads =
            std::mem::take(&mut *self.conn_threads.lock().unwrap_or_else(|p| p.into_inner()));
        for t in threads {
            let _ = t.join();
        }
    }

    /// Stop accepting, then join the accept thread and every
    /// connection thread that has already finished its stream.
    /// Connections still open block shutdown until their clients
    /// disconnect — callers own that ordering.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // unblock the accept loop with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let threads =
            std::mem::take(&mut *self.conn_threads.lock().unwrap_or_else(|p| p.into_inner()));
        for t in threads {
            let _ = t.join();
        }
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve until
/// [`ServerHandle::shutdown`]. At most `max_connections` streams are
/// served concurrently.
pub fn listen(
    service: Arc<Service>,
    addr: &str,
    max_connections: usize,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept_thread = {
        let stop = Arc::clone(&stop);
        let conn_threads = Arc::clone(&conn_threads);
        let max_connections = max_connections.max(1);
        thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // response frames are small; never hold them for Nagle
                let _ = stream.set_nodelay(true);
                if active.load(Ordering::SeqCst) >= max_connections {
                    service.note("serve.connection_shed");
                    let mut s = stream;
                    let _ = s.write_all(service.busy_response(None).as_bytes());
                    let _ = s.write_all(b"\n");
                    continue; // drop: connection refused with a frame
                }
                let Ok(reader) = stream.try_clone() else {
                    continue;
                };
                active.fetch_add(1, Ordering::SeqCst);
                let service = Arc::clone(&service);
                let active = Arc::clone(&active);
                let t = thread::spawn(move || {
                    serve_connection(&service, reader, stream);
                    active.fetch_sub(1, Ordering::SeqCst);
                });
                conn_threads
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(t);
            }
        })
    };
    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
        conn_threads,
    })
}
