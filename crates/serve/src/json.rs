//! A minimal, std-only JSON parser for the serve wire protocol.
//!
//! Parses one request frame into a [`Value`] tree. Scope is exactly
//! what a hostile client can send over the wire: full string escape
//! handling (including `\uXXXX` with surrogate pairs), integer
//! preservation (a `u64` seed must not round-trip through `f64`), and
//! a nesting-depth cap so a frame of ten thousand `[` characters is an
//! error, not a stack overflow.
//!
//! Serialization is *not* here — responses are built with the
//! workspace's deterministic string formatting and
//! [`mlv_grid::io::json_escape`], the same discipline as the sweep
//! report lines.

use std::collections::BTreeMap;

/// Maximum bracket/brace nesting a frame may use.
const MAX_DEPTH: usize = 64;

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `u64` (covers every id/seed/shard field).
    UInt(u64),
    /// A negative integer that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Later duplicates of a key overwrite earlier ones.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer in range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }
}

/// Parse one JSON document. The whole input must be consumed (trailing
/// whitespace is fine, trailing garbage is not).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected byte {:#04x} at {}", other, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: a run of plain bytes
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape_into(&mut out)?;
                }
                Some(_) => return Err(format!("raw control byte at {}", self.pos)),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn escape_into(&mut self, out: &mut String) -> Result<(), String> {
        let e = self.peek().ok_or_else(|| "truncated escape".to_string())?;
        self.pos += 1;
        match e {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // surrogate pair: require the low half
                    if self.peek() != Some(b'\\') {
                        return Err("lone high surrogate".to_string());
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err("lone high surrogate".to_string());
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err("bad low surrogate".to_string());
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| "bad surrogate pair".to_string())?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err("lone low surrogate".to_string());
                } else {
                    char::from_u32(hi).ok_or_else(|| "bad \\u escape".to_string())?
                };
                out.push(c);
            }
            other => return Err(format!("unknown escape \\{}", char::from(other))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let s = std::str::from_utf8(chunk).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("bad number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shapes() {
        let v =
            parse(r#"{"id": 7, "kind": "realize", "family": "hypercube:3", "layers": 4}"#).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("realize"));
        assert_eq!(v.get("layers").and_then(Value::as_usize), Some(4));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn integers_preserved_exactly() {
        let v = parse("{\"seed\": 18446744073709551615}").unwrap();
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(u64::MAX));
        let v = parse("[-5, 1.5, -9223372036854775808]").unwrap();
        assert_eq!(
            v,
            Value::Arr(vec![
                Value::Int(-5),
                Value::Float(1.5),
                Value::Int(i64::MIN)
            ])
        );
    }

    #[test]
    fn string_escapes_decode() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé😀"));
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,2",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\u12",
            "\"\\ud800 lone\"",
            "\"\\udc00\"",
            "nul",
            "12 34",
            "1e999x",
            "{\"a\" 1}",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn depth_cap_rejects_bombs() {
        let bomb = "[".repeat(1000) + &"]".repeat(1000);
        let err = parse(&bomb).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // but reasonable nesting is fine
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(2));
    }
}
