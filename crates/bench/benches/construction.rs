//! Bench: end-to-end layout construction (spec building + grid
//! realization) per family and per layer count.

use mlv_core::bench::{black_box, BenchGroup};
use mlv_layout::families;

fn bench_spec_building() {
    let mut g = BenchGroup::new("spec_building");
    g.sample_size(10);
    g.bench("hypercube n=10", || {
        black_box(families::hypercube(10).spec.wire_count())
    });
    g.bench("6-ary 4-cube", || {
        black_box(families::karyn_cube(6, 4, false).spec.wire_count())
    });
    g.bench("GHC 16x16", || {
        black_box(families::genhyper(&[16, 16]).spec.wire_count())
    });
    g.bench("butterfly m=8", || {
        black_box(families::butterfly(8).spec.wire_count())
    });
    g.bench("CCC n=6", || black_box(families::ccc(6).spec.wire_count()));
    g.bench("HSN(3,K8)", || {
        black_box(families::hsn(3, 8).spec.wire_count())
    });
    g.finish();
}

fn bench_realization() {
    let mut g = BenchGroup::new("realization");
    g.sample_size(10);
    let cases = [
        ("hypercube n=8", families::hypercube(8)),
        ("6-ary 4-cube", families::karyn_cube(6, 4, false)),
        ("GHC 16x16", families::genhyper(&[16, 16])),
        ("CCC n=6", families::ccc(6)),
    ];
    for (name, fam) in &cases {
        for layers in [2usize, 8] {
            g.bench(&format!("{name} L={layers}"), || {
                black_box(fam.realize(layers).wires.len())
            });
        }
    }
    g.finish();
}

fn bench_realization_3d() {
    use mlv_layout::realize3d::{realize_3d, Realize3dOptions};
    let mut g = BenchGroup::new("realization_3d");
    g.sample_size(10);
    let fam = families::karyn_cube(8, 2, false);
    for la in [1usize, 2, 4] {
        g.bench(&format!("8-ary 2-cube L=8 LA={la}"), || {
            black_box(
                realize_3d(
                    &fam.spec,
                    &Realize3dOptions {
                        layers: 8,
                        active_layers: la,
                        node_side: Some(16),
                        pdk: None,
                    },
                )
                .wires
                .len(),
            )
        });
    }
    g.finish();
}

fn bench_io() {
    use mlv_grid::io::{read_layout, write_layout};
    let mut g = BenchGroup::new("layout_io");
    g.sample_size(20);
    let layout = families::hypercube(8).realize(4);
    g.bench("write hypercube n=8", || {
        black_box(write_layout(&layout).len())
    });
    let text = write_layout(&layout);
    g.bench("read hypercube n=8", || {
        black_box(read_layout(&text).unwrap().wires.len())
    });
    g.finish();
}

fn main() {
    bench_spec_building();
    bench_realization();
    bench_realization_3d();
    bench_io();
}
