//! Criterion bench: end-to-end layout construction (spec building +
//! grid realization) per family and per layer count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlv_layout::families;
use std::hint::black_box;

fn bench_spec_building(c: &mut Criterion) {
    let mut g = c.benchmark_group("spec_building");
    g.sample_size(10);
    g.bench_function("hypercube n=10", |b| {
        b.iter(|| black_box(families::hypercube(10).spec.wire_count()))
    });
    g.bench_function("6-ary 4-cube", |b| {
        b.iter(|| black_box(families::karyn_cube(6, 4, false).spec.wire_count()))
    });
    g.bench_function("GHC 16x16", |b| {
        b.iter(|| black_box(families::genhyper(&[16, 16]).spec.wire_count()))
    });
    g.bench_function("butterfly m=8", |b| {
        b.iter(|| black_box(families::butterfly(8).spec.wire_count()))
    });
    g.bench_function("CCC n=6", |b| {
        b.iter(|| black_box(families::ccc(6).spec.wire_count()))
    });
    g.bench_function("HSN(3,K8)", |b| {
        b.iter(|| black_box(families::hsn(3, 8).spec.wire_count()))
    });
    g.finish();
}

fn bench_realization(c: &mut Criterion) {
    let mut g = c.benchmark_group("realization");
    g.sample_size(10);
    let cases = [
        ("hypercube n=8", families::hypercube(8)),
        ("6-ary 4-cube", families::karyn_cube(6, 4, false)),
        ("GHC 16x16", families::genhyper(&[16, 16])),
        ("CCC n=6", families::ccc(6)),
    ];
    for (name, fam) in &cases {
        for layers in [2usize, 8] {
            g.bench_with_input(
                BenchmarkId::new(*name, format!("L={layers}")),
                &layers,
                |b, &layers| b.iter(|| black_box(fam.realize(layers).wires.len())),
            );
        }
    }
    g.finish();
}

fn bench_realization_3d(c: &mut Criterion) {
    use mlv_layout::realize3d::{realize_3d, Realize3dOptions};
    let mut g = c.benchmark_group("realization_3d");
    g.sample_size(10);
    let fam = families::karyn_cube(8, 2, false);
    for la in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("8-ary 2-cube L=8", format!("LA={la}")), &la, |b, &la| {
            b.iter(|| {
                black_box(
                    realize_3d(
                        &fam.spec,
                        &Realize3dOptions {
                            layers: 8,
                            active_layers: la,
                            node_side: Some(16),
                        },
                    )
                    .wires
                    .len(),
                )
            })
        });
    }
    g.finish();
}

fn bench_io(c: &mut Criterion) {
    use mlv_grid::io::{read_layout, write_layout};
    let mut g = c.benchmark_group("layout_io");
    g.sample_size(20);
    let layout = families::hypercube(8).realize(4);
    g.bench_function("write hypercube n=8", |b| {
        b.iter(|| black_box(write_layout(&layout).len()))
    });
    let text = write_layout(&layout);
    g.bench_function("read hypercube n=8", |b| {
        b.iter(|| black_box(read_layout(&text).unwrap().wires.len()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_spec_building,
    bench_realization,
    bench_realization_3d,
    bench_io
);
criterion_main!(benches);
