//! Criterion bench: collinear construction throughput (the inner loop
//! of every layout in the paper) and greedy interval colouring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlv_collinear::complete::complete_collinear;
use mlv_collinear::folded::fold_outer_groups;
use mlv_collinear::genhyper::genhyper_collinear;
use mlv_collinear::hypercube::hypercube_collinear;
use mlv_collinear::interval::color_intervals;
use mlv_collinear::karyn::kary_collinear;
use std::hint::black_box;

fn bench_constructions(c: &mut Criterion) {
    let mut g = c.benchmark_group("collinear_construction");
    g.sample_size(20);
    for n in [8usize, 12, 16] {
        g.bench_with_input(BenchmarkId::new("hypercube", n), &n, |b, &n| {
            b.iter(|| black_box(hypercube_collinear(n).tracks()))
        });
    }
    for (k, n) in [(4usize, 4usize), (8, 4), (4, 6)] {
        g.bench_with_input(
            BenchmarkId::new("kary", format!("{k}-ary {n}")),
            &(k, n),
            |b, &(k, n)| b.iter(|| black_box(kary_collinear(k, n).tracks())),
        );
    }
    for r in [16usize, 32, 64] {
        g.bench_with_input(BenchmarkId::new("complete", r), &r, |b, &r| {
            b.iter(|| black_box(complete_collinear(r).tracks()))
        });
    }
    g.bench_function("genhyper 8^3", |b| {
        b.iter(|| black_box(genhyper_collinear(&[8, 8, 8]).tracks()))
    });
    g.finish();
}

fn bench_coloring(c: &mut Criterion) {
    let mut g = c.benchmark_group("interval_coloring");
    g.sample_size(20);
    for n in [1_000usize, 10_000, 100_000] {
        // deterministic pseudo-random spans
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed as usize
        };
        let spans: Vec<(usize, usize)> = (0..n)
            .map(|_| {
                let a = next() % 4096;
                let b = next() % 4096;
                if a == b {
                    (a, b + 1)
                } else {
                    (a.min(b), a.max(b))
                }
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("random_spans", n), &spans, |b, spans| {
            b.iter(|| black_box(color_intervals(spans).len()))
        });
    }
    g.finish();
}

fn bench_folding(c: &mut Criterion) {
    let mut g = c.benchmark_group("fold_reorder");
    g.sample_size(20);
    let base = kary_collinear(8, 4);
    g.bench_function("fold 8-ary 4-cube", |b| {
        b.iter(|| black_box(fold_outer_groups(&base, 8).tracks()))
    });
    g.finish();
}

criterion_group!(benches, bench_constructions, bench_coloring, bench_folding);
criterion_main!(benches);
