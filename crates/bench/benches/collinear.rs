//! Bench: collinear construction throughput (the inner loop of every
//! layout in the paper) and greedy interval colouring.

use mlv_collinear::complete::complete_collinear;
use mlv_collinear::folded::fold_outer_groups;
use mlv_collinear::genhyper::genhyper_collinear;
use mlv_collinear::hypercube::hypercube_collinear;
use mlv_collinear::interval::color_intervals;
use mlv_collinear::karyn::kary_collinear;
use mlv_core::bench::{black_box, BenchGroup};

fn bench_constructions() {
    let mut g = BenchGroup::new("collinear_construction");
    g.sample_size(20);
    for n in [8usize, 12, 16] {
        g.bench(&format!("hypercube {n}"), || {
            black_box(hypercube_collinear(n).tracks())
        });
    }
    for (k, n) in [(4usize, 4usize), (8, 4), (4, 6)] {
        g.bench(&format!("kary {k}-ary {n}"), || {
            black_box(kary_collinear(k, n).tracks())
        });
    }
    for r in [16usize, 32, 64] {
        g.bench(&format!("complete {r}"), || {
            black_box(complete_collinear(r).tracks())
        });
    }
    g.bench("genhyper 8^3", || {
        black_box(genhyper_collinear(&[8, 8, 8]).tracks())
    });
    g.finish();
}

fn bench_coloring() {
    let mut g = BenchGroup::new("interval_coloring");
    g.sample_size(20);
    for n in [1_000usize, 10_000, 100_000] {
        // deterministic pseudo-random spans
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed as usize
        };
        let spans: Vec<(usize, usize)> = (0..n)
            .map(|_| {
                let a = next() % 4096;
                let b = next() % 4096;
                if a == b {
                    (a, b + 1)
                } else {
                    (a.min(b), a.max(b))
                }
            })
            .collect();
        g.bench(&format!("random_spans {n}"), || {
            black_box(color_intervals(&spans).len())
        });
    }
    g.finish();
}

fn bench_folding() {
    let mut g = BenchGroup::new("fold_reorder");
    g.sample_size(20);
    let base = kary_collinear(8, 4);
    g.bench("fold 8-ary 4-cube", || {
        black_box(fold_outer_groups(&base, 8).tracks())
    });
    g.finish();
}

fn main() {
    bench_constructions();
    bench_coloring();
    bench_folding();
}
