//! Bench: one timed pipeline per experiment table — the cost of
//! regenerating each table row (build + realize + check + metrics), so
//! table-regeneration time is itself tracked.

use mlv_bench::measure;
use mlv_core::bench::{black_box, BenchGroup};
use mlv_layout::families;

fn main() {
    let mut g = BenchGroup::new("table_rows");
    g.sample_size(10);
    g.bench("T-kary row (4-ary 4-cube, L=4)", || {
        let fam = families::karyn_cube(4, 4, false);
        black_box(measure(&fam, 4, false).metrics.area)
    });
    g.bench("T-hcube row (n=8, L=4)", || {
        let fam = families::hypercube(8);
        black_box(measure(&fam, 4, false).metrics.area)
    });
    g.bench("T-ghc row (12^2, L=4, routed)", || {
        let fam = families::genhyper(&[12, 12]);
        black_box(measure(&fam, 4, true).routed)
    });
    g.bench("T-bfly row (m=6, L=4)", || {
        let fam = families::butterfly(6);
        black_box(measure(&fam, 4, false).metrics.area)
    });
    g.bench("T-ccc row (n=5, L=4)", || {
        let fam = families::ccc(5);
        black_box(measure(&fam, 4, false).metrics.area)
    });
    g.bench("T-hsn row (HSN(3,K5), L=4)", || {
        let fam = families::hsn(3, 5);
        black_box(measure(&fam, 4, false).metrics.area)
    });
    g.bench("T-fold row (folded 6-cube, L=4)", || {
        let fam = families::folded_hypercube(6);
        black_box(measure(&fam, 4, false).metrics.area)
    });
    g.finish();
}
