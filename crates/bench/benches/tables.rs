//! Criterion bench: one timed pipeline per experiment table — the cost
//! of regenerating each table row (build + realize + check + metrics),
//! so table-regeneration time is itself tracked.

use criterion::{criterion_group, criterion_main, Criterion};
use mlv_bench::measure;
use mlv_layout::families;
use std::hint::black_box;

fn bench_table_rows(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_rows");
    g.sample_size(10);
    g.bench_function("T-kary row (4-ary 4-cube, L=4)", |b| {
        let fam = families::karyn_cube(4, 4, false);
        b.iter(|| black_box(measure(&fam, 4, false).metrics.area))
    });
    g.bench_function("T-hcube row (n=8, L=4)", |b| {
        let fam = families::hypercube(8);
        b.iter(|| black_box(measure(&fam, 4, false).metrics.area))
    });
    g.bench_function("T-ghc row (12^2, L=4, routed)", |b| {
        let fam = families::genhyper(&[12, 12]);
        b.iter(|| black_box(measure(&fam, 4, true).routed))
    });
    g.bench_function("T-bfly row (m=6, L=4)", |b| {
        let fam = families::butterfly(6);
        b.iter(|| black_box(measure(&fam, 4, false).metrics.area))
    });
    g.bench_function("T-ccc row (n=5, L=4)", |b| {
        let fam = families::ccc(5);
        b.iter(|| black_box(measure(&fam, 4, false).metrics.area))
    });
    g.bench_function("T-hsn row (HSN(3,K5), L=4)", |b| {
        let fam = families::hsn(3, 5);
        b.iter(|| black_box(measure(&fam, 4, false).metrics.area))
    });
    g.bench_function("T-fold row (folded 6-cube, L=4)", |b| {
        let fam = families::folded_hypercube(6);
        b.iter(|| black_box(measure(&fam, 4, false).metrics.area))
    });
    g.finish();
}

criterion_group!(benches, bench_table_rows);
criterion_main!(benches);
