//! Bench: legality-checker throughput (the parallel point-disjointness
//! sweep is the reproduction's hot loop) and metrics aggregation.

use mlv_core::bench::{black_box, BenchGroup};
use mlv_grid::checker::check;
use mlv_grid::metrics::LayoutMetrics;
use mlv_layout::families;

fn bench_checker() {
    let mut g = BenchGroup::new("checker");
    g.sample_size(10);
    let cases = [
        ("hypercube n=8 L=2", families::hypercube(8), 2usize),
        ("hypercube n=10 L=4", families::hypercube(10), 4),
        ("GHC 16x16 L=2", families::genhyper(&[16, 16]), 2),
        ("6-ary 4-cube L=4", families::karyn_cube(6, 4, false), 4),
    ];
    for (name, fam, layers) in &cases {
        let layout = fam.realize(*layers);
        g.bench(&format!("check {name}"), || {
            let r = check(black_box(&layout), Some(&fam.graph));
            assert!(r.is_legal());
            black_box(r.wire_points)
        });
    }
    g.finish();
}

fn bench_metrics() {
    let mut g = BenchGroup::new("metrics");
    g.sample_size(20);
    let fam = families::hypercube(10);
    let layout = fam.realize(4);
    g.bench("metrics hypercube n=10", || {
        black_box(LayoutMetrics::of(&layout).area)
    });
    g.finish();
}

fn main() {
    bench_checker();
    bench_metrics();
}
