//! Criterion bench: legality-checker throughput (the rayon-parallel
//! point-disjointness sweep is the reproduction's hot loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mlv_grid::checker::check;
use mlv_grid::metrics::LayoutMetrics;
use mlv_layout::families;
use std::hint::black_box;

fn bench_checker(c: &mut Criterion) {
    let mut g = c.benchmark_group("checker");
    g.sample_size(10);
    let cases = [
        ("hypercube n=8 L=2", families::hypercube(8), 2usize),
        ("hypercube n=10 L=4", families::hypercube(10), 4),
        ("GHC 16x16 L=2", families::genhyper(&[16, 16]), 2),
        ("6-ary 4-cube L=4", families::karyn_cube(6, 4, false), 4),
    ];
    for (name, fam, layers) in &cases {
        let layout = fam.realize(*layers);
        let m = LayoutMetrics::of(&layout);
        g.throughput(Throughput::Elements(m.total_wire + m.wire_count as u64));
        g.bench_with_input(BenchmarkId::new("check", *name), &layout, |b, layout| {
            b.iter(|| {
                let r = check(black_box(layout), Some(&fam.graph));
                assert!(r.is_legal());
                black_box(r.wire_points)
            })
        });
    }
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics");
    g.sample_size(20);
    let fam = families::hypercube(10);
    let layout = fam.realize(4);
    g.bench_function("metrics hypercube n=10", |b| {
        b.iter(|| black_box(LayoutMetrics::of(&layout).area))
    });
    g.finish();
}

criterion_group!(benches, bench_checker, bench_metrics);
criterion_main!(benches);
