//! Experiment T-lb (paper §1/§6): optimality ratios of the measured
//! layouts against the trivial bisection lower bound `(B/L)²`.
//!
//! Paper: butterflies, GHCs, HSNs and ISNs are optimal within
//! `2 + o(1)` per side (4 in area) of this bound under the multilayer
//! grid model; the other families within small constants.

use mlv_bench::{f, measure, Table};
use mlv_formulas::bisection;
use mlv_formulas::bounds::optimality_ratio;
use mlv_layout::families;

fn main() {
    let mut t = Table::new(
        "T-lb: measured area vs trivial lower bound (B/L)^2",
        &["family", "N", "B", "L", "area", "bound", "ratio"],
    );
    let cases: Vec<(String, mlv_layout::families::Family, usize)> = vec![
        (
            "K16xK16 (GHC)".into(),
            families::genhyper(&[16, 16]),
            bisection::genhyper(16, 2),
        ),
        (
            "8-cube".into(),
            families::hypercube(8),
            bisection::hypercube(8),
        ),
        (
            "8-ary 4-cube".into(),
            families::karyn_cube(8, 4, false),
            bisection::karyn(8, 4),
        ),
        (
            "BF(5)".into(),
            families::butterfly(5),
            bisection::butterfly_wrapped(5),
        ),
        (
            "HSN(2,K12)".into(),
            families::hsn(2, 12),
            bisection::hsn(12, 2),
        ),
        ("CCC(5)".into(), families::ccc(5), bisection::ccc(5)),
        (
            "folded 8-cube".into(),
            families::folded_hypercube(8),
            bisection::folded_hypercube(8),
        ),
    ];
    for (label, fam, b) in &cases {
        for layers in [2usize, 4, 8] {
            let m = measure(fam, layers, false);
            let bound = mlv_formulas::bounds::area_lower_bound(*b, layers);
            t.row(vec![
                label.clone(),
                fam.graph.node_count().to_string(),
                b.to_string(),
                layers.to_string(),
                m.metrics.area.to_string(),
                f(bound),
                f(optimality_ratio(m.metrics.area, *b, layers)),
            ]);
        }
    }
    t.print();
    println!(
        "\nShape check: every ratio is >= 1 (the bound is valid); the headline families\n\
         sit at small constants that improve (head toward the paper's 4-16) as N grows\n\
         and wiring dominates the node footprints; L^2 cancels in the ratio so rows of\n\
         one family drift only through footprint effects."
    );
}
