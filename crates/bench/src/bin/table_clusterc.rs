//! Experiment T-cluster (paper §3.2): k-ary n-cube cluster-c and the
//! node-size scalability claim.
//!
//! Paper: while the cluster size `c` is small relative to `k^{n/2−1}`,
//! the PN-cluster layout's area stays within `1 + o(1)` of the quotient
//! torus; and any layout of the paper's kind remains optimal while each
//! node occupies `o(Area/N)` — growing the node footprint below that
//! threshold must not change the leading constant.

use mlv_bench::{measure, measure_unchecked, measure_with, ratio, Table};
use mlv_layout::families;
use mlv_layout::realize::RealizeOptions;
use mlv_topology::cluster::ClusterKind;

fn main() {
    // the paper's regime is c = o(k^{n/2-1}): at n = 2 *no* c qualifies
    // (the first row shows the resulting overhead); at n = 4 small c
    // rides along nearly free as the quotient tracks dominate
    let mut t = Table::new(
        "T-cluster (a): k-ary n-cube cluster-c area vs the flat quotient torus",
        &[
            "k",
            "n",
            "c",
            "kind",
            "L",
            "cluster area",
            "flat area",
            "overhead",
        ],
    );
    for (k, n, c, kind, kind_name) in [
        (8usize, 2usize, 4usize, ClusterKind::Hypercube, "hypercube"),
        (4, 4, 2, ClusterKind::Ring, "ring"),
        (4, 4, 4, ClusterKind::Hypercube, "hypercube"),
        (6, 4, 2, ClusterKind::Ring, "ring"),
        (6, 4, 4, ClusterKind::Hypercube, "hypercube"),
        (8, 4, 2, ClusterKind::Ring, "ring"),
    ] {
        let fam = families::kary_cluster(k, n, c, kind);
        let flat = families::karyn_cube(k, n, false);
        let big = fam.graph.node_count() > 1024;
        for layers in [2usize, 4] {
            let (mc, mf) = if big {
                (
                    measure_unchecked(&fam, layers),
                    measure_unchecked(&flat, layers),
                )
            } else {
                (measure(&fam, layers, false), measure(&flat, layers, false))
            };
            t.row(vec![
                k.to_string(),
                n.to_string(),
                c.to_string(),
                kind_name.to_string(),
                layers.to_string(),
                mc.metrics.area.to_string(),
                mf.metrics.area.to_string(),
                ratio(mc.metrics.area as f64, mf.metrics.area as f64),
            ]);
        }
    }
    t.print();

    // denser clusters cost more; ring < hypercube < complete at fixed c
    let mut t = Table::new(
        "T-cluster (b): cluster density ordering at k=8, c=8, L=2",
        &["kind", "area"],
    );
    for (kind, name) in [
        (ClusterKind::Ring, "ring"),
        (ClusterKind::Hypercube, "hypercube"),
        (ClusterKind::Complete, "complete"),
    ] {
        let m = measure(&families::kary_cluster(8, 2, 8, kind), 2, false);
        t.row(vec![name.to_string(), m.metrics.area.to_string()]);
    }
    t.print();

    // node-size scalability: grow node footprints; area constant moves
    // only once footprints rival the per-gap track budget
    let mut t = Table::new(
        "T-cluster (c): node-size scalability on a 16-ary 2-cube GHC-like (K16xK16), L=2",
        &["node side", "min side", "area", "vs min-side area"],
    );
    let fam = families::genhyper(&[16, 16]);
    let base = measure(&fam, 2, false);
    let min_side = {
        // probe: realize with default and read footprint side from width
        // width = 16 * (side + tracks); tracks = 64
        (base.metrics.width / 16 - 64) as usize
    };
    for side in [
        min_side,
        min_side + 8,
        min_side + 16,
        min_side + 32,
        min_side + 64,
    ] {
        let m = measure_with(
            &fam,
            &RealizeOptions {
                layers: 2,
                node_side: Some(side),
                jog_strategy: Default::default(),
                pdk: None,
            },
            false,
        );
        t.row(vec![
            side.to_string(),
            min_side.to_string(),
            m.metrics.area.to_string(),
            ratio(m.metrics.area as f64, base.metrics.area as f64),
        ]);
    }
    t.print();
    println!(
        "\nShape check: small clusters cost little over the flat torus; density raises\n\
         the constant; node growth below the track budget barely moves the area."
    );
}
