//! Experiment T-3d: the multilayer **3-D** grid model (paper §2.2
//! defines it; constructions deferred) — a concrete riser-based
//! instance, measured against the 2-D multilayer scheme at the same
//! total layer budget.
//!
//! Claim under test (from the model's definition): stacking `L_A`
//! active layers removes `L_A − 1` of every stack's node footprints at
//! the cost of a thicker per-slab bundle (wiring is a wash) plus one
//! riser column per block-crossing wire. It therefore pays off where
//! the 2-D scheme saturates: node-dominated layouts with few crossing
//! wires.

use mlv_bench::{f, Table};
use mlv_grid::checker;
use mlv_grid::metrics::LayoutMetrics;
use mlv_layout::families::{self, Family};
use mlv_layout::realize3d::{realize_3d, Realize3dOptions};

fn measure_3d(fam: &Family, l: usize, la: usize, side: Option<usize>) -> LayoutMetrics {
    let layout = realize_3d(
        &fam.spec,
        &Realize3dOptions {
            layers: l,
            active_layers: la,
            node_side: side,
            pdk: None,
        },
    );
    checker::assert_legal(&layout, Some(&fam.graph));
    LayoutMetrics::of(&layout)
}

fn main() {
    let l = 8usize;
    let mut t = Table::new(
        "T-3d: 2-D vs 3-D grid model at L = 8 (area; gain over L_A = 1)",
        &[
            "network",
            "node side",
            "LA=1",
            "LA=2",
            "gain",
            "LA=4",
            "gain",
        ],
    );
    let cases: Vec<(String, Family)> = vec![
        ("8-ary 2-cube".into(), families::karyn_cube(8, 2, false)),
        ("8-ary 2-mesh".into(), families::karyn_mesh(8, 2)),
        ("4-ary 4-cube".into(), families::karyn_cube(4, 4, false)),
        ("6-cube".into(), families::hypercube(6)),
    ];
    for (label, fam) in &cases {
        for side in [None, Some(16), Some(32)] {
            let m1 = measure_3d(fam, l, 1, side);
            let m2 = measure_3d(fam, l, 2, side);
            let m4 = measure_3d(fam, l, 4, side);
            t.row(vec![
                label.clone(),
                side.map(|s| s.to_string()).unwrap_or("min".into()),
                m1.area.to_string(),
                m2.area.to_string(),
                f(m1.area as f64 / m2.area as f64),
                m4.area.to_string(),
                f(m1.area as f64 / m4.area as f64),
            ]);
        }
    }
    t.print();

    // volume is conserved (L × area falls only as far as area does) and
    // the max wire shrinks with the shorter column spans
    let mut t = Table::new(
        "T-3d: wire length and risers at node side 16, L = 8",
        &[
            "network",
            "LA",
            "height",
            "max wire",
            "width (risers included)",
        ],
    );
    for (label, fam) in &cases {
        for la in [1usize, 2, 4] {
            let m = measure_3d(fam, l, la, Some(16));
            t.row(vec![
                label.clone(),
                la.to_string(),
                m.height.to_string(),
                m.max_wire_planar.to_string(),
                m.width.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\nShape check: with minimal node sizes stacking is a wash (wiring conserved);\n\
         with processor-scale nodes the gain approaches L_A on tori/meshes (few\n\
         risers) and stays smaller on hypercubes (every high-dimension link crosses\n\
         blocks and buys a riser column)."
    );
}
