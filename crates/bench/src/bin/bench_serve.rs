//! Load generator for the `mlv serve` layout service.
//!
//! Starts a [`mlv_serve::Service`] on a loopback TCP listener — the
//! same transport `mlv serve --listen` runs — and drives it with a
//! mixed workload cycling every request kind (realize, check, metrics,
//! sweep-shard, profile, stats) across several families, so the memo
//! cache sees both hits and misses.
//!
//! Two driver modes:
//!
//! * **closed-loop** (default): `--clients N` connections, each
//!   sending one request and waiting for its response — measures
//!   service latency under a fixed concurrency. Per-request latency is
//!   recorded both exactly (for the percentile rows) and into the
//!   run's [`mlv_core::trace`] log2 histogram
//!   (`serve.client_latency_ns`).
//! * **open-loop** (`--mode open`): one writer per connection firing
//!   at `--rate R` requests/second total without waiting, one reader
//!   matching responses back to send timestamps by request id —
//!   measures behavior past saturation, where the bounded queues shed
//!   load with busy frames instead of buffering (shed responses are
//!   counted, not latency-tracked).
//!
//! Results go to stdout (one JSON summary line) and to
//! `BENCH_serve.json` at the repo root. `--check-regression` compares
//! this run's closed-loop throughput against the committed
//! `BENCH_serve.json` instead of overwriting it, failing the run if
//! throughput fell below `1/`[`REGRESSION_BOUND`] of the baseline;
//! when `GITHUB_STEP_SUMMARY` is set a markdown delta table is
//! appended to it. The bound is loose — CI machines are noisy — so
//! only real collapses trip it.
//!
//! `MLV_BENCH_REQUESTS` overrides the per-client request count
//! (default 200); CI legs use small counts.

use mlv_core::trace::Trace;
use mlv_serve::{listen, ServeConfig, Service};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Maximum tolerated `baseline_rps / this_run_rps` in
/// `--check-regression` mode.
const REGRESSION_BOUND: f64 = 3.0;

/// The request mix: every kind, several families, some repeats so the
/// memo cache gets hits. `i` is the request sequence number (also the
/// frame id, which the open-loop reader uses to match responses).
fn request(i: u64) -> String {
    match i % 8 {
        0 => format!("{{\"id\":{i},\"kind\":\"realize\",\"family\":\"hypercube:4\",\"layers\":4}}"),
        1 => format!("{{\"id\":{i},\"kind\":\"check\",\"family\":\"mesh:4,4\"}}"),
        2 => format!(
            "{{\"id\":{i},\"kind\":\"metrics\",\"family\":\"hypercube:3\",\"layers\":4,\"pdk\":\"hv6\"}}"
        ),
        3 => format!(
            "{{\"id\":{i},\"kind\":\"sweep-shard\",\"seed\":2000,\"cases\":1,\"shard\":{},\"shards\":4}}",
            i % 4
        ),
        4 => format!("{{\"id\":{i},\"kind\":\"profile\",\"family\":\"hypercube:3\",\"layers\":2}}"),
        5 => format!("{{\"id\":{i},\"kind\":\"stats\"}}"),
        6 => format!("{{\"id\":{i},\"kind\":\"realize\",\"family\":\"karyn:4,2\",\"layers\":4}}"),
        _ => format!("{{\"id\":{i},\"kind\":\"check\",\"family\":\"hypercube:4\",\"layers\":4}}"),
    }
}

struct RunStats {
    sent: u64,
    answered: u64,
    shed: u64,
    elapsed: Duration,
    /// Exact latencies, nanoseconds (closed loop: every request;
    /// open loop: every id-matched non-shed response).
    latencies_ns: Vec<u64>,
}

impl RunStats {
    fn throughput_rps(&self) -> f64 {
        self.answered as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn percentile_ns(&mut self, p: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        self.latencies_ns.sort_unstable();
        let rank = ((self.latencies_ns.len() - 1) as f64 * p).round() as usize;
        self.latencies_ns[rank]
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let check_regression = args.iter().any(|a| a == "--check-regression");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let mode = flag("--mode").unwrap_or("closed");
    if mode != "closed" && mode != "open" {
        eprintln!("--mode needs 'closed' or 'open', got '{mode}'");
        return ExitCode::FAILURE;
    }
    let clients: usize = flag("--clients").and_then(|v| v.parse().ok()).unwrap_or(4);
    let requests: u64 = flag("--requests")
        .and_then(|v| v.parse().ok())
        .or_else(|| std::env::var("MLV_BENCH_REQUESTS").ok()?.parse().ok())
        .unwrap_or(200);
    let rate: u64 = flag("--rate").and_then(|v| v.parse().ok()).unwrap_or(2000);
    if clients == 0 || requests == 0 || rate == 0 {
        eprintln!("--clients/--requests/--rate must be positive");
        return ExitCode::FAILURE;
    }

    let service = Arc::new(Service::new(ServeConfig::default()));
    let server = match listen(Arc::clone(&service), "127.0.0.1:0", clients + 1) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.addr();

    // warm the cache with one pass of the mix so the measured run sees
    // the steady-state hit/miss blend rather than a cold cache
    for i in 0..8 {
        service.handle_line(&request(i));
    }

    let trace = Trace::new();
    let mut stats = match mode {
        "closed" => run_closed(&trace, addr, clients, requests),
        _ => run_open(&trace, addr, clients, requests, rate),
    };
    server.shutdown();

    let (p50, p95, p99) = (
        stats.percentile_ns(0.50),
        stats.percentile_ns(0.95),
        stats.percentile_ns(0.99),
    );
    let agg = trace.aggregate();
    let summary = format!(
        "{{\"bench\":\"serve\",\"mode\":\"{mode}\",\"clients\":{clients},\
         \"requests_per_client\":{requests},\"sent\":{},\"answered\":{},\
         \"shed\":{},\"elapsed_ms\":{:.1},\"throughput_rps\":{:.0},\
         \"p50_ns\":{p50},\"p95_ns\":{p95},\"p99_ns\":{p99}}}",
        stats.sent,
        stats.answered,
        stats.shed,
        stats.elapsed.as_secs_f64() * 1e3,
        stats.throughput_rps(),
    );
    println!("{summary}");

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_serve.json");
    if check_regression {
        return check_against_baseline(&path, mode, stats.throughput_rps());
    }
    // the trace block carries the log2 latency histogram
    // (serve.client_latency_ns) alongside the service's own counters
    let doc = format!(
        "{{\"bench\":\"serve\",\"mode\":\"{mode}\",\"result\":\n{summary},\n\
         \"trace\":[\n{}\n]}}\n",
        agg.json_lines().join(",\n")
    );
    if let Err(e) = std::fs::write(&path, doc) {
        eprintln!("write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", path.display());
    ExitCode::SUCCESS
}

/// Closed loop: each client thread sends one request and blocks on its
/// response; latency is the full write-to-read round trip.
fn run_closed(
    trace: &Trace,
    addr: std::net::SocketAddr,
    clients: usize,
    requests: u64,
) -> RunStats {
    let clock = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let trace = trace.clone();
            std::thread::spawn(move || {
                trace.collect(|| {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let _ = stream.set_nodelay(true);
                    let mut writer = stream.try_clone().expect("clone");
                    let mut reader = BufReader::new(stream);
                    let mut lat = Vec::with_capacity(requests as usize);
                    let mut shed = 0u64;
                    let mut line = String::new();
                    for i in 0..requests {
                        let req = request(c as u64 * 1_000_000 + i);
                        let t0 = Instant::now();
                        writer.write_all(req.as_bytes()).expect("write");
                        writer.write_all(b"\n").expect("write");
                        line.clear();
                        if reader.read_line(&mut line).expect("read") == 0 {
                            break;
                        }
                        let ns = t0.elapsed().as_nanos() as u64;
                        if line.contains("\"error\":\"busy\"") {
                            shed += 1; // closed loop: only over-cap admission
                        } else {
                            lat.push(ns);
                            mlv_core::histogram!("serve.client_latency_ns", ns);
                        }
                    }
                    (lat, shed)
                })
            })
        })
        .collect();
    let mut stats = RunStats {
        sent: clients as u64 * requests,
        answered: 0,
        shed: 0,
        elapsed: Duration::ZERO,
        latencies_ns: Vec::new(),
    };
    for w in workers {
        let (lat, shed) = w.join().expect("client panicked");
        stats.answered += lat.len() as u64 + shed;
        stats.shed += shed;
        stats.latencies_ns.extend(lat);
    }
    stats.elapsed = clock.elapsed();
    stats
}

/// Open loop: writers fire at a fixed aggregate rate without waiting;
/// a reader per connection matches responses to send times by id.
/// Past saturation the queues shed — busy frames come back fast and
/// are counted separately rather than polluting the latency series.
fn run_open(
    trace: &Trace,
    addr: std::net::SocketAddr,
    clients: usize,
    requests: u64,
    rate: u64,
) -> RunStats {
    let interval = Duration::from_nanos(1_000_000_000 * clients as u64 / rate.max(1));
    let clock = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let trace = trace.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let _ = stream.set_nodelay(true);
                let mut writer = stream.try_clone().expect("clone");
                let reader = BufReader::new(stream);
                let sent_at: Arc<Mutex<std::collections::HashMap<u64, Instant>>> =
                    Arc::new(Mutex::new(std::collections::HashMap::new()));
                let reader_sent = Arc::clone(&sent_at);
                let reader_trace = trace.clone();
                let drain = std::thread::spawn(move || {
                    reader_trace.collect(|| {
                        let mut lat = Vec::new();
                        let mut shed = 0u64;
                        for line in reader.lines() {
                            let Ok(line) = line else { break };
                            if line.contains("\"error\":\"busy\"") {
                                shed += 1;
                                continue;
                            }
                            if let Some(t0) = frame_id(&line)
                                .and_then(|id| reader_sent.lock().unwrap().remove(&id))
                            {
                                let ns = t0.elapsed().as_nanos() as u64;
                                lat.push(ns);
                                mlv_core::histogram!("serve.client_latency_ns", ns);
                            }
                        }
                        (lat, shed)
                    })
                });
                let mut next = Instant::now();
                for i in 0..requests {
                    let id = c as u64 * 1_000_000 + i;
                    sent_at.lock().unwrap().insert(id, Instant::now());
                    let req = request(id);
                    if writer.write_all(req.as_bytes()).is_err() || writer.write_all(b"\n").is_err()
                    {
                        break;
                    }
                    next += interval;
                    if let Some(wait) = next.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                }
                // half-close the write side so the service drains its
                // queue and closes, giving the reader EOF
                let _ = writer.flush();
                let _ = writer.shutdown(std::net::Shutdown::Write);
                let (lat, shed) = drain.join().expect("reader panicked");
                (lat, shed)
            })
        })
        .collect();
    let mut stats = RunStats {
        sent: clients as u64 * requests,
        answered: 0,
        shed: 0,
        elapsed: Duration::ZERO,
        latencies_ns: Vec::new(),
    };
    for w in workers {
        let (lat, shed) = w.join().expect("client panicked");
        stats.answered += lat.len() as u64 + shed;
        stats.shed += shed;
        stats.latencies_ns.extend(lat);
    }
    stats.elapsed = clock.elapsed();
    stats
}

/// Pull `"id":N` out of a response frame (the frames this bench sends
/// always carry a numeric id).
fn frame_id(line: &str) -> Option<u64> {
    let tail = line.split("\"id\":").nth(1)?;
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Compare this run's throughput against the committed baseline.
/// Open- and closed-loop throughputs are not comparable, so a
/// baseline written in a different mode is skipped with a note.
fn check_against_baseline(path: &Path, mode: &str, rps: f64) -> ExitCode {
    let doc = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("no baseline at {} ({e}); nothing to check", path.display());
            return ExitCode::SUCCESS;
        }
    };
    if !doc.contains(&format!("\"mode\":\"{mode}\"")) {
        eprintln!(
            "baseline {} was written in a different mode; skipped",
            path.display()
        );
        return ExitCode::SUCCESS;
    }
    let Some(old) = baseline_rps(&doc) else {
        eprintln!("baseline {} has no throughput_rps; skipped", path.display());
        return ExitCode::SUCCESS;
    };
    let ratio = old / rps.max(1e-9);
    let ok = ratio <= REGRESSION_BOUND;
    eprintln!(
        "serve throughput: baseline {old:.0} rps -> this run {rps:.0} rps ({ratio:.2}x {})",
        if ok { "ok" } else { "FAIL" }
    );
    if let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") {
        let md = format!(
            "### Serve throughput vs. committed baseline\n\n\
             | metric | baseline | this run | slowdown | ≤ {REGRESSION_BOUND}x |\n\
             |---|---:|---:|---:|:---:|\n\
             | throughput (rps) | {old:.0} | {rps:.0} | {ratio:.2}x | {} |\n\n",
            if ok { "✅" } else { "❌" }
        );
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(&summary) {
            let _ = f.write_all(md.as_bytes());
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "REGRESSION: serve throughput {rps:.0} rps vs baseline {old:.0} rps \
             ({ratio:.2}x > {REGRESSION_BOUND}x)"
        );
        ExitCode::FAILURE
    }
}

/// Extract `"throughput_rps":N` from the baseline document.
fn baseline_rps(doc: &str) -> Option<f64> {
    let tail = doc.split("\"throughput_rps\":").nth(1)?;
    let num: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    num.parse().ok()
}
