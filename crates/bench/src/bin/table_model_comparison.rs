//! Experiment T-model (paper §1 claims 1–4, §2.2): direct multilayer
//! redesign vs folded-Thompson vs multilayer-collinear, on a
//! track-dominated generalized hypercube and a k-ary n-cube.
//!
//! Paper prediction: direct area gain ≈ L²/4, folded ≈ L/2; direct
//! volume gain ≈ L/2, folded ≈ 1; direct max-wire gain ≈ L/2,
//! folded ≈ 1.

use mlv_bench::{f, Table};
use mlv_collinear::complete::complete_collinear;
use mlv_formulas::predictions::{model_area_gain_direct, model_area_gain_folded};
use mlv_grid::fold::CollinearMultilayerEstimate;
use mlv_layout::baseline::compare_models;
use mlv_layout::families;

fn main() {
    for (label, spec) in [
        ("K16 x K16 (GHC)", families::genhyper(&[16, 16]).spec),
        ("8-ary 4-cube", families::karyn_cube(8, 4, false).spec),
    ] {
        let mut t = Table::new(
            format!("T-model: {label} — gains over the 2-layer (Thompson) layout"),
            &[
                "L",
                "direct area gain",
                "paper L^2/4",
                "folded area gain",
                "paper L/2",
                "direct vol gain",
                "folded vol gain",
                "direct wire gain",
                "folded wire gain",
            ],
        );
        for layers in [2usize, 4, 8, 16] {
            let cmp = compare_models(&spec, layers);
            t.row(vec![
                layers.to_string(),
                f(cmp.direct_area_gain()),
                f(model_area_gain_direct(layers)),
                f(cmp.folded_area_gain()),
                f(model_area_gain_folded(layers)),
                f(cmp.direct_volume_gain()),
                f(cmp.folded_volume_gain()),
                f(cmp.direct_wire_gain()),
                f(cmp.folded_wire_gain()),
            ]);
        }
        t.print();
    }

    // multilayer-collinear baseline: volume and wire never improve
    let mut t = Table::new(
        "T-model: multilayer collinear baseline (K64 row, 1024 tracks)",
        &["L", "area", "volume", "max wire"],
    );
    let k = complete_collinear(64);
    for layers in [2usize, 4, 8, 16] {
        let est = CollinearMultilayerEstimate::new(64, 33, k.tracks() as u64, layers);
        t.row(vec![
            layers.to_string(),
            est.area.to_string(),
            est.volume.to_string(),
            est.max_wire.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nShape check: direct gains track L^2/4 (diluted by node footprints at these sizes),\n\
         folded gains track L/2 with volume and max wire length unchanged — the paper's §2.2 contrast."
    );
}
