//! Experiment T-kary (paper §3.1): k-ary n-cube track counts, L-layer
//! area/volume, and the folded max-wire bound.
//!
//! Paper: collinear tracks `f_k(n) = 2(kⁿ−1)/(k−1)`; L-layer area
//! `16N²/(L²k²) + o(·)`; volume `16N²/(Lk²)`; folded max wire
//! `O(N/(Lk²))`.

use mlv_bench::{f, measure, ratio, Table};
use mlv_collinear::karyn::{kary_collinear, kary_track_count};
use mlv_formulas::predictions::{karyn, karyn_max_wire_scale};
use mlv_layout::families;

fn main() {
    // --- exact track counts ---
    let mut t = Table::new(
        "T-kary (a): collinear track counts f_k(n) = 2(k^n - 1)/(k - 1)",
        &["k", "n", "constructed", "paper formula", "load lower bound"],
    );
    for (k, n) in [
        (3usize, 2usize),
        (3, 3),
        (4, 2),
        (4, 3),
        (5, 2),
        (8, 2),
        (16, 1),
    ] {
        let l = kary_collinear(k, n);
        l.assert_valid();
        t.row(vec![
            k.to_string(),
            n.to_string(),
            l.tracks().to_string(),
            kary_track_count(k, n).to_string(),
            l.max_load().to_string(),
        ]);
    }
    t.print();

    // --- L-layer area/volume vs paper leading terms ---
    let mut t = Table::new(
        "T-kary (b): L-layer layouts vs paper leading terms (ratio -> 1 as tracks dominate)",
        &[
            "k",
            "n",
            "N",
            "L",
            "area",
            "paper area",
            "a-ratio",
            "volume",
            "v-ratio",
            "max wire",
        ],
    );
    for (k, n) in [(4usize, 4usize), (6, 4), (3, 6), (8, 2), (16, 2)] {
        let fam = families::karyn_cube(k, n, false);
        let nn = k.pow(n as u32);
        for layers in [2usize, 4, 8] {
            let m = measure(&fam, layers, false);
            let p = karyn(k, n, layers);
            t.row(vec![
                k.to_string(),
                n.to_string(),
                nn.to_string(),
                layers.to_string(),
                m.metrics.area.to_string(),
                f(p.area),
                ratio(m.metrics.area as f64, p.area),
                m.metrics.volume.to_string(),
                ratio(m.metrics.volume as f64, p.volume),
                m.metrics.max_wire_planar.to_string(),
            ]);
        }
    }
    t.print();

    // --- folding shortens the longest wire ---
    let mut t = Table::new(
        "T-kary (c): folded rows/columns cut the max wire (paper: O(N/(Lk^2)))",
        &[
            "k",
            "n",
            "L",
            "max wire (plain)",
            "max wire (folded)",
            "scale N/(Lk^2)",
            "folded/scale",
        ],
    );
    for (k, n) in [(4usize, 4usize), (6, 4), (3, 6)] {
        for layers in [2usize, 4] {
            let plain = measure(&families::karyn_cube(k, n, false), layers, false);
            let folded = measure(&families::karyn_cube(k, n, true), layers, false);
            let scale = karyn_max_wire_scale(k, n, layers);
            t.row(vec![
                k.to_string(),
                n.to_string(),
                layers.to_string(),
                plain.metrics.max_wire_planar.to_string(),
                folded.metrics.max_wire_planar.to_string(),
                f(scale),
                ratio(folded.metrics.max_wire_planar as f64, scale),
            ]);
        }
    }
    t.print();
    println!(
        "\nShape check: track counts match f_k(n) exactly; area ratios approach 1 and\n\
         scale as 1/L^2; folding cuts the longest wire by ~k against the plain order."
    );
}
