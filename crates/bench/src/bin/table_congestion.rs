//! Ablation table: where the area goes — lane utilization, footprint
//! fraction, layer balance, and cut congestion per family and layer
//! count; plus the jog-distribution ablation (round-robin vs all in one
//! group) that shows irregular wires need the multilayer treatment too.

use mlv_bench::{f, Table};
use mlv_grid::analytics;
use mlv_grid::metrics::LayoutMetrics;
use mlv_layout::families;
use mlv_layout::realize::{realize, JogStrategy, RealizeOptions};

fn main() {
    let mut t = Table::new(
        "Congestion & density per family",
        &[
            "family",
            "L",
            "area",
            "footprint %",
            "lane util mean",
            "lane util max",
            "peak cut flux",
            "layer balance",
        ],
    );
    let cases: Vec<(String, mlv_layout::families::Family)> = vec![
        ("8-cube".into(), families::hypercube(8)),
        ("6-ary 4-cube".into(), families::karyn_cube(6, 4, false)),
        ("GHC 12x12".into(), families::genhyper(&[12, 12])),
        ("CCC(5)".into(), families::ccc(5)),
        ("BF(5)".into(), families::butterfly(5)),
        ("HSN(3,K5)".into(), families::hsn(3, 5)),
    ];
    for (label, fam) in &cases {
        for layers in [2usize, 8] {
            let layout = fam.realize(layers);
            let m = LayoutMetrics::of(&layout);
            let usage = analytics::layer_usage(&layout);
            let (_, lmean, lmax) = analytics::lane_utilization(&layout);
            let balance = {
                let mx = *usage.iter().max().unwrap_or(&0) as f64;
                let mn = *usage.iter().filter(|&&u| u > 0).min().unwrap_or(&1) as f64;
                if mx > 0.0 {
                    mn / mx
                } else {
                    0.0
                }
            };
            t.row(vec![
                label.clone(),
                layers.to_string(),
                m.area.to_string(),
                f(analytics::footprint_fraction(&layout) * 100.0),
                f(lmean * 100.0),
                f(lmax * 100.0),
                analytics::max_cut_flux(&layout).to_string(),
                f(balance),
            ]);
        }
    }
    t.print();

    // jog ablation: spreading jogs over layer groups vs piling them in
    // group 0, on jog-heavy families
    let mut t = Table::new(
        "Jog-distribution ablation (round-robin vs single group), L = 8",
        &["family", "area RR", "area single", "single/RR"],
    );
    for (label, fam) in [
        ("HSN(3,K5)", families::hsn(3, 5)),
        ("folded 7-cube", families::folded_hypercube(7)),
        ("star(5)", families::star(5)),
        ("BF(5)", families::butterfly(5)),
    ] {
        let rr = LayoutMetrics::of(&realize(
            &fam.spec,
            &RealizeOptions {
                layers: 8,
                node_side: None,
                jog_strategy: JogStrategy::RoundRobin,
                pdk: None,
            },
        ));
        let single = LayoutMetrics::of(&realize(
            &fam.spec,
            &RealizeOptions {
                layers: 8,
                node_side: None,
                jog_strategy: JogStrategy::SingleGroup,
                pdk: None,
            },
        ));
        t.row(vec![
            label.to_string(),
            rr.area.to_string(),
            single.area.to_string(),
            f(single.area as f64 / rr.area as f64),
        ]);
    }
    t.print();
    println!(
        "\nShape check: footprint fraction rises with L (the wiring shrinks, nodes\n\
         don't) — the finite-size dilution discussed in EXPERIMENTS.md; piling jogs\n\
         into one layer group forfeits their multilayer gain on jog-heavy families."
    );
}
