//! Large-N scaling bench for the tiled layout IR.
//!
//! Walks the hypercube and k-ary n-cube ladders up to (by default)
//! 2²⁰ nodes, realizing each size into the tiled IR
//! ([`mlv_layout::realize_tiled`]) and reporting streaming metrics —
//! without ever materializing the flat grid at large N, so peak memory
//! stays proportional to nodes + wires (one instance record per wire)
//! instead of cells. CI runs the 2²⁰ sizes under a `ulimit -v` budget
//! the flat pipeline cannot fit in; the bench itself reports `VmHWM`
//! per size so the scaling table in `EXPERIMENTS.md` is reproducible.
//!
//! At small sizes (≤ 2¹² nodes) every record also runs the streaming
//! legality check plus the full differential: `materialize(tiled)`
//! must digest-match the flat `realize()`, and the streaming checker
//! must agree with the full-grid checker report. Large sizes skip
//! both — the flat side is exactly the memory the bench avoids, and
//! any legality check (streaming or not) walks every wire *point*
//! against the node index, which is hours of work at 2²⁰ nodes. The
//! conformance harness already pins checker agreement across the
//! lattice; this bench pins realization scaling.
//!
//! ```text
//! bench_tiled [--family=hypercube|karyn|all] [--layers=L]
//!             [--max-nodes=N] [--digests]
//! ```
//!
//! `--digests` switches to a deterministic digest-only output (one
//! `family n digest` line per size, no timings or RSS): CI diffs this
//! output between `MLV_THREADS=1` and `MLV_THREADS=8` to pin
//! thread-count independence of the tiled pipeline.

use mlv_grid::streaming::StreamSource;
use mlv_layout::engine::layout_digest;
use mlv_layout::{families, RealizeOptions};
use std::process::ExitCode;
use std::time::Instant;

/// Sizes above this many nodes skip the legality check and the
/// flat-vs-tiled differential: the flat side is exactly the memory the
/// bench exists to avoid (and would pollute the `VmHWM` column), and
/// checking is per-wire-point work that dwarfs realization at scale.
const DIFFERENTIAL_MAX_NODES: usize = 1 << 12;

/// Peak resident set (`VmHWM`) in kB from `/proc/self/status`; 0 when
/// the proc filesystem is unavailable (non-Linux).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

struct Args {
    family: String,
    layers: usize,
    max_nodes: usize,
    digests_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        family: "all".to_string(),
        layers: 4,
        max_nodes: 1 << 20,
        digests_only: false,
    };
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--family=") {
            match v {
                "hypercube" | "karyn" | "all" => a.family = v.to_string(),
                other => return Err(format!("unknown family '{other}'")),
            }
        } else if let Some(v) = arg.strip_prefix("--layers=") {
            a.layers = v
                .parse()
                .ok()
                .filter(|&l| l >= 2 && l % 2 == 0)
                .ok_or("--layers needs an even integer >= 2")?;
        } else if let Some(v) = arg.strip_prefix("--max-nodes=") {
            a.max_nodes = v.parse().map_err(|_| "--max-nodes needs an integer")?;
        } else if arg == "--digests" {
            a.digests_only = true;
        } else {
            return Err(format!("unknown flag '{arg}'"));
        }
    }
    Ok(a)
}

/// One ladder rung: realize tiled, stream metrics + legality, and (at
/// small N) run the flat differential. Returns false on any failure.
fn run_size(tag: &str, n: usize, family: families::Family, args: &Args) -> bool {
    let opts = RealizeOptions::with_layers(args.layers);
    let t0 = Instant::now();
    let tiled = mlv_layout::realize_tiled(&family.spec, &opts);
    let realize_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let m = mlv_grid::metrics_stream(&tiled);
    let metrics_ms = t1.elapsed().as_secs_f64() * 1e3;
    let digest = tiled.digest();

    if args.digests_only {
        println!("{tag} {n} {digest:016x}");
        return true;
    }

    let nodes = tiled.node_count();
    let mut ok = true;
    let (legal, differential, check_ms) = if nodes <= DIFFERENTIAL_MAX_NODES {
        let t2 = Instant::now();
        let report = mlv_grid::check_stream(&tiled, Some(&family.graph));
        let check_ms = t2.elapsed().as_secs_f64() * 1e3;
        if !report.is_legal() {
            eprintln!(
                "FAIL {tag} n={n}: streaming checker found {} error(s): {:?}",
                report.errors.len(),
                report.errors.first()
            );
            ok = false;
        }
        let flat = family.realize_with(&opts);
        let flat_digest = layout_digest(&flat);
        let tiled_digest = layout_digest(&tiled.materialize());
        let full = mlv_grid::checker::check(&flat, Some(&family.graph));
        let matches = tiled_digest == flat_digest
            && report.errors == full.errors
            && report.wire_points == full.wire_points
            && report.node_points == full.node_points;
        if !matches {
            eprintln!(
                "FAIL {tag} n={n}: tiled/flat differential diverged \
                 (digest {tiled_digest:016x} vs {flat_digest:016x})"
            );
            ok = false;
        }
        (
            if report.is_legal() { "true" } else { "false" },
            if matches { "\"ok\"" } else { "\"FAIL\"" },
            check_ms,
        )
    } else {
        ("null", "\"skipped\"", 0.0)
    };

    println!(
        "{{\"bench\":\"tiled\",\"family\":\"{tag}\",\"n\":{n},\"nodes\":{nodes},\
         \"wires\":{},\"layers\":{},\"tiles\":{},\"digest\":\"{digest:016x}\",\
         \"area\":{},\"volume\":{},\"legal\":{legal},\"differential\":{differential},\
         \"realize_ms\":{realize_ms:.1},\"metrics_ms\":{metrics_ms:.1},\
         \"check_ms\":{check_ms:.1},\"peak_rss_kb\":{}}}",
        tiled.wire_count(),
        tiled.layers,
        tiled.tiles.len(),
        m.area,
        m.volume,
        peak_rss_kb(),
    );
    ok
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    if args.family == "hypercube" || args.family == "all" {
        for n in [10usize, 12, 14, 16, 18, 20] {
            if 1usize << n > args.max_nodes {
                break;
            }
            ok &= run_size("hypercube", n, families::hypercube(n), &args);
        }
    }
    if args.family == "karyn" || args.family == "all" {
        for n in [5usize, 6, 7, 8, 9, 10] {
            if 4usize.pow(n as u32) > args.max_nodes {
                break;
            }
            ok &= run_size("karyn", n, families::karyn_cube(4, n, false), &args);
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
