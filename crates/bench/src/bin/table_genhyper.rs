//! Experiment T-ghc (paper §4.1): generalized hypercubes — track
//! counts, area, volume, max wire, and the routed-path metric.
//!
//! Paper: tracks `f_r(n) = (N−1)⌊r²/4⌋/(r−1)`; area `r²N²/(4L²)`;
//! volume `r²N²/(4L)`; max wire `rN/(2L)`; max routed-path `rN/L`.

use mlv_bench::{measure, ratio, Table};
use mlv_collinear::genhyper::{genhyper_collinear, genhyper_track_count_fixed};
use mlv_formulas::predictions::genhyper as predict;
use mlv_layout::families;

fn main() {
    let mut t = Table::new(
        "T-ghc (a): collinear track counts f_r(n) = (N-1) floor(r^2/4)/(r-1)",
        &["r", "n", "constructed", "paper", "load lower bound"],
    );
    for (r, n) in [
        (3usize, 2usize),
        (3, 3),
        (4, 2),
        (5, 2),
        (6, 2),
        (9, 1),
        (8, 2),
    ] {
        let l = genhyper_collinear(&vec![r; n]);
        l.assert_valid();
        t.row(vec![
            r.to_string(),
            n.to_string(),
            l.tracks().to_string(),
            genhyper_track_count_fixed(r, n).to_string(),
            l.max_load().to_string(),
        ]);
    }
    t.print();

    let mut t = Table::new(
        "T-ghc (b): L-layer layouts vs paper leading terms",
        &[
            "r", "n", "N", "L", "area", "a-ratio", "max wire", "w-ratio", "routed", "r-ratio",
        ],
    );
    for (r, n) in [(8usize, 2usize), (12, 2), (16, 2), (4, 3)] {
        let fam = families::genhyper(&vec![r; n]);
        let nn = r.pow(n as u32);
        for layers in [2usize, 4, 8] {
            let m = measure(&fam, layers, nn <= 512);
            let p = predict(r, n, layers);
            t.row(vec![
                r.to_string(),
                n.to_string(),
                nn.to_string(),
                layers.to_string(),
                m.metrics.area.to_string(),
                ratio(m.metrics.area as f64, p.area),
                m.metrics.max_wire_planar.to_string(),
                ratio(m.metrics.max_wire_planar as f64, p.max_wire.unwrap()),
                m.routed.map(|x| x.to_string()).unwrap_or("-".into()),
                m.routed
                    .map(|x| ratio(x as f64, p.max_routed.unwrap()))
                    .unwrap_or("-".into()),
            ]);
        }
    }
    t.print();

    // mixed radices exercise the general recurrence
    let mut t = Table::new(
        "T-ghc (c): mixed radices (general recurrence f(m+1) = r_m f(m) + floor(r_m^2/4))",
        &["radices (msd..lsd)", "N", "tracks", "L=4 area"],
    );
    for radices in [vec![4usize, 3, 2], vec![6, 4], vec![5, 5, 2]] {
        let fam = families::genhyper(&radices);
        let m = measure(&fam, 4, false);
        let lo = genhyper_collinear(&radices);
        t.row(vec![
            format!("{:?}", radices.iter().rev().collect::<Vec<_>>()),
            radices.iter().product::<usize>().to_string(),
            lo.tracks().to_string(),
            m.metrics.area.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nShape check: tracks exactly match f_r(n) and its load bound; area ~ r^2N^2/4L^2;\n\
         routed-path metric ~ 2x the max wire (paper: rN/L vs rN/2L)."
    );
}
