//! Routing table (paper §1 claim 4, extended): the worst-case total
//! wire length along a route, under BFS shortest paths and under the
//! deterministic dimension-order router real tori use. Both shrink
//! ≈ L/2 with layers; dimension-order pays only a small premium over
//! the best shortest path.

use mlv_bench::{f, ratio, Table};
use mlv_grid::checker;
use mlv_grid::metrics::LayoutMetrics;
use mlv_layout::families;
use mlv_layout::realize::align_wires;
use mlv_topology::dimrouting::DimensionOrderRouter;
use mlv_topology::karyn::KaryNCube;

fn main() {
    let mut t = Table::new(
        "Worst-case routed wire length: BFS shortest paths vs dimension-order",
        &[
            "network",
            "N",
            "L",
            "max wire",
            "routed (BFS)",
            "routed (dim-order)",
            "dim/BFS",
            "routed/maxwire",
        ],
    );
    for (k, n) in [(6usize, 2usize), (4, 3), (8, 2), (3, 4)] {
        let cube = KaryNCube::torus(k, n);
        let fam = families::karyn_cube(k, n, false);
        let router = DimensionOrderRouter::new(&cube);
        for layers in [2usize, 4, 8] {
            let mut layout = fam.realize(layers);
            checker::assert_legal(&layout, Some(&fam.graph));
            align_wires(&mut layout, &cube.graph);
            let lens: Vec<u64> = layout.wires.iter().map(|w| w.path.length()).collect();
            let bfs = LayoutMetrics::max_routed_path(&layout, &cube.graph).unwrap();
            let dim = router.max_route_cost(|e| lens[e as usize]).unwrap();
            let m = LayoutMetrics::of(&layout);
            t.row(vec![
                format!("{k}-ary {n}-cube"),
                cube.node_count().to_string(),
                layers.to_string(),
                m.max_wire_full.to_string(),
                bfs.to_string(),
                dim.to_string(),
                ratio(dim as f64, bfs as f64),
                f(bfs as f64 / m.max_wire_full as f64),
            ]);
        }
    }
    t.print();
    println!(
        "\nShape check: both routed budgets scale down with L alongside the wire\n\
         lengths; dimension-order routing pays a small constant premium (>= 1.0)\n\
         over the best shortest path, since it cannot pick the cheapest of the\n\
         equal-hop routes."
    );
}
