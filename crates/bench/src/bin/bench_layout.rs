//! Realization micro-bench over the registry's lattice vocabulary.
//!
//! For every lattice-bearing family in [`mlv_layout::registry`], draws
//! one fixed-seed configuration, realizes it through the staged pass
//! pipeline at `L = 4`, and times the realization with
//! [`mlv_core::bench::measure`]. Results go to stdout (one JSON line
//! per family, the house bench format) and to `BENCH_layout.json` at
//! the repo root so runs are diffable artifacts.
//!
//! `MLV_BENCH_SAMPLES` overrides the sample count (default 11); CI's
//! smoke leg uses `3`.

use mlv_core::bench::{black_box, measure};
use mlv_core::rng::Rng;
use mlv_layout::registry;
use std::path::Path;

const SEED: u64 = 2000;
const LAYERS: usize = 4;

fn main() {
    let samples = std::env::var("MLV_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or(11);

    let mut lines = Vec::new();
    for entry in registry::REGISTRY {
        let Some(lattice) = &entry.lattice else {
            continue;
        };
        // one deterministic draw per family: the draw stream is the
        // same one the conformance lattice replays, so the shapes here
        // are representative of what the harness exercises
        let mut rng = Rng::seed_from_u64(SEED);
        let draw = (lattice.draw)(&mut rng);
        let nodes = draw.family.graph.node_count();
        let stats = measure(samples, || black_box(draw.family.realize(LAYERS)));
        let line = format!(
            "{{\"family\":\"{}\",\"label\":\"{} L={LAYERS}\",\"nodes\":{nodes},\
             \"iters\":{},\"samples\":{},\"median_ns\":{},\"mean_ns\":{},\
             \"min_ns\":{},\"max_ns\":{}}}",
            entry.name,
            draw.label,
            stats.iters,
            stats.samples,
            stats.median_ns,
            stats.mean_ns,
            stats.min_ns,
            stats.max_ns,
        );
        println!("{line}");
        lines.push(line);
    }

    let doc = format!(
        "{{\"bench\":\"layout-realize\",\"seed\":{SEED},\"layers\":{LAYERS},\
         \"samples\":{samples},\"results\":[\n{}\n]}}\n",
        lines.join(",\n")
    );
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_layout.json");
    std::fs::write(&path, doc).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}
