//! Realization micro-bench over the registry's lattice vocabulary.
//!
//! For every lattice-bearing family in [`mlv_layout::registry`], draws
//! one fixed-seed configuration, times its realization with
//! [`mlv_core::bench::measure`], and then runs the whole set through
//! one [`mlv_layout::engine`] batch — the same path `mlv sweep` and
//! the conformance harness realize on — to attach the layout digest,
//! the legality verdict, and the per-pass timing breakdown
//! (placement / tracks / layers / emit) to each record. Results go to
//! stdout (one JSON line per family, the house bench format) and to
//! `BENCH_layout.json` at the repo root so runs are diffable
//! artifacts.
//!
//! `--check-regression` compares fresh medians against the committed
//! `BENCH_layout.json` instead of overwriting it: any family whose
//! median regresses more than [`REGRESSION_BOUND`]× fails the run
//! (exit 1). The bound is deliberately loose — CI machines are noisy
//! and unoptimized passes are tens of microseconds — so only real
//! complexity regressions trip it.
//!
//! `MLV_BENCH_SAMPLES` overrides the sample count (default 11); CI's
//! smoke and regression legs use small counts.
//!
//! `--trace` runs the engine batch under an [`mlv_core::trace`]
//! recorder and embeds the span/counter/histogram breakdown as a
//! `"trace"` array in `BENCH_layout.json`. The timed measurement loop
//! itself always runs untraced, so the flag never perturbs the
//! medians; the committed baseline is written without it.

use mlv_core::bench::{black_box, measure};
use mlv_core::rng::Rng;
use mlv_layout::engine::{Engine, EngineOptions, Job};
use mlv_layout::registry;
use std::path::Path;
use std::process::ExitCode;

const SEED: u64 = 2000;
const LAYERS: usize = 4;
/// Maximum tolerated `fresh_median / committed_median` per family.
const REGRESSION_BOUND: f64 = 3.0;

fn main() -> ExitCode {
    let check_regression = std::env::args().any(|a| a == "--check-regression");
    let with_trace = std::env::args().any(|a| a == "--trace");
    let samples = std::env::var("MLV_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or(11);

    // one deterministic draw per family: the draw stream is the same
    // one the conformance lattice replays, so the shapes here are
    // representative of what the harness exercises
    let mut names = Vec::new();
    let mut jobs = Vec::new();
    let mut stats = Vec::new();
    for entry in registry::REGISTRY {
        let Some(lattice) = &entry.lattice else {
            continue;
        };
        let mut rng = Rng::seed_from_u64(SEED);
        let draw = (lattice.draw)(&mut rng);
        stats.push(measure(samples, || black_box(draw.family.realize(LAYERS))));
        names.push(entry.name);
        jobs.push(Job::new(&draw.label, draw.family, LAYERS));
    }
    // one engine batch attaches digest + check + pass breakdown; only
    // this batch is traced — the measurement loop above stays untraced
    let trace = with_trace.then(mlv_core::trace::Trace::new);
    let mut engine = Engine::new(EngineOptions::default());
    let batch = match &trace {
        Some(t) => t.collect(|| engine.run(&jobs)),
        None => engine.run(&jobs),
    };

    let mut lines = Vec::new();
    for ((name, job), (s, r)) in names
        .iter()
        .zip(&jobs)
        .zip(stats.iter().zip(&batch.results))
    {
        let o = &r.outcome;
        let t = &o.timing;
        let line = format!(
            "{{\"family\":\"{name}\",\"label\":\"{}\",\"nodes\":{},\
             \"iters\":{},\"samples\":{},\"median_ns\":{},\"mean_ns\":{},\
             \"min_ns\":{},\"max_ns\":{},\"digest\":\"{:016x}\",\"legal\":{},\
             \"placement_ns\":{},\"tracks_ns\":{},\"layers_ns\":{},\"emit_ns\":{}}}",
            job.label,
            job.family.graph.node_count(),
            s.iters,
            s.samples,
            s.median_ns,
            s.mean_ns,
            s.min_ns,
            s.max_ns,
            o.digest,
            o.check.as_bool().unwrap_or(false),
            t.placement_ns,
            t.tracks_ns,
            t.layers_ns,
            t.emit_ns,
        );
        println!("{line}");
        lines.push(line);
    }

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_layout.json");
    if check_regression {
        return match check_against_baseline(&path, &names, &stats) {
            Ok(()) => ExitCode::SUCCESS,
            Err(failures) => {
                for f in failures {
                    eprintln!("REGRESSION: {f}");
                }
                ExitCode::FAILURE
            }
        };
    }

    let trace_block = match &trace {
        Some(t) => {
            let agg = t.aggregate();
            format!(
                ",\"trace_digest\":\"{:016x}\",\"trace\":[\n{}\n]",
                agg.digest(),
                agg.json_lines().join(",\n")
            )
        }
        None => String::new(),
    };
    let doc = format!(
        "{{\"bench\":\"layout-realize\",\"seed\":{SEED},\"layers\":{LAYERS},\
         \"samples\":{samples},\"results\":[\n{}\n]{trace_block}}}\n",
        lines.join(",\n")
    );
    std::fs::write(&path, doc).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
    ExitCode::SUCCESS
}

/// Compare fresh medians against the committed baseline. Families
/// missing from the baseline (newly added) are skipped with a note —
/// they gain a bound once the baseline is regenerated.
fn check_against_baseline(
    path: &Path,
    names: &[&str],
    stats: &[mlv_core::bench::Stats],
) -> Result<(), Vec<String>> {
    let doc = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("no baseline at {} ({e}); nothing to check", path.display());
            return Ok(());
        }
    };
    let mut failures = Vec::new();
    for (name, s) in names.iter().zip(stats) {
        let Some(old) = baseline_median(&doc, name) else {
            eprintln!("note: '{name}' absent from baseline; skipped");
            continue;
        };
        let ratio = s.median_ns as f64 / old.max(1) as f64;
        let verdict = if ratio > REGRESSION_BOUND {
            "FAIL"
        } else {
            "ok"
        };
        eprintln!(
            "{name:>12}: {old:>9} ns -> {:>9} ns  ({ratio:>5.2}x)  {verdict}",
            s.median_ns
        );
        if ratio > REGRESSION_BOUND {
            failures.push(format!(
                "{name}: median {} ns vs baseline {} ns ({ratio:.2}x > {REGRESSION_BOUND}x)",
                s.median_ns, old
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

/// Extract `"median_ns":N` for `"family":"name"` from the baseline
/// document (one result object per line — the format this bench
/// itself writes; no JSON parser in the zero-dependency workspace).
fn baseline_median(doc: &str, name: &str) -> Option<u64> {
    let family_tag = format!("\"family\":\"{name}\"");
    let line = doc.lines().find(|l| l.contains(&family_tag))?;
    let tail = line.split("\"median_ns\":").nth(1)?;
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}
