//! Realization micro-bench over the registry's lattice vocabulary.
//!
//! For every lattice-bearing family in [`mlv_layout::registry`], draws
//! one fixed-seed configuration, times its realization with
//! [`mlv_core::bench::measure`], and then runs the whole set through
//! one [`mlv_layout::engine`] batch — the same path `mlv sweep` and
//! the conformance harness realize on — to attach the layout digest,
//! the legality verdict, and the per-pass timing breakdown
//! (placement / tracks / layers / emit) to each record. Results go to
//! stdout (one JSON line per family, the house bench format) and to
//! `BENCH_layout.json` at the repo root so runs are diffable
//! artifacts.
//!
//! `--check-regression` compares fresh medians against the committed
//! `BENCH_layout.json` instead of overwriting it: any family whose
//! median regresses more than [`REGRESSION_BOUND`]× fails the run
//! (exit 1). The bound is deliberately loose — CI machines are noisy
//! and unoptimized passes are tens of microseconds — so only real
//! complexity regressions trip it.
//!
//! `--check-regression=self` needs no baseline file at all: it times
//! each family twice *in the same run* — the steady-state pooled loop
//! (realize + recycle on the thread-local scratch) against
//! fresh-allocation realization — and fails if pooling is slower than
//! [`SELF_BOUND`]× fresh anywhere. Machine speed cancels out, so the
//! gate holds on any runner, fast or slow.
//!
//! Under either check mode, when `GITHUB_STEP_SUMMARY` is set a
//! per-family median delta table (markdown) is appended to it, so CI
//! surfaces the perf trajectory without artifact spelunking.
//!
//! `MLV_BENCH_SAMPLES` overrides the sample count (default 11); CI's
//! smoke and regression legs use small counts.
//!
//! `--trace` runs the engine batch under an [`mlv_core::trace`]
//! recorder and embeds the span/counter/histogram breakdown as a
//! `"trace"` array in `BENCH_layout.json`. The timed measurement loop
//! itself always runs untraced, so the flag never perturbs the
//! medians; the committed baseline is written without it.
//!
//! `--pdk hv6` times realization onto the built-in non-uniform
//! technology stack instead of the unit grid and attaches
//! pitch-weighted physical metrics to every row. The committed
//! baseline is always the uniform (`"pdk":"uniform"`) run.

use mlv_core::bench::{black_box, measure};
use mlv_core::rng::Rng;
use mlv_layout::engine::{Engine, EngineOptions, Job};
use mlv_layout::registry;
use std::path::Path;
use std::process::ExitCode;

const SEED: u64 = 2000;
const LAYERS: usize = 4;
/// Maximum tolerated `fresh_median / committed_median` per family.
const REGRESSION_BOUND: f64 = 3.0;
/// Maximum tolerated `pooled / fresh_alloc` fastest-sample ratio per
/// family in `--check-regression=self` mode. Pooling exists to be
/// faster; the gate compares `min_ns` (robust against transient
/// scheduler stalls that can inflate a median 5×) and the slack
/// absorbs sampling noise on tiny (<10 µs) realizations.
const SELF_BOUND: f64 = 1.5;

fn main() -> ExitCode {
    let check_regression = std::env::args().any(|a| a == "--check-regression");
    let check_self = std::env::args().any(|a| a == "--check-regression=self");
    let with_trace = std::env::args().any(|a| a == "--trace");
    // `--pdk hv6` times realization onto the built-in non-uniform
    // stack and attaches physical metrics to every row; the default
    // (uniform) keeps the committed baseline byte-comparable
    let pdk = {
        let args: Vec<String> = std::env::args().collect();
        match args.iter().position(|a| a == "--pdk") {
            None => None,
            Some(i) => match args.get(i + 1).map(String::as_str) {
                Some("uniform") => None,
                Some("hv6") => Some(mlv_grid::Pdk::hv6()),
                other => {
                    eprintln!("--pdk needs 'uniform' or 'hv6', got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
        }
    };
    let samples = std::env::var("MLV_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or(11);

    // one deterministic draw per family: the draw stream is the same
    // one the conformance lattice replays, so the shapes here are
    // representative of what the harness exercises
    let mut names = Vec::new();
    let mut jobs = Vec::new();
    let mut stats = Vec::new();
    let mut fresh_stats = Vec::new();
    for entry in registry::REGISTRY {
        let Some(lattice) = &entry.lattice else {
            continue;
        };
        let mut rng = Rng::seed_from_u64(SEED);
        let draw = (lattice.draw)(&mut rng);
        let opts = match &pdk {
            Some(p) => mlv_layout::RealizeOptions::with_pdk(LAYERS, p.clone()),
            None => mlv_layout::RealizeOptions::with_layers(LAYERS),
        };
        // steady-state hot loop: realize on the thread-local scratch,
        // then hand the layout's buffers back — the allocation-free
        // cycle the engine's scratch pool runs per job
        stats.push(measure(samples, || {
            let layout = draw.family.realize_with(&opts);
            black_box(&layout);
            mlv_layout::recycle(layout);
        }));
        if check_self {
            // the same realization, allocating everything from scratch
            fresh_stats.push(measure(samples, || {
                black_box(mlv_layout::realize_fresh(&draw.family.spec, &opts))
            }));
        }
        names.push(entry.name);
        jobs.push(match &pdk {
            Some(p) => Job::with_pdk(&draw.label, draw.family, LAYERS, p.clone()),
            None => Job::new(&draw.label, draw.family, LAYERS),
        });
    }
    // one engine batch attaches digest + check + pass breakdown; only
    // this batch is traced — the measurement loop above stays untraced
    let trace = with_trace.then(mlv_core::trace::Trace::new);
    let mut engine = Engine::new(EngineOptions::default());
    let batch = match &trace {
        Some(t) => t.collect(|| engine.run(&jobs)),
        None => engine.run(&jobs),
    };

    let mut lines = Vec::new();
    for ((name, job), (s, r)) in names
        .iter()
        .zip(&jobs)
        .zip(stats.iter().zip(&batch.results))
    {
        let o = &r.outcome;
        let t = &o.timing;
        let mut line = format!(
            "{{\"family\":\"{name}\",\"label\":\"{}\",\"nodes\":{},\
             \"iters\":{},\"samples\":{},\"median_ns\":{},\"mean_ns\":{},\
             \"min_ns\":{},\"max_ns\":{},\"digest\":\"{:016x}\",\"legal\":{},\
             \"placement_ns\":{},\"tracks_ns\":{},\"layers_ns\":{},\"emit_ns\":{}",
            job.label,
            job.family.graph.node_count(),
            s.iters,
            s.samples,
            s.median_ns,
            s.mean_ns,
            s.min_ns,
            s.max_ns,
            o.digest,
            o.check.as_bool().unwrap_or(false),
            t.placement_ns,
            t.tracks_ns,
            t.layers_ns,
            t.emit_ns,
        );
        if let Some(ph) = &o.physical {
            line.push_str(&format!(
                ",\"phys_area\":{},\"phys_wirelength\":{},\"phys_via_cost\":{}",
                ph.area, ph.wirelength, ph.via_cost
            ));
        }
        line.push('}');
        println!("{line}");
        lines.push(line);
    }

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_layout.json");
    if check_self {
        return verdict(check_against_self(&names, &stats, &fresh_stats));
    }
    if check_regression {
        return verdict(check_against_baseline(&path, &names, &stats));
    }

    let trace_block = match &trace {
        Some(t) => {
            let agg = t.aggregate();
            format!(
                ",\"trace_digest\":\"{:016x}\",\"trace\":[\n{}\n]",
                agg.digest(),
                agg.json_lines().join(",\n")
            )
        }
        None => String::new(),
    };
    let pdk_name = pdk.as_ref().map(|p| p.name.as_str()).unwrap_or("uniform");
    let doc = format!(
        "{{\"bench\":\"layout-realize\",\"seed\":{SEED},\"layers\":{LAYERS},\
         \"samples\":{samples},\"pdk\":\"{pdk_name}\",\"results\":[\n{}\n]{trace_block}}}\n",
        lines.join(",\n")
    );
    std::fs::write(&path, doc).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
    ExitCode::SUCCESS
}

/// Exit with the check's result, printing every failure first.
fn verdict(result: Result<(), Vec<String>>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(failures) => {
            for f in failures {
                eprintln!("REGRESSION: {f}");
            }
            ExitCode::FAILURE
        }
    }
}

/// One row of a median comparison: `new` against `old` under `bound`.
struct Delta<'a> {
    name: &'a str,
    old_ns: u64,
    new_ns: u64,
    ratio: f64,
    ok: bool,
}

impl Delta<'_> {
    fn new(name: &str, old_ns: u64, new_ns: u64, bound: f64) -> Delta<'_> {
        let ratio = new_ns as f64 / old_ns.max(1) as f64;
        Delta {
            name,
            old_ns,
            new_ns,
            ratio,
            ok: ratio <= bound,
        }
    }
}

/// Print the comparison table to stderr, mirror it as markdown into
/// `$GITHUB_STEP_SUMMARY` when CI provides one, and collect failures.
fn report_deltas(
    title: &str,
    metric: &str,
    old_label: &str,
    new_label: &str,
    bound: f64,
    deltas: &[Delta<'_>],
) -> Result<(), Vec<String>> {
    let mut failures = Vec::new();
    for d in deltas {
        let verdict = if d.ok { "ok" } else { "FAIL" };
        eprintln!(
            "{:>12}: {:>9} ns -> {:>9} ns  ({:>5.2}x)  {verdict}",
            d.name, d.old_ns, d.new_ns, d.ratio
        );
        if !d.ok {
            failures.push(format!(
                "family '{}': {metric} {} ns vs {} {} ns (+{} ns, {:.2}x > {bound}x)",
                d.name,
                d.new_ns,
                old_label,
                d.old_ns,
                d.new_ns.saturating_sub(d.old_ns),
                d.ratio
            ));
        }
    }
    if let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") {
        let mut md = format!(
            "### {title}\n\n| family | {old_label} (ns) | {new_label} (ns) | ratio | ≤ {bound}x |\n\
             |---|---:|---:|---:|:---:|\n"
        );
        for d in deltas {
            md.push_str(&format!(
                "| {} | {} | {} | {:.2}x | {} |\n",
                d.name,
                d.old_ns,
                d.new_ns,
                d.ratio,
                if d.ok { "✅" } else { "❌" }
            ));
        }
        md.push('\n');
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(&summary) {
            let _ = f.write_all(md.as_bytes());
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

/// Compare fresh medians against the committed baseline. Families
/// missing from the baseline (newly added) are skipped with a note —
/// they gain a bound once the baseline is regenerated.
fn check_against_baseline(
    path: &Path,
    names: &[&str],
    stats: &[mlv_core::bench::Stats],
) -> Result<(), Vec<String>> {
    let doc = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("no baseline at {} ({e}); nothing to check", path.display());
            return Ok(());
        }
    };
    let mut deltas = Vec::new();
    for (name, s) in names.iter().zip(stats) {
        let Some(old) = baseline_median(&doc, name) else {
            eprintln!("note: '{name}' absent from baseline; skipped");
            continue;
        };
        deltas.push(Delta::new(name, old, s.median_ns, REGRESSION_BOUND));
    }
    report_deltas(
        "Realization medians vs. committed baseline",
        "median",
        "baseline",
        "this run",
        REGRESSION_BOUND,
        &deltas,
    )
}

/// Same-run relative mode: the steady-state pooled loop must not be
/// slower than fresh allocation beyond [`SELF_BOUND`]. Both timings
/// come from this run on this machine, so no baseline file (and no
/// machine-speed assumption) is involved.
fn check_against_self(
    names: &[&str],
    pooled: &[mlv_core::bench::Stats],
    fresh: &[mlv_core::bench::Stats],
) -> Result<(), Vec<String>> {
    let deltas: Vec<Delta> = names
        .iter()
        .zip(pooled.iter().zip(fresh))
        .map(|(name, (p, f))| Delta::new(name, f.min_ns, p.min_ns, SELF_BOUND))
        .collect();
    report_deltas(
        "Pooled (realize + recycle) vs. fresh-allocation fastest samples, same run",
        "min",
        "fresh-alloc",
        "pooled",
        SELF_BOUND,
        &deltas,
    )
}

/// Extract `"median_ns":N` for `"family":"name"` from the baseline
/// document (one result object per line — the format this bench
/// itself writes; no JSON parser in the zero-dependency workspace).
fn baseline_median(doc: &str, name: &str) -> Option<u64> {
    let family_tag = format!("\"family\":\"{name}\"");
    let line = doc.lines().find(|l| l.contains(&family_tag))?;
    let tail = line.split("\"median_ns\":").nth(1)?;
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}
