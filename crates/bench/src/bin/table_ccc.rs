//! Experiment T-ccc (paper §5.2): cube-connected cycles and reduced
//! hypercubes as hypercube PN clusters.
//!
//! Paper: area `16N²/(9L²·log₂²N)` for both (the hypercube links
//! dominate; the cycles/clusters ride inside the blocks).

use mlv_bench::{f, measure, ratio, Table};
use mlv_formulas::predictions::ccc as predict;
use mlv_layout::families;

fn main() {
    let mut t = Table::new(
        "T-ccc: CCC and reduced hypercube layouts vs paper leading terms",
        &[
            "family",
            "N",
            "L",
            "area",
            "paper area",
            "a-ratio",
            "max wire",
            "volume",
            "v-ratio",
        ],
    );
    let cases: Vec<(String, mlv_layout::families::Family)> = vec![
        ("CCC(3)".into(), families::ccc(3)),
        ("CCC(4)".into(), families::ccc(4)),
        ("CCC(5)".into(), families::ccc(5)),
        ("CCC(6)".into(), families::ccc(6)),
        ("RH(2,2)".into(), families::reduced_hypercube(4)),
        ("RH(3,3)".into(), families::reduced_hypercube(8)),
    ];
    for (label, fam) in &cases {
        let nn = fam.graph.node_count();
        for layers in [2usize, 4, 8] {
            let m = measure(fam, layers, false);
            let p = predict(nn, layers);
            t.row(vec![
                label.clone(),
                nn.to_string(),
                layers.to_string(),
                m.metrics.area.to_string(),
                f(p.area),
                ratio(m.metrics.area as f64, p.area),
                m.metrics.max_wire_planar.to_string(),
                m.metrics.volume.to_string(),
                ratio(m.metrics.volume as f64, p.volume),
            ]);
        }
    }
    t.print();

    // CCC vs same-cube-dimension hypercube: the constant-degree CCC pays
    // only a polylog more area than its quotient hypercube
    let mut t = Table::new(
        "T-ccc: CCC vs its quotient hypercube (area overhead of the cycles)",
        &[
            "n",
            "CCC N",
            "cube N",
            "L",
            "CCC area",
            "cube area",
            "overhead",
        ],
    );
    for n in [4usize, 5, 6] {
        let c = families::ccc(n);
        let h = families::hypercube(n);
        for layers in [2usize, 4] {
            let mc = measure(&c, layers, false);
            let mh = measure(&h, layers, false);
            t.row(vec![
                n.to_string(),
                c.graph.node_count().to_string(),
                h.graph.node_count().to_string(),
                layers.to_string(),
                mc.metrics.area.to_string(),
                mh.metrics.area.to_string(),
                ratio(mc.metrics.area as f64, mh.metrics.area as f64),
            ]);
        }
    }
    t.print();
    println!(
        "\nShape check: CCC area ~ its quotient hypercube's (N^2/lg^2 N scaling, small\n\
         constant overhead for the cycles), matching 16N^2/(9 L^2 lg^2 N)."
    );
}
