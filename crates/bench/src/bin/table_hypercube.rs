//! Experiment T-hcube (paper §5.1): hypercube collinear tracks and
//! L-layer layouts.
//!
//! Paper: `⌊2N/3⌋` collinear tracks; area `16N²/(9L²)`; volume
//! `16N²/(9L)` (volume = L·area by §2.2 — §5.1's printed `9L²` is a
//! typo); max wire `2N/(3L)`.

use mlv_bench::{f, measure, ratio, Table};
use mlv_collinear::hypercube::{hypercube_collinear, hypercube_track_count};
use mlv_formulas::predictions::hypercube as predict;
use mlv_layout::families;

fn main() {
    let mut t = Table::new(
        "T-hcube (a): collinear track counts = floor(2N/3)",
        &["n", "N", "constructed", "paper", "load lower bound"],
    );
    for n in 1..=10usize {
        let l = hypercube_collinear(n);
        l.assert_valid();
        t.row(vec![
            n.to_string(),
            (1usize << n).to_string(),
            l.tracks().to_string(),
            hypercube_track_count(n).to_string(),
            l.max_load().to_string(),
        ]);
    }
    t.print();

    let mut t = Table::new(
        "T-hcube (b): L-layer layouts vs paper leading terms",
        &[
            "n",
            "N",
            "L",
            "area",
            "paper area",
            "a-ratio",
            "max wire",
            "paper wire",
            "w-ratio",
            "used layers",
        ],
    );
    for n in [6usize, 8, 10] {
        let fam = families::hypercube(n);
        for layers in [2usize, 4, 6, 8] {
            let m = measure(&fam, layers, false);
            let p = predict(1 << n, layers);
            t.row(vec![
                n.to_string(),
                (1usize << n).to_string(),
                layers.to_string(),
                m.metrics.area.to_string(),
                f(p.area),
                ratio(m.metrics.area as f64, p.area),
                m.metrics.max_wire_planar.to_string(),
                f(p.max_wire.unwrap()),
                ratio(m.metrics.max_wire_planar as f64, p.max_wire.unwrap()),
                (m.metrics.max_used_layer + 1).to_string(),
            ]);
        }
    }
    t.print();

    // odd vs even L: odd leaves a layer unused (paper's L^2 - 1)
    let mut t = Table::new(
        "T-hcube (c): odd L pairs with L-1 (paper's L^2-1 denominators)",
        &["n", "L", "area", "area at L-1"],
    );
    let fam = families::hypercube(8);
    for layers in [3usize, 5, 7, 9] {
        let odd = measure(&fam, layers, false);
        let even = measure(&fam, layers - 1, false);
        t.row(vec![
            "8".into(),
            layers.to_string(),
            odd.metrics.area.to_string(),
            even.metrics.area.to_string(),
        ]);
    }
    t.print();

    // split ablation: the paper's balanced digit split is area-optimal
    let mut t = Table::new(
        "T-hcube (d): split-point ablation at n = 8, L = 4",
        &["split (cols+rows)", "width", "height", "area"],
    );
    for lo in [1usize, 2, 3, 4, 5, 6] {
        let fam = families::hypercube_with_split(8, lo);
        let m = measure(&fam, 4, false);
        t.row(vec![
            format!("{lo}+{}", 8 - lo),
            m.metrics.width.to_string(),
            m.metrics.height.to_string(),
            m.metrics.area.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nShape check: tracks are exactly floor(2N/3) and equal the order's load bound;\n\
         area tracks 16N^2/9L^2 (ratio shrinking toward 1 with N); odd L = even L-1;\n\
         the balanced 4+4 split minimizes the area (the paper's ceil/floor choice)."
    );
}
