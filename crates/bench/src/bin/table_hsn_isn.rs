//! Experiment T-hsn (paper §4.3): hierarchical swap networks, HHNs, and
//! indirect swap networks.
//!
//! Paper: HSN area `N²/(4L²)`, volume `N²/(4L)`, max wire `N/(2L)`,
//! routed-path `N/L`; HHN identical; ISN ≈ butterfly/4 in area and
//! butterfly/2 in wire length.

use mlv_bench::{f, measure, measure_unchecked, ratio, Table};
use mlv_formulas::predictions::{butterfly as predict_bf, hsn as predict_hsn};
use mlv_layout::families;

fn main() {
    let mut t = Table::new(
        "T-hsn (a): HSN / HHN layouts vs paper leading terms",
        &[
            "family",
            "N",
            "L",
            "area",
            "paper area",
            "a-ratio",
            "max wire",
            "w-ratio",
            "routed",
            "r-ratio",
        ],
    );
    let cases: Vec<(String, mlv_layout::families::Family)> = vec![
        ("HSN(2,K8)".into(), families::hsn(2, 8)),
        ("HSN(2,K12)".into(), families::hsn(2, 12)),
        ("HSN(3,K5)".into(), families::hsn(3, 5)),
        ("HSN(3,K8)".into(), families::hsn(3, 8)),
        ("HSN(3,K16)".into(), families::hsn(3, 16)),
        ("HSN(4,K8)".into(), families::hsn(4, 8)),
        ("HHN(2,3)".into(), families::hhn(2, 3)),
        ("HHN(3,2)".into(), families::hhn(3, 2)),
        ("HHN(3,3)".into(), families::hhn(3, 3)),
    ];
    for (label, fam) in &cases {
        let nn = fam.graph.node_count();
        for layers in [2usize, 4, 8] {
            let m = if nn <= 640 {
                measure(fam, layers, nn <= 256)
            } else {
                measure_unchecked(fam, layers)
            };
            let p = predict_hsn(nn, layers);
            t.row(vec![
                label.clone(),
                nn.to_string(),
                layers.to_string(),
                m.metrics.area.to_string(),
                f(p.area),
                ratio(m.metrics.area as f64, p.area),
                m.metrics.max_wire_planar.to_string(),
                ratio(m.metrics.max_wire_planar as f64, p.max_wire.unwrap()),
                m.routed.map(|x| x.to_string()).unwrap_or("-".into()),
                m.routed
                    .map(|x| ratio(x as f64, p.max_routed.unwrap()))
                    .unwrap_or("-".into()),
            ]);
        }
    }
    t.print();

    let mut t = Table::new(
        "T-hsn (b): ISN vs similar-size butterfly (paper: area/4, wire/2)",
        &[
            "pair",
            "ISN N",
            "BF N",
            "L",
            "ISN area",
            "BF area",
            "area ratio",
            "ISN wire",
            "BF wire",
            "wire ratio",
        ],
    );
    // similar sizes: ISN(2,4)=32 vs BF(3)=24; ISN(2,6)=72 vs BF(4)=64;
    // ISN(3,4)=192 vs BF(5)=160; ISN(3,8)=1536 vs BF(9)=4608
    for (lv, r, m) in [(2usize, 4usize, 3usize), (2, 6, 4), (3, 4, 5), (3, 8, 9)] {
        let isn = families::isn(lv, r);
        let bf = families::butterfly(m);
        for layers in [2usize, 4] {
            let small = isn.graph.node_count().max(bf.graph.node_count()) <= 640;
            let (mi, mb) = if small {
                (measure(&isn, layers, false), measure(&bf, layers, false))
            } else {
                (
                    measure_unchecked(&isn, layers),
                    measure_unchecked(&bf, layers),
                )
            };
            t.row(vec![
                format!("ISN({lv},{r}) / BF({m})"),
                isn.graph.node_count().to_string(),
                bf.graph.node_count().to_string(),
                layers.to_string(),
                mi.metrics.area.to_string(),
                mb.metrics.area.to_string(),
                ratio(mb.metrics.area as f64, mi.metrics.area as f64),
                mi.metrics.max_wire_planar.to_string(),
                mb.metrics.max_wire_planar.to_string(),
                ratio(
                    mb.metrics.max_wire_planar as f64,
                    mi.metrics.max_wire_planar as f64,
                ),
            ]);
        }
    }
    t.print();

    // predicted ISN-vs-butterfly ratios at equal N, for reference
    let p_bf = predict_bf(4096, 4);
    let p_isn = mlv_formulas::predictions::isn(4096, 4);
    println!(
        "\npaper at equal N: BF/ISN area = {:.1}, wire = {:.1}",
        p_bf.area / p_isn.area,
        p_bf.max_wire.unwrap() / p_isn.max_wire.unwrap()
    );
    println!(
        "Shape check: HSN/HHN area and wire ratios fall steadily toward the paper's\n\
         leading constants as N and the level count grow (wire ratio is already < 3x at\n\
         HSN(4,K8)). The ISN-vs-butterfly comparison does NOT reproduce the paper's 4x\n\
         area / 2x wire advantage at feasible sizes: our ISN reconstruction (ref [35]\n\
         unavailable) carries an extra K_r nucleus stage per cluster for connectivity\n\
         and pays wider cluster blocks; see EXPERIMENTS.md for the full discussion."
    );
}
