//! Cayley-family table (paper §1, §4.3: the multilayer techniques
//! "are still true" for star graphs, transposition networks, pancake
//! graphs, bubble-sort graphs, and SCC — constructions deferred to
//! future work). We lay them out with the generic recursive-grid
//! scheme and report the same figures of merit, plus the collinear
//! order-search ablation.

use mlv_bench::{f, measure, ratio, Table};
use mlv_collinear::generic::{best_order_collinear, bfs_order, generic_collinear, improve_order};
use mlv_layout::families::{self, Family};
use mlv_topology::Graph;

fn main() {
    let cases: Vec<(String, Family)> = vec![
        ("star(4)".into(), families::star(4)),
        ("star(5)".into(), families::star(5)),
        ("pancake(4)".into(), families::pancake(4)),
        ("pancake(5)".into(), families::pancake(5)),
        ("bubble-sort(5)".into(), families::bubble_sort(5)),
        ("transposition(4)".into(), families::transposition(4)),
        ("SCC(4)".into(), families::scc(4)),
        ("MS(2,2)".into(), families::macro_star(2, 2)),
    ];

    let mut t = Table::new(
        "Cayley families: multilayer layouts via the generic scheme",
        &["family", "N", "deg", "L", "area", "max wire", "L2/L gain"],
    );
    for (label, fam) in &cases {
        let a2 = measure(fam, 2, false).metrics.area;
        for layers in [2usize, 4, 8] {
            let m = measure(fam, layers, false);
            t.row(vec![
                label.clone(),
                fam.graph.node_count().to_string(),
                fam.graph.max_degree().to_string(),
                layers.to_string(),
                m.metrics.area.to_string(),
                m.metrics.max_wire_planar.to_string(),
                f(a2 as f64 / m.metrics.area as f64),
            ]);
        }
    }
    t.print();

    // collinear order-search ablation: natural vs BFS vs best-of-16
    let mut t = Table::new(
        "Collinear order search (tracks; lower is better)",
        &[
            "family",
            "natural",
            "BFS order",
            "best of 16 random",
            "BFS + local search",
        ],
    );
    let tracks_for = |g: &Graph| -> (usize, usize, usize, usize) {
        let n = g.node_count() as u32;
        let natural = generic_collinear(g, &(0..n).collect::<Vec<_>>()).tracks();
        let bfs_o = bfs_order(g);
        let bfs = generic_collinear(g, &bfs_o).tracks();
        let best = best_order_collinear(g, 16, 2026).tracks();
        let improved = generic_collinear(g, &improve_order(g, &bfs_o, 6, 7)).tracks();
        (natural, bfs, best, improved)
    };
    for (label, fam) in &cases {
        let (nat, bfs, best, improved) = tracks_for(&fam.graph);
        t.row(vec![
            label.clone(),
            nat.to_string(),
            bfs.to_string(),
            best.to_string(),
            improved.to_string(),
        ]);
    }
    t.print();

    // sanity: generic scheme on a known family vs its dedicated layout
    let mut t = Table::new(
        "Generic scheme overhead vs dedicated construction (L = 4)",
        &["family", "generic area", "dedicated area", "overhead"],
    );
    for (label, generic_fam, dedicated) in [
        (
            "6-cube",
            families::generic(mlv_topology::hypercube::hypercube(6)),
            families::hypercube(6),
        ),
        (
            "6-ary 2-cube",
            families::generic(mlv_topology::karyn::KaryNCube::torus(6, 2).graph),
            families::karyn_cube(6, 2, false),
        ),
    ] {
        let mg = measure(&generic_fam, 4, false);
        let md = measure(&dedicated, 4, false);
        t.row(vec![
            label.to_string(),
            mg.metrics.area.to_string(),
            md.metrics.area.to_string(),
            ratio(mg.metrics.area as f64, md.metrics.area as f64),
        ]);
    }
    t.print();
    println!(
        "\nShape check: the multilayer gains carry over to the permutation families\n\
         (L2 -> L8 area gains > 1 everywhere); BFS orders beat random restarts on\n\
         these structured graphs; and on product families the generic scheme with\n\
         the natural placement exactly matches the dedicated constructions — greedy\n\
         interval colouring is optimal per order, so only the *order* matters."
    );
}
