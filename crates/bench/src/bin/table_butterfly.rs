//! Experiment T-bfly (paper §4.2): butterfly networks as PN clusters.
//!
//! Paper: area `4N²/(L²·log₂²N)`, volume `4N²/(L·log₂²N)`, max wire
//! `2N/(L·log₂N)`. Our reconstruction clusters each of the `R = 2^m`
//! rows (m nodes each) and lays the quotient m-cube grid out with the
//! recursive grid scheme; the measured constant is reported against the
//! paper's 4.

use mlv_bench::{f, measure, measure_unchecked, ratio, Table};
use mlv_formulas::predictions::butterfly as predict;
use mlv_layout::families;

fn main() {
    let mut t = Table::new(
        "T-bfly: wrapped butterfly layouts vs paper leading terms",
        &[
            "m",
            "N",
            "L",
            "area",
            "paper area",
            "a-ratio",
            "max wire",
            "paper wire",
            "w-ratio",
            "checked",
        ],
    );
    for m in [3usize, 4, 5, 6, 8, 10] {
        let fam = families::butterfly(m);
        let nn = m << m;
        let checked = m <= 6;
        for layers in [2usize, 4, 8] {
            let meas = if checked {
                measure(&fam, layers, false)
            } else {
                measure_unchecked(&fam, layers)
            };
            let p = predict(nn, layers);
            t.row(vec![
                m.to_string(),
                nn.to_string(),
                layers.to_string(),
                meas.metrics.area.to_string(),
                f(p.area),
                ratio(meas.metrics.area as f64, p.area),
                meas.metrics.max_wire_planar.to_string(),
                f(p.max_wire.unwrap()),
                ratio(meas.metrics.max_wire_planar as f64, p.max_wire.unwrap()),
                if checked { "yes" } else { "spec" }.into(),
            ]);
        }
    }
    t.print();

    // area scaling in L at fixed m: ratio between successive L should
    // approach 4 (the L^2/4 gain per doubling) as wiring dominates the
    // fixed node footprints
    let mut t = Table::new(
        "T-bfly: area gain per L doubling (paper: -> 4 as wiring dominates)",
        &["m", "L2/L4 gain", "L4/L8 gain"],
    );
    for m in [4usize, 6, 8, 10, 12] {
        let fam = families::butterfly(m);
        let a2 = measure_unchecked(&fam, 2).metrics.area as f64;
        let a4 = measure_unchecked(&fam, 4).metrics.area as f64;
        let a8 = measure_unchecked(&fam, 8).metrics.area as f64;
        t.row(vec![m.to_string(), f(a2 / a4), f(a4 / a8)]);
    }
    t.print();

    // ablation over the paper's cluster radix r = 2^b: clusters of r
    // rows; b = 1 is the paper's "4 links per neighbouring pair"
    let mut t = Table::new(
        "T-bfly: cluster-radix ablation at m = 8 (paper's free parameter r = 2^b)",
        &["b", "r", "clusters", "L", "area", "max wire"],
    );
    for b in [0usize, 1, 2, 3] {
        let fam = families::butterfly_clustered(8, b);
        for layers in [2usize, 4] {
            let meas = measure_unchecked(&fam, layers);
            t.row(vec![
                b.to_string(),
                (1usize << b).to_string(),
                (1usize << (8 - b)).to_string(),
                layers.to_string(),
                meas.metrics.area.to_string(),
                meas.metrics.max_wire_planar.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\nShape check: area scales as N^2/(L^2 lg^2 N) — the measured/paper ratio\n\
         falls steadily with m; L-doubling gains rise toward 4 as the per-gap track\n\
         budget outgrows the constant node footprints; the cluster radix trades\n\
         block width against inter-cluster bundles."
    );
}
