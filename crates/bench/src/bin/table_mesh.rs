//! Mesh extension table (paper §3.2: "easily extended to general
//! meshes and tori"): the k-ary n-mesh drops the wraparound links,
//! halving every dimension's track count — area should approach a
//! quarter of the torus'.

use mlv_bench::{f, measure, ratio, Table};
use mlv_collinear::mesh::{mesh_collinear, mesh_track_count};
use mlv_formulas::predictions::karyn_mesh as predict;
use mlv_layout::families;

fn main() {
    let mut t = Table::new(
        "Mesh collinear track counts g_k(n) = (k^n - 1)/(k - 1)",
        &["k", "n", "constructed", "formula", "torus tracks"],
    );
    for (k, n) in [(3usize, 2usize), (4, 2), (4, 3), (5, 2), (8, 2)] {
        let l = mesh_collinear(k, n);
        l.assert_valid();
        t.row(vec![
            k.to_string(),
            n.to_string(),
            l.tracks().to_string(),
            mesh_track_count(k, n).to_string(),
            mlv_collinear::karyn::kary_track_count(k, n).to_string(),
        ]);
    }
    t.print();

    let mut t = Table::new(
        "Mesh vs torus layouts (paper: mesh area -> torus/4)",
        &[
            "k",
            "n",
            "L",
            "mesh area",
            "torus area",
            "mesh/torus",
            "paper ratio",
            "a-ratio vs 4N^2/(L^2 k^2)",
        ],
    );
    for (k, n) in [(6usize, 2usize), (8, 2), (4, 4), (6, 4)] {
        let mesh = families::karyn_mesh(k, n);
        let torus = families::karyn_cube(k, n, false);
        for layers in [2usize, 4] {
            let mm = measure(&mesh, layers, false);
            let mt = measure(&torus, layers, false);
            let p = predict(k, n, layers);
            t.row(vec![
                k.to_string(),
                n.to_string(),
                layers.to_string(),
                mm.metrics.area.to_string(),
                mt.metrics.area.to_string(),
                f(mm.metrics.area as f64 / mt.metrics.area as f64),
                "0.25".into(),
                ratio(mm.metrics.area as f64, p.area),
            ]);
        }
    }
    t.print();
    println!(
        "\nShape check: mesh/torus area heads to 1/4 as tracks dominate the node\n\
         footprints (footprints don't halve, so small instances sit above 0.25)."
    );
}
