//! Experiment T-fold (paper §5.3): folded hypercubes and enhanced
//! cubes.
//!
//! Paper: the N/2 diameter links of a folded hypercube need at most N/2
//! extra tracks each way, giving side `7N/(3L)` and area `49N²/(9L²)`;
//! the enhanced cube's N random links give side `10N/(3L)` and area
//! `100N²/(9L²)`. The paper notes some links can share tracks, so the
//! measured constants sit *below* 49/9 and 100/9.

use mlv_bench::{f, measure, ratio, Table};
use mlv_formulas::predictions::{
    enhanced_cube as predict_ec, folded_hypercube as predict_fh, hypercube as predict_h,
};
use mlv_layout::families;

fn main() {
    let mut t = Table::new(
        "T-fold: folded hypercube / enhanced cube vs paper leading terms",
        &[
            "family",
            "N",
            "L",
            "area",
            "paper area",
            "a-ratio",
            "vs plain cube",
            "paper vs plain",
        ],
    );
    for n in [6usize, 8] {
        let nn = 1usize << n;
        let plain = families::hypercube(n);
        let folded = families::folded_hypercube(n);
        let enhanced = families::enhanced_cube(n, 2026);
        for layers in [2usize, 4, 8] {
            let mp = measure(&plain, layers, false);
            let mf = measure(&folded, layers, false);
            let me = measure(&enhanced, layers, false);
            let (pf, pe, ph) = (
                predict_fh(nn, layers),
                predict_ec(nn, layers),
                predict_h(nn, layers),
            );
            t.row(vec![
                format!("folded {n}-cube"),
                nn.to_string(),
                layers.to_string(),
                mf.metrics.area.to_string(),
                f(pf.area),
                ratio(mf.metrics.area as f64, pf.area),
                ratio(mf.metrics.area as f64, mp.metrics.area as f64),
                f(pf.area / ph.area),
            ]);
            t.row(vec![
                format!("enhanced {n}-cube"),
                nn.to_string(),
                layers.to_string(),
                me.metrics.area.to_string(),
                f(pe.area),
                ratio(me.metrics.area as f64, pe.area),
                ratio(me.metrics.area as f64, mp.metrics.area as f64),
                f(pe.area / ph.area),
            ]);
        }
    }
    t.print();

    // determinism of the enhanced cube across seeds: different seeds,
    // same asymptotics
    let mut t = Table::new(
        "T-fold: enhanced cube across random seeds (L=4)",
        &["seed", "area", "max wire"],
    );
    for seed in [1u64, 42, 2026] {
        let m = measure(&families::enhanced_cube(7, seed), 4, false);
        t.row(vec![
            seed.to_string(),
            m.metrics.area.to_string(),
            m.metrics.max_wire_planar.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nShape check: folded costs a small constant more than the plain cube\n\
         (paper bound 49/16) and enhanced a bit more (paper bound 100/16); measured\n\
         constants are below the bounds because extra links share tracks."
    );
}
