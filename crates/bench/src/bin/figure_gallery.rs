//! Figures F1–F4: regenerate the paper's construction figures as ASCII
//! diagrams from the actual constructions.
//!
//! * F1 — recursive grid scheme block arrangement (paper Fig. 1)
//! * F2 — collinear 3-ary 2-cube, 8 tracks (paper Fig. 2)
//! * F3 — collinear K₉, 20 tracks (paper Fig. 3)
//! * F4 — collinear 4-cube in Gray order, 10 tracks (paper Fig. 4)
//!
//! Run with an argument (`f1`…`f4`, `layout`) to print a single figure;
//! no argument prints all.

use mlv_collinear::complete::complete_collinear;
use mlv_collinear::hypercube::hypercube_collinear;
use mlv_collinear::karyn::kary_collinear;
use mlv_collinear::render::render_tracks;
use mlv_grid::render::{render_block_grid, render_layer, render_top};
use mlv_layout::families;
use mlv_layout::scheme::figure1_labels;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    let all = arg.is_empty();

    if all || arg == "f1" {
        println!("--- Figure 1: recursive grid scheme, level-l blocks as a 2-D grid ---");
        println!("{}", render_block_grid(&figure1_labels(3, 4), 7, 3));
    }
    if all || arg == "f2" {
        let l = kary_collinear(3, 2);
        println!(
            "--- Figure 2: collinear 3-ary 2-cube ({} tracks) ---",
            l.tracks()
        );
        println!("{}", render_tracks(&l, None));
    }
    if all || arg == "f3" {
        let l = complete_collinear(9);
        println!(
            "--- Figure 3: collinear 9-node complete graph ({} tracks) ---",
            l.tracks()
        );
        println!("{}", render_tracks(&l, None));
    }
    if all || arg == "f4" {
        let l = hypercube_collinear(4);
        println!(
            "--- Figure 4: collinear 4-cube, Gray order ({} tracks) ---",
            l.tracks()
        );
        println!("{}", render_tracks(&l, None));
    }
    if all || arg == "layout" {
        // bonus: a full realized multilayer layout, top view + per layer
        let fam = families::hypercube(3);
        let layout = fam.realize(4);
        println!("--- Bonus: realized 3-cube layout at L=4, top view ---");
        println!("{}", render_top(&layout));
        for z in 0..4 {
            println!("--- layer z={z} ---");
            println!("{}", render_layer(&layout, z));
        }
    }
}
