//! # mlv-bench
//!
//! The evaluation harness: everything needed to regenerate the paper's
//! tables and figures from *measured*, checker-verified layouts.
//!
//! Each `src/bin/table_*.rs` binary reproduces one experiment of the
//! index in `DESIGN.md` (and `EXPERIMENTS.md` records the outcomes);
//! the `mlv_core::bench` micro-benches in `benches/` measure
//! construction and checking throughput. This library holds the shared plumbing:
//! measuring a family at a layer count, formatting comparison tables,
//! and the measured-vs-predicted ratio helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mlv_grid::checker;
use mlv_grid::metrics::LayoutMetrics;
use mlv_layout::families::Family;
use mlv_layout::realize::{align_wires, RealizeOptions};
use mlv_topology::properties::GraphProperties;

/// One measured configuration of a family.
#[derive(Clone, Debug)]
pub struct Measured {
    /// Layer count measured at.
    pub layers: usize,
    /// Full layout metrics.
    pub metrics: LayoutMetrics,
    /// Maximum total wire length along a shortest routing path
    /// (paper §1 claim 4); `None` for disconnected graphs or when
    /// skipped for size.
    pub routed: Option<u64>,
}

/// Realize a family at `layers`, assert full legality against the
/// reference graph, and collect metrics. `with_routed` additionally
/// computes the all-pairs routed-path metric (quadratic in N — keep to
/// small instances).
pub fn measure(family: &Family, layers: usize, with_routed: bool) -> Measured {
    let mut layout = family.realize(layers);
    checker::assert_legal(&layout, Some(&family.graph));
    let metrics = LayoutMetrics::of(&layout);
    let routed = if with_routed && family.graph.is_connected() {
        align_wires(&mut layout, &family.graph);
        LayoutMetrics::max_routed_path(&layout, &family.graph)
    } else {
        None
    };
    Measured {
        layers,
        metrics,
        routed,
    }
}

/// Like [`measure`] but skipping the (quadratic-ish) grid legality
/// check: the spec is still validated structurally and the wire
/// multiset is still verified against the graph, but point-disjointness
/// is not re-proved. Use for large-N rows whose constructions are
/// exercised by the checker at smaller sizes.
pub fn measure_unchecked(family: &Family, layers: usize) -> Measured {
    let layout = family.realize(layers);
    assert_eq!(
        layout.wire_multiset(),
        family.graph.edge_multiset(),
        "layout does not realize the graph"
    );
    Measured {
        layers,
        metrics: LayoutMetrics::of(&layout),
        routed: None,
    }
}

/// Like [`measure`] but with explicit realize options (node-size
/// scalability sweeps).
pub fn measure_with(family: &Family, opts: &RealizeOptions, with_routed: bool) -> Measured {
    let mut layout = family.realize_with(opts);
    checker::assert_legal(&layout, Some(&family.graph));
    let metrics = LayoutMetrics::of(&layout);
    let routed = if with_routed && family.graph.is_connected() {
        align_wires(&mut layout, &family.graph);
        LayoutMetrics::max_routed_path(&layout, &family.graph)
    } else {
        None
    };
    Measured {
        layers: opts.layers,
        metrics,
        routed,
    }
}

/// A plain-text table printer (fixed-width columns, Markdown-ish).
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:>width$} | ", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a measured/predicted ratio.
pub fn ratio(measured: f64, predicted: f64) -> String {
    if predicted == 0.0 {
        "-".to_string()
    } else {
        format!("{:.3}", measured / predicted)
    }
}

/// Format a float compactly.
pub fn f(x: f64) -> String {
    if x >= 1000.0 {
        format!("{:.3e}", x)
    } else {
        format!("{:.1}", x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlv_layout::families;

    #[test]
    fn measure_runs_and_checks() {
        let fam = families::hypercube(4);
        let m = measure(&fam, 4, true);
        assert!(m.metrics.area > 0);
        assert!(m.routed.unwrap() > 0);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("| 1 |"));
    }

    #[test]
    #[should_panic]
    fn table_rejects_bad_row() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(3.0, 2.0), "1.500");
        assert_eq!(ratio(1.0, 0.0), "-");
    }
}
