//! Complete graphs.
//!
//! K_N is the 1-dimensional radix-N generalized hypercube and the
//! per-dimension connector of every generalized-hypercube construction.
//! The paper (Fig. 3, §4.1) uses the strictly optimal `⌊N²/4⌋`-track
//! collinear layout of K_N from Yeh & Parhami, IPL 1998.

use crate::builder::GraphBuilder;
use crate::graph::Graph;

/// Build the complete graph on `n` nodes.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(format!("K{n}"), n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i as u32, j as u32);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::GraphProperties;

    #[test]
    fn edge_count_is_binomial() {
        for n in 0..12 {
            assert_eq!(complete(n).edge_count(), n * n.saturating_sub(1) / 2);
        }
    }

    #[test]
    fn regular_and_diameter_one() {
        let g = complete(7);
        assert_eq!(g.regular_degree(), Some(6));
        assert_eq!(g.diameter(), Some(1));
        assert!(g.is_connected());
    }

    #[test]
    fn all_pairs_adjacent() {
        let g = complete(6);
        for u in 0..6u32 {
            for v in 0..6u32 {
                if u != v {
                    assert!(g.has_edge(u, v));
                }
            }
        }
    }
}
