//! Structural properties: connectivity, eccentricity, diameter, average
//! distance, and bisection-width estimates.
//!
//! The bisection width drives the paper's lower bounds ("optimal within a
//! small constant factor"): a layout under the Thompson model needs area
//! `Ω(B²)` and under the L-layer grid model `Ω((B/L)²)`. Exact minimum
//! bisection is NP-hard, so we provide (a) exact brute force for tiny
//! graphs, (b) the standard *left/right half* cut along the node
//! numbering, which is the optimum for the families here with their
//! natural labelings, and (c) known closed forms in `mlv-formulas`.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Extension trait with structural queries on [`Graph`].
pub trait GraphProperties {
    /// `true` if the graph is connected (vacuously true when empty).
    fn is_connected(&self) -> bool;
    /// BFS distances from `src` (`u32::MAX` for unreachable nodes).
    fn bfs_distances(&self, src: NodeId) -> Vec<u32>;
    /// Longest shortest-path distance, or `None` if disconnected/empty.
    fn diameter(&self) -> Option<usize>;
    /// Average pairwise distance (ordered pairs), `None` if disconnected
    /// or fewer than 2 nodes.
    fn average_distance(&self) -> Option<f64>;
    /// Number of edges crossing the cut `{0..n/2} | {n/2..n}` along the
    /// node numbering. For all the paper's families with their natural
    /// labelings this equals (or tightly upper-bounds) the bisection
    /// width.
    fn numbering_cut_width(&self) -> usize;
    /// Exact minimum bisection width by exhaustive search; only feasible
    /// for `n <= ~20`. Returns `None` if `n` is odd-sized infeasible
    /// (> `limit` nodes).
    fn exact_bisection(&self, limit: usize) -> Option<usize>;
    /// Number of connected components (0 for the empty graph).
    fn component_count(&self) -> usize;
}

impl GraphProperties for Graph {
    fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let d = self.bfs_distances(0);
        d.iter().all(|&x| x != u32::MAX)
    }

    fn bfs_distances(&self, src: NodeId) -> Vec<u32> {
        let n = self.node_count();
        let mut dist = vec![u32::MAX; n];
        let mut q = VecDeque::new();
        dist[src as usize] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            let du = dist[u as usize];
            for &(v, _) in self.neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    fn diameter(&self) -> Option<usize> {
        let n = self.node_count();
        if n == 0 {
            return None;
        }
        let mut best = 0usize;
        for u in 0..n {
            let d = self.bfs_distances(u as NodeId);
            for &x in &d {
                if x == u32::MAX {
                    return None;
                }
                best = best.max(x as usize);
            }
        }
        Some(best)
    }

    fn average_distance(&self) -> Option<f64> {
        let n = self.node_count();
        if n < 2 {
            return None;
        }
        let mut total = 0u64;
        for u in 0..n {
            let d = self.bfs_distances(u as NodeId);
            for &x in &d {
                if x == u32::MAX {
                    return None;
                }
                total += x as u64;
            }
        }
        Some(total as f64 / (n as f64 * (n as f64 - 1.0)))
    }

    fn numbering_cut_width(&self) -> usize {
        let half = self.node_count() / 2;
        self.edge_ids()
            .filter(|&e| {
                let (u, v) = self.endpoints(e);
                ((u as usize) < half) != ((v as usize) < half)
            })
            .count()
    }

    fn exact_bisection(&self, limit: usize) -> Option<usize> {
        let n = self.node_count();
        if n > limit || n == 0 {
            return None;
        }
        let half = n / 2;
        let mut best = usize::MAX;
        // enumerate subsets of size `half` containing node 0 (WLOG) when
        // n is even; for odd n allow floor/ceil halves with node 0 fixed.
        let full: u64 = if n >= 64 {
            return None;
        } else {
            (1u64 << n) - 1
        };
        for mask in 0..=full {
            if mask & 1 == 0 {
                continue; // fix node 0 on the left to halve the work
            }
            let c = mask.count_ones() as usize;
            if c != half && c != n - half {
                continue;
            }
            let mut cut = 0usize;
            for e in self.edge_ids() {
                let (u, v) = self.endpoints(e);
                if ((mask >> u) & 1) != ((mask >> v) & 1) {
                    cut += 1;
                }
            }
            best = best.min(cut);
        }
        Some(best)
    }

    fn component_count(&self) -> usize {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut count = 0usize;
        let mut stack = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            count += 1;
            seen[s] = true;
            stack.push(s as NodeId);
            while let Some(u) = stack.pop() {
                for &(v, _) in self.neighbors(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        stack.push(v);
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::complete;
    use crate::hypercube::hypercube;
    use crate::karyn::KaryNCube;
    use crate::ring::{path, ring};

    #[test]
    fn ring_cut_and_bisection() {
        let g = ring(8);
        // numbering cut: edges 3-4 and 7-0
        assert_eq!(g.numbering_cut_width(), 2);
        assert_eq!(g.exact_bisection(16), Some(2));
    }

    #[test]
    fn hypercube_bisection_is_half_n() {
        let g = hypercube(3);
        assert_eq!(g.exact_bisection(16), Some(4));
        // the numbering cut (top bit) achieves it
        assert_eq!(g.numbering_cut_width(), 4);
        let g = hypercube(4);
        assert_eq!(g.exact_bisection(16), Some(8));
    }

    #[test]
    fn complete_graph_bisection() {
        let g = complete(6);
        // K6 bisection = 3*3 = 9
        assert_eq!(g.exact_bisection(16), Some(9));
        assert_eq!(g.numbering_cut_width(), 9);
    }

    #[test]
    fn torus_numbering_cut() {
        // 4-ary 2-cube: the halving cut crosses 2 rows of 4 links twice
        // (torus wrap) -> 2 * k = 2*4... verify against exact.
        let t = KaryNCube::torus(4, 2);
        assert_eq!(
            t.graph.exact_bisection(16),
            Some(t.graph.numbering_cut_width())
        );
    }

    #[test]
    fn path_average_distance() {
        let g = path(3); // distances: 0-1:1, 0-2:2, 1-2:1 => avg = 8/6
        let avg = g.average_distance().unwrap();
        assert!((avg - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_detection() {
        use crate::builder::GraphBuilder;
        let mut b = GraphBuilder::new("two islands", 4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build();
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
        assert_eq!(g.average_distance(), None);
    }

    #[test]
    fn bfs_distances_on_ring() {
        let g = ring(6);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn exact_bisection_respects_limit() {
        let g = hypercube(5);
        assert_eq!(g.exact_bisection(16), None);
    }
}
