//! Cube-connected cycles (Preparata & Vuillemin 1981).
//!
//! CCC(n) replaces each node of the n-cube with an n-node cycle; node
//! `(x, p)` (cube address `x`, cycle position `p`) has cycle links to
//! `(x, p±1 mod n)` and one cube link to `(x ⊕ 2^p, p)`. `N = n·2ⁿ`
//! nodes, degree 3 (for `n ≥ 3`). The paper lays it out as a hypercube
//! PN-cluster (§5.2): the quotient over cycles is the n-cube.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};

/// A cube-connected cycles network with its (cube address, position)
/// addressing.
#[derive(Clone, Debug)]
pub struct Ccc {
    /// Cube dimension n (cycle length is also n).
    pub n: usize,
    /// The underlying graph.
    pub graph: Graph,
}

impl Ccc {
    /// Build CCC(n). `n ≥ 1`; for `n ∈ {1, 2}` the "cycles" degenerate to
    /// a point / an edge, matching the usual convention.
    pub fn new(n: usize) -> Self {
        assert!((1..26).contains(&n), "CCC dimension out of range");
        let cube = 1usize << n;
        let mut b = GraphBuilder::new(format!("CCC({n})"), n * cube);
        for x in 0..cube {
            // cycle links within the cluster
            if n == 2 {
                b.add_edge(Self::id_at(x, 0, n), Self::id_at(x, 1, n));
            } else if n >= 3 {
                for p in 0..n {
                    b.add_edge(Self::id_at(x, p, n), Self::id_at(x, (p + 1) % n, n));
                }
            }
            // cube links, generated once from the 0-bit side
            for p in 0..n {
                if x & (1 << p) == 0 {
                    b.add_edge(Self::id_at(x, p, n), Self::id_at(x ^ (1 << p), p, n));
                }
            }
        }
        Ccc {
            n,
            graph: b.build(),
        }
    }

    fn id_at(x: usize, p: usize, n: usize) -> NodeId {
        (x * n + p) as NodeId
    }

    /// Node id of `(cube address, cycle position)`.
    pub fn id(&self, x: usize, p: usize) -> NodeId {
        assert!(x < (1 << self.n) && p < self.n);
        Self::id_at(x, p, self.n)
    }

    /// `(cube address, cycle position)` of a node id.
    pub fn coords(&self, id: NodeId) -> (usize, usize) {
        ((id as usize) / self.n, (id as usize) % self.n)
    }

    /// Total node count `N = n·2ⁿ`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::GraphProperties;

    #[test]
    fn counts() {
        let c = Ccc::new(3);
        assert_eq!(c.node_count(), 24);
        // 3 cycle links per cluster * 8 clusters + cube links 3*8/2 ... cube
        // links: one per (x,p) pair with bit p of x == 0 => n*2^n/2 = 12.
        assert_eq!(c.graph.edge_count(), 8 * 3 + 12);
        assert_eq!(c.graph.regular_degree(), Some(3));
        assert!(c.graph.is_connected());
    }

    #[test]
    fn cube_links_flip_position_bit() {
        let c = Ccc::new(4);
        for e in c.graph.edge_ids() {
            let (u, v) = c.graph.endpoints(e);
            let (xu, pu) = c.coords(u);
            let (xv, pv) = c.coords(v);
            if xu == xv {
                // cycle link
                let d = (pu as i64 - pv as i64).rem_euclid(c.n as i64);
                assert!(d == 1 || d == c.n as i64 - 1);
            } else {
                assert_eq!(pu, pv);
                assert_eq!(xu ^ xv, 1 << pu);
            }
        }
    }

    #[test]
    fn small_n() {
        let c = Ccc::new(1);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.graph.edge_count(), 1);
        let c = Ccc::new(2);
        assert_eq!(c.node_count(), 8);
        assert!(c.graph.is_connected());
    }

    #[test]
    fn diameter_matches_known_value() {
        // Known: diameter of CCC(3) is 6.
        let c = Ccc::new(3);
        assert_eq!(c.graph.diameter(), Some(6));
    }
}
