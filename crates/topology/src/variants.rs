//! Hypercube variants: folded hypercubes, enhanced cubes, and reduced
//! hypercubes (paper §5.2–§5.3).

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use mlv_core::rng::Rng;

/// Folded hypercube (El-Amawy & Latifi / Adams & Siegel \[1\]): the n-cube
/// plus one *diameter link* per node joining each label to its bitwise
/// complement — `N/2` extra links in total.
pub fn folded_hypercube(n: usize) -> Graph {
    assert!((1..31).contains(&n));
    let nn = 1usize << n;
    let mask = nn - 1;
    let mut b = GraphBuilder::new(format!("folded {n}-cube"), nn);
    for i in 0..nn {
        for j in 0..n {
            let v = i ^ (1 << j);
            if v > i {
                b.add_edge(i as u32, v as u32);
            }
        }
        let comp = i ^ mask;
        if comp > i {
            b.add_edge(i as u32, comp as u32);
        }
    }
    b.build()
}

/// Enhanced cube (Varvarigos \[26\]): the n-cube plus one additional
/// outgoing link per node leading to a pseudo-random *other* node — `N`
/// extra (possibly parallel) links. The paper treats the destinations as
/// arbitrary; we draw them from a seeded RNG so layouts are reproducible.
pub fn enhanced_cube(n: usize, seed: u64) -> Graph {
    assert!((1..31).contains(&n));
    let nn = 1usize << n;
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(format!("enhanced {n}-cube"), nn);
    for i in 0..nn {
        for j in 0..n {
            let v = i ^ (1 << j);
            if v > i {
                b.add_edge(i as u32, v as u32);
            }
        }
    }
    for i in 0..nn {
        // random destination different from the source
        let mut dst = rng.gen_range_usize(0..nn - 1);
        if dst >= i {
            dst += 1;
        }
        b.add_edge(i as u32, dst as u32);
    }
    b.build()
}

/// Reduced hypercube RH (Ziavras \[37\]), the `RH(log₂n, log₂n)` family the
/// paper cites: take CCC(n) and replace each n-node cycle by a
/// `log₂n`-dimensional hypercube (requires `n = 2^s`). Node `(x, p)` has
/// intra-cluster links to `(x, p ⊕ 2^t)` for all `t < log₂n` and one cube
/// link to `(x ⊕ 2^p, p)`.
#[derive(Clone, Debug)]
pub struct ReducedHypercube {
    /// Outer cube dimension n (must be a power of two).
    pub n: usize,
    /// The underlying graph (`n·2ⁿ` nodes).
    pub graph: Graph,
}

impl ReducedHypercube {
    /// Build RH for outer dimension `n` (a power of two, `n ≥ 2`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 2 && n.is_power_of_two(), "RH needs n = 2^s, n >= 2");
        assert!(n < 26);
        let s = n.trailing_zeros() as usize;
        let cube = 1usize << n;
        let mut b = GraphBuilder::new(format!("RH({s},{s})"), n * cube);
        for x in 0..cube {
            for p in 0..n {
                // intra-cluster hypercube links among positions
                for t in 0..s {
                    let q = p ^ (1 << t);
                    if q > p {
                        b.add_edge(Self::id_at(x, p, n), Self::id_at(x, q, n));
                    }
                }
                // cube link
                if x & (1 << p) == 0 {
                    b.add_edge(Self::id_at(x, p, n), Self::id_at(x ^ (1 << p), p, n));
                }
            }
        }
        ReducedHypercube {
            n,
            graph: b.build(),
        }
    }

    fn id_at(x: usize, p: usize, n: usize) -> NodeId {
        (x * n + p) as NodeId
    }

    /// Node id of `(cube address, position)`.
    pub fn id(&self, x: usize, p: usize) -> NodeId {
        Self::id_at(x, p, self.n)
    }

    /// `(cube address, position)` of a node id.
    pub fn coords(&self, id: NodeId) -> (usize, usize) {
        ((id as usize) / self.n, (id as usize) % self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::hypercube;
    use crate::properties::GraphProperties;

    #[test]
    fn folded_counts() {
        let g = folded_hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 4 * 16 / 2 + 16 / 2);
        assert_eq!(g.regular_degree(), Some(5));
        assert!(g.is_connected());
    }

    #[test]
    fn folded_diameter_halves() {
        // folded n-cube diameter is ceil(n/2)
        let g = folded_hypercube(4);
        assert_eq!(g.diameter(), Some(2));
        let g = folded_hypercube(5);
        assert_eq!(g.diameter(), Some(3));
    }

    #[test]
    fn folded_contains_hypercube() {
        let f = folded_hypercube(3);
        let h = hypercube(3);
        for e in h.edge_ids() {
            let (u, v) = h.endpoints(e);
            assert!(f.has_edge(u, v));
        }
    }

    #[test]
    fn enhanced_counts_and_determinism() {
        let g1 = enhanced_cube(4, 42);
        let g2 = enhanced_cube(4, 42);
        assert_eq!(g1.edge_multiset(), g2.edge_multiset());
        assert_eq!(g1.edge_count(), 4 * 16 / 2 + 16);
        let g3 = enhanced_cube(4, 7);
        // overwhelmingly likely to differ
        assert_ne!(g1.edge_multiset(), g3.edge_multiset());
    }

    #[test]
    fn enhanced_has_no_self_loops() {
        let g = enhanced_cube(5, 1);
        for e in g.edge_ids() {
            let (u, v) = g.endpoints(e);
            assert_ne!(u, v);
        }
    }

    #[test]
    fn reduced_counts() {
        let r = ReducedHypercube::new(4);
        assert_eq!(r.graph.node_count(), 4 * 16);
        // per cluster: K(log n = 2)-cube on 4 nodes = 4 edges; 16 clusters
        // plus cube links 4*16/2 = 32
        assert_eq!(r.graph.edge_count(), 16 * 4 + 32);
        assert_eq!(r.graph.regular_degree(), Some(3));
        assert!(r.graph.is_connected());
    }

    #[test]
    fn reduced_cluster_is_hypercube() {
        let r = ReducedHypercube::new(4);
        // positions of cluster x=0 form a 2-cube
        for p in 0..4usize {
            for t in 0..2 {
                assert!(r.graph.has_edge(r.id(0, p), r.id(0, p ^ (1 << t))));
            }
        }
    }

    #[test]
    #[should_panic]
    fn reduced_rejects_non_power_of_two() {
        let _ = ReducedHypercube::new(6);
    }
}
