//! Compact undirected multigraph used as the ground truth for layouts.
//!
//! Interconnection networks are modelled exactly as in the Thompson /
//! multilayer grid models: nodes are processing elements, edges are wires.
//! Several constructions in the paper produce **multigraphs** (e.g. the
//! butterfly quotient is a generalized hypercube with four parallel links
//! between neighbouring clusters), so parallel edges are first-class here.
//! Self-loops are rejected: a wire from a node to itself never occurs in
//! any of the paper's networks.

use std::collections::BTreeMap;

/// Index of a node. Dense in `0..Graph::node_count()`.
pub type NodeId = u32;

/// Index of an edge. Dense in `0..Graph::edge_count()`, in insertion order.
pub type EdgeId = u32;

/// An immutable undirected multigraph in CSR (compressed sparse row) form.
///
/// Built once via [`crate::builder::GraphBuilder`] and then queried;
/// neighbour lists are sorted so that lookups and comparisons are
/// deterministic.
#[derive(Clone, Debug)]
pub struct Graph {
    name: String,
    node_count: usize,
    /// CSR offsets into `adj`, length `node_count + 1`.
    offsets: Vec<u32>,
    /// Flattened neighbour lists: `(neighbor, edge_id)` pairs.
    adj: Vec<(NodeId, EdgeId)>,
    /// Edge endpoints, canonicalized `u <= v` is NOT enforced (we keep the
    /// insertion orientation) but `endpoints_sorted` gives the canonical
    /// pair.
    edges: Vec<(NodeId, NodeId)>,
}

impl Graph {
    pub(crate) fn from_parts(
        name: String,
        node_count: usize,
        edges: Vec<(NodeId, NodeId)>,
    ) -> Self {
        let mut deg = vec![0u32; node_count];
        for &(u, v) in &edges {
            debug_assert!((u as usize) < node_count && (v as usize) < node_count);
            debug_assert_ne!(u, v, "self-loops are not allowed");
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..node_count].to_vec();
        let mut adj = vec![(0 as NodeId, 0 as EdgeId); edges.len() * 2];
        for (e, &(u, v)) in edges.iter().enumerate() {
            adj[cursor[u as usize] as usize] = (v, e as EdgeId);
            cursor[u as usize] += 1;
            adj[cursor[v as usize] as usize] = (u, e as EdgeId);
            cursor[v as usize] += 1;
        }
        // Sort each neighbour list for determinism.
        for u in 0..node_count {
            let lo = offsets[u] as usize;
            let hi = offsets[u + 1] as usize;
            adj[lo..hi].sort_unstable();
        }
        Graph {
            name,
            node_count,
            offsets,
            adj,
            edges,
        }
    }

    /// Human-readable family name, e.g. `"3-ary 2-cube"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of (undirected, possibly parallel) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `u`, counting parallel edges.
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Neighbours of `u` as `(neighbor, edge_id)` pairs, sorted by
    /// neighbour id. Parallel edges appear once per edge.
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, EdgeId)] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Endpoints of edge `e`, in insertion orientation.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e as usize]
    }

    /// Endpoints of edge `e` with the smaller id first.
    pub fn endpoints_sorted(&self, e: EdgeId) -> (NodeId, NodeId) {
        let (u, v) = self.edges[e as usize];
        if u <= v {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(|e| e as EdgeId)
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count).map(|u| u as NodeId)
    }

    /// `true` if at least one edge joins `u` and `v`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).iter().any(|&(w, _)| w == v)
    }

    /// Number of parallel edges joining `u` and `v`.
    pub fn multiplicity(&self, u: NodeId, v: NodeId) -> usize {
        self.neighbors(u).iter().filter(|&&(w, _)| w == v).count()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count)
            .map(|u| self.degree(u as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// The multiset of canonical endpoint pairs, as a sorted map
    /// `pair -> multiplicity`. This is what realized layouts are verified
    /// against: a layout reproduces the network iff its wire multiset
    /// equals this map.
    pub fn edge_multiset(&self) -> BTreeMap<(NodeId, NodeId), usize> {
        let mut m = BTreeMap::new();
        for e in 0..self.edges.len() {
            *m.entry(self.endpoints_sorted(e as EdgeId)).or_insert(0) += 1;
        }
        m
    }

    /// `true` if every node has the same degree; returns that degree.
    pub fn regular_degree(&self) -> Option<usize> {
        if self.node_count == 0 {
            return Some(0);
        }
        let d = self.degree(0);
        for u in 1..self.node_count {
            if self.degree(u as NodeId) != d {
                return None;
            }
        }
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new("triangle", 3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.regular_degree(), Some(2));
    }

    #[test]
    fn neighbors_sorted_and_complete() {
        let g = triangle();
        let ns: Vec<NodeId> = g.neighbors(1).iter().map(|&(v, _)| v).collect();
        assert_eq!(ns, vec![0, 2]);
    }

    #[test]
    fn parallel_edges_counted() {
        let mut b = GraphBuilder::new("dumbbell", 2);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.multiplicity(0, 1), 2);
        assert_eq!(g.degree(0), 2);
        let ms = g.edge_multiset();
        assert_eq!(ms.get(&(0, 1)), Some(&2));
    }

    #[test]
    fn endpoints_canonicalization() {
        let mut b = GraphBuilder::new("rev", 2);
        b.add_edge(1, 0);
        let g = b.build();
        assert_eq!(g.endpoints(0), (1, 0));
        assert_eq!(g.endpoints_sorted(0), (0, 1));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new("empty", 0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.regular_degree(), Some(0));
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn irregular_graph_detected() {
        let mut b = GraphBuilder::new("path", 3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.regular_degree(), None);
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::new("loop", 1);
        b.add_edge(0, 0);
        let _ = b.build();
    }
}
