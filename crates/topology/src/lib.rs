//! # mlv-topology
//!
//! Interconnection-network topologies for the multilayer VLSI layout
//! reproduction of Yeh, Varvarigos & Parhami, *"Multilayer VLSI Layout for
//! Interconnection Networks"*, ICPP 2000.
//!
//! This crate provides the **graph substrate** (a compact undirected
//! multigraph, mixed-radix node addressing, routing, structural property
//! computation) and constructors for **every network family the paper lays
//! out**:
//!
//! * rings, complete graphs, k-ary n-cubes (tori) and meshes, hypercubes,
//! * generalized hypercubes (mixed radix) and arbitrary Cartesian products,
//! * butterfly networks (ordinary and wrapped), cube-connected cycles,
//! * folded hypercubes, enhanced cubes, reduced hypercubes,
//! * hierarchical swap networks (HSN), hierarchical hypercube networks
//!   (HHN), indirect swap networks (ISN),
//! * product-network clusters (PN clusters), including k-ary n-cube
//!   cluster-c,
//! * the Cayley-graph families the paper defers to future work (star,
//!   pancake, bubble-sort, transposition, star-connected cycles).
//!
//! The layout crates build wire sets from the family *parameters*; the
//! graphs constructed here are the ground truth those wire sets are
//! verified against (`Graph::edge_multiset`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod butterfly;
pub mod cayley;
pub mod ccc;
pub mod cluster;
pub mod complete;
pub mod dimrouting;
pub mod genhyper;
pub mod graph;
pub mod hhn;
pub mod hsn;
pub mod hypercube;
pub mod isn;
pub mod karyn;
pub mod labels;
pub mod product;
pub mod properties;
pub mod ring;
pub mod routing;
pub mod variants;

pub use builder::GraphBuilder;
pub use graph::{EdgeId, Graph, NodeId};
pub use labels::MixedRadix;

/// Convenience prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use crate::builder::GraphBuilder;
    pub use crate::graph::{EdgeId, Graph, NodeId};
    pub use crate::labels::MixedRadix;
    pub use crate::properties::GraphProperties;
}
