//! Hierarchical hypercube networks (Yun & Park \[36\]).
//!
//! The paper treats HHNs as "a special case of HSNs where the basic
//! modules are hypercubes" (§4.3) and lays them out identically, so we
//! construct them exactly that way: an l-level HSN whose nucleus is the
//! s-dimensional hypercube (`r = 2^s` nodes).

use crate::graph::NodeId;
use crate::hsn::Hsn;
use crate::hypercube::hypercube;

/// A hierarchical hypercube network: an HSN over a hypercube nucleus.
#[derive(Clone, Debug)]
pub struct Hhn {
    /// The underlying HSN (its nucleus is the `s`-cube).
    pub hsn: Hsn,
    /// Nucleus dimension `s` (nucleus size `r = 2^s`).
    pub s: usize,
}

impl Hhn {
    /// Build an l-level HHN with an s-dimensional hypercube nucleus.
    pub fn new(levels: usize, s: usize) -> Self {
        assert!(s >= 1, "nucleus dimension must be >= 1");
        let nucleus = hypercube(s);
        Hhn {
            hsn: Hsn::new(levels, &nucleus),
            s,
        }
    }

    /// Number of nodes `N = 2^(s·l)`.
    pub fn node_count(&self) -> usize {
        self.hsn.node_count()
    }

    /// Cluster index of a node.
    pub fn cluster_of(&self, id: NodeId) -> usize {
        self.hsn.cluster_of(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::GraphProperties;

    #[test]
    fn counts() {
        let h = Hhn::new(2, 2); // r = 4, N = 16
        assert_eq!(h.node_count(), 16);
        assert!(h.hsn.graph.is_connected());
    }

    #[test]
    fn nucleus_is_hypercube() {
        let h = Hhn::new(2, 3);
        // cluster 0 nodes are 0..8 and must form a 3-cube
        for p in 0..8u32 {
            for t in 0..3 {
                let q = p ^ (1 << t);
                assert!(h.hsn.graph.has_edge(p, q));
            }
        }
    }

    #[test]
    fn degree_bound() {
        let h = Hhn::new(3, 2);
        // nucleus degree s plus at most l-1 swap links
        assert!(h.hsn.graph.max_degree() <= 2 + 2);
        assert!(h.hsn.graph.is_connected());
    }

    #[test]
    fn three_level_counts() {
        let h = Hhn::new(3, 1); // r = 2, N = 8
        assert_eq!(h.node_count(), 8);
        assert!(h.hsn.graph.is_connected());
    }
}
