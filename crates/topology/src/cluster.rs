//! Product-network clusters (PN clusters), including k-ary n-cube
//! cluster-c (Basak & Panda \[4\]).
//!
//! A PN cluster replaces every node of a *quotient* product network with a
//! c-node *cluster* graph; each inter-cluster link of the quotient is
//! attached to a specific member node at both ends. The paper (§3.2) lays
//! these out by expanding each quotient-layout node into a block and
//! laying the cluster inside it. We attach the quotient links to cluster
//! members round-robin, which spreads terminal load evenly (any fixed
//! attachment rule yields the same layout asymptotics).

use crate::builder::GraphBuilder;
use crate::complete::complete;
use crate::graph::{Graph, NodeId};
use crate::hypercube::hypercube;
use crate::karyn::KaryNCube;
use crate::ring::ring;

/// The cluster (basic-module) family used inside each supernode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterKind {
    /// c-node ring.
    Ring,
    /// c-node hypercube (`c` must be a power of two).
    Hypercube,
    /// c-node complete graph — the paper's densest case (§3.2 shows the
    /// area overhead stays negligible while `c = o(k^{n/4−1})`).
    Complete,
}

impl ClusterKind {
    /// Instantiate the cluster graph on `c` nodes.
    pub fn instantiate(self, c: usize) -> Graph {
        match self {
            ClusterKind::Ring => ring(c),
            ClusterKind::Hypercube => {
                assert!(c.is_power_of_two(), "hypercube cluster needs c = 2^s");
                hypercube(c.trailing_zeros() as usize)
            }
            ClusterKind::Complete => complete(c),
        }
    }
}

/// A PN cluster: quotient product network with every node expanded into a
/// cluster graph.
#[derive(Clone, Debug)]
pub struct PnCluster {
    /// The quotient graph (one node per cluster).
    pub quotient: Graph,
    /// The cluster graph replicated inside every supernode.
    pub cluster: Graph,
    /// For quotient edge `e`, the member nodes its endpoints attach to:
    /// `(member at endpoint u, member at endpoint v)` in the edge's
    /// insertion orientation.
    pub attachments: Vec<(usize, usize)>,
    /// The expanded graph (`|quotient| · |cluster|` nodes).
    pub graph: Graph,
}

impl PnCluster {
    /// Expand `quotient` by replacing each node with a copy of `cluster`,
    /// attaching inter-cluster links round-robin over cluster members.
    pub fn new(quotient: &Graph, cluster: &Graph) -> Self {
        let c = cluster.node_count();
        assert!(c >= 1, "cluster must be non-empty");
        let nq = quotient.node_count();
        let mut b = GraphBuilder::new(format!("{}[{}]", quotient.name(), cluster.name()), nq * c);
        // intra-cluster links
        for q in 0..nq {
            for e in cluster.edge_ids() {
                let (u, v) = cluster.endpoints(e);
                b.add_edge(
                    (q * c + u as usize) as NodeId,
                    (q * c + v as usize) as NodeId,
                );
            }
        }
        // inter-cluster links, round-robin attachment
        let mut counter = vec![0usize; nq];
        let mut attachments = Vec::with_capacity(quotient.edge_count());
        for e in quotient.edge_ids() {
            let (qu, qv) = quotient.endpoints(e);
            let mu = counter[qu as usize] % c;
            counter[qu as usize] += 1;
            let mv = counter[qv as usize] % c;
            counter[qv as usize] += 1;
            attachments.push((mu, mv));
            b.add_edge(
                (qu as usize * c + mu) as NodeId,
                (qv as usize * c + mv) as NodeId,
            );
        }
        PnCluster {
            quotient: quotient.clone(),
            cluster: cluster.clone(),
            attachments,
            graph: b.build(),
        }
    }

    /// Cluster (quotient node) index of an expanded node.
    pub fn cluster_of(&self, id: NodeId) -> usize {
        (id as usize) / self.cluster.node_count()
    }

    /// Member index within its cluster of an expanded node.
    pub fn member_of(&self, id: NodeId) -> usize {
        (id as usize) % self.cluster.node_count()
    }

    /// Expanded node id of `(cluster, member)`.
    pub fn id(&self, cluster: usize, member: usize) -> NodeId {
        (cluster * self.cluster.node_count() + member) as NodeId
    }
}

/// k-ary n-cube cluster-c: the k-ary n-cube quotient with c-node clusters
/// of the given kind (paper §3.2's running PN-cluster example).
pub fn kary_cluster_c(k: usize, n: usize, c: usize, kind: ClusterKind) -> PnCluster {
    let quotient = KaryNCube::torus(k, n);
    let cluster = kind.instantiate(c);
    PnCluster::new(&quotient.graph, &cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccc::Ccc;
    use crate::properties::GraphProperties;

    #[test]
    fn expanded_counts() {
        let pc = kary_cluster_c(3, 2, 4, ClusterKind::Hypercube);
        assert_eq!(pc.graph.node_count(), 9 * 4);
        // intra: 9 clusters * 4 edges (2-cube) ; inter: 18 torus links
        assert_eq!(pc.graph.edge_count(), 9 * 4 + 18);
        assert!(pc.graph.is_connected());
    }

    #[test]
    fn round_robin_attachment_balances_terminals() {
        let pc = kary_cluster_c(4, 2, 4, ClusterKind::Ring);
        // every cluster has 2n = 4 incident quotient links and c = 4
        // members, so each member takes exactly one inter-cluster link.
        let c = pc.cluster.node_count();
        let mut load = vec![0usize; pc.graph.node_count()];
        for e in pc.graph.edge_ids() {
            let (u, v) = pc.graph.endpoints(e);
            if pc.cluster_of(u) != pc.cluster_of(v) {
                load[u as usize] += 1;
                load[v as usize] += 1;
            }
        }
        for (id, l) in load.iter().enumerate() {
            assert!(*l <= 1 + 4 / c, "node {id} overloaded: {l}");
        }
    }

    #[test]
    fn cluster_of_member_of_roundtrip() {
        let pc = kary_cluster_c(3, 2, 5, ClusterKind::Complete);
        for id in pc.graph.node_ids() {
            assert_eq!(pc.id(pc.cluster_of(id), pc.member_of(id)), id);
        }
    }

    #[test]
    fn ccc_is_a_hypercube_pn_cluster_in_spirit() {
        // CCC(3) and hypercube-quotient ring-cluster PN have the same
        // node count and degree profile (attachment differs but the
        // quotient structure matches).
        let ccc = Ccc::new(3);
        let pc = PnCluster::new(&hypercube(3), &ring(3));
        assert_eq!(ccc.graph.node_count(), pc.graph.node_count());
        assert_eq!(ccc.graph.edge_count(), pc.graph.edge_count());
    }

    #[test]
    fn singleton_cluster_is_identity() {
        let q = KaryNCube::torus(3, 2).graph;
        let pc = PnCluster::new(&q, &ring(1));
        assert_eq!(pc.graph.edge_multiset(), q.edge_multiset());
    }

    #[test]
    #[should_panic]
    fn hypercube_cluster_requires_power_of_two() {
        let _ = kary_cluster_c(3, 2, 6, ClusterKind::Hypercube);
    }
}
