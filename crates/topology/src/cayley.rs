//! Cayley-graph families: star, pancake, bubble-sort, and transposition
//! graphs, and star-connected cycles (SCC).
//!
//! The paper (§1, §4.3) notes that its multilayer techniques also apply
//! to these permutation networks and defers the constructions to future
//! work; we provide the topologies (they are exercised by the generic
//! orthogonal layout fallback in `mlv-layout`) with nodes indexed by the
//! Lehmer rank of their permutation.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};

/// Rank a permutation of `0..n` (Lehmer code, factorial number system).
pub fn perm_rank(perm: &[usize]) -> usize {
    let n = perm.len();
    let mut rank = 0usize;
    for i in 0..n {
        let smaller = perm[i + 1..].iter().filter(|&&x| x < perm[i]).count();
        rank = rank * (n - i) + smaller;
    }
    rank
}

/// Inverse of [`perm_rank`]: the permutation of `0..n` with the given
/// rank.
pub fn perm_unrank(mut rank: usize, n: usize) -> Vec<usize> {
    let mut fact = vec![1usize; n + 1];
    for i in 1..=n {
        fact[i] = fact[i - 1] * i;
    }
    assert!(rank < fact[n], "rank out of range");
    let mut pool: Vec<usize> = (0..n).collect();
    let mut perm = Vec::with_capacity(n);
    for i in 0..n {
        let f = fact[n - 1 - i];
        let idx = rank / f;
        rank %= f;
        perm.push(pool.remove(idx));
    }
    perm
}

fn factorial(n: usize) -> usize {
    (1..=n).product::<usize>().max(1)
}

/// Build a Cayley graph over the symmetric group S_n whose generators are
/// given as position permutations applied on the right (i.e. the
/// neighbour of π under generator g is π∘g: position i receives the
/// symbol from position `g[i]`).
fn cayley(name: String, n: usize, generators: &[Vec<usize>]) -> Graph {
    assert!(n <= 9, "factorial blow-up: keep n <= 9");
    let nn = factorial(n);
    let mut b = GraphBuilder::new(name, nn);
    for id in 0..nn {
        let perm = perm_unrank(id, n);
        for g in generators {
            let neighbor: Vec<usize> = g.iter().map(|&i| perm[i]).collect();
            let nid = perm_rank(&neighbor);
            assert_ne!(nid, id, "generator must be fixed-point-free");
            if nid > id {
                b.add_edge(id as NodeId, nid as NodeId);
            }
        }
    }
    b.build()
}

fn transposition_gen(n: usize, i: usize, j: usize) -> Vec<usize> {
    let mut g: Vec<usize> = (0..n).collect();
    g.swap(i, j);
    g
}

/// Star graph ST(n): generators swap position 0 with position i,
/// `1 ≤ i < n`. `n!` nodes, degree `n−1`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2);
    let gens: Vec<_> = (1..n).map(|i| transposition_gen(n, 0, i)).collect();
    cayley(format!("star({n})"), n, &gens)
}

/// Pancake graph P(n): generators reverse the prefix of length i,
/// `2 ≤ i ≤ n`. `n!` nodes, degree `n−1`.
pub fn pancake(n: usize) -> Graph {
    assert!(n >= 2);
    let gens: Vec<_> = (2..=n)
        .map(|i| {
            let mut g: Vec<usize> = (0..n).collect();
            g[..i].reverse();
            g
        })
        .collect();
    cayley(format!("pancake({n})"), n, &gens)
}

/// Bubble-sort graph B(n): generators swap adjacent positions.
/// `n!` nodes, degree `n−1`.
pub fn bubble_sort(n: usize) -> Graph {
    assert!(n >= 2);
    let gens: Vec<_> = (0..n - 1).map(|i| transposition_gen(n, i, i + 1)).collect();
    cayley(format!("bubble-sort({n})"), n, &gens)
}

/// Transposition network T(n): generators are all transpositions.
/// `n!` nodes, degree `n(n−1)/2`.
pub fn transposition(n: usize) -> Graph {
    assert!(n >= 2);
    let mut gens = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            gens.push(transposition_gen(n, i, j));
        }
    }
    cayley(format!("transposition({n})"), n, &gens)
}

/// Macro-star network MS(ℓ, n) (Yeh & Varvarigos \[29\]): a low-degree
/// alternative to the star graph on `(ℓn+1)!` permutations of
/// `ℓn + 1` symbols. Generators (reconstructed from \[29\]'s abstract —
/// the full construction is behind the reference): the star-graph
/// transpositions `t_2 … t_{n+1}` within the first block, plus `ℓ − 1`
/// *block swaps* exchanging the first block (positions `2…n+1`) with
/// block `j` (positions `(j−1)n+2 … jn+1`). Degree `n + ℓ − 1`;
/// connected because conjugating `t_i` by block swaps reaches every
/// star-graph generator.
pub fn macro_star(l: usize, n: usize) -> Graph {
    assert!(l >= 1 && n >= 1, "need l, n >= 1");
    let symbols = l * n + 1;
    assert!(symbols <= 8, "factorial blow-up: keep ln+1 <= 8");
    let mut gens: Vec<Vec<usize>> = (1..=n).map(|i| transposition_gen(symbols, 0, i)).collect();
    for j in 2..=l {
        // swap positions 1..n with positions (j-1)n+1..jn (0-based)
        let mut g: Vec<usize> = (0..symbols).collect();
        for t in 0..n {
            g.swap(1 + t, (j - 1) * n + 1 + t);
        }
        gens.push(g);
    }
    cayley(format!("MS({l},{n})"), symbols, &gens)
}

/// Star-connected cycles SCC(n) (Latifi, de Azevedo & Bagherzadeh \[15\]):
/// each star-graph node becomes an (n−1)-node cycle; node `(π, p)` with
/// `1 ≤ p ≤ n−1` has cycle links to its ring neighbours and one star link
/// to `(π∘(0 p), p)`. `(n−1)·n!` nodes, degree ≤ 3.
pub fn scc(n: usize) -> Graph {
    assert!(n >= 3, "SCC needs n >= 3");
    assert!(n <= 8, "factorial blow-up: keep n <= 8");
    let nf = factorial(n);
    let ring = n - 1; // positions 1..n-1, stored as 0..n-2
    let mut b = GraphBuilder::new(format!("SCC({n})"), nf * ring);
    let id_at = |perm_id: usize, p: usize| (perm_id * ring + p) as NodeId;
    for perm_id in 0..nf {
        let perm = perm_unrank(perm_id, n);
        // cycle links
        if ring == 2 {
            b.add_edge(id_at(perm_id, 0), id_at(perm_id, 1));
        } else if ring >= 3 {
            for p in 0..ring {
                b.add_edge(id_at(perm_id, p), id_at(perm_id, (p + 1) % ring));
            }
        }
        // star links: generator (0, p+1), generated once per pair
        for p in 0..ring {
            let g = transposition_gen(n, 0, p + 1);
            let neighbor: Vec<usize> = g.iter().map(|&i| perm[i]).collect();
            let nid = perm_rank(&neighbor);
            if nid > perm_id {
                b.add_edge(id_at(perm_id, p), id_at(nid, p));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::GraphProperties;

    #[test]
    fn rank_unrank_roundtrip() {
        for n in 1..6usize {
            let nf: usize = (1..=n).product();
            for r in 0..nf {
                assert_eq!(perm_rank(&perm_unrank(r, n)), r);
            }
        }
    }

    #[test]
    fn identity_has_rank_zero() {
        assert_eq!(perm_rank(&[0, 1, 2, 3]), 0);
        assert_eq!(perm_unrank(0, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn star_counts() {
        let g = star(4);
        assert_eq!(g.node_count(), 24);
        assert_eq!(g.regular_degree(), Some(3));
        assert!(g.is_connected());
        // known: ST(4) diameter = 4
        assert_eq!(g.diameter(), Some(4));
    }

    #[test]
    fn pancake_counts() {
        let g = pancake(4);
        assert_eq!(g.node_count(), 24);
        assert_eq!(g.regular_degree(), Some(3));
        assert!(g.is_connected());
        // known: P(4) diameter = 4
        assert_eq!(g.diameter(), Some(4));
    }

    #[test]
    fn bubble_sort_counts() {
        let g = bubble_sort(4);
        assert_eq!(g.regular_degree(), Some(3));
        assert!(g.is_connected());
        // known: B(n) diameter = n(n-1)/2
        assert_eq!(g.diameter(), Some(6));
    }

    #[test]
    fn transposition_counts() {
        let g = transposition(4);
        assert_eq!(g.regular_degree(), Some(6));
        assert!(g.is_connected());
        // known: T(n) diameter = n-1
        assert_eq!(g.diameter(), Some(3));
    }

    #[test]
    fn macro_star_counts() {
        // MS(2,2): 5 symbols, 120 nodes, degree 2 + 1 = 3
        let g = macro_star(2, 2);
        assert_eq!(g.node_count(), 120);
        assert_eq!(g.regular_degree(), Some(3));
        assert!(g.is_connected());
        // MS(1,n) degenerates to the star graph ST(n+1)
        let ms = macro_star(1, 3);
        let st = star(4);
        assert_eq!(ms.edge_multiset(), st.edge_multiset());
        // MS(3,2): 7 symbols, degree 2 + 2 = 4
        let g = macro_star(3, 2);
        assert_eq!(g.node_count(), 5040);
        assert_eq!(g.regular_degree(), Some(4));
        assert!(g.is_connected());
    }

    #[test]
    fn macro_star_degree_below_star() {
        // same node count as ST(5) but lower degree
        let ms = macro_star(2, 2);
        let st = star(5);
        assert_eq!(ms.node_count(), st.node_count());
        assert!(ms.regular_degree().unwrap() < st.regular_degree().unwrap());
    }

    #[test]
    fn scc_counts() {
        let g = scc(4);
        assert_eq!(g.node_count(), 3 * 24);
        assert_eq!(g.regular_degree(), Some(3));
        assert!(g.is_connected());
    }

    #[test]
    fn star_is_bipartite_sanity() {
        // star graphs are bipartite (generators are odd permutations):
        // every edge joins permutations of opposite parity.
        let g = star(4);
        let parity = |id: u32| -> bool {
            let p = perm_unrank(id as usize, 4);
            let mut inv = 0;
            for i in 0..4 {
                for j in i + 1..4 {
                    if p[i] > p[j] {
                        inv += 1;
                    }
                }
            }
            inv % 2 == 1
        };
        for e in g.edge_ids() {
            let (u, v) = g.endpoints(e);
            assert_ne!(parity(u), parity(v));
        }
    }
}
