//! Butterfly networks.
//!
//! The ordinary m-dimensional butterfly BF(m) has `(m+1)·2^m` nodes
//! `(level l, row w)` with `0 ≤ l ≤ m`, `w` an m-bit string; node
//! `(l, w)` is joined to `(l+1, w)` (straight link) and `(l+1, w ⊕ 2^l)`
//! (cross link). The **wrapped** butterfly merges levels 0 and m, giving
//! `m·2^m` nodes — this is the `R×R` butterfly of the paper's §4.2 with
//! `R = 2^m` rows and `N = R·log₂R` nodes.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};

/// A butterfly network with its (level, row) addressing.
#[derive(Clone, Debug)]
pub struct Butterfly {
    /// Dimension m (rows are m-bit strings).
    pub m: usize,
    /// Number of levels actually present: `m+1` ordinary, `m` wrapped.
    pub levels: usize,
    /// `true` for the wrapped butterfly (levels 0 and m identified).
    pub wrapped: bool,
    /// The underlying graph.
    pub graph: Graph,
}

impl Butterfly {
    /// Ordinary butterfly BF(m), `(m+1)·2^m` nodes.
    pub fn ordinary(m: usize) -> Self {
        Self::build(m, false)
    }

    /// Wrapped butterfly, `m·2^m` nodes (requires `m ≥ 1`; for `m ≥ 3`
    /// it is 4-regular).
    pub fn wrapped(m: usize) -> Self {
        assert!(m >= 1, "wrapped butterfly needs m >= 1");
        Self::build(m, true)
    }

    fn build(m: usize, wrapped: bool) -> Self {
        assert!(m < 26, "butterfly dimension too large");
        let rows = 1usize << m;
        let levels = if wrapped { m } else { m + 1 };
        let kind = if wrapped { "wrapped " } else { "" };
        let mut b = GraphBuilder::new(format!("{kind}BF({m})"), levels * rows);
        for l in 0..m {
            let next = if wrapped { (l + 1) % m } else { l + 1 };
            for w in 0..rows {
                let u = Self::id_at(l, w, rows);
                let straight = Self::id_at(next, w, rows);
                let cross = Self::id_at(next, w ^ (1 << l), rows);
                // In the wrapped m=1 case straight and cross links may
                // coincide with u itself (single row bit) — guard loops.
                if u != straight {
                    b.add_edge(u, straight);
                }
                if u != cross {
                    b.add_edge(u, cross);
                }
            }
        }
        Butterfly {
            m,
            levels,
            wrapped,
            graph: b.build(),
        }
    }

    fn id_at(level: usize, row: usize, rows: usize) -> NodeId {
        (level * rows + row) as NodeId
    }

    /// Node id of `(level, row)`.
    pub fn id(&self, level: usize, row: usize) -> NodeId {
        assert!(level < self.levels && row < (1 << self.m));
        Self::id_at(level, row, 1 << self.m)
    }

    /// `(level, row)` of a node id.
    pub fn coords(&self, id: NodeId) -> (usize, usize) {
        let rows = 1usize << self.m;
        ((id as usize) / rows, (id as usize) % rows)
    }

    /// Number of rows, `R = 2^m`.
    pub fn rows(&self) -> usize {
        1 << self.m
    }

    /// Total node count `N`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::GraphProperties;

    #[test]
    fn ordinary_counts() {
        let bf = Butterfly::ordinary(3);
        assert_eq!(bf.node_count(), 4 * 8);
        // 2 links per node per level transition: m * 2^m * 2
        assert_eq!(bf.graph.edge_count(), 3 * 8 * 2);
        assert!(bf.graph.is_connected());
    }

    #[test]
    fn wrapped_counts_and_regularity() {
        let bf = Butterfly::wrapped(3);
        assert_eq!(bf.node_count(), 3 * 8);
        assert_eq!(bf.graph.regular_degree(), Some(4));
        assert!(bf.graph.is_connected());
    }

    #[test]
    fn ordinary_boundary_degrees() {
        let bf = Butterfly::ordinary(3);
        // levels 0 and m have degree 2, middle levels degree 4
        assert_eq!(bf.graph.degree(bf.id(0, 0)), 2);
        assert_eq!(bf.graph.degree(bf.id(3, 5)), 2);
        assert_eq!(bf.graph.degree(bf.id(1, 2)), 4);
    }

    #[test]
    fn cross_links_flip_level_bit() {
        let bf = Butterfly::ordinary(4);
        for e in bf.graph.edge_ids() {
            let (u, v) = bf.graph.endpoints(e);
            let (lu, wu) = bf.coords(u);
            let (lv, wv) = bf.coords(v);
            assert_eq!(lv, lu + 1);
            assert!(wu == wv || wu ^ wv == 1 << lu);
        }
    }

    #[test]
    fn coords_roundtrip() {
        let bf = Butterfly::wrapped(4);
        for id in bf.graph.node_ids() {
            let (l, w) = bf.coords(id);
            assert_eq!(bf.id(l, w), id);
        }
    }

    #[test]
    fn wrapped_m2_valid() {
        let bf = Butterfly::wrapped(2);
        assert_eq!(bf.node_count(), 8);
        assert!(bf.graph.is_connected());
    }
}
