//! Indirect swap networks (Yeh, Parhami, Varvarigos & Lee \[35\]).
//!
//! Reference \[35\] ("VLSI layout and packaging of butterfly networks",
//! SPAA 2000) was *to appear* when the paper was published and is not
//! available; we reconstruct the ISN from the structural facts §4.3
//! states and uses:
//!
//! * it is a multistage (indirect) counterpart of the swap network, as
//!   the butterfly is of the hypercube;
//! * it partitions into `r·(#stages)`-node clusters whose quotient is a
//!   generalized hypercube with **two** links between each pair of
//!   neighbouring clusters (vs. four for the butterfly).
//!
//! Our ISN(l, r) has nodes `(stage s, c_{l−1} … c_1, p)` with
//! `0 ≤ s < l` and all digits in `0..r`. Between stages `s` and `s+1`
//! every node has a **straight** link (same label) and a **swap** link
//! that swaps `p` with digit `c_{s+1}` (omitted when the swap is the
//! identity — swaps alone preserve the digit multiset, so they cannot
//! connect the network). Each cluster (fixed `c` digits) additionally
//! carries a **nucleus stage**: its stage-0 nodes are connected as a
//! complete graph K_r, the indirect analog of the HSN's nucleus, which
//! breaks the multiset invariant and makes the network connected.
//! Fixing the `c` digits gives an `l·r`-node cluster ("several copies of
//! small networks", as the paper describes butterfly clusters); the
//! quotient over clusters is the (l−1)-dimensional radix-r generalized
//! hypercube with exactly two links per adjacent cluster pair — the
//! property §4.3's layout uses.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use crate::labels::MixedRadix;

/// An indirect swap network.
#[derive(Clone, Debug)]
pub struct Isn {
    /// Number of digit levels `l` (stages = `l`, link rails = `l−1`).
    pub levels: usize,
    /// Radix `r`.
    pub r: usize,
    /// Addressing for the digit part (digit 0 = `p`).
    pub addr: MixedRadix,
    /// The underlying graph (`l · r^l` nodes).
    pub graph: Graph,
}

impl Isn {
    /// Build ISN(l, r). Requires `l ≥ 2`, `r ≥ 2`.
    pub fn new(levels: usize, r: usize) -> Self {
        assert!(levels >= 2 && r >= 2, "ISN needs l >= 2, r >= 2");
        let addr = MixedRadix::fixed(r, levels);
        let labels = addr.cardinality();
        let nn = levels * labels;
        let mut b = GraphBuilder::new(format!("ISN({levels},{r})"), nn);
        // nucleus stage: K_r on the stage-0 nodes of every cluster
        for cluster in 0..labels / r {
            for p in 0..r {
                for p2 in (p + 1)..r {
                    b.add_edge(
                        Self::id_at(0, cluster * r + p, labels),
                        Self::id_at(0, cluster * r + p2, labels),
                    );
                }
            }
        }
        for s in 0..levels - 1 {
            for a in 0..labels {
                let u = Self::id_at(s, a, labels);
                // straight link
                b.add_edge(u, Self::id_at(s + 1, a, labels));
                // swap link: swap p (digit 0) with digit s+1
                let digits = addr.digits_of(a);
                let (p, ci) = (digits[0], digits[s + 1]);
                if p != ci {
                    let mut d2 = digits.clone();
                    d2[0] = ci;
                    d2[s + 1] = p;
                    b.add_edge(u, Self::id_at(s + 1, addr.index_of(&d2), labels));
                }
            }
        }
        Isn {
            levels,
            r,
            addr,
            graph: b.build(),
        }
    }

    fn id_at(stage: usize, label: usize, labels: usize) -> NodeId {
        (stage * labels + label) as NodeId
    }

    /// Node id of `(stage, digit-label)`.
    pub fn id(&self, stage: usize, label: usize) -> NodeId {
        Self::id_at(stage, label, self.addr.cardinality())
    }

    /// `(stage, digit-label)` of a node id.
    pub fn coords(&self, id: NodeId) -> (usize, usize) {
        let labels = self.addr.cardinality();
        ((id as usize) / labels, (id as usize) % labels)
    }

    /// Cluster index (the `c` digits) of a node.
    pub fn cluster_of(&self, id: NodeId) -> usize {
        let (_, label) = self.coords(id);
        label / self.r
    }

    /// Number of nodes `N = l·r^l`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The quotient over clusters: the (l−1)-dimensional radix-r
    /// generalized hypercube.
    pub fn quotient(&self) -> Graph {
        crate::genhyper::GeneralizedHypercube::fixed(self.r, self.levels - 1).graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::GraphProperties;
    use std::collections::BTreeMap;

    #[test]
    fn counts_and_connectivity() {
        let isn = Isn::new(3, 3);
        assert_eq!(isn.node_count(), 3 * 27);
        assert!(isn.graph.is_connected());
        assert_eq!(isn.graph.component_count(), 1);
    }

    #[test]
    fn nucleus_stage_is_complete() {
        let isn = Isn::new(2, 4);
        // cluster 0: labels 0..4, stage-0 nodes pairwise adjacent
        for p in 0..4usize {
            for q in (p + 1)..4 {
                assert!(isn.graph.has_edge(isn.id(0, p), isn.id(0, q)));
            }
        }
        // but stage-1 nodes are not
        assert!(!isn.graph.has_edge(isn.id(1, 0), isn.id(1, 3)));
    }

    #[test]
    fn two_links_per_adjacent_cluster_pair() {
        let isn = Isn::new(3, 3);
        let mut count: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for e in isn.graph.edge_ids() {
            let (u, v) = isn.graph.endpoints(e);
            let (cu, cv) = (isn.cluster_of(u), isn.cluster_of(v));
            if cu != cv {
                let key = if cu < cv { (cu, cv) } else { (cv, cu) };
                *count.entry(key).or_insert(0) += 1;
            }
        }
        let q = isn.quotient();
        assert_eq!(count.len(), q.edge_count());
        for (&(a, b), &m) in &count {
            assert_eq!(m, 2, "cluster pair ({a},{b}) has {m} links");
            assert!(q.has_edge(a as u32, b as u32));
        }
    }

    #[test]
    fn straight_links_preserve_label() {
        let isn = Isn::new(2, 4);
        for a in 0..16usize {
            assert!(isn.graph.has_edge(isn.id(0, a), isn.id(1, a)));
        }
    }

    #[test]
    fn cluster_size_is_levels_times_r() {
        let isn = Isn::new(3, 2);
        let mut sizes: BTreeMap<usize, usize> = BTreeMap::new();
        for id in isn.graph.node_ids() {
            *sizes.entry(isn.cluster_of(id)).or_insert(0) += 1;
        }
        for (_, s) in sizes {
            assert_eq!(s, 3 * 2);
        }
    }

    #[test]
    fn max_degree_bound() {
        // interior stages: <= 4 (2 rails * 2 links); stage 0: nucleus
        // K_r adds r-1, plus straight + swap
        let isn = Isn::new(4, 3);
        assert!(isn.graph.max_degree() <= 3 - 1 + 2);
        for id in isn.graph.node_ids() {
            let (s, _) = isn.coords(id);
            if s > 0 && s < 3 {
                assert!(isn.graph.degree(id) <= 4);
            }
        }
    }
}
