//! Cartesian products of graphs.
//!
//! `G = A □ B` has node set `V(A) × V(B)`; `(a, b)` is adjacent to
//! `(a′, b)` when `a ∼ a′` in A, and to `(a, b′)` when `b ∼ b′` in B.
//! Every network in §3–§5 of the paper is either a product network or a
//! *PN cluster* (a product network whose nodes are blown up into
//! clusters), which is why the orthogonal layout scheme applies so widely:
//! rows realize the A-factor, columns the B-factor.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};

/// Cartesian product `A □ B`. The node `(a, b)` gets id `b * |A| + a`
/// (the A-coordinate is the low/"column" coordinate, matching the paper's
/// row/column split).
pub fn cartesian_product(a: &Graph, b: &Graph) -> Graph {
    let na = a.node_count();
    let nb = b.node_count();
    let mut builder = GraphBuilder::new(format!("{} x {}", a.name(), b.name()), na * nb);
    // A-edges replicated in every B-row.
    for e in a.edge_ids() {
        let (u, v) = a.endpoints(e);
        for row in 0..nb {
            builder.add_edge(
                (row * na + u as usize) as NodeId,
                (row * na + v as usize) as NodeId,
            );
        }
    }
    // B-edges replicated in every A-column.
    for e in b.edge_ids() {
        let (u, v) = b.endpoints(e);
        for col in 0..na {
            builder.add_edge(
                (u as usize * na + col) as NodeId,
                (v as usize * na + col) as NodeId,
            );
        }
    }
    builder.build()
}

/// Iterated Cartesian product of a list of factors (left-assoc). Returns
/// a single node graph for an empty list.
pub fn product_all(factors: &[&Graph]) -> Graph {
    match factors {
        [] => GraphBuilder::new("unit", 1).build(),
        [g] => (*g).clone(),
        [first, rest @ ..] => {
            let mut acc = (*first).clone();
            for g in rest {
                acc = cartesian_product(&acc, g);
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::complete;
    use crate::hypercube::hypercube;
    use crate::karyn::KaryNCube;
    use crate::properties::GraphProperties;
    use crate::ring::ring;

    #[test]
    fn product_edge_count() {
        let a = ring(4);
        let b = ring(5);
        let p = cartesian_product(&a, &b);
        assert_eq!(p.node_count(), 20);
        assert_eq!(p.edge_count(), 4 * 5 + 5 * 4);
    }

    #[test]
    fn hypercube_is_product_of_halves() {
        let h = hypercube(5);
        let p = cartesian_product(&hypercube(3), &hypercube(2));
        // ids: (a,b) -> b*8 + a which is exactly the 5-bit label with a as
        // low bits — so the graphs must be identical, not just isomorphic.
        assert_eq!(p.edge_multiset(), h.edge_multiset());
    }

    #[test]
    fn torus_is_product_of_rings() {
        let t = KaryNCube::torus(4, 2);
        let p = cartesian_product(&ring(4), &ring(4));
        assert_eq!(p.edge_multiset(), t.graph.edge_multiset());
    }

    #[test]
    fn ghc_is_product_of_completes() {
        use crate::genhyper::GeneralizedHypercube;
        let g = GeneralizedHypercube::new(vec![3, 4]);
        let p = cartesian_product(&complete(3), &complete(4));
        assert_eq!(p.edge_multiset(), g.graph.edge_multiset());
    }

    #[test]
    fn product_preserves_connectivity_and_regularity() {
        let p = cartesian_product(&ring(5), &complete(4));
        assert!(p.is_connected());
        assert_eq!(p.regular_degree(), Some(2 + 3));
    }

    #[test]
    fn product_all_folds() {
        let r3 = ring(3);
        let g = product_all(&[&r3, &r3, &r3]);
        let t = KaryNCube::torus(3, 3);
        assert_eq!(g.edge_multiset(), t.graph.edge_multiset());
    }

    #[test]
    fn product_with_unit() {
        let g = product_all(&[]);
        assert_eq!(g.node_count(), 1);
    }
}
