//! Mixed-radix node addressing.
//!
//! Most families in the paper label a node with a digit vector
//! `(i_{n-1}, …, i_1, i_0)` where digit `j` ranges over `0..r_j`. The
//! orthogonal layout scheme (paper §3.1) splits this vector into a
//! high-digit half (the grid **row**) and a low-digit half (the grid
//! **column**), so converting between digit vectors and linear indices is
//! on the critical path of every layout generator.

/// A mixed-radix numbering system: digit `j` has radix `radices[j]`,
/// digit 0 is least significant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MixedRadix {
    radices: Vec<usize>,
}

impl MixedRadix {
    /// Create a mixed-radix system. All radices must be ≥ 1.
    pub fn new(radices: Vec<usize>) -> Self {
        assert!(
            radices.iter().all(|&r| r >= 1),
            "all radices must be at least 1"
        );
        MixedRadix { radices }
    }

    /// A fixed-radix system with `n` digits of radix `k` (k-ary n-cube
    /// addressing).
    pub fn fixed(k: usize, n: usize) -> Self {
        Self::new(vec![k; n])
    }

    /// Number of digits.
    pub fn digit_count(&self) -> usize {
        self.radices.len()
    }

    /// Radix of digit `j` (digit 0 least significant).
    pub fn radix(&self, j: usize) -> usize {
        self.radices[j]
    }

    /// The radices, least significant first.
    pub fn radices(&self) -> &[usize] {
        &self.radices
    }

    /// Total number of representable values (`∏ r_j`).
    pub fn cardinality(&self) -> usize {
        self.radices.iter().product()
    }

    /// Convert a linear index to its digit vector (digit 0 least
    /// significant).
    ///
    /// # Panics
    /// If `index >= cardinality()`.
    pub fn digits_of(&self, index: usize) -> Vec<usize> {
        assert!(index < self.cardinality(), "index out of range");
        let mut rem = index;
        let mut digits = Vec::with_capacity(self.radices.len());
        for &r in &self.radices {
            digits.push(rem % r);
            rem /= r;
        }
        digits
    }

    /// Convert a digit vector (digit 0 least significant) to its linear
    /// index.
    ///
    /// # Panics
    /// If the digit count mismatches or any digit is out of range.
    pub fn index_of(&self, digits: &[usize]) -> usize {
        assert_eq!(digits.len(), self.radices.len(), "digit count mismatch");
        let mut index = 0usize;
        for j in (0..digits.len()).rev() {
            assert!(digits[j] < self.radices[j], "digit {j} out of range");
            index = index * self.radices[j] + digits[j];
        }
        index
    }

    /// The index obtained from `index` by setting digit `j` to `value`.
    pub fn with_digit(&self, index: usize, j: usize, value: usize) -> usize {
        let mut d = self.digits_of(index);
        assert!(value < self.radices[j], "digit value out of range");
        d[j] = value;
        self.index_of(&d)
    }

    /// Digit `j` of `index` without materializing the whole vector.
    pub fn digit(&self, index: usize, j: usize) -> usize {
        let mut rem = index;
        for &r in &self.radices[..j] {
            rem /= r;
        }
        rem % self.radices[j]
    }

    /// Split this system into (low half, high half) at digit `at`:
    /// low = digits `0..at`, high = digits `at..`. The paper's orthogonal
    /// layout places a node at grid position (row = high value, column =
    /// low value).
    pub fn split(&self, at: usize) -> (MixedRadix, MixedRadix) {
        assert!(at <= self.radices.len());
        (
            MixedRadix::new_or_unit(self.radices[..at].to_vec()),
            MixedRadix::new_or_unit(self.radices[at..].to_vec()),
        )
    }

    /// Like `new` but an empty digit vector gives the unit system
    /// (cardinality 1, zero digits).
    fn new_or_unit(radices: Vec<usize>) -> MixedRadix {
        MixedRadix { radices }
    }

    /// Decompose `index` into `(low_value, high_value)` where low covers
    /// digits `0..at` and high covers digits `at..`.
    pub fn split_index(&self, index: usize, at: usize) -> (usize, usize) {
        let low_card: usize = self.radices[..at].iter().product();
        (index % low_card, index / low_card)
    }

    /// Iterate over every representable value (as linear indices).
    pub fn indices(&self) -> std::ops::Range<usize> {
        0..self.cardinality()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fixed() {
        let mr = MixedRadix::fixed(3, 4);
        assert_eq!(mr.cardinality(), 81);
        for i in 0..81 {
            assert_eq!(mr.index_of(&mr.digits_of(i)), i);
        }
    }

    #[test]
    fn roundtrip_mixed() {
        let mr = MixedRadix::new(vec![2, 3, 5]);
        assert_eq!(mr.cardinality(), 30);
        for i in 0..30 {
            let d = mr.digits_of(i);
            assert!(d[0] < 2 && d[1] < 3 && d[2] < 5);
            assert_eq!(mr.index_of(&d), i);
        }
    }

    #[test]
    fn digit_accessor_matches_digits_of() {
        let mr = MixedRadix::new(vec![4, 2, 3]);
        for i in 0..mr.cardinality() {
            let d = mr.digits_of(i);
            for (j, &dj) in d.iter().enumerate() {
                assert_eq!(mr.digit(i, j), dj);
            }
        }
    }

    #[test]
    fn with_digit_changes_only_target() {
        let mr = MixedRadix::fixed(4, 3);
        let i = mr.index_of(&[1, 2, 3]);
        let j = mr.with_digit(i, 1, 0);
        assert_eq!(mr.digits_of(j), vec![1, 0, 3]);
    }

    #[test]
    fn split_consistency() {
        let mr = MixedRadix::new(vec![3, 4, 5, 2]);
        let (lo, hi) = mr.split(2);
        assert_eq!(lo.cardinality(), 12);
        assert_eq!(hi.cardinality(), 10);
        for i in 0..mr.cardinality() {
            let (l, h) = mr.split_index(i, 2);
            assert_eq!(h * lo.cardinality() + l, i);
        }
    }

    #[test]
    fn split_at_ends() {
        let mr = MixedRadix::fixed(2, 3);
        let (lo, hi) = mr.split(0);
        assert_eq!(lo.cardinality(), 1);
        assert_eq!(hi.cardinality(), 8);
        let (lo, hi) = mr.split(3);
        assert_eq!(lo.cardinality(), 8);
        assert_eq!(hi.cardinality(), 1);
    }
}
